"""Ablation — the filter cache (Kin et al.) as the related-work alternative.

The paper's related work notes that buffer-based schemes "can introduce
extra fetch latency when a miss occurs".  This bench shows the trade: the
filter cache can save plenty of energy but pays an L0-miss cycle penalty
that way-placement avoids entirely.
"""

from repro.experiments.formatting import format_pct, format_ratio, render_table
from repro.utils.stats import arithmetic_mean
from repro.workloads.mibench import benchmark_names

from benchmarks.conftest import emit, run_once

KB = 1024
SUBSET = benchmark_names()[::3]


def test_bench_ablation_filter(benchmark, runner):
    def run():
        rows = {}
        for bench in SUBSET:
            placed = runner.normalised(bench, "way-placement", wpa_size=32 * KB)
            filtered = runner.normalised(bench, "filter-cache")
            rows[bench] = (
                placed.icache_energy,
                filtered.icache_energy,
                placed.delay,
                filtered.delay,
            )
        return rows

    rows = run_once(benchmark, run)
    mean = lambda i: arithmetic_mean(r[i] for r in rows.values())
    emit()
    emit(
        render_table(
            "Ablation: way-placement vs 512B filter cache",
            ["benchmark", "WP energy", "filter energy", "WP delay", "filter delay"],
            [
                [
                    b,
                    format_pct(r[0]),
                    format_pct(r[1]),
                    format_ratio(r[2]),
                    format_ratio(r[3]),
                ]
                for b, r in rows.items()
            ]
            + [
                [
                    "average",
                    format_pct(mean(0)),
                    format_pct(mean(1)),
                    format_ratio(mean(2)),
                    format_ratio(mean(3)),
                ]
            ],
        )
    )
    # way-placement beats the filter cache on energy for every benchmark
    for bench, (wp_energy, filter_energy, _, _) in rows.items():
        assert wp_energy < filter_energy
    # the filter cache's latency cost is structural: every L0 miss stalls
    assert mean(3) >= 1.003
    # way-placement achieves its saving with essentially no slowdown
    assert mean(2) <= 1.03
