"""Ablation — scratchpad code memory (Ravindran et al.) vs way-placement.

The paper's criticism: the SPM approach "requires a scratchpad memory to be
provided in the processor and would generally only apply to loops".  The
flip side is that a tagless SPM fetch is very cheap, so when the hot code
*fits*, the SPM wins on raw energy — the interesting comparison is how each
approach degrades as the provisioned area shrinks, and that way-placement
needs no extra memory at all.
"""

from repro.experiments.formatting import format_pct, render_table
from repro.layout.placement import LayoutPolicy
from repro.schemes.scratchpad import select_spm_contents
from repro.sim.simulator import Simulator
from repro.utils.stats import arithmetic_mean
from repro.workloads.mibench import benchmark_names

from benchmarks.conftest import emit, run_once

KB = 1024
SUBSET = benchmark_names()[::3]
AREA_SIZES = [8 * KB, 2 * KB]


def _spm_energy(runner, bench, spm_size):
    workload = runner.workload(bench)
    layout = runner.layout(bench, LayoutPolicy.WAY_PLACEMENT)
    profile = runner.profile(bench)
    lines = select_spm_contents(
        workload.program, layout, profile.block_counts, spm_size, 32
    )
    events = runner.events(bench, LayoutPolicy.WAY_PLACEMENT, 32)
    simulator = Simulator()
    from repro.schemes.scratchpad import ScratchpadScheme
    from repro.energy.cache_model import CacheEnergyModel
    from repro.sim.timing import cycles_for_run
    from repro.sim.machine import XSCALE_BASELINE

    scheme = ScratchpadScheme(
        XSCALE_BASELINE.icache,
        spm_lines=lines,
        itlb_entries=XSCALE_BASELINE.itlb_entries,
        page_size=XSCALE_BASELINE.page_size,
    )
    counters = scheme.run(events)
    breakdown = CacheEnergyModel(XSCALE_BASELINE.icache).energy(counters)
    baseline = runner.report(bench, "baseline")
    return breakdown.icache_pj / baseline.icache_energy_pj


def test_bench_ablation_scratchpad(benchmark, runner):
    def run():
        rows = {}
        for bench in SUBSET:
            wp = {
                size: runner.normalised(
                    bench, "way-placement", wpa_size=size
                ).icache_energy
                for size in AREA_SIZES
            }
            spm = {size: _spm_energy(runner, bench, size) for size in AREA_SIZES}
            rows[bench] = (wp[8 * KB], spm[8 * KB], wp[2 * KB], spm[2 * KB])
        return rows

    rows = run_once(benchmark, run)
    mean = lambda i: arithmetic_mean(r[i] for r in rows.values())
    emit()
    emit(
        render_table(
            "Ablation: way-placement vs compiler-managed scratchpad "
            "(I-cache energy %, by provisioned area)",
            ["benchmark", "WP 8KB", "SPM 8KB", "WP 2KB", "SPM 2KB"],
            [
                [b, *(format_pct(v) for v in r)] for b, r in rows.items()
            ]
            + [["average", *(format_pct(mean(i)) for i in range(4))]],
        )
    )
    # a fitting scratchpad is the energy winner (tagless SRAM fetches are
    # cheaper than any cache access) — the honest result
    assert mean(1) < mean(0)
    # but way-placement degrades far more gracefully as the area shrinks:
    # SPM loses *all* benefit for code that no longer fits, while
    # way-placement still saves on whatever the area covers
    wp_degradation = mean(2) - mean(0)
    spm_degradation = mean(3) - mean(1)
    assert spm_degradation > wp_degradation
