"""Ablation — drowsy leakage control combined with way-placement.

The paper's related work (Flautner et al., Kaxiras et al.): leakage schemes
"are orthogonal to our scheme and can therefore be used together for
additional energy savings".  This bench verifies the composition: the
drowsy policy removes most *leakage* regardless of the fetch scheme, and
the totals (dynamic + leakage) improve when both techniques are on.
"""

from repro.energy.leakage import DrowsyModel, LeakageParams
from repro.experiments.formatting import format_pct, render_table
from repro.layout.placement import LayoutPolicy
from repro.sim.machine import XSCALE_BASELINE
from repro.utils.stats import arithmetic_mean
from repro.workloads.mibench import benchmark_names

from benchmarks.conftest import emit, run_once

KB = 1024
SUBSET = benchmark_names()[::3]
PARAMS = LeakageParams()


def test_bench_ablation_drowsy(benchmark, runner):
    def run():
        rows = {}
        model = DrowsyModel(XSCALE_BASELINE.icache, PARAMS)
        for bench in SUBSET:
            base = runner.report(bench, "baseline")
            placed = runner.report(bench, "way-placement", wpa_size=32 * KB)

            stats = model.__class__(XSCALE_BASELINE.icache, PARAMS).run(
                runner.events(bench, LayoutPolicy.WAY_PLACEMENT, 32)
            )
            leak_on = stats.always_on_leakage_pj(PARAMS)
            leak_drowsy = stats.leakage_pj(PARAMS)

            base_total = base.icache_energy_pj + leak_on
            wp_total = placed.icache_energy_pj + leak_on
            wp_drowsy_total = placed.icache_energy_pj + leak_drowsy
            rows[bench] = (
                wp_total / base_total,
                wp_drowsy_total / base_total,
                stats.leakage_saving(PARAMS),
                stats.wake_penalty_cycles / placed.cycles,
            )
        return rows

    rows = run_once(benchmark, run)
    mean = lambda i: arithmetic_mean(r[i] for r in rows.values())
    emit()
    emit(
        render_table(
            "Ablation: way-placement + drowsy lines "
            "(I-cache energy incl. leakage, % of always-on baseline)",
            ["benchmark", "WP only", "WP + drowsy", "leakage saved", "wake cost"],
            [
                [
                    b,
                    format_pct(r[0]),
                    format_pct(r[1]),
                    format_pct(r[2]),
                    f"{100 * r[3]:.3f}%",
                ]
                for b, r in rows.items()
            ]
            + [
                [
                    "average",
                    format_pct(mean(0)),
                    format_pct(mean(1)),
                    format_pct(mean(2)),
                    f"{100 * mean(3):.3f}%",
                ]
            ],
        )
    )
    # composition: adding drowsy lines strictly improves every benchmark
    for bench, (wp_only, wp_drowsy, leak_saved, wake_cost) in rows.items():
        assert wp_drowsy < wp_only
        # drowsy removes the bulk of leakage (hot working sets are small)
        assert leak_saved > 0.5
        # and the wake penalty stays small (Flautner et al. report ~1%
        # slowdown for a 2000-cycle window; ours lands in the same range)
        assert wake_cost < 0.015
