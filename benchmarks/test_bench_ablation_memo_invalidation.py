"""Ablation — is our way-memoization comparator conservative?

The library's default link-validity model is *exact* (a link dies only when
an endpoint line is replaced), which real hardware cannot implement without
reverse pointers.  The implementable alternative flash-clears every link on
any fill.  This bench shows the exact model flatters the competing scheme —
i.e. the paper-vs-way-memoization comparison in Figure 4 is conservative
with respect to our modelling choice.
"""

from repro.experiments.formatting import format_pct, render_table
from repro.layout.placement import LayoutPolicy
from repro.sim.simulator import Simulator
from repro.utils.stats import arithmetic_mean
from repro.workloads.mibench import benchmark_names

from benchmarks.conftest import emit, run_once

SUBSET = benchmark_names()[::2]


def test_bench_ablation_memo_invalidation(benchmark, runner):
    def run():
        rows = {}
        simulator = Simulator()
        for bench in SUBSET:
            baseline = runner.report(bench, "baseline")
            events = runner.events(bench, LayoutPolicy.ORIGINAL, 32)
            results = {}
            for policy in ("exact", "flash"):
                report = simulator.run_events(
                    events,
                    "way-memoization",
                    benchmark=bench,
                    mem_fraction=runner.mem_fraction(bench),
                    memo_invalidation=policy,
                )
                results[policy] = (
                    report.normalise(baseline).icache_energy,
                    report.counters.link_followed
                    / max(1, report.counters.line_events),
                )
            rows[bench] = (
                results["exact"][0],
                results["flash"][0],
                results["exact"][1],
                results["flash"][1],
            )
        return rows

    rows = run_once(benchmark, run)
    mean = lambda i: arithmetic_mean(r[i] for r in rows.values())
    emit()
    emit(
        render_table(
            "Ablation: way-memoization link invalidation policy",
            [
                "benchmark",
                "exact energy",
                "flash energy",
                "exact link-hit",
                "flash link-hit",
            ],
            [
                [
                    b,
                    format_pct(r[0]),
                    format_pct(r[1]),
                    format_pct(r[2]),
                    format_pct(r[3]),
                ]
                for b, r in rows.items()
            ]
            + [
                [
                    "average",
                    format_pct(mean(0)),
                    format_pct(mean(1)),
                    format_pct(mean(2)),
                    format_pct(mean(3)),
                ]
            ],
        )
    )
    # the exact model can only help way-memoization
    for bench, (exact_energy, flash_energy, exact_hit, flash_hit) in rows.items():
        assert exact_energy <= flash_energy + 1e-9
        assert exact_hit >= flash_hit
    # so Figure 4's comparison is conservative w.r.t. this modelling choice
    assert mean(0) <= mean(1)
