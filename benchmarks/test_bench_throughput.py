"""Micro-benchmarks of the simulator's own throughput.

Unlike the figure benches these use pytest-benchmark conventionally (many
rounds) — they guard against performance regressions in the hot loops that
every experiment depends on: the CFG walker, the line-event expander, and
the per-scheme replay loops.
"""

import pytest

from repro.layout import original_layout, way_placement_layout
from repro.sim.simulator import Simulator
from repro.trace.executor import CfgWalker
from repro.trace.fetch import line_events_from_block_trace
from repro.workloads.inputs import LARGE_INPUT, branch_models_for
from repro.workloads.mibench import load_benchmark

KB = 1024
BUDGET = 100_000


@pytest.fixture(scope="module")
def prepared():
    workload = load_benchmark("susan_c")
    models = branch_models_for(workload, LARGE_INPUT)
    walker = CfgWalker(workload.program, models, seed=2)
    block_trace = walker.walk(BUDGET)
    layout = original_layout(workload.program)
    events = line_events_from_block_trace(
        block_trace, workload.program, layout, 32
    )
    return workload, models, block_trace, layout, events


def test_bench_cfg_walker_throughput(benchmark, prepared):
    workload, models, _, _, _ = prepared
    walker = CfgWalker(workload.program, models, seed=3)
    trace = benchmark(walker.walk, BUDGET)
    assert trace.num_instructions >= BUDGET


def test_bench_line_event_expansion_throughput(benchmark, prepared):
    workload, _, block_trace, layout, _ = prepared
    events = benchmark(
        line_events_from_block_trace, block_trace, workload.program, layout, 32
    )
    assert events.num_fetches == block_trace.num_instructions


@pytest.mark.parametrize(
    "scheme,kwargs",
    [
        ("baseline", {}),
        ("way-placement", {"wpa_size": 32 * KB}),
        ("way-memoization", {}),
    ],
)
def test_bench_scheme_replay_throughput(benchmark, prepared, scheme, kwargs):
    _, _, _, _, events = prepared
    simulator = Simulator()

    def replay():
        return simulator.run_events(events, scheme, benchmark="susan_c", **kwargs)

    report = benchmark(replay)
    assert report.counters.fetches == events.num_fetches
