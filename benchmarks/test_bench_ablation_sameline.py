"""Ablation — how much of the saving is the Section 4.2 same-line skip?

The paper folds two mechanisms into its scheme: explicit way placement
(1 tag check instead of N on line transitions) and the same-line skip
(0 tag checks when staying inside a line, "also used in [12]").  This bench
separates them: way-placement with the skip disabled, and a *stronger
baseline* that gets the skip without way placement.
"""

from repro.experiments.formatting import format_pct, render_table
from repro.utils.stats import arithmetic_mean
from repro.workloads.mibench import benchmark_names

from benchmarks.conftest import emit, run_once

KB = 1024


def test_bench_ablation_sameline(benchmark, runner):
    def run():
        rows = {}
        for bench in benchmark_names():
            baseline = runner.report(bench, "baseline")
            full = runner.report(bench, "way-placement", wpa_size=32 * KB)
            no_skip = runner.report(
                bench, "way-placement", wpa_size=32 * KB, same_line_skip=False
            )
            skip_only = runner.report(bench, "baseline", same_line_skip=True)
            rows[bench] = (
                full.normalise(baseline).icache_energy,
                no_skip.normalise(baseline).icache_energy,
                skip_only.normalise(baseline).icache_energy,
            )
        return rows

    rows = run_once(benchmark, run)
    means = [arithmetic_mean(r[i] for r in rows.values()) for i in range(3)]
    emit()
    emit(
        render_table(
            "Ablation: same-line skip vs way placement (normalised I-cache energy %)",
            ["benchmark", "full scheme", "placement only", "skip only"],
            [
                [bench, format_pct(a), format_pct(b), format_pct(c)]
                for bench, (a, b, c) in rows.items()
            ]
            + [["average", *(format_pct(m) for m in means)]],
        )
    )
    full_mean, placement_only_mean, skip_only_mean = means
    # each mechanism alone saves energy, together they save the most
    assert full_mean < placement_only_mean < 1.0
    assert full_mean < skip_only_mean < 1.0
    # placement-only still beats the plain baseline by a wide margin: a
    # single-way check on *every* fetch in the WPA
    assert placement_only_mean <= 0.75
