"""Figure 6 — varying cache size (16/32/64KB) and associativity (8/16/32)
with 16KB and 8KB way-placement areas, averaged across all benchmarks.

Paper reference points: savings grow with associativity and cache size; the
best configuration (64KB, 32-way) saves >= ~58% I-cache energy and gives the
lowest ED product; at 16KB/8-way way-memoization *increases* cache energy
(>100%) while way-placement still saves substantially; way-placement's
worst-case ED stays at or below ~1.0 and below way-memoization's.
"""

from repro.experiments.figures import (
    FIGURE6_CACHE_SIZES,
    FIGURE6_WAYS,
    FIGURE6_WPA_SIZES,
    figure6,
)

from benchmarks.conftest import emit, run_once

KB = 1024


def test_bench_figure6(benchmark, runner):
    result = run_once(benchmark, lambda: figure6(runner))
    emit()
    emit(result.render())
    (size, ways), wpa, best = result.best_ed()
    emit()
    emit(
        f"best ED product: {best:.2f} at {size // KB}KB {ways}-way "
        f"with a {wpa // KB}KB way-placement area"
    )

    # savings grow with associativity at every size, for both WPA sizes
    for cache_size in FIGURE6_CACHE_SIZES:
        for wpa in FIGURE6_WPA_SIZES:
            energies = [
                result.cell(cache_size, w).placement_energy[wpa]
                for w in FIGURE6_WAYS
            ]
            assert energies[0] > energies[1] > energies[2]

    # savings grow with cache size at fixed (32-way) associativity
    by_size = [
        result.cell(s, 32).placement_energy[16 * KB] for s in FIGURE6_CACHE_SIZES
    ]
    assert by_size[0] > by_size[1] > by_size[2]

    # the best configuration is the big, highly-associative cache
    assert (size, ways) == (64 * KB, 32)
    best_cell = result.cell(64 * KB, 32)
    assert min(best_cell.placement_energy.values()) <= 0.45  # >= ~55% saving
    assert best <= 0.92

    # way-memoization backfires on the small low-associativity cache...
    assert result.cell(16 * KB, 8).memoization_energy > 1.0
    # ...where way-placement still delivers a real saving
    assert result.cell(16 * KB, 8).placement_energy[16 * KB] <= 0.90

    # way-placement never does worse than way-memoization anywhere
    for cell in result.cells.values():
        for wpa in FIGURE6_WPA_SIZES:
            assert cell.placement_energy[wpa] < cell.memoization_energy
            assert cell.placement_ed[wpa] <= cell.memoization_ed + 0.005

    # worst-case ED stays essentially at/below baseline (paper: 0.98)
    worst = max(v for c in result.cells.values() for v in c.placement_ed.values())
    assert worst <= 1.01
