"""Ablation — RAM (SRAM set-associative) organisation instead of CAM.

The paper: "our scheme could also easily be applied to a standard RAM
cache".  In a RAM organisation a conventional access reads *every way's
data* in parallel with the tags, so restricting the access to one way saves
data-array energy too — the relative saving should be even larger than on
the CAM cache.
"""

from repro.experiments.runner import ExperimentRunner
from repro.experiments.formatting import format_pct, render_table
from repro.utils.stats import arithmetic_mean
from repro.workloads.mibench import benchmark_names

from benchmarks.conftest import emit, run_once

KB = 1024
SUBSET = benchmark_names()[::4]  # every 4th benchmark keeps this bench quick


def test_bench_ablation_ram(benchmark, runner):
    ram_runner = ExperimentRunner(
        eval_instructions=runner.eval_instructions,
        profile_instructions=runner.profile_instructions,
        organisation="ram",
    )

    def run():
        rows = {}
        for bench in SUBSET:
            cam = runner.normalised(bench, "way-placement", wpa_size=32 * KB)
            ram = ram_runner.normalised(bench, "way-placement", wpa_size=32 * KB)
            rows[bench] = (cam.icache_energy, ram.icache_energy)
        return rows

    rows = run_once(benchmark, run)
    cam_mean = arithmetic_mean(r[0] for r in rows.values())
    ram_mean = arithmetic_mean(r[1] for r in rows.values())
    emit()
    emit(
        render_table(
            "Ablation: CAM vs RAM organisation (way-placement energy %)",
            ["benchmark", "CAM cache", "RAM cache"],
            [
                [bench, format_pct(a), format_pct(b)]
                for bench, (a, b) in rows.items()
            ]
            + [["average", format_pct(cam_mean), format_pct(ram_mean)]],
        )
    )
    # the RAM organisation benefits even more from way placement
    assert ram_mean < cam_mean
    assert ram_mean < 0.40
