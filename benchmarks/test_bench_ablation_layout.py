"""Ablation — how much does the *layout policy* matter?

Runs the way-placement hardware with five different code layouts: the
paper's heaviest-chain-first ordering, classic Pettis-Hansen procedure
ordering, the original order, random chain order, and an adversarial
coldest-first order.  The compiler pass is the paper's contribution; this
quantifies it, especially for small way-placement areas where only the
front of the binary is covered — and shows why *block-chain* granularity
beats *function* granularity there.
"""

from repro.experiments.formatting import format_pct, render_table
from repro.layout.pettis_hansen import pettis_hansen_layout
from repro.layout.placement import LayoutPolicy
from repro.sim.simulator import Simulator
from repro.trace.fetch import line_events_from_block_trace
from repro.utils.stats import arithmetic_mean
from repro.workloads.mibench import benchmark_names

from benchmarks.conftest import emit, run_once

KB = 1024
POLICIES = [
    ("way-placement", LayoutPolicy.WAY_PLACEMENT),
    ("original", LayoutPolicy.ORIGINAL),
    ("random-chains", LayoutPolicy.RANDOM_CHAINS),
    ("coldest-first", LayoutPolicy.COLDEST_FIRST),
]


def _pettis_hansen_energy(runner, bench):
    """Mean normalised energy under a Pettis-Hansen layout (not a runner
    policy, so simulated directly)."""
    workload = runner.workload(bench)
    layout = pettis_hansen_layout(workload.program, runner.profile(bench))
    events = line_events_from_block_trace(
        runner.block_trace(bench), workload.program, layout, 32
    )
    report = Simulator().run_events(
        events,
        "way-placement",
        benchmark=bench,
        wpa_size=4 * KB,
        mem_fraction=runner.mem_fraction(bench),
    )
    return report.normalise(runner.report(bench, "baseline")).icache_energy


def test_bench_ablation_layout(benchmark, runner):
    def run():
        means = {}
        for label, policy in POLICIES:
            values = [
                runner.normalised(
                    bench,
                    "way-placement",
                    wpa_size=4 * KB,
                    layout_policy=policy,
                ).icache_energy
                for bench in benchmark_names()
            ]
            means[label] = arithmetic_mean(values)
        means["pettis-hansen"] = arithmetic_mean(
            _pettis_hansen_energy(runner, bench) for bench in benchmark_names()
        )
        return means

    means = run_once(benchmark, run)
    emit()
    emit(
        render_table(
            "Ablation: layout policy under a 4KB way-placement area "
            "(mean I-cache energy %)",
            ["layout", "energy %"],
            [[label, format_pct(value)] for label, value in means.items()],
        )
    )
    # the paper's profile-guided ordering must win...
    assert means["way-placement"] == min(means.values())
    # ...the adversarial ordering must lose to it decisively
    assert means["coldest-first"] > means["way-placement"] + 0.02
    # unguided orders sit in between
    assert means["way-placement"] < means["original"]
    assert means["way-placement"] < means["random-chains"]
    # and block-chain granularity beats function-granular Pettis-Hansen
    # under a small area (whole hot functions don't fit in 4KB)
    assert means["way-placement"] <= means["pettis-hansen"]
    # though Pettis-Hansen, being profile-guided, still beats random order
    assert means["pettis-hansen"] < means["random-chains"]
