"""Robustness bench — the headline conclusion under energy-model
perturbation.

Our energy constants are calibrated, not measured; this bench perturbs the
two dominant ones (CAM tag search energy, data-array read energy) by ±40%
and re-prices every Figure 4 run.  The paper's conclusion — way-placement
saves substantially more than way-memoization, which saves more than the
baseline — must hold at every grid point.
"""

from repro.experiments.formatting import format_pct, render_table
from repro.experiments.sensitivity import sensitivity_grid

from benchmarks.conftest import emit, run_once

SCALES = (0.6, 0.8, 1.0, 1.25, 1.5)


def test_bench_sensitivity(benchmark, runner):
    result = run_once(
        benchmark,
        lambda: sensitivity_grid(runner, cam_scales=SCALES, data_scales=SCALES),
    )
    rows = []
    for point in result.points:
        rows.append(
            [
                f"{point.cam_scale:.2f}",
                f"{point.data_scale:.2f}",
                format_pct(point.placement_energy),
                format_pct(point.memoization_energy),
                "yes" if point.ordering_holds else "NO",
            ]
        )
    emit()
    emit(
        render_table(
            "Sensitivity: suite-mean energy under scaled model parameters",
            ["tag scale", "data scale", "way-placement %", "way-memo %", "holds"],
            rows,
        )
    )
    lo, hi = result.placement_energy_range()
    emit(f"way-placement energy across the grid: {100*lo:.1f}% .. {100*hi:.1f}%")

    # the paper's ordering holds at every point of a ±~50% perturbation grid
    assert result.conclusion_robust
    # and the saving never degenerates into noise or explodes implausibly
    assert 0.25 <= lo and hi <= 0.75
