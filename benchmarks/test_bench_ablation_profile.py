"""Ablation — profile-input sensitivity.

The paper trains on the small inputs and evaluates on the large ones.  This
bench compares that train/test layout against an oracle layout built from a
profile of the *evaluation* input itself, bounding how much the input
mismatch costs the compiler pass.
"""

import pytest

from repro.experiments.formatting import format_pct, render_table
from repro.layout.placement import way_placement_layout
from repro.profiling.profiler import profile_block_trace
from repro.sim.simulator import Simulator
from repro.trace.fetch import line_events_from_block_trace
from repro.utils.stats import arithmetic_mean
from repro.workloads.mibench import benchmark_names

from benchmarks.conftest import emit, run_once

KB = 1024
SUBSET = benchmark_names()[::3]


def test_bench_ablation_profile(benchmark, runner):
    def run():
        rows = {}
        for bench in SUBSET:
            workload = runner.workload(bench)
            baseline = runner.report(bench, "baseline")
            train = runner.normalised(bench, "way-placement", wpa_size=4 * KB)

            # oracle: profile the evaluation trace itself
            block_trace = runner.block_trace(bench)
            oracle_profile = profile_block_trace(
                workload.program, block_trace, "oracle"
            )
            oracle_layout = way_placement_layout(
                workload.program, oracle_profile.block_counts
            )
            events = line_events_from_block_trace(
                block_trace, workload.program, oracle_layout, 32
            )
            oracle_report = Simulator().run_events(
                events,
                "way-placement",
                benchmark=bench,
                wpa_size=4 * KB,
                mem_fraction=runner.mem_fraction(bench),
            )
            rows[bench] = (
                train.icache_energy,
                oracle_report.normalise(baseline).icache_energy,
            )
        return rows

    rows = run_once(benchmark, run)
    train_mean = arithmetic_mean(r[0] for r in rows.values())
    oracle_mean = arithmetic_mean(r[1] for r in rows.values())
    emit()
    emit(
        render_table(
            "Ablation: train-input profile vs oracle profile "
            "(4KB WPA, I-cache energy %)",
            ["benchmark", "small-input profile", "oracle profile"],
            [
                [b, format_pct(r[0]), format_pct(r[1])]
                for b, r in rows.items()
            ]
            + [["average", format_pct(train_mean), format_pct(oracle_mean)]],
        )
    )
    # the oracle can only help, but the train profile must be close to it:
    # the paper's methodology depends on profiles transferring across inputs
    assert oracle_mean <= train_mean + 0.002
    assert train_mean - oracle_mean <= 0.03
