"""Benches for the fast engine: kernel speedup, batching, warm-cache startup.

Six acceptance properties of the engine live here:

* the vectorized kernels replay the 32KB/32-way way-placement configuration
  at least ~5x faster than the reference schemes (measured as events/sec on
  the same trace, same process);
* the batched ``--engine batch`` grid replays a 16-point WPA sweep in at
  most 1/3 the wall time of per-cell ``--engine vector`` replay (one trace
  traversal per family instead of one per cell);
* the delta-driven ``--engine differential`` kernel replays a 256-point WPA
  sweep at least 5x faster than the batched kernel (adjacent configs share
  state snapshots, so dense sweeps cost little more than their divergences);
* the static pruning certificate (``--prune-static``) collapses at least
  20% of that 256-point sweep to representatives with bit-identical
  reports, at least halving the batch tier's wall time;
* the sharded execution backend replays a 16-point sweep bit-identically
  to the serial run — including under seeded chaos that crashes every
  shard's first lease (``chaos_identical``, guarded by the compare gate);
* a second ``ExperimentRunner`` process with a warm persistent cache starts
  up much faster than a cold one because it performs no CFG walks at all.

Wall times are best-of-N (``$REPRO_BENCH_REPEATS``, default 3).  With
``$REPRO_BENCH_JSON`` set, the measured numbers are also recorded for
``scripts/bench_snapshot.py`` (they end up in ``BENCH_engine.json``).
"""

import os
import time

import pytest

from benchmarks.conftest import emit, record_metric, run_once
from repro.engine.batch import BatchMember, batch_counters
from repro.engine.differential import differential_counters
from repro.engine.grid import GridCell
from repro.engine.kernels import fast_counters
from repro.layout.placement import LayoutPolicy
from repro.layout import original_layout
from repro.schemes.baseline import BaselineScheme
from repro.schemes.way_placement import WayPlacementScheme
from repro.sim.machine import XSCALE_BASELINE
from repro.trace.executor import CfgWalker
from repro.trace.fetch import line_events_from_block_trace
from repro.workloads.inputs import LARGE_INPUT, branch_models_for
from repro.workloads.mibench import load_benchmark

KB = 1024
BUDGET = 400_000


@pytest.fixture(scope="module")
def events():
    workload = load_benchmark("susan_c")
    models = branch_models_for(workload, LARGE_INPUT)
    trace = CfgWalker(workload.program, models, seed=2).walk(BUDGET)
    layout = original_layout(workload.program)
    return line_events_from_block_trace(trace, workload.program, layout, 32)


#: Wall times are best-of-N to keep the checked-in speedup claims from
#: being single-run noise; ``scripts/bench_snapshot.py`` sets the variable
#: (``--repeats``) and records N in the snapshot's environment block.
BENCH_REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))


def _time(function, repeats=None):
    repeats = BENCH_REPEATS if repeats is None else repeats
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return result, best


@pytest.mark.parametrize(
    "scheme,options",
    [
        ("baseline", {}),
        ("way-placement", {"wpa_size": 32 * KB}),
    ],
)
def test_bench_kernel_speedup(benchmark, events, scheme, options):
    geometry = XSCALE_BASELINE.icache
    if scheme == "baseline":
        reference = BaselineScheme(geometry, **options)
    else:
        reference = WayPlacementScheme(geometry, **options)

    # Warm the per-trace array memo so the bench measures steady-state
    # replay, not the one-off geometry decomposition.
    fast_counters(scheme, events, geometry, **options)

    ref_counters, ref_time = _time(lambda: type(reference)(geometry, **options).run(events))
    fast, fast_time = run_once(
        benchmark, lambda: _time(lambda: fast_counters(scheme, events, geometry, **options))
    )
    assert fast == ref_counters

    speedup = ref_time / fast_time
    events_per_sec = events.num_events / fast_time
    emit(
        f"[engine] {scheme}: reference {events.num_events / ref_time:,.0f} ev/s, "
        f"vectorized {events_per_sec:,.0f} ev/s ({speedup:.1f}x)"
    )
    record_metric(
        f"replay.{scheme}",
        {
            "events": events.num_events,
            "reference_events_per_sec": round(events.num_events / ref_time),
            "vector_events_per_sec": round(events_per_sec),
            "vector_speedup": round(speedup, 2),
        },
    )
    assert speedup >= 5.0, f"vectorized {scheme} kernel only {speedup:.2f}x faster"


def test_bench_batched_sweep(benchmark, tmp_path_factory):
    """A 16-point WPA sweep: one batched traversal vs 16 per-cell replays."""
    from repro.experiments.runner import ExperimentRunner

    cache = tmp_path_factory.mktemp("batch-cache")
    cells = [
        GridCell("susan_c", "way-placement", wpa_size=point * KB)
        for point in range(1, 17)
    ]

    def grid_time(engine):
        runner = ExperimentRunner(engine=engine, cache_dir=cache)
        # Warm the trace pipeline so the timing isolates replay, which is
        # what the engines differ in; each round re-simulates every cell.
        runner.events("susan_c", LayoutPolicy.WAY_PLACEMENT, 32)

        def sweep():
            runner._reports.clear()
            return runner.run_grid(cells)

        sweep()
        _, best = _time(sweep)
        return runner, best

    vector_runner, vector_time = grid_time("vector")
    (batch_runner, batch_time), _ = run_once(
        benchmark, lambda: _time(lambda: grid_time("batch"), repeats=1)
    )
    for cell in cells:
        kwargs = cell.report_kwargs()
        assert (
            batch_runner.report(**kwargs).counters
            == vector_runner.report(**kwargs).counters
        ), f"batched counters diverge for {cell}"

    speedup = vector_time / batch_time
    emit(
        f"[engine] 16-point WPA sweep: vector {vector_time * 1000:.1f}ms, "
        f"batch {batch_time * 1000:.1f}ms ({speedup:.1f}x)"
    )
    record_metric(
        "grid.wpa_sweep_16",
        {
            "cells": len(cells),
            "vector_wall_s": round(vector_time, 4),
            "batch_wall_s": round(batch_time, 4),
            "batch_speedup": round(speedup, 2),
        },
    )
    assert batch_time <= vector_time / 3.0, (
        f"batched sweep took {batch_time * 1000:.1f}ms, more than 1/3 of the "
        f"per-cell vector sweep ({vector_time * 1000:.1f}ms)"
    )


def test_bench_differential_sweep_256(benchmark, events):
    """A 256-point WPA sweep: delta-driven replay vs the batched kernel.

    Kernel-level on purpose: both engines price and memoise members
    identically, so timing the counter kernels isolates the thing the
    tiers differ in.  The differential tier must clear 5x over batch —
    adjacency sharing compounding the batch tier's trace sharing.
    """
    geometry = XSCALE_BASELINE.icache
    members = [
        BatchMember("way-placement", {"wpa_size": point * KB})
        for point in range(1, 257)
    ]

    # Warm the per-trace memos (geometry decomposition, sorted sweep
    # aggregates) so the bench measures steady-state family replay.
    batch_counters(events, geometry, members[:2])
    differential_counters(events, geometry, members[:2])

    batch_results, batch_time = _time(lambda: batch_counters(events, geometry, members))
    diff_results, diff_time = run_once(
        benchmark,
        lambda: _time(lambda: differential_counters(events, geometry, members)),
    )
    assert diff_results == batch_results, "differential counters diverge from batch"

    speedup = batch_time / diff_time
    emit(
        f"[engine] 256-point WPA sweep: batch {batch_time * 1000:.1f}ms, "
        f"differential {diff_time * 1000:.1f}ms ({speedup:.1f}x)"
    )
    record_metric(
        "grid.wpa_sweep_256",
        {
            "cells": len(members),
            "batch_wall_s": round(batch_time, 4),
            "differential_wall_s": round(diff_time, 4),
            "differential_speedup": round(speedup, 2),
        },
    )
    assert diff_time <= batch_time / 5.0, (
        f"differential sweep took {diff_time * 1000:.1f}ms, less than 5x "
        f"faster than the batched sweep ({batch_time * 1000:.1f}ms)"
    )


def test_bench_pruned_sweep_256(benchmark, tmp_path_factory):
    """A 256-point WPA sweep behind a static pruning certificate.

    Runner-level on purpose: pruning lives in the grid planner, not the
    counter kernels, and its payoff is every replay *not* performed.
    Measured against the batch tier, where replays dominate the family
    wall time.  Two load-bearing claims: the certificate collapses at
    least 20% of the cells, and every pruned cell's report is
    bit-identical to the unpruned run's.
    """
    from repro.experiments.runner import ExperimentRunner

    cache = tmp_path_factory.mktemp("prune-cache")
    cells = [
        GridCell("susan_c", "way-placement", wpa_size=point * KB)
        for point in range(1, 257)
    ]

    def grid_time(prune):
        runner = ExperimentRunner(engine="batch", cache_dir=cache, prune=prune)
        runner.events("susan_c", LayoutPolicy.WAY_PLACEMENT, 32)

        def sweep():
            runner._reports.clear()
            return runner.run_grid(cells)

        sweep()
        _, best = _time(sweep)
        return runner, best

    unpruned_runner, unpruned_time = grid_time(prune=False)
    (pruned_runner, pruned_time), _ = run_once(
        benchmark, lambda: _time(lambda: grid_time(prune=True), repeats=1)
    )
    for cell in cells:
        kwargs = cell.report_kwargs()
        assert (
            pruned_runner.report(**kwargs).counters
            == unpruned_runner.report(**kwargs).counters
        ), f"pruned counters diverge for {cell}"

    summary = pruned_runner.last_grid
    assert summary is not None and summary.family_cells >= len(cells)
    pruned_fraction = summary.pruned / summary.family_cells
    speedup = unpruned_time / pruned_time
    emit(
        f"[engine] 256-point pruned sweep: unpruned batch "
        f"{unpruned_time * 1000:.1f}ms, pruned {pruned_time * 1000:.1f}ms "
        f"({speedup:.1f}x, {pruned_fraction:.0%} of cells pruned)"
    )
    record_metric(
        "grid.wpa_sweep_256_pruned",
        {
            "cells": len(cells),
            "pruned": summary.pruned,
            "pruned_fraction": round(pruned_fraction, 4),
            "unpruned_wall_s": round(unpruned_time, 4),
            "pruned_wall_s": round(pruned_time, 4),
            "prune_speedup": round(speedup, 2),
        },
    )
    assert pruned_fraction >= 0.20, (
        f"certificate pruned only {pruned_fraction:.0%} of the sweep"
    )
    assert pruned_time <= unpruned_time / 2.0, (
        f"pruned sweep took {pruned_time * 1000:.1f}ms, more than half of "
        f"the unpruned batch sweep ({unpruned_time * 1000:.1f}ms)"
    )


def test_bench_sharded_sweep(benchmark, tmp_path_factory):
    """A 16-point WPA sweep on the fault-tolerant sharded backend.

    The load-bearing claim is not wall clock — sharding pays process
    overhead to buy fault isolation — but *identity under faults*: a
    seeded chaos run in which every shard's first lease crashes must
    still deliver reports bit-identical to the fault-free serial run
    (``chaos_identical`` = 1.0, guarded by the bench compare gate), with
    every incident recovered.
    """
    from repro.experiments.runner import ExperimentRunner
    from repro.resilience import chaos
    from repro.resilience.chaos import ChaosConfig, ChaosRule
    from repro.resilience.policy import ResilienceConfig

    cache = tmp_path_factory.mktemp("sharded-cache")
    cells = [
        GridCell("susan_c", "way-placement", wpa_size=point * KB)
        for point in range(1, 17)
    ]

    def make(backend):
        return ExperimentRunner(
            cache_dir=cache,
            resilience=ResilienceConfig(
                retries=3,
                backoff_s=0.01,
                timeout_s=120.0,
                backend=backend,
                shards=4,
                lease_timeout_s=10.0,
            ),
        )

    serial = make("local")
    serial.events("susan_c", LayoutPolicy.WAY_PLACEMENT, 32)  # warm the cache
    want = serial.run_grid(cells, jobs=1)

    sharded = make("sharded")
    got, sharded_time = run_once(
        benchmark,
        lambda: _time(lambda: sharded.run_grid(cells, jobs=4), repeats=1),
    )
    assert got == want, "sharded sweep diverges from the serial run"
    assert sharded.last_grid.shards == 4

    chaos_runner = make("sharded")
    config = ChaosConfig(
        seed=13, rules=(ChaosRule("shard", "crash", match="@1", times=1),)
    )
    start = time.perf_counter()
    with chaos.active(config):
        under_chaos = chaos_runner.run_grid(cells, jobs=4)
    chaos_time = time.perf_counter() - start
    chaos_identical = 1.0 if under_chaos == want else 0.0
    recovered = sum(1 for f in chaos_runner.last_failures if f.recovered)

    emit(
        f"[engine] 16-point sharded sweep: fault-free {sharded_time * 1000:.1f}ms, "
        f"under chaos {chaos_time * 1000:.1f}ms "
        f"({recovered} recovered incident(s), identical={chaos_identical:.0f})"
    )
    record_metric(
        "grid.sharded_sweep",
        {
            "cells": len(cells),
            "shards": sharded.last_grid.shards,
            "sharded_wall_s": round(sharded_time, 4),
            "chaos_wall_s": round(chaos_time, 4),
            "chaos_identical": chaos_identical,
            "recovered_incidents": recovered,
            "duplicate_results": chaos_runner.last_grid.duplicate_results,
        },
    )
    assert chaos_identical == 1.0, "chaos run diverged from the serial run"
    assert recovered == len(chaos_runner.last_failures)
    assert recovered >= 4, "every shard's first lease should have crashed"


def test_bench_store_load_events(benchmark, tmp_path_factory, monkeypatch):
    """Warm ``TraceStore.load_events``: v2 mmap entries vs v1 ``.npz``.

    The v1 path decompresses the whole archive into fresh heap copies on
    every load, so its cost scales with the trace; the v2 path maps raw
    ``.npy`` members and hands back page-cache-backed views at a
    near-constant few file opens.  Measured on the largest bundled
    workload trace the benches build (susan_c walked for 2M
    instructions): warm loads (page cache hot, best-of-N over a 10-load
    inner loop) must clear 5x — the headline claim of the zero-copy
    store format, guarded by the bench compare gate.
    """
    from repro.engine.store import TraceStore

    workload = load_benchmark("susan_c")
    models = branch_models_for(workload, LARGE_INPUT)
    trace = CfgWalker(workload.program, models, seed=2).walk(5 * BUDGET)
    layout = original_layout(workload.program)
    events = line_events_from_block_trace(trace, workload.program, layout, 32)

    root = tmp_path_factory.mktemp("store-formats")
    key = "bench|events|susan_c"

    monkeypatch.setenv("REPRO_STORE_FORMAT", "1")
    v1 = TraceStore(root / "v1")
    assert v1.save_events(key, events) is not None
    monkeypatch.delenv("REPRO_STORE_FORMAT")
    v2 = TraceStore(root / "v2")
    assert v2.save_events(key, events) is not None

    def load_v1():
        return v1.load_events(key)

    def load_v2():
        return v2.load_events(key)

    _, v1_cold = _time(load_v1, repeats=1)
    _, v2_cold = _time(load_v2, repeats=1)

    def many(load):
        def run():
            for _ in range(9):
                load()
            return load()

        return run

    got_v1, v1_warm10 = _time(many(load_v1))
    got_v2, v2_warm10 = run_once(benchmark, lambda: _time(many(load_v2)))
    v1_warm, v2_warm = v1_warm10 / 10, v2_warm10 / 10
    assert got_v1.line_size == got_v2.line_size == events.line_size
    import numpy as np

    for field in ("line_addrs", "counts", "slots"):
        assert np.array_equal(getattr(got_v2, field), getattr(events, field))
        assert np.array_equal(getattr(got_v1, field), getattr(events, field))
    assert not got_v2.line_addrs.flags.writeable

    speedup = v1_warm / v2_warm
    emit(
        f"[engine] store.load_events ({events.num_events:,} events): "
        f"v1 npz {v1_warm * 1000:.2f}ms, v2 mmap {v2_warm * 1000:.2f}ms warm "
        f"({speedup:.1f}x; cold {v1_cold * 1000:.2f}ms vs {v2_cold * 1000:.2f}ms)"
    )
    record_metric(
        "store.load_events",
        {
            "events": events.num_events,
            "v1_cold_ms": round(v1_cold * 1000, 3),
            "v2_cold_ms": round(v2_cold * 1000, 3),
            "v1_warm_ms": round(v1_warm * 1000, 3),
            "v2_warm_ms": round(v2_warm * 1000, 3),
            "warm_speedup": round(speedup, 2),
        },
    )
    assert speedup >= 5.0, (
        f"v2 mmap load only {speedup:.2f}x faster than the v1 npz load"
    )


#: The multi-benchmark grid the plane benches run: 4 benchmarks x 4
#: configurations = 16 cells, one worker chunk per benchmark at jobs=4.
_PLANE_GRID_BENCHMARKS = ("crc", "sha", "fft", "bitcount")
_PLANE_GRID_CELLS = [
    cell
    for name in _PLANE_GRID_BENCHMARKS
    for cell in (
        GridCell(name, "baseline"),
        GridCell(name, "way-placement", wpa_size=4 * KB),
        GridCell(name, "way-placement", wpa_size=8 * KB),
        GridCell(name, "way-placement", wpa_size=16 * KB),
    )
]


def test_bench_grid_cold_vs_warm(benchmark, tmp_path_factory):
    """16-cell parallel grid wall: cold store vs warm store + trace plane.

    Recorded, not guarded: the cold wall is dominated by CFG walking and
    the warm one by process spin-up, both of which vary across runner
    hardware.  The load-bearing asserts are bit-identity between the runs
    and that the warm supervisor actually published and the workers
    actually attached.
    """
    from repro.experiments.runner import ExperimentRunner

    cache = tmp_path_factory.mktemp("plane-cache")

    def grid():
        runner = ExperimentRunner(cache_dir=cache)
        return runner, runner.run_grid(_PLANE_GRID_CELLS, jobs=4)

    start = time.perf_counter()
    cold_runner, cold_reports = grid()
    cold = time.perf_counter() - start

    (warm_runner, warm_reports), warm = run_once(
        benchmark, lambda: _time(grid, repeats=1)
    )
    for a, b in zip(cold_reports, warm_reports):
        assert a.counters == b.counters, "warm grid diverged from cold grid"
    summary = warm_runner.last_grid
    assert summary is not None and summary.plane_attached > 0
    assert summary.plane_degraded == 0

    emit(
        f"[engine] 16-cell grid: cold {cold:.2f}s, warm {warm:.2f}s "
        f"({cold / warm:.1f}x; {summary.plane_attached} plane attachments, "
        f"peak worker footprint {summary.peak_worker_rss_kb}KB)"
    )
    record_metric(
        "grid.cold_vs_warm",
        {
            "cells": len(_PLANE_GRID_CELLS),
            "jobs": 4,
            "cold_wall_s": round(cold, 4),
            "warm_wall_s": round(warm, 4),
            "plane_attached": summary.plane_attached,
            "peak_worker_rss_kb": summary.peak_worker_rss_kb,
        },
    )
    assert warm < cold, "a warm grid should never be slower than a cold one"


def test_bench_grid_arena_rss(benchmark, tmp_path_factory, monkeypatch):
    """Per-worker memory: v1 store without the plane vs v2 store + arena.

    The pre-PR data plane (compressed ``.npz`` entries, every worker
    decompressing private copies) against the zero-copy plane (mmap-able
    v2 entries published once into shared memory).  Budgets are pinned
    explicitly so the guarded verdict does not depend on
    ``$REPRO_EVAL_INSTRUCTIONS``.  The per-worker footprint is the grid
    summary's ``peak_worker_rss_kb`` — worker memory growth over its
    at-spawn baseline, measured as Pss so shared pages are billed
    fractionally.  Forked workers also copy-on-write whatever parent heap
    pages their refcount traffic touches, which is stochastic, so a
    single-shot reading is noisy; the variants are interleaved and each
    takes its best of three.  Guarded as a boolean: the arena run must
    not use more memory per worker than the copying run.
    """
    import gc

    from repro.engine.store import TraceStore
    from repro.experiments.runner import ExperimentRunner

    budgets = {"eval_instructions": 1_600_000, "profile_instructions": 320_000}
    root = tmp_path_factory.mktemp("arena-rss")
    cache_v1, cache_v2 = root / "v1-cache", root / "v2-cache"

    def grid_run(cache):
        gc.collect()
        runner = ExperimentRunner(cache_dir=cache, **budgets)
        reports, wall = _time(
            lambda: runner.run_grid(_PLANE_GRID_CELLS, jobs=4), repeats=1
        )
        return reports, wall, runner.last_grid

    def v1_world(on: bool) -> None:
        if on:
            monkeypatch.setenv("REPRO_STORE_FORMAT", "1")
            monkeypatch.setenv("REPRO_PLANE", "off")
        else:
            monkeypatch.delenv("REPRO_STORE_FORMAT")
            monkeypatch.delenv("REPRO_PLANE")

    # Seed a v1-format cache (the pre-PR on-disk world), then bulk-migrate
    # a copy to v2 entry directories for the arena runs — same artifacts,
    # two data planes.
    import shutil

    v1_world(True)
    want = ExperimentRunner(cache_dir=cache_v1, **budgets).run_grid(
        _PLANE_GRID_CELLS, jobs=1
    )
    v1_world(False)
    shutil.copytree(cache_v1, cache_v2)
    outcome = TraceStore(cache_v2).migrate()
    assert outcome["migrated"] > 0 and outcome["discarded"] == 0

    base_runs, arena_runs = [], []
    for repeat in range(3):
        v1_world(True)
        base_runs.append(grid_run(cache_v1))
        v1_world(False)
        if repeat == 2:  # the timed round, once the page cache is warm
            arena_runs.append(run_once(benchmark, lambda: grid_run(cache_v2)))
        else:
            arena_runs.append(grid_run(cache_v2))

    for reports, _, summary in base_runs:
        assert summary.plane_attached == 0
        for a, b in zip(want, reports):
            assert a.counters == b.counters, "npz/serial variants diverged"
    for reports, _, summary in arena_runs:
        assert summary.plane_attached >= len(_PLANE_GRID_BENCHMARKS), (
            f"only {summary.plane_attached} plane attachments in a warm grid"
        )
        for a, c in zip(want, reports):
            assert a.counters == c.counters, "arena/serial variants diverged"
    base_rss = min(summary.peak_worker_rss_kb for _, _, summary in base_runs)
    arena_rss = min(summary.peak_worker_rss_kb for _, _, summary in arena_runs)
    base_wall = min(wall for _, wall, _ in base_runs)
    arena_wall = min(wall for _, wall, _ in arena_runs)
    attached = arena_runs[-1][2].plane_attached
    arena_no_worse = 1.0 if arena_rss <= base_rss else 0.0

    emit(
        f"[engine] 16-cell grid worker footprint: npz copies {base_rss}KB, "
        f"shared arena {arena_rss}KB per worker "
        f"({attached} attachments; walls {base_wall:.2f}s vs {arena_wall:.2f}s)"
    )
    record_metric(
        "grid.arena_rss",
        {
            "cells": len(_PLANE_GRID_CELLS),
            "jobs": 4,
            "eval_instructions": budgets["eval_instructions"],
            "npz_peak_worker_rss_kb": base_rss,
            "arena_peak_worker_rss_kb": arena_rss,
            "plane_attached": attached,
            "npz_wall_s": round(base_wall, 4),
            "arena_wall_s": round(arena_wall, 4),
            "arena_no_worse": arena_no_worse,
        },
    )
    assert arena_rss < base_rss, (
        f"arena workers ({arena_rss}KB) should grow measurably less than "
        f"npz-copying workers ({base_rss}KB)"
    )


def test_bench_warm_cache_startup(benchmark, tmp_path_factory):
    from repro.experiments.runner import ExperimentRunner

    cache = tmp_path_factory.mktemp("engine-cache")

    def startup():
        runner = ExperimentRunner(cache_dir=cache)
        runner.report("crc", "way-placement", wpa_size=32 * KB)
        runner.report("crc", "baseline")
        return runner

    start = time.perf_counter()
    cold_runner = startup()
    cold = time.perf_counter() - start
    assert cold_runner.store.misses > 0

    warm_runner, warm = run_once(benchmark, lambda: _time(startup, repeats=1))
    assert warm_runner.store.misses == 0, "warm cache still re-derived traces"
    emit(
        f"[engine] runner startup: cold {cold:.2f}s, warm {warm:.2f}s "
        f"({cold / warm:.1f}x)"
    )
    # The load-bearing assertion is misses == 0 above; wall-clock is noisy
    # on small benchmarks, so only guard against the cache *slowing* startup.
    assert warm < cold * 1.5
