"""Figure 5 — varying the way-placement area size from 32KB down to 1KB
(32KB, 32-way cache), averaged across all benchmarks.

Paper reference points: energy degrades gracefully as the area shrinks
(52% -> 56% of baseline at 1KB in the paper) and every size beats
way-memoization; ED stays ~0.93-0.94 throughout.
"""

from repro.experiments.figures import FIGURE5_WPA_SIZES, figure5

from benchmarks.conftest import emit, run_once


def test_bench_figure5(benchmark, runner):
    result = run_once(benchmark, lambda: figure5(runner))
    emit()
    emit(result.render())

    sizes = list(FIGURE5_WPA_SIZES)
    energies = [result.placement_energy[s] for s in sizes]

    # monotone (never better with a smaller area, tiny tolerance for noise)
    for bigger, smaller in zip(energies, energies[1:]):
        assert smaller >= bigger - 0.005
    # even the 1KB area keeps a large saving...
    assert energies[-1] <= 0.60
    # ...and degradation from 32KB to 1KB is visible but modest
    assert 0.01 <= energies[-1] - energies[0] <= 0.08
    # every size beats way-memoization (the paper's key Figure 5 claim)
    for energy in energies:
        assert energy < result.memoization_energy
    # ED stays in the paper's 0.93-0.94 band at every size
    for ed in result.placement_ed.values():
        assert 0.90 <= ed <= 0.96
