"""Figure 4 — initial evaluation: per-benchmark normalised I-cache energy
and ED product for way-memoization vs way-placement (32KB, 32-way cache,
32KB way-placement area).

Paper reference points (DESIGN.md §4): way-placement mean energy approaches
50% ("energy savings approach 50%"), way-memoization saves ~32%; mean ED
0.93 with two benchmarks below 0.90; way-placement beats way-memoization on
every benchmark.
"""

from repro.experiments.figures import figure4

from benchmarks.conftest import emit, run_once


def test_bench_figure4(benchmark, runner):
    result = run_once(benchmark, lambda: figure4(runner))
    emit()
    emit(result.render())
    emit()
    emit(
        f"means: way-placement {100 * result.mean_placement_energy:.1f}% "
        f"energy / ED {result.mean_placement_ed:.3f}; "
        f"way-memoization {100 * result.mean_memoization_energy:.1f}% "
        f"energy / ED {result.mean_memoization_ed:.3f}"
    )

    # -- shape assertions against the paper -------------------------------
    # "energy savings approach 50%"
    assert 0.45 <= result.mean_placement_energy <= 0.56
    # way-memoization saves ~32% (energy -> ~68%)
    assert 0.60 <= result.mean_memoization_energy <= 0.73
    # "an ED product of 0.93 on average"
    assert 0.91 <= result.mean_placement_ed <= 0.95
    # "two benchmarks below 0.9"
    below = [
        b for b in result.benchmarks if result.placement[b].ed_product < 0.90
    ]
    assert len(below) >= 1
    # way-placement strictly better than way-memoization everywhere
    for bench in result.benchmarks:
        assert (
            result.placement[bench].icache_energy
            < result.memoization[bench].icache_energy
        )
        # and never meaningfully slower than baseline ("no change in
        # performance"; see EXPERIMENTS.md on the <=4% slowdown that
        # pinned-line refills cost the flattest-profile benchmarks)
        assert result.placement[bench].delay <= 1.05
