"""Ablation — runtime WPA adaptation (the paper's 'even adjusting it
during program execution').

The OS controller trials each candidate area size for one window, locks in
the best, and monitors for phase changes.  Compared against every fixed
size: adaptation must land near the per-benchmark best without knowing it
in advance.
"""

from repro.experiments.formatting import render_table
from repro.layout.placement import LayoutPolicy
from repro.schemes.adaptive import AdaptiveWpaController
from repro.schemes.way_placement import WayPlacementScheme
from repro.sim.machine import XSCALE_BASELINE
from repro.workloads.mibench import benchmark_names

from benchmarks.conftest import emit, run_once

KB = 1024
CANDIDATES = [1 * KB, 4 * KB, 16 * KB, 32 * KB]
SUBSET = benchmark_names()[::4]


def test_bench_ablation_adaptive(benchmark, runner):
    def run():
        rows = {}
        for bench in SUBSET:
            events = runner.events(bench, LayoutPolicy.WAY_PLACEMENT, 32)
            fixed = {}
            for size in CANDIDATES:
                scheme = WayPlacementScheme(
                    XSCALE_BASELINE.icache,
                    wpa_size=size,
                    page_size=XSCALE_BASELINE.page_size,
                )
                fixed[size] = scheme.run(events).ways_precharged
            controller = AdaptiveWpaController(
                XSCALE_BASELINE.icache,
                CANDIDATES,
                page_size=XSCALE_BASELINE.page_size,
                window_events=2048,
            )
            adaptive = controller.run(events)
            rows[bench] = (
                min(fixed.values()),
                max(fixed.values()),
                adaptive.counters.ways_precharged,
                adaptive.chosen_wpa,
                adaptive.resizes,
                fixed[adaptive.chosen_wpa],
            )
        return rows

    rows = run_once(benchmark, run)
    emit()
    emit(
        render_table(
            "Ablation: adaptive WPA sizing vs fixed sizes "
            "(match lines precharged over the run)",
            ["benchmark", "best fixed", "worst fixed", "adaptive", "chosen", "resizes"],
            [
                [
                    b,
                    f"{r[0]:,}",
                    f"{r[1]:,}",
                    f"{r[2]:,}",
                    f"{r[3] // KB}KB",
                    str(r[4]),
                ]
                for b, r in rows.items()
            ],
        )
    )
    for bench, (best, worst, adaptive, chosen, resizes, chosen_fixed) in rows.items():
        # decision quality: the controller locks onto a (near-)oracle size
        # (short trial windows leave ~10% estimation noise between
        # candidates whose true costs are close)
        assert chosen_fixed <= best * 1.15
        # total cost = oracle + the trial phase, which is bounded and
        # amortises with trace length
        assert adaptive <= best * 1.6
        # a wrong static choice is far worse than adapting
        if worst > best * 2:
            assert adaptive < worst * 0.5
        # and the controller does not resize endlessly
        assert resizes <= 2 + 2 * len(CANDIDATES)
