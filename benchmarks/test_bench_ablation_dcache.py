"""Ablation — does the flat memory-op energy term bias the ED results?

The headline ED numbers price each memory operation with a calibrated flat
term.  This bench replaces it with an explicit simulation of Table 1's
32KB/32-way D-cache over synthetic per-benchmark data streams and
recomputes the ED product both ways.  The headline conclusion must be
insensitive to the simplification.
"""

from repro.experiments.formatting import format_ratio, render_table
from repro.sim.dcache import make_data_events, refined_processor_energy, simulate_dcache
from repro.utils.stats import arithmetic_mean
from repro.workloads.data_model import data_spec_for
from repro.workloads.mibench import benchmark_names

from benchmarks.conftest import emit, run_once

KB = 1024
SUBSET = benchmark_names()[::3]


def test_bench_ablation_dcache(benchmark, runner):
    def run():
        rows = {}
        for bench in SUBSET:
            base = runner.report(bench, "baseline")
            placed = runner.report(bench, "way-placement", wpa_size=32 * KB)
            mem_fraction = runner.mem_fraction(bench)
            spec = data_spec_for(bench)
            # the data stream depends on the instruction stream, not the
            # fetch scheme: both configurations see the same D-cache run
            data_events = make_data_events(spec, base, mem_fraction)
            dcache = simulate_dcache(data_events)

            flat_ed = placed.normalise(base).ed_product
            refined_base = refined_processor_energy(base, dcache, mem_fraction)
            refined_placed = refined_processor_energy(placed, dcache, mem_fraction)
            energy_ratio = refined_placed / refined_base
            delay_ratio = (placed.cycles + dcache.stall_cycles) / (
                base.cycles + dcache.stall_cycles
            )
            refined_ed = energy_ratio * delay_ratio
            rows[bench] = (flat_ed, refined_ed, dcache.miss_rate)
        return rows

    rows = run_once(benchmark, run)
    emit()
    emit(
        render_table(
            "Ablation: flat memory-op energy vs explicit D-cache simulation",
            ["benchmark", "ED (flat)", "ED (D-cache)", "D-cache miss rate"],
            [
                [b, format_ratio(r[0]), format_ratio(r[1]), f"{100 * r[2]:.2f}%"]
                for b, r in rows.items()
            ],
        )
    )
    flat_mean = arithmetic_mean(r[0] for r in rows.values())
    refined_mean = arithmetic_mean(r[1] for r in rows.values())
    emit(f"mean ED: flat {flat_mean:.3f}, refined {refined_mean:.3f}")

    for bench, (flat_ed, refined_ed, miss_rate) in rows.items():
        # the conclusion (ED < 1, i.e. way-placement wins) is unchanged
        assert refined_ed < 1.0
        # and the refinement moves any benchmark by at most a few points
        assert abs(refined_ed - flat_ed) < 0.08
        # D-cache behaviour is in a plausible embedded range (table codes
        # like patricia/rijndael genuinely run ~10% data-side miss rates)
        assert miss_rate < 0.13
    assert abs(refined_mean - flat_mean) < 0.05
