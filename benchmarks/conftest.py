"""Shared fixtures for the figure-reproduction benchmark harness.

The harness runs each figure's full experiment grid once (via
``benchmark.pedantic(..., rounds=1)``) — these are reproduction benches, not
micro-benchmarks, so repeating them buys nothing.  A single session-scoped
:class:`ExperimentRunner` shares traces across benches, which makes the
whole suite run in a few minutes.

Budgets default to the library's standard 400k evaluated instructions per
benchmark; set ``REPRO_EVAL_INSTRUCTIONS`` / ``REPRO_PROFILE_INSTRUCTIONS``
to trade fidelity for speed.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="session")
def runner():
    return ExperimentRunner()


_CAPTURE_MANAGER = None


def pytest_configure(config):
    global _CAPTURE_MANAGER
    _CAPTURE_MANAGER = config.pluginmanager.getplugin("capturemanager")


def emit(*args, **kwargs):
    """Print past pytest's capture.

    The benches print the figures they regenerate; routing those prints
    around the capture plugin makes the tables land in the terminal (and in
    any teed log) on success, not only on failure.
    """
    if _CAPTURE_MANAGER is None:
        print(*args, **kwargs)
        return
    with _CAPTURE_MANAGER.global_and_fixture_disabled():
        print(*args, **kwargs)


def run_once(benchmark, function):
    """Run ``function`` exactly once under pytest-benchmark's timer."""
    return benchmark.pedantic(function, rounds=1, iterations=1)
