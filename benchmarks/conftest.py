"""Shared fixtures for the figure-reproduction benchmark harness.

The harness runs each figure's full experiment grid once (via
``benchmark.pedantic(..., rounds=1)``) — these are reproduction benches, not
micro-benchmarks, so repeating them buys nothing.  A single session-scoped
:class:`ExperimentRunner` shares traces across benches, which makes the
whole suite run in a few minutes.

Budgets default to the library's standard 400k evaluated instructions per
benchmark; set ``REPRO_EVAL_INSTRUCTIONS`` / ``REPRO_PROFILE_INSTRUCTIONS``
to trade fidelity for speed.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="session")
def runner():
    return ExperimentRunner()


_CAPTURE_MANAGER = None


def pytest_configure(config):
    global _CAPTURE_MANAGER
    _CAPTURE_MANAGER = config.pluginmanager.getplugin("capturemanager")


def emit(*args, **kwargs):
    """Print past pytest's capture.

    The benches print the figures they regenerate; routing those prints
    around the capture plugin makes the tables land in the terminal (and in
    any teed log) on success, not only on failure.
    """
    if _CAPTURE_MANAGER is None:
        print(*args, **kwargs)
        return
    with _CAPTURE_MANAGER.global_and_fixture_disabled():
        print(*args, **kwargs)


def run_once(benchmark, function):
    """Run ``function`` exactly once under pytest-benchmark's timer."""
    return benchmark.pedantic(function, rounds=1, iterations=1)


def record_metric(name, value):
    """Append a named metric to the JSON file ``$REPRO_BENCH_JSON`` points at.

    A no-op when the variable is unset, so the benches stay self-contained;
    ``scripts/bench_snapshot.py`` sets it to collect the numbers behind
    ``BENCH_engine.json``.  Read-modify-write is fine here — the snapshot
    script runs one pytest process at a time.
    """
    target = os.environ.get("REPRO_BENCH_JSON")
    if not target:
        return
    path = Path(target)
    metrics = {}
    if path.exists():
        try:
            metrics = json.loads(path.read_text())
        except (OSError, ValueError):
            metrics = {}
    metrics[name] = value
    path.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n")
