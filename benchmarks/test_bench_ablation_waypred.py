"""Ablation — MRU way-prediction (Inoue et al.) as an extra baseline.

The paper's related work dismisses prediction-based schemes because
"incorrect predictions require extra logic for recovery and a performance
penalty is incurred".  This bench quantifies the comparison honestly:
way-prediction gets close on *energy* for loop-dominated workloads (the MRU
way is usually right), but it needs a recovery path exercised orders of
magnitude more often than way-placement's way-hint correction — the
determinism argument, not a raw-energy argument, is what favours the
compiler-controlled scheme.
"""

from repro.experiments.formatting import format_pct, format_ratio, render_table
from repro.utils.stats import arithmetic_mean
from repro.workloads.mibench import benchmark_names

from benchmarks.conftest import emit, run_once

KB = 1024

#: Tiny/medium-footprint benchmarks where code layout does not perturb the
#: miss rate — the clean apples-to-apples delay comparison.
COMPACT = ["bitcount", "susan_s", "rijndael_d", "rawcaudio", "fft", "crc", "sha"]


def test_bench_ablation_waypred(benchmark, runner):
    def run():
        rows = {}
        for bench in benchmark_names():
            placed_n = runner.normalised(bench, "way-placement", wpa_size=32 * KB)
            pred_n = runner.normalised(bench, "way-prediction")
            placed_r = runner.report(bench, "way-placement", wpa_size=32 * KB)
            pred_r = runner.report(bench, "way-prediction")
            rows[bench] = (
                placed_n.icache_energy,
                pred_n.icache_energy,
                placed_n.delay,
                pred_n.delay,
                1000 * placed_r.counters.second_accesses / placed_r.counters.fetches,
                1000 * pred_r.counters.second_accesses / pred_r.counters.fetches,
            )
        return rows

    rows = run_once(benchmark, run)
    mean = lambda i: arithmetic_mean(r[i] for r in rows.values())
    emit()
    emit(
        render_table(
            "Ablation: way-placement vs MRU way-prediction",
            [
                "benchmark",
                "WP energy",
                "pred energy",
                "WP delay",
                "pred delay",
                "WP recov/k",
                "pred recov/k",
            ],
            [
                [
                    b,
                    format_pct(r[0]),
                    format_pct(r[1]),
                    format_ratio(r[2]),
                    format_ratio(r[3]),
                    f"{r[4]:6.2f}",
                    f"{r[5]:6.2f}",
                ]
                for b, r in rows.items()
            ],
        )
    )
    emit(
        f"mean recovery accesses per 1000 fetches: "
        f"way-placement {mean(4):.2f}, way-prediction {mean(5):.2f}"
    )

    # energy: the two schemes are close; way-placement never loses by much
    assert mean(0) <= mean(1) + 0.01
    # recovery traffic: way-prediction needs its correction path at least
    # an order of magnitude more often (the paper's 'extra logic' argument)
    assert mean(5) >= 10 * max(mean(4), 0.01)
    # on compact benchmarks, where layout doesn't shift the miss rate,
    # mispredict cycles make way-prediction measurably slower
    for bench in COMPACT:
        assert rows[bench][3] >= rows[bench][2]
