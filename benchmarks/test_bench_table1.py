"""Table 1 — the baseline system configuration."""

from repro.experiments.formatting import render_table
from repro.sim.machine import XSCALE_BASELINE, table1_rows

from benchmarks.conftest import emit, run_once


def test_bench_table1(benchmark):
    rows = run_once(benchmark, lambda: table1_rows(XSCALE_BASELINE))
    emit()
    emit(
        render_table(
            "Table 1: Baseline system configuration",
            ["Parameter", "Configuration"],
            [list(row) for row in rows],
        )
    )
    table = dict(rows)
    assert table["I-Cache, D-Cache"] == "32KB, 32-Way, 32B Block"
    assert table["Memory Latency"] == "50 Cycles"
    assert table["I-TLB, D-TLB"] == "32-Entry Fully Associative"
