"""Figure 1 — the paper's worked example (12 vs 3 tag comparisons)."""

from repro.cache.geometry import CacheGeometry
from repro.schemes.baseline import BaselineScheme
from repro.schemes.way_placement import WayPlacementScheme
from tests.scheme_helpers import events_from

from benchmarks.conftest import emit, run_once

FIGURE1_CACHE = CacheGeometry(32, 4, 4)
FETCHES = [(0x04, 1), (0x08, 1), (0x20, 1)]


def test_bench_figure1(benchmark):
    def run():
        baseline = BaselineScheme(FIGURE1_CACHE, page_size=16).run(
            events_from(FETCHES, line_size=4)
        )
        placed = WayPlacementScheme(
            FIGURE1_CACHE, wpa_size=48, page_size=16, hint_initial=True
        ).run(events_from(FETCHES, line_size=4))
        return baseline.ways_precharged, placed.ways_precharged

    base, placed = run_once(benchmark, run)
    emit()
    emit("Figure 1: tag comparisons for the add/br/mul example")
    emit(f"  normal access        : {base} comparisons")
    emit(f"  way-placement access : {placed} comparisons")
    emit(f"  saving               : {100 * (1 - placed / base):.0f}%")
    assert base == 12
    assert placed == 3
