#!/usr/bin/env python3
"""Inspect what the compiler pass actually does to a binary: chains, their
profiled weights, and the before/after address map — Section 3 of the paper
made visible.

Run:  python examples/layout_inspection.py [benchmark]
"""

import sys

from repro import (
    SMALL_INPUT,
    benchmark_names,
    branch_models_for,
    build_chains,
    load_benchmark,
    original_layout,
    profile_program,
    way_placement_layout,
)

KB = 1024


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "patricia"
    if bench not in benchmark_names():
        raise SystemExit(
            f"unknown benchmark {bench!r}; choose from {benchmark_names()}"
        )
    workload = load_benchmark(bench)
    program = workload.program
    print(
        f"{bench}: {len(program.functions)} functions, "
        f"{program.num_blocks} blocks, {program.size_bytes / KB:.1f}KB"
    )

    profile = profile_program(
        program, branch_models_for(workload, SMALL_INPUT), 100_000
    )
    weights = {
        block.uid: profile.count_of(block.uid) * block.num_instructions
        for block in program.blocks()
    }

    chains = build_chains(program)
    ranked = sorted(chains, key=lambda c: -c.weight(weights))
    print(f"\n{len(chains)} chains; the ten heaviest:")
    print(f"{'rank':>4} {'blocks':>6} {'bytes':>6} {'instrs executed':>16}  head")
    for rank, chain in enumerate(ranked[:10], start=1):
        head = program.block_by_uid(chain.head)
        size = sum(program.block_by_uid(u).size_bytes for u in chain.uids)
        print(
            f"{rank:>4} {len(chain):>6} {size:>6} {chain.weight(weights):>16,}"
            f"  {head.function}:{head.label}"
        )

    original = original_layout(program)
    placed = way_placement_layout(program, profile.block_counts)

    def coverage(layout, prefix_bytes):
        """Fraction of executed instructions inside the first ``prefix_bytes``."""
        covered = total = 0
        for block in program.blocks():
            executed = weights[block.uid]
            total += executed
            if layout.address_of(block.uid) < prefix_bytes:
                covered += executed
        return covered / total if total else 0.0

    print("\nexecuted-instruction coverage of the binary's first N bytes:")
    print(f"{'prefix':>8} {'original':>9} {'way-placement':>14}")
    for prefix in (1 * KB, 4 * KB, 16 * KB, 32 * KB):
        print(
            f"{prefix // KB:>6}KB {100 * coverage(original, prefix):>8.1f}% "
            f"{100 * coverage(placed, prefix):>13.1f}%"
        )

    print("\nhottest five blocks, before -> after:")
    for uid, count in profile.hottest_blocks(5):
        block = program.block_by_uid(uid)
        print(
            f"  {block.function}:{block.label:<14} executed {count:>8,} times   "
            f"{original.address_of(uid):#08x} -> {placed.address_of(uid):#08x}"
        )


if __name__ == "__main__":
    main()
