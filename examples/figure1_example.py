#!/usr/bin/env python3
"""The paper's Figure 1 worked example, reproduced instruction by
instruction.

Three instructions — an add, a branch, and a mul — are fetched from a tiny
two-set, four-way cache.  A conventional CAM cache searches all four ways of
a set on every access (12 tag comparisons); with way-placement each access
checks exactly one way (3 comparisons), "a saving of 75%".

Run:  python examples/figure1_example.py
"""

import numpy as np

from repro import CacheGeometry
from repro.isa import assemble, disassemble
from repro.schemes.baseline import BaselineScheme
from repro.schemes.way_placement import WayPlacementScheme
from repro.trace.events import LineEventTrace, SEQUENTIAL_SLOT

#: Figure 1's cache: two sets, four ways, one instruction per line.
GEOMETRY = CacheGeometry(32, 4, 4)

#: Figure 1(a): the add at 0x04, the br at 0x08, the mul at 0x20.
FETCH_ADDRESSES = [0x04, 0x08, 0x20]

SOURCE = """
    add r1, r2, r3      ; 0x04 — left-hand set
    b   target          ; 0x08 — right-hand set
target:
    mul r1, r2, r3      ; 0x20 — right-hand set again
"""


def fetch_events() -> LineEventTrace:
    slots = [SEQUENTIAL_SLOT] * len(FETCH_ADDRESSES)
    return LineEventTrace(
        line_size=4,
        line_addrs=np.asarray(FETCH_ADDRESSES, dtype=np.int64),
        counts=np.ones(len(FETCH_ADDRESSES), dtype=np.int32),
        slots=np.asarray(slots, dtype=np.int16),
    )


def main() -> None:
    unit = assemble(SOURCE)
    print("Figure 1(a): the three instructions")
    print(disassemble(unit.instructions, base_address=0x04))
    print()
    print(f"cache: {GEOMETRY.describe()}")
    for address in FETCH_ADDRESSES:
        print(
            f"  address {address:#04x}: set {GEOMETRY.set_index(address)}, "
            f"tag {GEOMETRY.tag(address)}, "
            f"mandated way {GEOMETRY.mandated_way(address)}"
        )

    baseline = BaselineScheme(GEOMETRY, page_size=16)
    base_counters = baseline.run(fetch_events())

    placed = WayPlacementScheme(
        GEOMETRY, wpa_size=48, page_size=16, hint_initial=True
    )
    wp_counters = placed.run(fetch_events())

    print()
    print("Figure 1(b): normal access")
    print(f"  tag comparisons: {base_counters.ways_precharged}")
    print("Figure 1(c): way-placement access")
    print(f"  tag comparisons: {wp_counters.ways_precharged}")
    saving = 1 - wp_counters.ways_precharged / base_counters.ways_precharged
    print(f"  saving: {100 * saving:.0f}%")

    assert base_counters.ways_precharged == 12
    assert wp_counters.ways_precharged == 3


if __name__ == "__main__":
    main()
