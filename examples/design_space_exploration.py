#!/usr/bin/env python3
"""Design-space exploration: sweep cache geometry and way-placement area
for a chosen benchmark and print the energy/ED grid — the per-benchmark
version of the paper's Figures 5 and 6.

Run:  python examples/design_space_exploration.py [benchmark]
"""

import sys

from repro import ExperimentRunner, XSCALE_BASELINE, benchmark_names
from repro.experiments.formatting import format_pct, format_ratio, render_table

KB = 1024

CACHE_SIZES = [16 * KB, 32 * KB, 64 * KB]
WAYS = [8, 16, 32]
WPA_SIZES = [32 * KB, 8 * KB, 2 * KB, 1 * KB]


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "susan_c"
    if bench not in benchmark_names():
        raise SystemExit(
            f"unknown benchmark {bench!r}; choose from {benchmark_names()}"
        )
    runner = ExperimentRunner(eval_instructions=200_000)

    # -- WPA size sweep on the default 32KB/32-way cache -------------------
    rows = []
    for wpa in WPA_SIZES:
        result = runner.normalised(bench, "way-placement", wpa_size=wpa)
        rows.append(
            [
                f"{wpa // KB}KB",
                format_pct(result.icache_energy),
                format_ratio(result.ed_product),
            ]
        )
    memo = runner.normalised(bench, "way-memoization")
    rows.append(
        ["way-memo", format_pct(memo.icache_energy), format_ratio(memo.ed_product)]
    )
    print(
        render_table(
            f"{bench}: way-placement area sweep on "
            f"{XSCALE_BASELINE.icache.describe()}",
            ["WPA", "energy %", "ED"],
            rows,
        )
    )
    print()

    # -- geometry grid with an 8KB WPA --------------------------------------
    rows = []
    for size in CACHE_SIZES:
        for ways in WAYS:
            machine = XSCALE_BASELINE.with_icache(size, ways)
            result = runner.normalised(
                bench, "way-placement", machine, wpa_size=8 * KB
            )
            rows.append(
                [
                    f"{size // KB}KB",
                    str(ways),
                    format_pct(result.icache_energy),
                    format_ratio(result.ed_product),
                ]
            )
    print(
        render_table(
            f"{bench}: cache geometry grid (8KB way-placement area)",
            ["cache", "ways", "energy %", "ED"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
