#!/usr/bin/env python3
"""Bring your own program: build a workload from assembly + the builder API
and run the full way-placement pipeline on it.

The program below is a toy image-blur main loop with an error path and a
small helper library, written partly in assembly (the kernel) and partly
with the ProgramBuilder (the scaffolding).  It shows how a user would study
the technique on code the suite does not ship.

Run:  python examples/custom_benchmark.py
"""

from repro import (
    ProgramBuilder,
    branch_models_for,  # noqa: F401  (imported for symmetry with quickstart)
    function_from_assembly,
    original_layout,
    profile_program,
    simulate,
    way_placement_layout,
)
from repro.trace.branch_model import BernoulliBranch, BranchModelMap, LoopBranch

KB = 1024

#: The hot kernel, written in assembly: a two-level blur loop.
KERNEL_SOURCE = """
rows:
    mov   r0, #0
row_loop:
    mov   r1, #0
col_loop:
    ldr   r2, [r4, #0]
    ldr   r3, [r4, #4]
    add   r2, r2, r3
    lsr   r2, r2, #1
    str   r2, [r5, #0]
    add   r1, r1, r6
    cmp   r1, r7
    bne   col_loop
    add   r0, r0, r6
    cmp   r0, r7
    bne   row_loop
    ret
"""


def build_program():
    builder = ProgramBuilder("blur")
    main = builder.function("main")
    main.block("entry", 4)
    main.block("frame_loop", 2)
    main.block("check", 2, branch="bad_frame")  # rare error path
    main.block("do_blur", 1, call="blur_kernel")
    main.block("stats", 3, call="update_stats")
    main.block("next", 2, branch="frame_loop")
    main.block("done", 1, ret=True)
    main.block("bad_frame", 6, jump="next")  # cold error handling

    function_from_assembly(builder, "blur_kernel", KERNEL_SOURCE)

    stats = builder.function("update_stats", mem_density=0.4)
    stats.block("s0", 5)
    stats.block("s1", 3, ret=True)
    return builder.build(entry="main")


def build_branch_models(program):
    """Bind each conditional branch to its runtime behaviour.

    The kernel's loop latches are found by their branch *targets* (the
    assembler assigns synthetic labels to carved blocks, so matching on
    targets is the robust way to identify them).
    """
    models = {
        # the frame loop runs 100 frames per program run
        program.uid_of_label("main", "next"): LoopBranch(100, 100),
        # 2% of frames take the error path
        program.uid_of_label("main", "check"): BernoulliBranch(0.02),
    }
    for block in program.functions["blur_kernel"].blocks:
        if block.taken_label == "col_loop":
            models[block.uid] = LoopBranch(16, 16)  # 16 columns
        elif block.taken_label == "row_loop":
            models[block.uid] = LoopBranch(16, 16)  # 16 rows
    return BranchModelMap(models)


def main() -> None:
    program = build_program()
    print(f"program: {program.name}, {program.num_blocks} blocks, "
          f"{program.size_bytes} bytes")
    for function in program.functions.values():
        print(f"  {function.name}: {len(function.blocks)} blocks")

    models = build_branch_models(program)
    profile = profile_program(program, models, max_instructions=50_000)
    print("\nhottest blocks (uid, executions):", profile.hottest_blocks(4))

    base_layout = original_layout(program)
    wp_layout = way_placement_layout(program, profile.block_counts)
    print("\nway-placement block order (first 6):")
    for uid in wp_layout.block_order[:6]:
        block = program.block_by_uid(uid)
        print(f"  {wp_layout.address_of(uid):#06x}  {block.function}:{block.label}")

    baseline = simulate(program, base_layout, "baseline", models, 200_000)
    placed = simulate(
        program, wp_layout, "way-placement", models, 200_000, wpa_size=1 * KB
    )
    result = placed.normalise(baseline)
    print(
        f"\nwith a 1KB way-placement area: "
        f"{result.icache_energy_pct:.1f}% of baseline I-cache energy, "
        f"ED product {result.ed_product:.3f}"
    )


if __name__ == "__main__":
    main()
