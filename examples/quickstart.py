#!/usr/bin/env python3
"""Quickstart: the paper's pipeline on one benchmark, in ~40 lines.

Profiles the `crc` benchmark on its small input, builds the way-placement
layout, and compares baseline / way-memoization / way-placement on the
XScale-like machine of Table 1.

Run:  python examples/quickstart.py
"""

from repro import (
    LARGE_INPUT,
    SMALL_INPUT,
    branch_models_for,
    load_benchmark,
    original_layout,
    profile_program,
    simulate,
    way_placement_layout,
)

KB = 1024


def main() -> None:
    # 1. Generate the synthetic benchmark (our MiBench stand-in).
    workload = load_benchmark("crc")
    program = workload.program
    print(f"benchmark: {program.name}, {program.size_bytes / KB:.1f}KB of code")

    # 2. Profile on the small (train) input — the paper's methodology.
    profile = profile_program(
        program, branch_models_for(workload, SMALL_INPUT), max_instructions=100_000
    )
    print(f"profiled {profile.num_instructions} instructions (small input)")

    # 3. Lay out the binary: original order vs heaviest-chain-first.
    base_layout = original_layout(program)
    wp_layout = way_placement_layout(program, profile.block_counts)

    # 4. Evaluate on the large input.
    eval_models = branch_models_for(workload, LARGE_INPUT)
    runs = {
        "baseline": simulate(program, base_layout, "baseline", eval_models, 400_000),
        "way-memoization": simulate(
            program, base_layout, "way-memoization", eval_models, 400_000
        ),
        "way-placement": simulate(
            program, wp_layout, "way-placement", eval_models, 400_000,
            wpa_size=32 * KB,
        ),
    }

    # 5. Report, normalised to the baseline (the paper's unit).
    baseline = runs["baseline"]
    print(f"\n{'scheme':18} {'I-cache energy':>15} {'ED product':>11}")
    for name, report in runs.items():
        result = report.normalise(baseline)
        print(
            f"{name:18} {result.icache_energy_pct:14.1f}% "
            f"{result.ed_product:11.3f}"
        )
    saving = 1 - runs["way-placement"].normalise(baseline).icache_energy
    print(f"\nway-placement saves {100 * saving:.0f}% of instruction cache energy")


if __name__ == "__main__":
    main()
