"""Unit tests for Layout and the linker."""

import pytest

from repro.errors import LayoutError
from repro.layout import Layout, link_blocks, original_layout
from tests.conftest import build_toy_program


class TestLayoutValidation:
    def test_from_order_contiguous(self):
        program = build_toy_program()
        layout = original_layout(program)
        cursor = 0
        for uid in layout.block_order:
            assert layout.address_of(uid) == cursor
            cursor += layout.size_of(uid)
        assert layout.end_address == cursor == program.size_bytes

    def test_overlap_rejected(self):
        program = build_toy_program()
        addresses = {b.uid: 0 for b in program.blocks()}
        sizes = {b.uid: b.size_bytes for b in program.blocks()}
        with pytest.raises(LayoutError, match="overlap"):
            Layout(program.name, addresses, sizes)

    def test_unaligned_rejected(self):
        with pytest.raises(LayoutError, match="unaligned"):
            Layout("p", {0: 2}, {0: 4})

    def test_negative_address_rejected(self):
        with pytest.raises(LayoutError, match="unaligned or negative"):
            Layout("p", {0: -4}, {0: 4})

    def test_missing_block_lookup(self):
        layout = Layout("p", {0: 0}, {0: 8})
        with pytest.raises(LayoutError):
            layout.address_of(42)

    def test_blocks_within(self):
        program = build_toy_program()
        layout = original_layout(program)
        first_two = layout.blocks_within(0, layout.address_of(layout.block_order[2]))
        assert first_two == list(layout.block_order[:2])


class TestLinker:
    def test_rejects_non_permutation(self):
        program = build_toy_program()
        order = [b.uid for b in program.blocks()][:-1]
        with pytest.raises(LayoutError, match="permutation"):
            link_blocks(program, order)

    def test_rejects_broken_fall_adjacency(self):
        program = build_toy_program()
        order = [b.uid for b in program.blocks()]
        order[0], order[1] = order[1], order[0]  # entry no longer before loop_head
        with pytest.raises(LayoutError, match="fall-through adjacency"):
            link_blocks(program, order)

    def test_base_address(self):
        program = build_toy_program()
        order = [b.uid for b in program.blocks()]
        layout = link_blocks(program, order, base_address=0x1000)
        assert layout.address_of(order[0]) == 0x1000

    def test_symbol_table_matches_addresses(self):
        program = build_toy_program()
        layout = original_layout(program)
        table = layout.symbol_table(program)
        for block in program.blocks():
            assert table[f"{block.function}:{block.label}"] == layout.address_of(
                block.uid
            )
