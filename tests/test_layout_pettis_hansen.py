"""Unit tests for the Pettis-Hansen procedure-ordering comparator."""

import pytest

from repro.errors import LayoutError
from repro.layout.pettis_hansen import function_affinities, pettis_hansen_layout
from repro.profiling import ProfileData, profile_program
from repro.workloads import SMALL_INPUT, branch_models_for, load_benchmark
from tests.conftest import build_toy_program


@pytest.fixture(scope="module")
def profiled_crc():
    workload = load_benchmark("crc")
    profile = profile_program(
        workload.program, branch_models_for(workload, SMALL_INPUT), 40_000
    )
    return workload.program, profile


class TestAffinities:
    def test_call_edges_counted(self, toy_program, toy_models):
        profile = profile_program(toy_program, toy_models, 2000)
        weights = function_affinities(toy_program, profile.edge_counts)
        assert ("helper", "main") in weights
        assert weights[("helper", "main")] > 0

    def test_intra_function_edges_ignored(self, toy_program, toy_models):
        profile = profile_program(toy_program, toy_models, 2000)
        weights = function_affinities(toy_program, profile.edge_counts)
        for a, b in weights:
            assert a != b


class TestLayout:
    def test_valid_permutation(self, profiled_crc):
        program, profile = profiled_crc
        layout = pettis_hansen_layout(program, profile)
        assert layout.end_address == program.size_bytes

    def test_functions_stay_contiguous(self, profiled_crc):
        program, profile = profiled_crc
        layout = pettis_hansen_layout(program, profile)
        for function in program.functions.values():
            addresses = sorted(
                layout.address_of(block.uid) for block in function.blocks
            )
            span = addresses[-1] - addresses[0] + function.blocks[-1].size_bytes
            # allow for the last block not being the highest-addressed one
            assert span <= function.size_bytes + max(
                b.size_bytes for b in function.blocks
            )

    def test_blocks_keep_original_order_within_function(self, profiled_crc):
        program, profile = profiled_crc
        layout = pettis_hansen_layout(program, profile)
        for function in program.functions.values():
            addresses = [layout.address_of(b.uid) for b in function.blocks]
            assert addresses == sorted(addresses)

    def test_affine_functions_adjacent(self, toy_program, toy_models):
        profile = profile_program(toy_program, toy_models, 2000)
        layout = pettis_hansen_layout(toy_program, profile)
        # main and helper call each other constantly: the two functions
        # must be placed back to back
        main_span = [
            layout.address_of(b.uid) for b in toy_program.functions["main"].blocks
        ]
        helper_span = [
            layout.address_of(b.uid)
            for b in toy_program.functions["helper"].blocks
        ]
        gap = min(
            abs(min(helper_span) - (max(main_span) + 4)),
            abs(min(main_span) - (max(helper_span) + 4)),
        )
        assert gap <= max(
            b.size_bytes for b in toy_program.blocks()
        )

    def test_deterministic(self, profiled_crc):
        program, profile = profiled_crc
        a = pettis_hansen_layout(program, profile)
        b = pettis_hansen_layout(program, profile)
        assert a.block_order == b.block_order

    def test_requires_edge_counts(self):
        program = build_toy_program()
        empty = ProfileData("toy", "none", {b.uid: 1 for b in program.blocks()})
        with pytest.raises(LayoutError, match="edge counts"):
            pettis_hansen_layout(program, empty)
