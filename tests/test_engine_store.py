"""Tests for the persistent artifact cache and the parallel grid runner."""

import json
import warnings

import numpy as np
import pytest

from repro.engine.grid import GridCell
from repro.engine.store import TraceStore, layout_digest, program_digest
from repro.errors import TraceError
from repro.experiments.runner import ExperimentRunner
from repro.resilience import chaos
from repro.resilience.chaos import ChaosConfig, ChaosRule
from repro.layout import original_layout
from repro.layout.placement import LayoutPolicy
from repro.trace.executor import CfgWalker
from repro.trace.fetch import line_events_from_block_trace
from repro.trace.io import (
    load_block_trace,
    save_block_trace,
    save_block_trace_v2,
    save_events,
)

KB = 1024


@pytest.fixture()
def traced(toy_program, toy_models):
    trace = CfgWalker(toy_program, toy_models, seed=0).walk(800)
    layout = original_layout(toy_program)
    events = line_events_from_block_trace(trace, toy_program, layout, 32)
    return trace, events


@pytest.fixture()
def store(tmp_path):
    return TraceStore(tmp_path / "cache")


def assert_same_block_trace(a, b):
    assert a.program_name == b.program_name
    assert a.num_instructions == b.num_instructions
    assert a.num_program_runs == b.num_program_runs
    assert np.array_equal(a.uids, b.uids)


def assert_same_events(a, b):
    assert a.line_size == b.line_size
    assert np.array_equal(a.line_addrs, b.line_addrs)
    assert np.array_equal(a.counts, b.counts)
    assert np.array_equal(a.slots, b.slots)


class TestKeyedArchives:
    """The cache-key plumbing in repro.trace.io."""

    def test_matching_key_loads(self, tmp_path, traced):
        trace, _ = traced
        path = tmp_path / "t.npz"
        save_block_trace(trace, path, key="spam")
        assert_same_block_trace(load_block_trace(path, expected_key="spam"), trace)

    def test_mismatched_key_raises(self, tmp_path, traced):
        trace, _ = traced
        path = tmp_path / "t.npz"
        save_block_trace(trace, path, key="spam")
        with pytest.raises(TraceError, match="different key"):
            load_block_trace(path, expected_key="eggs")

    def test_keyless_archive_fails_key_check_but_loads_plain(self, tmp_path, traced):
        trace, _ = traced
        path = tmp_path / "t.npz"
        save_block_trace(trace, path)
        with pytest.raises(TraceError):
            load_block_trace(path, expected_key="spam")
        # and without an expectation the same archive is fine
        save_block_trace(trace, path)
        assert_same_block_trace(load_block_trace(path), trace)


class TestTraceStore:
    def test_resolve_disabled_values(self, monkeypatch):
        for value in ("off", "none", "0", "", "OFF"):
            assert TraceStore.resolve(value) is None
        monkeypatch.setenv("REPRO_CACHE_DIR", "off")
        assert TraceStore.resolve() is None
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/somewhere")
        resolved = TraceStore.resolve()
        assert resolved is not None and str(resolved.root) == "/tmp/somewhere"

    def test_block_trace_roundtrip(self, store, traced):
        trace, _ = traced
        assert store.load_block_trace("k1") is None
        store.save_block_trace("k1", trace)
        assert_same_block_trace(store.load_block_trace("k1"), trace)
        assert store.hits == 1 and store.misses == 1

    def test_events_roundtrip(self, store, traced):
        _, events = traced
        assert store.load_events("k1") is None
        store.save_events("k1", events)
        assert_same_events(store.load_events("k1"), events)

    def test_corrupted_entry_is_deleted_and_misses(self, store, traced):
        trace, _ = traced
        path = store.save_block_trace("k1", trace)
        (path / "uids.npy").write_bytes(b"not an npy member")
        assert store.load_block_trace("k1") is None
        assert not path.exists()

    def test_entry_missing_its_meta_record_is_deleted(self, store, traced):
        trace, _ = traced
        path = store.save_block_trace("k1", trace)
        (path / "meta.json").unlink()
        assert store.load_block_trace("k1") is None
        assert not path.exists()

    def test_stale_key_is_deleted_and_misses(self, store, traced):
        """An entry whose embedded key disagrees (hash collision, moved
        file, format drift) must re-derive, not silently load."""
        trace, _ = traced
        path = store.path_for("blocks", "k1")
        store.root.mkdir(parents=True, exist_ok=True)
        save_block_trace_v2(trace, path, key="something-else")
        assert store.load_block_trace("k1") is None
        assert not path.exists()

    def test_profile_roundtrip(self, store, fast_runner):
        profile = fast_runner.profile("crc")
        assert store.load_profile("p1") is None
        store.save_profile("p1", profile)
        loaded = store.load_profile("p1")
        assert loaded.block_counts == profile.block_counts
        assert loaded.edge_counts == profile.edge_counts

    def test_stale_profile_is_deleted(self, store, fast_runner):
        profile = fast_runner.profile("crc")
        path = store.save_profile("p1", profile)
        payload = json.loads(path.read_text())
        payload["cache_key"] = "someone-else"
        path.write_text(json.dumps(payload))
        assert store.load_profile("p1") is None
        assert not path.exists()

    def test_stats_and_clear(self, store, traced):
        trace, events = traced
        store.save_block_trace("k1", trace)
        store.save_events("k2", events)
        stats = store.stats()
        assert stats["entries"] == {"blocks": 1, "events": 1, "profile": 0}
        assert stats["total_bytes"] > 0
        assert store.clear() == 2
        assert store.stats()["entries"] == {"blocks": 0, "events": 0, "profile": 0}


class TestStoreFailureModes:
    """Environment faults injected through the chaos sites in the store
    itself (``store.save``/``store.load``/``store.discard``) — the same
    code paths the supervised grids exercise, not monkeypatched globals.
    """

    def test_truncated_entry_is_a_miss_and_rederives(self, store, traced):
        trace, _ = traced
        rule = ChaosRule("store.save", "truncate", match="blocks:k1", times=1)
        with chaos.active(ChaosConfig(seed=0, rules=(rule,))):
            path = store.save_block_trace("k1", trace)
        assert path.exists()
        # the torn archive is detected, discarded, and treated as a miss
        assert store.load_block_trace("k1") is None
        assert not path.exists()
        # re-deriving and re-saving fully recovers the entry
        store.save_block_trace("k1", trace)
        assert_same_block_trace(store.load_block_trace("k1"), trace)

    def test_concurrent_writer_race_never_exposes_partial_entries(
        self, store, traced
    ):
        """Writers stage under unique tmp names and publish atomically; a
        racing writer of the same key concedes cleanly (directories cannot
        atomically replace non-empty directories) and readers always see a
        valid entry."""
        trace, _ = traced
        path = store.save_block_trace("k1", trace)
        # a second store (another process) writes the same key concurrently
        rival = TraceStore(store.root)
        assert rival.save_block_trace("k1", trace) == path
        assert not rival.writes_disabled
        assert_same_block_trace(store.load_block_trace("k1"), trace)
        # stray staging litter (a writer that died mid-stage) is not an entry
        (store.root / "blocks-dead.12345.tmp.npz").write_bytes(b"partial")
        dead_dir = store.root / "blocks-dead.67890.tmp.v2"
        dead_dir.mkdir()
        (dead_dir / "uids.npy").write_bytes(b"partial")
        assert store.entries()["blocks"] == 1

    def test_write_failure_degrades_to_cache_off_with_one_warning(
        self, store, traced, monkeypatch
    ):
        import repro.engine.store as store_module

        monkeypatch.setattr(store_module, "_warned_write_failure", False)
        trace, events = traced
        store.save_block_trace("k1", trace)  # healthy write first
        rule = ChaosRule("store.save", "enospc", times=-1)
        with chaos.active(ChaosConfig(seed=0, rules=(rule,))):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                assert store.save_events("k2", events) is None
                assert store.save_events("k3", events) is None
        relevant = [w for w in caught if "trace cache write" in str(w.message)]
        assert len(relevant) == 1
        assert store.writes_disabled
        assert store.stats()["writes_disabled"] is True
        # reads keep serving after writes degrade
        assert_same_block_trace(store.load_block_trace("k1"), trace)
        # and no torn tmp file is left behind
        assert not list(store.root.glob("*.tmp.*"))

    def test_degraded_store_still_supports_a_full_run(self, tmp_path):
        """End to end: a cache on a 'full disk' never fails the experiment."""
        rule = ChaosRule("store.save", "enospc", times=-1)
        with chaos.active(ChaosConfig(seed=0, rules=(rule,))):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                runner = make_runner(tmp_path / "cache")
                report = runner.report("crc", "baseline")
        assert report == make_runner("off").report("crc", "baseline")
        assert runner.store.writes_disabled

    def test_undeletable_corrupt_entry_is_quarantined(self, store, traced):
        trace, _ = traced
        path = store.save_block_trace("k1", trace)
        (path / "uids.npy").write_bytes(b"not an npy member")
        rule = ChaosRule("store.discard", "eacces", match=path.name, times=-1)
        with chaos.active(ChaosConfig(seed=0, rules=(rule,))):
            assert store.load_block_trace("k1") is None
        # moved aside, never resolvable again, invisible to entry counts
        assert not path.exists()
        assert (store.root / "quarantine" / path.name).exists()
        assert store.entries()["blocks"] == 0
        # but stats() surfaces it, and clear() empties the quarantine
        stats = store.stats()
        assert stats["quarantined"] == 1
        assert stats["quarantine_bytes"] > 0
        assert store.clear() == 1
        assert not (store.root / "quarantine").exists()
        assert store.stats()["quarantined"] == 0
        assert store.load_block_trace("k1") is None  # plain miss now

    def test_transient_read_fault_keeps_the_entry(self, store, traced):
        """An ``OSError`` during load is an environment hiccup, not a bad
        entry: miss this time, but the entry survives for the next reader."""
        trace, _ = traced
        path = store.save_block_trace("k1", trace)
        rule = ChaosRule("store.load", "eacces", match="blocks:k1", times=1)
        with chaos.active(ChaosConfig(seed=0, rules=(rule,))):
            assert store.load_block_trace("k1") is None
        assert path.exists()
        assert_same_block_trace(store.load_block_trace("k1"), trace)


class TestFormatV2AndMigration:
    """Format v2 entry directories, the ``REPRO_STORE_FORMAT`` rollback
    knob, and v1 -> v2 migration — read-through, bulk, and profiles."""

    KEY = f"v{TraceStore.FORMAT_VERSION}|blocks|toy|seed=0"

    def _plant_v1(self, store, trace, key):
        """Write a v1-era block entry exactly where the old store kept it."""
        legacy = store.legacy_path_for("blocks", key)
        store.root.mkdir(parents=True, exist_ok=True)
        save_block_trace(trace, legacy, key=TraceStore._legacy_key(key))
        return legacy

    def test_v2_entries_are_mmapable_directories(self, store, traced):
        trace, _ = traced
        path = store.save_block_trace("k1", trace)
        assert path.is_dir() and path.suffix == ".v2"
        assert (path / "meta.json").exists() and (path / "uids.npy").exists()
        loaded = store.load_block_trace("k1")
        assert_same_block_trace(loaded, trace)
        assert loaded.uids.flags.writeable is False

    def test_store_format_env_rolls_back_to_v1(self, tmp_path, traced, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_FORMAT", "1")
        store = TraceStore(tmp_path / "cache")
        trace, events = traced
        bpath = store.save_block_trace("k1", trace)
        epath = store.save_events("k2", events)
        assert bpath.suffix == ".npz" and bpath.is_file()
        assert epath.suffix == ".npz"
        assert_same_block_trace(store.load_block_trace("k1"), trace)
        loaded = store.load_events("k2")
        assert_same_events(loaded, events)
        # v1 loads obey the same read-only discipline as mmap'd v2 loads
        assert loaded.line_addrs.flags.writeable is False
        assert store.stats()["format_entries"] == {"v1": 2, "v2": 0}

    def test_read_through_migration_republishes_v1_entries(self, store, traced):
        trace, _ = traced
        legacy = self._plant_v1(store, trace, self.KEY)
        assert store.stats()["format_entries"] == {"v1": 1, "v2": 0}
        loaded = store.load_block_trace(self.KEY)
        assert_same_block_trace(loaded, trace)
        assert store.hits == 1 and store.migrated == 1
        # the legacy archive is gone; the v2 entry serves future readers
        assert not legacy.exists()
        assert store.path_for("blocks", self.KEY).is_dir()
        assert store.stats()["format_entries"] == {"v1": 0, "v2": 1}
        assert store.stats()["session_migrated"] == 1
        fresh = TraceStore(store.root)
        assert_same_block_trace(fresh.load_block_trace(self.KEY), trace)
        assert fresh.migrated == 0  # already current: a plain v2 hit

    def test_corrupt_v1_entry_is_discarded_not_migrated(self, store, traced):
        trace, _ = traced
        legacy = self._plant_v1(store, trace, self.KEY)
        legacy.write_bytes(b"torn v1 archive")
        assert store.load_block_trace(self.KEY) is None
        assert not legacy.exists()
        assert not store.path_for("blocks", self.KEY).exists()

    def test_same_key_npz_entries_migrate_too(self, tmp_path, traced, monkeypatch):
        """Entries a ``REPRO_STORE_FORMAT=1`` store wrote under the
        *current* key are also found and republished as v2."""
        trace, _ = traced
        monkeypatch.setenv("REPRO_STORE_FORMAT", "1")
        old = TraceStore(tmp_path / "cache")
        npz = old.save_block_trace(self.KEY, trace)
        monkeypatch.delenv("REPRO_STORE_FORMAT")
        store = TraceStore(tmp_path / "cache")
        assert_same_block_trace(store.load_block_trace(self.KEY), trace)
        assert store.migrated == 1
        assert not npz.exists()

    def test_profile_read_through_migration(self, store, fast_runner):
        profile = fast_runner.profile("crc")
        key = f"v{TraceStore.FORMAT_VERSION}|profile|crc"
        legacy = store.save_profile(TraceStore._legacy_key(key), profile)
        assert legacy == store.legacy_path_for("profile", key)
        loaded = store.load_profile(key)
        assert loaded.block_counts == profile.block_counts
        assert store.migrated == 1
        assert not legacy.exists()
        assert store.path_for("profile", key).exists()

    def test_bulk_migrate_counts_and_rewrites_everything(self, store, traced):
        trace, events = traced
        self._plant_v1(store, trace, self.KEY)
        ekey = f"v{TraceStore.FORMAT_VERSION}|events|toy|seed=0"
        elegacy = store.legacy_path_for("events", ekey)
        save_events(events, elegacy, key=TraceStore._legacy_key(ekey))
        store.save_events("k2", events)  # already current
        (store.root / "blocks-0badc0ffee.npz").write_bytes(b"junk")
        outcome = store.migrate()
        assert outcome == {"migrated": 2, "discarded": 1, "skipped": 1}
        assert store.stats()["format_entries"] == {"v1": 0, "v2": 3}
        assert_same_block_trace(store.load_block_trace(self.KEY), trace)
        assert_same_events(store.load_events(ekey), events)

    def test_tmp_staging_names_are_unique_within_a_process(self, store):
        path = store.path_for("blocks", "k1")
        names = {store._tmp_for(path).name for _ in range(64)}
        assert len(names) == 64

    def test_threaded_same_key_saves_never_collide(self, store, traced):
        """Concurrent saves of one key used to stage under the same
        pid-derived tmp name; the nonce makes each staging path unique and
        the losers of the publish race concede cleanly."""
        from concurrent.futures import ThreadPoolExecutor

        trace, _ = traced
        with ThreadPoolExecutor(max_workers=8) as pool:
            paths = list(
                pool.map(lambda _: store.save_block_trace("k1", trace), range(16))
            )
        assert all(path is not None for path in paths)
        assert not store.writes_disabled
        assert_same_block_trace(store.load_block_trace("k1"), trace)
        assert not [p for p in store.root.iterdir() if ".tmp" in p.name]


class TestDigests:
    def test_program_digest_distinguishes_programs(self, toy_program, crc_workload):
        assert program_digest(toy_program) == program_digest(toy_program)
        assert program_digest(toy_program) != program_digest(crc_workload.program)

    def test_layout_digest_distinguishes_layouts(self, fast_runner):
        original = fast_runner.layout("crc", LayoutPolicy.ORIGINAL)
        placed = fast_runner.layout("crc", LayoutPolicy.WAY_PLACEMENT)
        assert layout_digest(original) == layout_digest(original)
        assert layout_digest(original) != layout_digest(placed)


def make_runner(cache_dir, **kwargs):
    kwargs.setdefault("eval_instructions", 8_000)
    kwargs.setdefault("profile_instructions", 4_000)
    return ExperimentRunner(cache_dir=cache_dir, **kwargs)


class TestRunnerCache:
    def test_warm_cache_skips_all_cfg_walks(self, tmp_path, monkeypatch):
        cache = tmp_path / "cache"
        cold = make_runner(cache)
        cold_report = cold.report("crc", "way-placement", wpa_size=8 * KB)
        assert cold.store.misses > 0

        # A fresh process is simulated by a fresh runner (empty in-process
        # memos).  With the cache warm it must never walk a CFG again.
        def refuse(*args, **kwargs):
            raise AssertionError("CfgWalker ran despite a warm cache")

        monkeypatch.setattr(
            "repro.experiments.runner.CfgWalker",
            type("NoWalker", (), {"__init__": refuse}),
        )
        warm = make_runner(cache)
        warm_report = warm.report("crc", "way-placement", wpa_size=8 * KB)
        assert warm.store.hits > 0 and warm.store.misses == 0
        assert warm_report.counters == cold_report.counters

    def test_disabled_cache_still_works(self, tmp_path):
        runner = make_runner("off")
        assert runner.store is None
        report = runner.report("crc", "baseline")
        assert report.counters.fetches > 0

    def test_cached_and_uncached_runs_agree(self, tmp_path):
        cached = make_runner(tmp_path / "cache")
        uncached = make_runner("off")
        for scheme, wpa in (("baseline", 0), ("way-placement", 8 * KB)):
            a = cached.report("crc", scheme, wpa_size=wpa)
            b = uncached.report("crc", scheme, wpa_size=wpa)
            assert a.counters == b.counters


class TestRunGrid:
    CELLS = [
        GridCell("crc", "baseline"),
        GridCell("crc", "way-placement", wpa_size=8 * KB),
        GridCell("sha", "baseline"),
        GridCell("sha", "way-placement", wpa_size=8 * KB),
    ]

    def test_serial_grid_matches_direct_reports(self, tmp_path):
        runner = make_runner(tmp_path / "cache")
        reports = runner.run_grid(self.CELLS, jobs=1)
        for cell, report in zip(self.CELLS, reports):
            assert report is runner.report(**cell.report_kwargs())

    def test_parallel_grid_matches_serial(self, tmp_path):
        serial = make_runner(tmp_path / "a")
        parallel = make_runner(tmp_path / "b")
        want = serial.run_grid(self.CELLS, jobs=1)
        got = parallel.run_grid(self.CELLS, jobs=2)
        for a, b in zip(want, got):
            assert a.counters == b.counters
            assert a.cycles == b.cycles
        # the parent memoised every cell: further reports are recalls
        for cell in self.CELLS:
            assert parallel.has_report(cell)

    def test_grid_reuses_memoised_cells(self, tmp_path):
        runner = make_runner(tmp_path / "cache")
        first = runner.report("crc", "baseline")
        reports = runner.run_grid([GridCell("crc", "baseline")], jobs=4)
        assert reports[0] is first
