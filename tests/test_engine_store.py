"""Tests for the persistent artifact cache and the parallel grid runner."""

import json
import os
import warnings

import numpy as np
import pytest

from repro.engine.grid import GridCell
from repro.engine.store import TraceStore, layout_digest, program_digest
from repro.errors import TraceError
from repro.experiments.runner import ExperimentRunner
from repro.resilience import chaos
from repro.resilience.chaos import ChaosConfig, ChaosRule
from repro.layout import original_layout
from repro.layout.placement import LayoutPolicy
from repro.trace.executor import CfgWalker
from repro.trace.fetch import line_events_from_block_trace
from repro.trace.io import load_block_trace, save_block_trace

KB = 1024


@pytest.fixture()
def traced(toy_program, toy_models):
    trace = CfgWalker(toy_program, toy_models, seed=0).walk(800)
    layout = original_layout(toy_program)
    events = line_events_from_block_trace(trace, toy_program, layout, 32)
    return trace, events


@pytest.fixture()
def store(tmp_path):
    return TraceStore(tmp_path / "cache")


def assert_same_block_trace(a, b):
    assert a.program_name == b.program_name
    assert a.num_instructions == b.num_instructions
    assert a.num_program_runs == b.num_program_runs
    assert np.array_equal(a.uids, b.uids)


def assert_same_events(a, b):
    assert a.line_size == b.line_size
    assert np.array_equal(a.line_addrs, b.line_addrs)
    assert np.array_equal(a.counts, b.counts)
    assert np.array_equal(a.slots, b.slots)


class TestKeyedArchives:
    """The cache-key plumbing in repro.trace.io."""

    def test_matching_key_loads(self, tmp_path, traced):
        trace, _ = traced
        path = tmp_path / "t.npz"
        save_block_trace(trace, path, key="spam")
        assert_same_block_trace(load_block_trace(path, expected_key="spam"), trace)

    def test_mismatched_key_raises(self, tmp_path, traced):
        trace, _ = traced
        path = tmp_path / "t.npz"
        save_block_trace(trace, path, key="spam")
        with pytest.raises(TraceError, match="different key"):
            load_block_trace(path, expected_key="eggs")

    def test_keyless_archive_fails_key_check_but_loads_plain(self, tmp_path, traced):
        trace, _ = traced
        path = tmp_path / "t.npz"
        save_block_trace(trace, path)
        with pytest.raises(TraceError):
            load_block_trace(path, expected_key="spam")
        # and without an expectation the same archive is fine
        save_block_trace(trace, path)
        assert_same_block_trace(load_block_trace(path), trace)


class TestTraceStore:
    def test_resolve_disabled_values(self, monkeypatch):
        for value in ("off", "none", "0", "", "OFF"):
            assert TraceStore.resolve(value) is None
        monkeypatch.setenv("REPRO_CACHE_DIR", "off")
        assert TraceStore.resolve() is None
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/somewhere")
        resolved = TraceStore.resolve()
        assert resolved is not None and str(resolved.root) == "/tmp/somewhere"

    def test_block_trace_roundtrip(self, store, traced):
        trace, _ = traced
        assert store.load_block_trace("k1") is None
        store.save_block_trace("k1", trace)
        assert_same_block_trace(store.load_block_trace("k1"), trace)
        assert store.hits == 1 and store.misses == 1

    def test_events_roundtrip(self, store, traced):
        _, events = traced
        assert store.load_events("k1") is None
        store.save_events("k1", events)
        assert_same_events(store.load_events("k1"), events)

    def test_corrupted_entry_is_deleted_and_misses(self, store, traced):
        trace, _ = traced
        path = store.save_block_trace("k1", trace)
        path.write_bytes(b"not an npz archive")
        assert store.load_block_trace("k1") is None
        assert not path.exists()

    def test_stale_key_is_deleted_and_misses(self, store, traced):
        """An entry whose embedded key disagrees (hash collision, moved
        file, format drift) must re-derive, not silently load."""
        trace, _ = traced
        path = store.path_for("blocks", "k1")
        store.root.mkdir(parents=True, exist_ok=True)
        save_block_trace(trace, path, key="something-else")
        assert store.load_block_trace("k1") is None
        assert not path.exists()

    def test_profile_roundtrip(self, store, fast_runner):
        profile = fast_runner.profile("crc")
        assert store.load_profile("p1") is None
        store.save_profile("p1", profile)
        loaded = store.load_profile("p1")
        assert loaded.block_counts == profile.block_counts
        assert loaded.edge_counts == profile.edge_counts

    def test_stale_profile_is_deleted(self, store, fast_runner):
        profile = fast_runner.profile("crc")
        path = store.save_profile("p1", profile)
        payload = json.loads(path.read_text())
        payload["cache_key"] = "someone-else"
        path.write_text(json.dumps(payload))
        assert store.load_profile("p1") is None
        assert not path.exists()

    def test_stats_and_clear(self, store, traced):
        trace, events = traced
        store.save_block_trace("k1", trace)
        store.save_events("k2", events)
        stats = store.stats()
        assert stats["entries"] == {"blocks": 1, "events": 1, "profile": 0}
        assert stats["total_bytes"] > 0
        assert store.clear() == 2
        assert store.stats()["entries"] == {"blocks": 0, "events": 0, "profile": 0}


class TestStoreFailureModes:
    """Environment faults injected through the chaos sites in the store
    itself (``store.save``/``store.load``/``store.discard``) — the same
    code paths the supervised grids exercise, not monkeypatched globals.
    """

    def test_truncated_entry_is_a_miss_and_rederives(self, store, traced):
        trace, _ = traced
        rule = ChaosRule("store.save", "truncate", match="blocks:k1", times=1)
        with chaos.active(ChaosConfig(seed=0, rules=(rule,))):
            path = store.save_block_trace("k1", trace)
        assert path.exists()
        # the torn archive is detected, discarded, and treated as a miss
        assert store.load_block_trace("k1") is None
        assert not path.exists()
        # re-deriving and re-saving fully recovers the entry
        store.save_block_trace("k1", trace)
        assert_same_block_trace(store.load_block_trace("k1"), trace)

    def test_concurrent_writer_race_never_exposes_partial_entries(
        self, store, traced
    ):
        """Writers stage under pid-unique tmp names and publish with the
        atomic ``os.replace``; a racing writer's final swap yields a valid
        entry and readers never observe a partial one."""
        trace, _ = traced
        path = store.save_block_trace("k1", trace)
        # a second process writes the same key concurrently
        rival_tmp = path.with_name(f"{path.stem}.99999.tmp{path.suffix}")
        save_block_trace(trace, rival_tmp, key="k1")
        os.replace(rival_tmp, path)
        assert_same_block_trace(store.load_block_trace("k1"), trace)
        # stray tmp files (a writer that died mid-stage) are not entries
        (store.root / "blocks-dead.12345.tmp.npz").write_bytes(b"partial")
        assert store.entries()["blocks"] == 1

    def test_write_failure_degrades_to_cache_off_with_one_warning(
        self, store, traced, monkeypatch
    ):
        import repro.engine.store as store_module

        monkeypatch.setattr(store_module, "_warned_write_failure", False)
        trace, events = traced
        store.save_block_trace("k1", trace)  # healthy write first
        rule = ChaosRule("store.save", "enospc", times=-1)
        with chaos.active(ChaosConfig(seed=0, rules=(rule,))):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                assert store.save_events("k2", events) is None
                assert store.save_events("k3", events) is None
        relevant = [w for w in caught if "trace cache write" in str(w.message)]
        assert len(relevant) == 1
        assert store.writes_disabled
        assert store.stats()["writes_disabled"] is True
        # reads keep serving after writes degrade
        assert_same_block_trace(store.load_block_trace("k1"), trace)
        # and no torn tmp file is left behind
        assert not list(store.root.glob("*.tmp.*"))

    def test_degraded_store_still_supports_a_full_run(self, tmp_path):
        """End to end: a cache on a 'full disk' never fails the experiment."""
        rule = ChaosRule("store.save", "enospc", times=-1)
        with chaos.active(ChaosConfig(seed=0, rules=(rule,))):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                runner = make_runner(tmp_path / "cache")
                report = runner.report("crc", "baseline")
        assert report == make_runner("off").report("crc", "baseline")
        assert runner.store.writes_disabled

    def test_undeletable_corrupt_entry_is_quarantined(self, store, traced):
        trace, _ = traced
        path = store.save_block_trace("k1", trace)
        path.write_bytes(b"not an npz archive")
        rule = ChaosRule("store.discard", "eacces", match=path.name, times=-1)
        with chaos.active(ChaosConfig(seed=0, rules=(rule,))):
            assert store.load_block_trace("k1") is None
        # moved aside, never resolvable again, invisible to management
        assert not path.exists()
        assert (store.root / "quarantine" / path.name).exists()
        assert store.entries()["blocks"] == 0
        assert store.clear() == 0
        assert store.load_block_trace("k1") is None  # plain miss now

    def test_transient_read_fault_keeps_the_entry(self, store, traced):
        """An ``OSError`` during load is an environment hiccup, not a bad
        entry: miss this time, but the entry survives for the next reader."""
        trace, _ = traced
        path = store.save_block_trace("k1", trace)
        rule = ChaosRule("store.load", "eacces", match="blocks:k1", times=1)
        with chaos.active(ChaosConfig(seed=0, rules=(rule,))):
            assert store.load_block_trace("k1") is None
        assert path.exists()
        assert_same_block_trace(store.load_block_trace("k1"), trace)


class TestDigests:
    def test_program_digest_distinguishes_programs(self, toy_program, crc_workload):
        assert program_digest(toy_program) == program_digest(toy_program)
        assert program_digest(toy_program) != program_digest(crc_workload.program)

    def test_layout_digest_distinguishes_layouts(self, fast_runner):
        original = fast_runner.layout("crc", LayoutPolicy.ORIGINAL)
        placed = fast_runner.layout("crc", LayoutPolicy.WAY_PLACEMENT)
        assert layout_digest(original) == layout_digest(original)
        assert layout_digest(original) != layout_digest(placed)


def make_runner(cache_dir, **kwargs):
    kwargs.setdefault("eval_instructions", 8_000)
    kwargs.setdefault("profile_instructions", 4_000)
    return ExperimentRunner(cache_dir=cache_dir, **kwargs)


class TestRunnerCache:
    def test_warm_cache_skips_all_cfg_walks(self, tmp_path, monkeypatch):
        cache = tmp_path / "cache"
        cold = make_runner(cache)
        cold_report = cold.report("crc", "way-placement", wpa_size=8 * KB)
        assert cold.store.misses > 0

        # A fresh process is simulated by a fresh runner (empty in-process
        # memos).  With the cache warm it must never walk a CFG again.
        def refuse(*args, **kwargs):
            raise AssertionError("CfgWalker ran despite a warm cache")

        monkeypatch.setattr(
            "repro.experiments.runner.CfgWalker",
            type("NoWalker", (), {"__init__": refuse}),
        )
        warm = make_runner(cache)
        warm_report = warm.report("crc", "way-placement", wpa_size=8 * KB)
        assert warm.store.hits > 0 and warm.store.misses == 0
        assert warm_report.counters == cold_report.counters

    def test_disabled_cache_still_works(self, tmp_path):
        runner = make_runner("off")
        assert runner.store is None
        report = runner.report("crc", "baseline")
        assert report.counters.fetches > 0

    def test_cached_and_uncached_runs_agree(self, tmp_path):
        cached = make_runner(tmp_path / "cache")
        uncached = make_runner("off")
        for scheme, wpa in (("baseline", 0), ("way-placement", 8 * KB)):
            a = cached.report("crc", scheme, wpa_size=wpa)
            b = uncached.report("crc", scheme, wpa_size=wpa)
            assert a.counters == b.counters


class TestRunGrid:
    CELLS = [
        GridCell("crc", "baseline"),
        GridCell("crc", "way-placement", wpa_size=8 * KB),
        GridCell("sha", "baseline"),
        GridCell("sha", "way-placement", wpa_size=8 * KB),
    ]

    def test_serial_grid_matches_direct_reports(self, tmp_path):
        runner = make_runner(tmp_path / "cache")
        reports = runner.run_grid(self.CELLS, jobs=1)
        for cell, report in zip(self.CELLS, reports):
            assert report is runner.report(**cell.report_kwargs())

    def test_parallel_grid_matches_serial(self, tmp_path):
        serial = make_runner(tmp_path / "a")
        parallel = make_runner(tmp_path / "b")
        want = serial.run_grid(self.CELLS, jobs=1)
        got = parallel.run_grid(self.CELLS, jobs=2)
        for a, b in zip(want, got):
            assert a.counters == b.counters
            assert a.cycles == b.cycles
        # the parent memoised every cell: further reports are recalls
        for cell in self.CELLS:
            assert parallel.has_report(cell)

    def test_grid_reuses_memoised_cells(self, tmp_path):
        runner = make_runner(tmp_path / "cache")
        first = runner.report("crc", "baseline")
        reports = runner.run_grid([GridCell("crc", "baseline")], jobs=4)
        assert reports[0] is first
