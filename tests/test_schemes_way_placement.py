"""Unit tests for the way-placement scheme — the paper's core mechanism."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.errors import SchemeError
from repro.schemes.way_placement import WayPlacementScheme
from tests.scheme_helpers import TINY_GEOMETRY, events_from


def make_scheme(wpa_size, page_size=16, **kwargs):
    return WayPlacementScheme(
        TINY_GEOMETRY, wpa_size=wpa_size, page_size=page_size, **kwargs
    )


class TestWayPlacementAccess:
    def test_single_way_check_inside_wpa(self):
        scheme = make_scheme(wpa_size=256, hint_initial=True)
        counters = scheme.run(events_from([0x00, 0x10, 0x20]))
        assert counters.single_way_searches == 3
        assert counters.full_searches == 0
        assert counters.ways_precharged == 3

    def test_figure1_example_three_comparisons(self):
        geometry = CacheGeometry(32, 4, 4)  # the paper's 2-set, 4-way example
        scheme = WayPlacementScheme(
            geometry, wpa_size=48, page_size=16, hint_initial=True
        )
        counters = scheme.run(events_from([(0x04, 1), (0x08, 1), (0x20, 1)], 4))
        assert counters.ways_precharged == 3  # versus the baseline's 12

    def test_wpa_fill_goes_to_mandated_way(self):
        scheme = make_scheme(wpa_size=256, hint_initial=True)
        address = 0x50  # set 1, tag 1 -> mandated way = tag & 3 = 1
        scheme.run(events_from([address]))
        set_index = TINY_GEOMETRY.set_index(address)
        way = TINY_GEOMETRY.mandated_way(address)
        assert scheme.cache.tag_at(set_index, way) == TINY_GEOMETRY.tag(address)
        assert scheme.counters.wp_fills == 1

    def test_wpa_line_found_after_refill(self):
        scheme = make_scheme(wpa_size=256, hint_initial=True)
        counters = scheme.run(events_from([0x00, 0x10, 0x00]))
        assert counters.misses == 2
        assert counters.hits == 1

    def test_invariant_wpa_lines_only_in_mandated_way(self):
        # Drive a long mixed stream and check the paper's key invariant.
        scheme = make_scheme(wpa_size=128)
        stream = [(a * 16, 2) for a in (0, 1, 2, 9, 0, 17, 3, 9, 0, 25, 1)]
        scheme.run(events_from(stream))
        geometry = scheme.geometry
        for set_index, way, tag in scheme.cache.resident_lines():
            address = geometry.reconstruct_address(tag, set_index)
            if address < 128:  # a way-placement-area line
                assert way == geometry.mandated_way(address)

    def test_non_wpa_access_full_search(self):
        scheme = make_scheme(wpa_size=16)  # only the first line is in the WPA
        counters = scheme.run(events_from([0x100, 0x110]))
        assert counters.full_searches == 2
        assert counters.single_way_searches == 0


class TestWayHintInteraction:
    def test_false_negative_loses_saving_only(self):
        # hint starts False; first WPA access performs a full search but
        # still fills the mandated way
        scheme = make_scheme(wpa_size=256, hint_initial=False)
        counters = scheme.run(events_from([0x00, 0x10]))
        assert counters.hint_false_negatives == 1
        assert counters.full_searches == 1  # the mispredicted first access
        assert counters.single_way_searches == 1  # the second, predicted right
        assert counters.wp_fills == 2  # both fills mandated
        assert counters.second_accesses == 0

    def test_false_positive_costs_second_access_and_cycle(self):
        scheme = make_scheme(wpa_size=16, hint_initial=True)
        counters = scheme.run(events_from([0x100]))
        assert counters.hint_false_positives == 1
        assert counters.second_accesses == 1
        assert counters.extra_access_cycles == 1
        # energy: 1 wasted single-way probe + full search
        assert counters.single_way_searches == 1
        assert counters.full_searches == 1
        assert counters.ways_precharged == 1 + 4

    def test_hint_tracks_stream(self):
        scheme = make_scheme(wpa_size=16, hint_initial=False)
        # stream: non-WPA, WPA, non-WPA, non-WPA
        counters = scheme.run(events_from([0x100, 0x00, 0x40, 0x200]))
        # transitions into/out of the WPA each cost one misprediction
        assert counters.hint_false_negatives == 1
        assert counters.hint_false_positives == 1


class TestSameLineSkip:
    def test_same_line_fetches_skip_tags(self):
        scheme = make_scheme(wpa_size=256, hint_initial=True)
        counters = scheme.run(events_from([(0x00, 8)]))
        assert counters.fetches == 8
        assert counters.same_line_fetches == 7
        assert counters.ways_precharged == 1

    def test_skip_disabled(self):
        scheme = make_scheme(wpa_size=256, hint_initial=True, same_line_skip=False)
        counters = scheme.run(events_from([(0x00, 8)]))
        assert counters.same_line_fetches == 0
        assert counters.ways_precharged >= 8


class TestConfiguration:
    def test_negative_wpa_rejected(self):
        with pytest.raises(SchemeError):
            make_scheme(wpa_size=-1)

    def test_nonzero_base_rejected(self):
        with pytest.raises(SchemeError, match="start at the beginning"):
            WayPlacementScheme(TINY_GEOMETRY, wpa_size=64, wpa_base=64, page_size=16)

    def test_zero_wpa_behaves_like_baseline_searches(self):
        scheme = make_scheme(wpa_size=0)
        counters = scheme.run(events_from([0x00, 0x10, 0x00]))
        assert counters.single_way_searches == 0
        assert counters.full_searches == 3
        assert counters.wp_fills == 0


class TestWpaLargerThanCache:
    def test_wpa_beyond_cache_size_still_correct(self):
        # Two WPA lines one cache-size apart collide on the same (set, way):
        # the second fill must evict the first, and re-access must miss.
        scheme = WayPlacementScheme(
            TINY_GEOMETRY, wpa_size=1024, page_size=16, hint_initial=True
        )
        a, b = 0x00, 0x100  # 256 bytes apart == cache size
        counters = scheme.run(events_from([a, b, a]))
        assert counters.misses == 3
        assert counters.wp_fills == 3
        assert counters.evictions == 2
