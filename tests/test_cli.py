"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

FAST = ["--eval-instructions", "30000", "--profile-instructions", "12000"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_simulate_requires_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate"])

    def test_simulate_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--benchmark", "nope"])


class TestCommands:
    def test_list_benchmarks(self, capsys):
        assert main(["list-benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "crc" in out and "tiff2rgba" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "32KB, 32-Way, 32B Block" in out

    def test_simulate_way_placement(self, capsys):
        assert main(["simulate", "--benchmark", "crc", *FAST]) == 0
        out = capsys.readouterr().out
        assert "normalised I-cache energy" in out
        assert "single-way checks" in out

    def test_simulate_other_scheme_and_geometry(self, capsys):
        code = main(
            [
                "simulate",
                "--benchmark",
                "sha",
                "--scheme",
                "way-memoization",
                "--cache-kb",
                "16",
                "--ways",
                "8",
                *FAST,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "16KB, 8-way" in out

    def test_simulate_layout_override(self, capsys):
        code = main(
            [
                "simulate",
                "--benchmark",
                "crc",
                "--layout",
                "original",
                *FAST,
            ]
        )
        assert code == 0
        assert "original order" in capsys.readouterr().out

    def test_inspect(self, capsys):
        assert main(["inspect", "--benchmark", "crc", *FAST]) == 0
        out = capsys.readouterr().out
        assert "heaviest chains" in out

    def test_choose_wpa(self, capsys):
        assert main(["choose-wpa", "--benchmark", "crc", *FAST]) == 0
        out = capsys.readouterr().out
        assert "chosen WPA size" in out
        assert "candidate ranking" in out

    def test_figure4_subset(self, capsys):
        code = main(["figure4", "--benchmarks", "crc", "sha", *FAST])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 4(a)" in out and "average" in out

    def test_figure_unknown_benchmark_fails_cleanly(self, capsys):
        code = main(["figure4", "--benchmarks", "nope", *FAST])
        assert code == 1
        assert "unknown benchmarks" in capsys.readouterr().err

    def test_figure5_subset(self, capsys):
        code = main(["figure5", "--benchmarks", "crc", *FAST])
        assert code == 0
        assert "Figure 5(a)" in capsys.readouterr().out


class TestReportAndExport:
    def test_export_figure4_csv(self, capsys):
        code = main(
            ["export", "--figure", "4", "--benchmarks", "crc", *FAST]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "benchmark,scheme" in out or "figure,benchmark" in out

    def test_export_json_to_file(self, tmp_path, capsys):
        target = tmp_path / "fig5.json"
        code = main(
            [
                "export",
                "--figure",
                "5",
                "--format",
                "json",
                "--output",
                str(target),
                "--benchmarks",
                "crc",
                *FAST,
            ]
        )
        assert code == 0
        assert target.exists()
        import json

        assert isinstance(json.loads(target.read_text()), list)

    def test_report_to_file(self, tmp_path):
        target = tmp_path / "report.md"
        code = main(
            ["report", "--output", str(target), "--benchmarks", "crc", "sha", *FAST]
        )
        assert code == 0
        text = target.read_text()
        assert "Paper checklist" in text
