"""Unit tests for the experiment runner's caching pipeline."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.runner import ExperimentRunner
from repro.layout.placement import LayoutPolicy
from repro.sim.machine import XSCALE_BASELINE


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(eval_instructions=40_000, profile_instructions=15_000)


class TestCaching:
    def test_workload_cached(self, runner):
        assert runner.workload("crc") is runner.workload("crc")

    def test_profile_cached(self, runner):
        assert runner.profile("crc") is runner.profile("crc")

    def test_block_trace_cached(self, runner):
        assert runner.block_trace("crc") is runner.block_trace("crc")

    def test_events_keyed_by_layout(self, runner):
        original = runner.events("crc", LayoutPolicy.ORIGINAL, 32)
        placed = runner.events("crc", LayoutPolicy.WAY_PLACEMENT, 32)
        assert original is not placed
        assert original.num_fetches == placed.num_fetches

    def test_report_cached_by_configuration(self, runner):
        a = runner.report("crc", "baseline")
        b = runner.report("crc", "baseline")
        assert a is b
        c = runner.report("crc", "baseline", XSCALE_BASELINE.with_icache(16 * 1024, 8))
        assert c is not a


class TestDefaults:
    def test_way_placement_uses_chained_layout(self, runner):
        report = runner.report("crc", "way-placement", wpa_size=32 * 1024)
        assert "way-placement" in report.layout_description

    def test_baseline_uses_original_layout(self, runner):
        report = runner.report("crc", "baseline")
        assert "original" in report.layout_description

    def test_layout_override(self, runner):
        report = runner.report(
            "crc",
            "way-placement",
            wpa_size=32 * 1024,
            layout_policy=LayoutPolicy.ORIGINAL,
        )
        assert "original" in report.layout_description

    def test_profile_uses_small_input(self, runner):
        assert runner.profile("crc").input_name == "small"

    def test_mem_fraction_within_range(self, runner):
        fraction = runner.mem_fraction("crc")
        assert 0.0 <= fraction <= 0.2  # crc is register resident


class TestNormalised:
    def test_baseline_normalises_to_one(self, runner):
        result = runner.normalised("crc", "baseline")
        assert result.icache_energy == pytest.approx(1.0)
        assert result.ed_product == pytest.approx(1.0)

    def test_way_placement_beats_baseline(self, runner):
        result = runner.normalised("crc", "way-placement", wpa_size=32 * 1024)
        assert result.icache_energy < 0.65
        assert result.ed_product < 1.0

    def test_environment_override_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_INSTRUCTIONS", "not-a-number")
        with pytest.raises(ExperimentError):
            ExperimentRunner()

    def test_environment_override_used(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_INSTRUCTIONS", "12345")
        assert ExperimentRunner().eval_instructions == 12345
