"""Unit and property tests for branch behaviour models."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TraceError
from repro.trace.branch_model import (
    BernoulliBranch,
    BranchModelMap,
    LoopBranch,
    TakenBranch,
)


class TestBernoulli:
    def test_extremes(self):
        rng = random.Random(0)
        assert all(BernoulliBranch(1.0).take(rng) for _ in range(20))
        assert not any(BernoulliBranch(0.0).take(rng) for _ in range(20))

    def test_probability_validated(self):
        with pytest.raises(TraceError):
            BernoulliBranch(1.5)
        with pytest.raises(TraceError):
            BernoulliBranch(-0.1)

    @given(st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=20)
    def test_empirical_rate(self, p):
        rng = random.Random(42)
        model = BernoulliBranch(p)
        taken = sum(model.take(rng) for _ in range(4000))
        assert taken / 4000 == pytest.approx(p, abs=0.05)

    def test_clone_independent(self):
        model = BernoulliBranch(0.3)
        clone = model.clone()
        assert clone is not model and clone.p_taken == 0.3


class TestTaken:
    def test_always_taken(self):
        rng = random.Random(0)
        model = TakenBranch()
        assert all(model.take(rng) for _ in range(10))


class TestLoop:
    def test_fixed_trip_count_pattern(self):
        rng = random.Random(0)
        model = LoopBranch(4, 4)
        # 4 trips: taken, taken, taken, not-taken — repeated.
        pattern = [model.take(rng) for _ in range(8)]
        assert pattern == [True, True, True, False] * 2

    def test_single_trip_never_taken(self):
        rng = random.Random(0)
        model = LoopBranch(1, 1)
        assert [model.take(rng) for _ in range(5)] == [False] * 5

    def test_range_validated(self):
        with pytest.raises(TraceError):
            LoopBranch(0, 4)
        with pytest.raises(TraceError):
            LoopBranch(5, 4)

    @given(st.integers(2, 30), st.integers(0, 20))
    @settings(max_examples=30)
    def test_mean_trips_in_range(self, lo, spread):
        hi = lo + spread
        rng = random.Random(7)
        model = LoopBranch(lo, hi)
        exits = 0
        takes = 0
        for _ in range(5000):
            takes += 1
            if not model.take(rng):
                exits += 1
        if exits >= 10:
            mean_trips = takes / exits
            assert lo - 1 <= mean_trips <= hi + 1

    def test_clone_resets_state(self):
        rng = random.Random(0)
        model = LoopBranch(3, 3)
        model.take(rng)  # mid-loop
        clone = model.clone()
        # Fresh clone starts a new trip count draw: 3 trips = T T F.
        assert [clone.take(rng) for _ in range(3)] == [True, True, False]


class TestBranchModelMap:
    def test_lookup_and_default(self):
        model_map = BranchModelMap({1: TakenBranch()}, default=BernoulliBranch(0.0))
        rng = random.Random(0)
        assert model_map.model_for(1).take(rng)
        assert not model_map.model_for(99).take(rng)

    def test_fresh_deep_copies(self):
        loop = LoopBranch(5, 5)
        model_map = BranchModelMap({1: loop})
        rng = random.Random(0)
        fresh = model_map.fresh()
        fresh.model_for(1).take(rng)
        assert loop._remaining == 0  # original untouched

    def test_len(self):
        assert len(BranchModelMap({1: TakenBranch(), 2: TakenBranch()})) == 2
