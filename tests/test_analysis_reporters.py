"""Reporter output must be deterministic regardless of input order."""

from __future__ import annotations

import json
import random

from repro.analysis import Diagnostic, Location, Severity, render_json, render_text, summarize


def _diagnostics():
    diagnostics = []
    for rule_id in ("C003", "L001", "P004"):
        for detail in ("beta", "alpha"):
            diagnostics.append(
                Diagnostic(
                    rule_id=rule_id,
                    rule_name="rule-" + rule_id.lower(),
                    severity=Severity.ERROR if rule_id.startswith("P") else Severity.WARNING,
                    location=Location("program", "bench", detail),
                    message=f"{rule_id} at {detail}",
                    suggestion="fix it" if rule_id == "P004" else None,
                )
            )
    return diagnostics


def test_render_text_sorted_and_summarised():
    text = render_text(_diagnostics())
    lines = text.splitlines()
    rule_ids = [line.split()[1] for line in lines if line.startswith("program:")]
    assert rule_ids == sorted(rule_ids)
    assert lines[-1] == "6 diagnostic(s): 2 error(s), 4 warning(s), 0 info"
    assert any(line.strip().startswith("hint:") for line in lines)


def test_render_text_empty():
    assert render_text([]) == "no problems found"


def test_render_json_is_stable_under_shuffling():
    diagnostics = _diagnostics()
    rng = random.Random(7)
    outputs = set()
    for _ in range(5):
        shuffled = list(diagnostics)
        rng.shuffle(shuffled)
        outputs.add(render_json(shuffled))
    assert len(outputs) == 1


def test_render_json_shape():
    payload = json.loads(render_json(_diagnostics()))
    assert set(payload) == {"diagnostics", "summary"}
    records = payload["diagnostics"]
    assert [r["rule"] for r in records] == sorted(r["rule"] for r in records)
    assert payload["summary"]["total"] == 6
    assert payload["summary"]["error"] == 2
    assert records[-1]["suggestion"] == "fix it"


def test_summarize_counts():
    summary = summarize(_diagnostics())
    assert summary == {"error": 2, "warning": 4, "info": 0, "total": 6}
