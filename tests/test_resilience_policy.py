"""Tests for the resilience policy layer: configs, retryability, reports."""

import pytest

from repro.errors import (
    ResilienceError,
    SanitizerError,
    SchemeError,
    TraceError,
    WorkloadError,
)
from repro.resilience.chaos import InjectedFault
from repro.resilience.policy import (
    DEFAULT_RESILIENCE,
    FailureReport,
    FallbackPolicy,
    ResilienceConfig,
    cause_chain,
    is_retryable,
    render_failures,
)


class TestRetryability:
    def test_static_config_errors_are_not_retryable(self):
        for error in (SchemeError("bad"), WorkloadError("bad")):
            assert not is_retryable(error)

    def test_sanitizer_errors_trigger_fallback_not_retry(self):
        assert not is_retryable(SanitizerError("invariant"))

    def test_environment_and_unknown_errors_are_retryable(self):
        for error in (
            OSError("disk"),
            InjectedFault("chaos"),
            TraceError("torn"),
            RuntimeError("bug"),
        ):
            assert is_retryable(error)


class TestCauseChain:
    def test_walks_explicit_causes(self):
        try:
            try:
                raise OSError("disk full")
            except OSError as inner:
                raise RuntimeError("save failed") from inner
        except RuntimeError as error:
            chain = cause_chain(error)
        assert chain == ("RuntimeError: save failed", "OSError: disk full")

    def test_limit_bounds_pathological_chains(self):
        error: BaseException = ValueError("0")
        for index in range(1, 20):
            new = ValueError(str(index))
            new.__cause__ = error
            error = new
        assert len(cause_chain(error, limit=8)) == 8


class TestResilienceConfig:
    def test_default_is_valid(self):
        assert DEFAULT_RESILIENCE.validate() is DEFAULT_RESILIENCE

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"retries": -1},
            {"backoff_s": -0.1},
            {"jitter": -1.0},
            {"timeout_s": -5.0},
        ],
    )
    def test_invalid_settings_raise(self, kwargs):
        with pytest.raises(ResilienceError):
            ResilienceConfig(**kwargs).validate()

    def test_backoff_is_exponential_and_deterministic(self):
        config = ResilienceConfig(backoff_s=0.1, jitter=0.5, seed=3)
        first = config.backoff_delay(0, "crc:baseline")
        second = config.backoff_delay(1, "crc:baseline")
        # exponential base, jitter bounded by [1, 1 + jitter)
        assert 0.1 <= first < 0.1 * 1.5
        assert 0.2 <= second < 0.2 * 1.5
        assert first == config.backoff_delay(0, "crc:baseline")

    def test_jitter_depends_on_seed_and_token(self):
        a = ResilienceConfig(backoff_s=0.1, seed=1).backoff_delay(0, "t")
        b = ResilienceConfig(backoff_s=0.1, seed=2).backoff_delay(0, "t")
        c = ResilienceConfig(backoff_s=0.1, seed=1).backoff_delay(0, "u")
        assert a != b and a != c

    def test_zero_backoff_means_no_sleep(self):
        config = ResilienceConfig(backoff_s=0.0)
        assert config.backoff_delay(5, "t") == 0.0

    def test_with_fallback_parses_cli_spellings(self):
        assert DEFAULT_RESILIENCE.with_fallback("none").fallback is FallbackPolicy.NONE
        assert (
            DEFAULT_RESILIENCE.with_fallback("reference").fallback
            is FallbackPolicy.REFERENCE
        )
        with pytest.raises(ResilienceError, match="unknown fallback policy"):
            DEFAULT_RESILIENCE.with_fallback("gpu")


class TestFailureReports:
    def test_describe_names_the_recovery(self):
        report = FailureReport(
            site="cell",
            benchmark="crc",
            cell="crc:baseline:wpa0",
            attempts=2,
            causes=("InjectedFault: chaos",),
            recovery="retry",
            recovered=True,
        )
        text = report.describe()
        assert "recovered via retry" in text
        assert "2 attempt(s)" in text
        assert "InjectedFault" in text

    def test_render_counts_recovered_and_fatal(self):
        ok = FailureReport("cell", "crc", "c", 2, recovery="retry", recovered=True)
        bad = FailureReport("worker", "sha", "s", 3)
        text = render_failures([ok, bad])
        assert "NOT recovered" in text
        assert "2 incident(s): 1 recovered, 1 fatal" in text
