"""End-to-end property tests over randomly generated programs.

A hypothesis strategy builds small but structurally diverse programs
(loops, diamonds, calls, cold paths) through the same ProgramBuilder API the
workload generator uses; every property then exercises the full pipeline:
validation, chaining, layout, tracing, fetch expansion, scheme replay, and
image emission.  These are the tests that catch cross-module disagreements
no unit test can see.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.binary import emit_image
from repro.isa.instructions import INSTRUCTION_SIZE
from repro.layout import build_chains, original_layout, way_placement_layout
from repro.profiling import profile_program
from repro.program import ProgramBuilder
from repro.schemes.baseline import BaselineScheme
from repro.schemes.way_placement import WayPlacementScheme
from repro.sim.machine import XSCALE_BASELINE
from repro.trace.branch_model import BernoulliBranch, BranchModelMap, LoopBranch
from repro.trace.executor import CfgWalker
from repro.trace.fetch import line_events_from_block_trace


@st.composite
def random_programs(draw):
    """A random multi-function program plus matching branch models."""
    seed = draw(st.integers(0, 2**32 - 1))
    rng = random.Random(seed)
    num_functions = draw(st.integers(1, 4))
    builder = ProgramBuilder(f"prop-{seed}")
    models = {}
    label_serial = [0]

    def fresh(stem):
        label_serial[0] += 1
        return f"{stem}{label_serial[0]}"

    names = [f"f{i}" for i in range(num_functions)]
    for index, name in enumerate(names):
        fb = builder.function(name, mem_density=rng.uniform(0.0, 0.5))
        fb.block(fresh("entry"), rng.randint(1, 6))
        for _ in range(rng.randint(0, 4)):
            kind = rng.choice(["plain", "loop", "diamond", "call"])
            if kind == "plain":
                fb.block(fresh("b"), rng.randint(1, 8))
            elif kind == "loop":
                head = fresh("head")
                latch = fresh("latch")
                fb.block(head, rng.randint(1, 5))
                fb.block(latch, rng.randint(1, 4), branch=head)
                models[(name, latch)] = LoopBranch(1, rng.randint(1, 9))
            elif kind == "diamond":
                cond = fresh("cond")
                els = fresh("else")
                join = fresh("join")
                fb.block(cond, rng.randint(1, 4), branch=els)
                fb.block(fresh("then"), rng.randint(1, 4))
                fb.block(fresh("tend"), rng.randint(1, 3), jump=join)
                fb.block(els, rng.randint(1, 4))
                fb.block(join, rng.randint(1, 3))
                models[(name, cond)] = BernoulliBranch(rng.random())
            else:  # call a later function, if any
                targets = names[index + 1 :]
                if targets:
                    fb.block(fresh("call"), rng.randint(1, 3), call=rng.choice(targets))
                else:
                    fb.block(fresh("b"), rng.randint(1, 4))
        fb.block(fresh("ret"), rng.randint(1, 3), ret=True)

    # main drives every function so nothing is unreachable
    main = builder.function("main")
    main.block("entry", 2)
    main.block("dh", 1)
    for i, name in enumerate(names):
        main.block(f"drive{i}", 1, call=name)
    main.block("latch", 1, branch="dh")
    main.block("fin", 1, ret=True)

    program = builder.build(entry="main")
    model_map = {
        program.uid_of_label(func, label): model
        for (func, label), model in models.items()
    }
    model_map[program.uid_of_label("main", "latch")] = LoopBranch(3, 8)
    return program, BranchModelMap(model_map), seed


SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@given(random_programs())
@SETTINGS
def test_chains_partition_blocks(data):
    program, _, _ = data
    chains = build_chains(program)
    uids = sorted(uid for chain in chains for uid in chain.uids)
    assert uids == sorted(b.uid for b in program.blocks())


@given(random_programs())
@SETTINGS
def test_trace_conserves_instructions(data):
    program, models, seed = data
    trace = CfgWalker(program, models, seed=seed).walk(2000)
    for layout in (original_layout(program),):
        events = line_events_from_block_trace(trace, program, layout, 32)
        assert events.num_fetches == trace.num_instructions


@given(random_programs())
@SETTINGS
def test_way_placement_layout_valid_and_hot_first(data):
    program, models, seed = data
    profile = profile_program(program, models, 1500, seed=seed)
    layout = way_placement_layout(program, profile.block_counts)
    assert layout.end_address == program.size_bytes
    # first block belongs to the heaviest chain
    chains = build_chains(program)
    weights = {
        b.uid: profile.count_of(b.uid) * b.num_instructions
        for b in program.blocks()
    }
    first_chain = next(c for c in chains if c.uids[0] == layout.block_order[0])
    assert all(
        c.weight(weights) <= first_chain.weight(weights) for c in chains
    )


@given(random_programs())
@SETTINGS
def test_schemes_agree_on_stream_shape(data):
    program, models, seed = data
    profile = profile_program(program, models, 1500, seed=seed)
    layout = way_placement_layout(program, profile.block_counts)
    trace = CfgWalker(program, models, seed=seed + 1).walk(2000)
    events = line_events_from_block_trace(trace, program, layout, 32)
    geometry = XSCALE_BASELINE.icache
    base = BaselineScheme(geometry).run(events)
    placed_scheme = WayPlacementScheme(geometry, wpa_size=32 * 1024)
    placed = placed_scheme.run(events)
    assert base.fetches == placed.fetches == events.num_fetches
    assert placed.ways_precharged <= base.ways_precharged
    # WPA invariant on arbitrary programs
    for set_index, way, tag in placed_scheme.cache.resident_lines()[:64]:
        address = geometry.reconstruct_address(tag, set_index)
        if address < 32 * 1024:
            assert way == geometry.mandated_way(address)


@given(random_programs())
@SETTINGS
def test_emitted_branches_land_on_layout_targets(data):
    program, models, seed = data
    profile = profile_program(program, models, 800, seed=seed)
    layout = way_placement_layout(program, profile.block_counts)
    image = emit_image(program, layout)
    from repro.binary import load_image
    from repro.isa.instructions import Opcode

    decoded = load_image(image.data, image.base_address)
    for block in program.blocks():
        terminator = block.terminator
        if terminator is None or terminator.opcode not in (Opcode.B, Opcode.BL):
            continue
        address = (
            layout.address_of(block.uid)
            + (block.num_instructions - 1) * INSTRUCTION_SIZE
        )
        word = decoded[(address - image.base_address) // 4]
        target = address + word.imm * INSTRUCTION_SIZE
        if terminator.opcode is Opcode.BL:
            expected = layout.address_of(program.functions[block.callee].entry.uid)
        else:
            expected = layout.address_of(
                program.block_by_label(block.function, block.taken_label).uid
            )
        assert target == expected
