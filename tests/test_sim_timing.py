"""Unit tests for the timing model."""

import pytest

from repro.cache.access import FetchCounters
from repro.sim.machine import XSCALE_BASELINE
from repro.sim.timing import cycles_for_run


class TestCycles:
    def test_base_cpi_one(self):
        counters = FetchCounters(fetches=1000)
        assert cycles_for_run(counters, XSCALE_BASELINE) == 1000

    def test_miss_penalty(self):
        counters = FetchCounters(fetches=1000, misses=10, hits=0, fills=10,
                                 line_events=10)
        assert cycles_for_run(counters, XSCALE_BASELINE) == 1000 + 10 * 50

    def test_tlb_penalty(self):
        counters = FetchCounters(fetches=100, itlb_misses=3, itlb_accesses=3)
        assert (
            cycles_for_run(counters, XSCALE_BASELINE)
            == 100 + 3 * XSCALE_BASELINE.itlb_miss_cycles
        )

    def test_hint_penalty(self):
        counters = FetchCounters(fetches=100, extra_access_cycles=7)
        assert cycles_for_run(counters, XSCALE_BASELINE) == 107

    def test_all_components_sum(self):
        counters = FetchCounters(
            fetches=1000,
            misses=2,
            hits=8,
            fills=2,
            line_events=10,
            itlb_misses=1,
            itlb_accesses=10,
            extra_access_cycles=3,
        )
        expected = 1000 + 2 * 50 + 1 * 20 + 3
        assert cycles_for_run(counters, XSCALE_BASELINE) == expected
