"""Read-only trace discipline: no engine tier mutates its input arrays.

Trace arrays arrive shared — mmap'd v2 store entries
(:mod:`repro.trace.io`), shared-memory plane segments
(:mod:`repro.engine.plane`) — so every engine tier must treat them as
immutable inputs.  Replaying on arrays with the ``writeable`` flag
dropped turns any accidental in-place mutation into a hard
``ValueError``; equality against the writable replay pins bit-identical
results on top.  All four tiers are covered: the reference schemes, the
vectorized per-cell kernels, the batched family kernel, and the
differential tier.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.engine.batch import BatchMember, batch_counters
from repro.engine.differential import differential_counters
from repro.engine.kernels import fast_counters
from repro.layout import original_layout
from repro.schemes.baseline import BaselineScheme
from repro.schemes.way_placement import WayPlacementScheme
from repro.trace.events import SEQUENTIAL_SLOT, LineEventTrace
from repro.trace.executor import BlockTrace, CfgWalker
from repro.trace.fetch import line_events_from_block_trace
from tests.scheme_helpers import TINY_GEOMETRY, events_from

#: Baseline and a WPA sweep together, exercising every family-tier path.
FAMILY = [
    BatchMember("baseline", {"page_size": 16}),
    BatchMember("way-placement", {"wpa_size": 0, "page_size": 16}),
    BatchMember("way-placement", {"wpa_size": 64, "page_size": 16}),
    BatchMember("way-placement", {"wpa_size": 256, "page_size": 16}),
]


def _frozen_array(array: np.ndarray) -> np.ndarray:
    copy = np.array(array, copy=True)
    copy.setflags(write=False)
    return copy


def frozen_events(events: LineEventTrace) -> LineEventTrace:
    return LineEventTrace(
        line_size=events.line_size,
        line_addrs=_frozen_array(events.line_addrs),
        counts=_frozen_array(events.counts),
        slots=_frozen_array(events.slots),
    )


@pytest.fixture(scope="module")
def events() -> LineEventTrace:
    """A seeded 600-event stream with mixed counts and slot hints."""
    rng = random.Random(7)
    specs = []
    for _ in range(600):
        line = rng.randrange(120)
        count = rng.randrange(1, 5)
        slot = rng.randrange(TINY_GEOMETRY.ways) if rng.random() < 0.3 else (
            SEQUENTIAL_SLOT
        )
        specs.append((line, count, slot))
    return events_from(specs)


def test_reference_schemes_accept_frozen_traces(events):
    frozen = frozen_events(events)
    for make_scheme in (
        lambda: BaselineScheme(TINY_GEOMETRY, page_size=16),
        lambda: WayPlacementScheme(TINY_GEOMETRY, wpa_size=64, page_size=16),
    ):
        assert make_scheme().run(frozen) == make_scheme().run(events)


def test_fast_kernels_accept_frozen_traces(events):
    frozen = frozen_events(events)
    for member in FAMILY:
        options = dict(member.options)
        want = fast_counters(member.scheme, events, TINY_GEOMETRY, **options)
        got = fast_counters(member.scheme, frozen, TINY_GEOMETRY, **options)
        assert got == want, f"frozen replay diverged for {member}"


def test_batch_tier_accepts_frozen_traces(events):
    frozen = frozen_events(events)
    assert batch_counters(frozen, TINY_GEOMETRY, FAMILY) == batch_counters(
        events, TINY_GEOMETRY, FAMILY
    )


def test_differential_tier_accepts_frozen_traces(events):
    frozen = frozen_events(events)
    assert differential_counters(frozen, TINY_GEOMETRY, FAMILY) == (
        differential_counters(events, TINY_GEOMETRY, FAMILY)
    )


def test_line_event_derivation_accepts_frozen_block_traces(
    toy_program, toy_models
):
    """The trace->events pipeline itself never writes into ``uids``."""
    trace = CfgWalker(toy_program, toy_models, seed=0).walk(800)
    frozen = BlockTrace(
        program_name=trace.program_name,
        uids=_frozen_array(trace.uids),
        num_instructions=trace.num_instructions,
        num_program_runs=trace.num_program_runs,
    )
    layout = original_layout(toy_program)
    want = line_events_from_block_trace(trace, toy_program, layout, 32)
    got = line_events_from_block_trace(frozen, toy_program, layout, 32)
    assert got.line_size == want.line_size
    assert np.array_equal(got.line_addrs, want.line_addrs)
    assert np.array_equal(got.counts, want.counts)
    assert np.array_equal(got.slots, want.slots)
