"""The bundled synthetic workloads must be lint-clean end to end.

Every benchmark is analysed with the full rule set over its program,
its way-placement layout, a small profile, and the XScale baseline
geometry with a fitted WPA (see the ``lint_all_workloads`` fixture).
A diagnostic here means either a workload generator bug or a rule
that fires on legitimate artifacts — both are worth failing the build.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_text
from repro.workloads import benchmark_names


@pytest.mark.parametrize("benchmark_name", benchmark_names())
def test_workload_is_lint_clean(benchmark_name, lint_all_workloads):
    diagnostics = lint_all_workloads[benchmark_name]
    assert diagnostics == [], render_text(diagnostics)


def test_all_workloads_were_analysed(lint_all_workloads):
    assert set(lint_all_workloads) == set(benchmark_names())
