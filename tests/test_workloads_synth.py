"""Unit tests for the synthetic workload generator."""

import pytest

from repro.errors import WorkloadError
from repro.layout import build_chains
from repro.program.basic_block import BlockKind
from repro.workloads.synth import BranchRole, SynthSpec, generate_workload


SMALL_SPEC = SynthSpec(name="unit", code_kb=6.0, num_functions=5, kernel_functions=2)


class TestSpecValidation:
    def test_defaults_valid(self):
        SynthSpec(name="ok")

    def test_bad_kernel_count(self):
        with pytest.raises(WorkloadError):
            SynthSpec(name="x", num_functions=3, kernel_functions=4)

    def test_bad_block_size(self):
        with pytest.raises(WorkloadError):
            SynthSpec(name="x", block_size=(5, 2))

    def test_bad_trips(self):
        with pytest.raises(WorkloadError):
            SynthSpec(name="x", kernel_trips=(0, 5))

    def test_bad_mem_density(self):
        with pytest.raises(WorkloadError):
            SynthSpec(name="x", mem_density=2.0)


class TestGeneratedStructure:
    def test_deterministic(self):
        a = generate_workload(SMALL_SPEC)
        b = generate_workload(SMALL_SPEC)
        assert a.program.num_blocks == b.program.num_blocks
        assert [blk.label for blk in a.program.blocks()] == [
            blk.label for blk in b.program.blocks()
        ]

    def test_salt_changes_program(self):
        a = generate_workload(SMALL_SPEC)
        b = generate_workload(SMALL_SPEC, seed_salt="other")
        assert [blk.label for blk in a.program.blocks()] != [
            blk.label for blk in b.program.blocks()
        ] or a.program.size_bytes != b.program.size_bytes

    def test_code_size_near_target(self):
        workload = generate_workload(SynthSpec(name="sz", code_kb=24.0))
        size_kb = workload.program.size_bytes / 1024
        assert 12.0 <= size_kb <= 60.0  # loose: generator overshoots a bit

    def test_program_valid_and_chainable(self):
        workload = generate_workload(SMALL_SPEC)
        chains = build_chains(workload.program)  # raises if fall edges broken
        covered = sum(len(c) for c in chains)
        assert covered == workload.program.num_blocks

    def test_all_functions_reachable(self):
        workload = generate_workload(SMALL_SPEC)
        program = workload.program
        reachable = set(program.cfg.reachable_from(program.entry_block.uid))
        for function in program.functions.values():
            assert function.entry.uid in reachable

    def test_call_graph_is_acyclic(self):
        workload = generate_workload(SMALL_SPEC)
        order = {name: i for i, name in enumerate(workload.program.functions)}
        for block in workload.program.blocks():
            if block.kind is BlockKind.CALL and block.function != "main":
                assert order[block.callee] > order[block.function]


class TestRoles:
    def test_every_condjump_has_a_role(self):
        workload = generate_workload(SMALL_SPEC)
        condjumps = {
            b.uid
            for b in workload.program.blocks()
            if b.kind is BlockKind.CONDJUMP
        }
        assert condjumps == set(workload.roles)

    def test_role_kinds(self):
        workload = generate_workload(SMALL_SPEC)
        kinds = {role.kind for role in workload.roles.values()}
        assert kinds <= {"loop", "cond"}
        assert "loop" in kinds  # the driver latch at minimum

    def test_kernel_loops_marked(self):
        workload = generate_workload(SMALL_SPEC)
        kernel_loops = [
            r for r in workload.roles.values() if r.kind == "loop" and r.kernel
        ]
        assert kernel_loops, "kernel functions must contain marked hot loops"

    def test_cold_guards_marked(self):
        spec = SynthSpec(name="coldy", code_kb=12.0, cold_prob=0.5)
        workload = generate_workload(spec)
        cold = [r for r in workload.roles.values() if r.cold_guard]
        assert cold
        assert all(r.taken_prob <= 0.2 for r in cold)
