"""Unit tests for ASCII table rendering."""

import pytest

from repro.experiments.formatting import format_pct, format_ratio, render_table


class TestFormatters:
    def test_pct(self):
        assert format_pct(0.523).strip() == "52.3"

    def test_ratio(self):
        assert format_ratio(0.8).strip() == "0.80"


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(
            "Title", ["name", "value"], [["a", "1"], ["longer", "22"]]
        )
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "name" in text and "longer" in text
        # all data lines share the same width
        widths = {len(line) for line in lines[2:-1]}
        assert len(widths) == 1

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table("t", ["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        text = render_table("t", ["a"], [])
        assert "a" in text
