"""One failing fixture per analysis rule: every rule id must fire.

``TRIGGERS`` maps each registered rule id to a builder returning a minimal
context that violates exactly that rule's invariant; the completeness test
pins the mapping to the registry so adding a rule without a trigger test
fails loudly.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    Analyzer,
    AnalysisContext,
    DEFAULT_REGISTRY,
    GeometrySpec,
    LayoutView,
    ProgramView,
)
from repro.analysis.context import _energy_mapping
from repro.engine.grid import GridCell
from repro.isa.instructions import Condition, Instruction, Opcode
from repro.isa.registers import Register
from repro.layout.layouts import Layout
from repro.program import ProgramBuilder
from repro.program.basic_block import BasicBlock, BlockKind
from repro.program.function import Function

ALU = Instruction(Opcode.ADD, rd=Register.R1, rn=Register.R2, rm=Register.R3)
RET = Instruction(Opcode.RET)


def _block(uid, label, function, instructions, kind, **kwargs):
    return BasicBlock(
        uid=uid,
        label=label,
        function=function,
        instructions=tuple(instructions),
        kind=kind,
        **kwargs,
    )


def _view(*functions, entry=None):
    return AnalysisContext(
        subject="t", program=ProgramView("t", list(functions), entry=entry)
    )


# ---------------------------------------------------------------------------
# Program rules
# ---------------------------------------------------------------------------
def _trigger_p001():
    # A RETURN-kind block with no instructions at all.
    block = _block(0, "a", "main", (), BlockKind.RETURN)
    return _view(Function("main", (block,)))


def _trigger_p002():
    # Claims to jump but ends in an ALU instruction.
    block = _block(0, "a", "main", (ALU,), BlockKind.JUMP, taken_label="a")
    return _view(Function("main", (block,)))


def _trigger_p003():
    # A branch buried before the end of the block.
    inner = Instruction(Opcode.B, target="a")
    block = _block(0, "a", "main", (inner, ALU, RET), BlockKind.RETURN)
    return _view(Function("main", (block,)))


def _trigger_p004():
    # Falls through to a label nobody defines.
    block = _block(0, "a", "main", (ALU,), BlockKind.FALLTHROUGH, fall_label="ghost")
    done = _block(1, "b", "main", (RET,), BlockKind.RETURN)
    return _view(Function("main", (block, done)))


def _trigger_p005():
    # Two blocks claim 'join' as their fall-through successor.
    a = _block(0, "a", "main", (ALU,), BlockKind.FALLTHROUGH, fall_label="join")
    b = _block(1, "b", "main", (ALU,), BlockKind.FALLTHROUGH, fall_label="join")
    join = _block(2, "join", "main", (RET,), BlockKind.RETURN)
    return _view(Function("main", (a, b, join)))


def _trigger_p006():
    call = Instruction(Opcode.BL, target="ghost")
    a = _block(0, "a", "main", (call,), BlockKind.CALL, fall_label="b", callee="ghost")
    b = _block(1, "b", "main", (RET,), BlockKind.RETURN)
    return _view(Function("main", (a, b)))


def _trigger_p007():
    # Loops forever: no return, no unconditional jump.
    branch = Instruction(Opcode.B, condition=Condition.NE, target="a")
    a = _block(
        0, "a", "main", (ALU, branch), BlockKind.CONDJUMP,
        taken_label="a", fall_label="a",
    )
    return _view(Function("main", (a,)))


def _trigger_p008():
    main = Function("main", (_block(0, "a", "main", (RET,), BlockKind.RETURN),))
    dead = Function("dead", (_block(1, "d", "dead", (RET,), BlockKind.RETURN),))
    return _view(main, dead, entry="main")


# ---------------------------------------------------------------------------
# Layout / WPA rules
# ---------------------------------------------------------------------------
def _trigger_l001():
    layout = LayoutView("p", {0: 0, 1: 8}, {0: 16, 1: 8})
    return AnalysisContext(subject="p", layout=layout)


def _trigger_l002():
    layout = LayoutView("p", {0: 6}, {0: 8})
    return AnalysisContext(subject="p", layout=layout)


def _hot_cold_program():
    """cold entry chain first, hot loop chain second (separate chains)."""
    builder = ProgramBuilder("hotcold")
    main = builder.function("main")
    main.block("cold", 2, jump="hot")
    main.block("filler", 300, ret=True)  # dead weight between the chains
    main.block("hot", 8, ret=True)
    return builder.build(entry="main")


def _trigger_l003():
    program = _hot_cold_program()
    layout = Layout.from_order(
        program, [block.uid for block in program.blocks()], description="original"
    )
    counts = {program.uid_of_label("main", "hot"): 1000}
    return AnalysisContext(
        subject="hotcold",
        program=ProgramView.from_program(program),
        layout=LayoutView.from_layout(layout),
        block_counts=counts,
    )


def _trigger_l004():
    return AnalysisContext(subject="p", wpa_size=1536, page_size=1024)


def _trigger_l005():
    # 1KB cache: lines at 0x0 and 0x400 share a mandated (set, way).
    geometry = GeometrySpec(size_bytes=1024, ways=2, line_size=32)
    layout = LayoutView("p", {0: 0, 1: 1024}, {0: 32, 1: 32})
    return AnalysisContext(
        subject="p", layout=layout, geometry=geometry,
        wpa_size=2048, page_size=1024,
    )


def _displaced_context():
    program = _hot_cold_program()
    layout = Layout.from_order(
        program, [block.uid for block in program.blocks()], description="original"
    )
    counts = {
        program.uid_of_label("main", "cold"): 1,
        program.uid_of_label("main", "hot"): 1000,
    }
    # 'cold'+'filler' fill the first KB; 'hot' lands beyond the 1KB WPA.
    return AnalysisContext(
        subject="hotcold",
        program=ProgramView.from_program(program),
        layout=LayoutView.from_layout(layout),
        block_counts=counts,
        wpa_size=1024,
        page_size=1024,
    )


def _trigger_l006():
    return _displaced_context()


def _trigger_l007():
    return _displaced_context()


# ---------------------------------------------------------------------------
# Config rules
# ---------------------------------------------------------------------------
def _trigger_c001():
    geometry = GeometrySpec(size_bytes=32 * 1024, ways=32, line_size=32)
    return AnalysisContext(
        subject="c", geometry=geometry,
        energy=_energy_mapping({"way_mux_pj": 1e6}),
    )


def _trigger_c002():
    return AnalysisContext(subject="c", energy=_energy_mapping({"l0_read_pj": 500.0}))


def _trigger_c003():
    return AnalysisContext(subject="c", geometry=GeometrySpec(3000, 3, 24))


def _trigger_c004():
    cells = [GridCell("crc", "baseline"), GridCell("crc", "baseline")]
    return AnalysisContext(subject="c", grid_cells=tuple(cells))


def _trigger_c005():
    return AnalysisContext(
        subject="c", resilience={"retries": 3, "timeout_s": 0}
    )


# ---------------------------------------------------------------------------
# Abstract-interpretation rules
# ---------------------------------------------------------------------------
def _absint_context(functions, addresses, sizes, wpa_size):
    # 1KB 2-way cache, 32B lines: 16 sets, mandated way = tag & 1, so
    # addresses 1024 apart share both their set and their mandated way.
    return AnalysisContext(
        subject="p",
        program=ProgramView("p", list(functions), entry="main"),
        layout=LayoutView("p", addresses, sizes),
        geometry=GeometrySpec(size_bytes=1024, ways=2, line_size=32),
        wpa_size=wpa_size,
        page_size=1024,
    )


def _thrash_context():
    """An a<->b loop over WPA lines 0x0/0x400: same set, same mandated way.

    Every entry into ``a`` comes through ``b``'s forced fill (and vice
    versa), so the fixpoint proves both lines miss on every fetch.
    """
    jump = Instruction(Opcode.B, target="b")
    back = Instruction(Opcode.B, condition=Condition.NE, target="a")
    a = _block(0, "a", "main", (ALU, jump), BlockKind.JUMP, taken_label="b")
    b = _block(
        1, "b", "main", (ALU, back), BlockKind.CONDJUMP,
        taken_label="a", fall_label="exit",
    )
    exit_ = _block(2, "exit", "main", (RET,), BlockKind.RETURN)
    return _absint_context(
        [Function("main", (a, b, exit_))],
        {0: 0, 1: 1024, 2: 0x820},
        {0: 32, 1: 32, 2: 32},
        wpa_size=2048,
    )


def _trigger_a001():
    # The ping-pong proves both aliased WPA lines never hit on the cycle.
    return _thrash_context()


def _trigger_a002():
    # Each WPA page's only site is a certain miss: conclusive, hitless.
    return _thrash_context()


def _trigger_a003():
    # A branchy loop over conflicting non-WPA lines (wpa below the code):
    # the join at 'a' keeps every residency uncertain, so all 13 reachable
    # sites stay unknown and none is a guaranteed hit.
    pick = Instruction(Opcode.B, condition=Condition.NE, target="b")
    again = Instruction(Opcode.B, condition=Condition.NE, target="a")
    back = Instruction(Opcode.B, target="a")
    a = _block(
        0, "a", "main", (ALU, pick), BlockKind.CONDJUMP,
        taken_label="b", fall_label="c",
    )
    b = _block(1, "b", "main", (ALU, back), BlockKind.JUMP, taken_label="a")
    c = _block(
        2, "c", "main", (ALU, again), BlockKind.CONDJUMP,
        taken_label="a", fall_label="exit",
    )
    exit_ = _block(3, "exit", "main", (RET,), BlockKind.RETURN)
    return _absint_context(
        [Function("main", (a, b, c, exit_))],
        {0: 0x200, 1: 0x400, 2: 0x600, 3: 0x800},
        {0: 128, 1: 128, 2: 128, 3: 32},
        wpa_size=32,
    )


def _trigger_a004():
    # 'dead' places a WPA line, but no edge reaches it from the entry.
    a = _block(0, "a", "main", (RET,), BlockKind.RETURN)
    dead = _block(1, "dead", "main", (RET,), BlockKind.RETURN)
    return _absint_context(
        [Function("main", (a, dead))], {0: 0, 1: 32}, {0: 32, 1: 32},
        wpa_size=1024,
    )


def _trigger_a005():
    # The WPA spans two pages but only page 0 holds placed code.
    a = _block(0, "a", "main", (RET,), BlockKind.RETURN)
    return _absint_context(
        [Function("main", (a,))], {0: 0}, {0: 32}, wpa_size=2048
    )


def _trigger_a006():
    # Two executed WPA lines pinned to one (set, way), one proven lossy.
    return _thrash_context()


TRIGGERS = {
    "P001": _trigger_p001,
    "P002": _trigger_p002,
    "P003": _trigger_p003,
    "P004": _trigger_p004,
    "P005": _trigger_p005,
    "P006": _trigger_p006,
    "P007": _trigger_p007,
    "P008": _trigger_p008,
    "L001": _trigger_l001,
    "L002": _trigger_l002,
    "L003": _trigger_l003,
    "L004": _trigger_l004,
    "L005": _trigger_l005,
    "L006": _trigger_l006,
    "L007": _trigger_l007,
    "C001": _trigger_c001,
    "C002": _trigger_c002,
    "C003": _trigger_c003,
    "C004": _trigger_c004,
    "C005": _trigger_c005,
    "A001": _trigger_a001,
    "A002": _trigger_a002,
    "A003": _trigger_a003,
    "A004": _trigger_a004,
    "A005": _trigger_a005,
    "A006": _trigger_a006,
}


def test_every_registered_rule_has_a_trigger():
    from tests.test_interference_rules import I_TRIGGERS
    from tests.test_verify_rules import V_TRIGGERS

    covered = set(TRIGGERS) | set(V_TRIGGERS) | set(I_TRIGGERS)
    assert covered == set(DEFAULT_REGISTRY.ids())
    assert not set(TRIGGERS) & set(V_TRIGGERS)
    assert not set(TRIGGERS) & set(I_TRIGGERS)
    assert not set(V_TRIGGERS) & set(I_TRIGGERS)


@pytest.mark.parametrize("rule_id", sorted(TRIGGERS))
def test_rule_fires_on_its_trigger(rule_id):
    diagnostics = Analyzer().run(TRIGGERS[rule_id]())
    fired = {diagnostic.rule_id for diagnostic in diagnostics}
    assert rule_id in fired


@pytest.mark.parametrize("rule_id", sorted(TRIGGERS))
def test_rule_respects_default_severity(rule_id):
    diagnostics = Analyzer().run(TRIGGERS[rule_id]())
    expected = DEFAULT_REGISTRY.get(rule_id).severity
    for diagnostic in diagnostics:
        if diagnostic.rule_id == rule_id:
            assert diagnostic.severity is expected


def test_rules_carry_suggestions_and_locations():
    diagnostics = Analyzer().run(_trigger_p008())
    target = [d for d in diagnostics if d.rule_id == "P008"]
    assert target and target[0].suggestion
    assert target[0].location.kind == "program"
    assert target[0].location.name == "t"
    assert "dead" in target[0].message


def test_clean_toy_program_has_no_program_diagnostics():
    builder = ProgramBuilder("ok")
    fn = builder.function("main")
    fn.block("a", 2)
    fn.block("b", 1, ret=True)
    program = builder.build()
    context = AnalysisContext.for_program(program)
    assert Analyzer(select=("P",)).run(context) == []


def test_way_conflict_absent_within_one_cache_coverage():
    geometry = GeometrySpec(size_bytes=1024, ways=2, line_size=32)
    layout = LayoutView("p", {0: 0, 1: 512}, {0: 32, 1: 32})
    context = AnalysisContext(
        subject="p", layout=layout, geometry=geometry,
        wpa_size=1024, page_size=1024,
    )
    assert [d for d in Analyzer().run(context) if d.rule_id == "L005"] == []
