"""Seeded-fault tests for the runtime sanitizer.

Every ``S###`` invariant gets two tests: the clean path (a real replay
passes) and a corrupted path (a deliberately injected fault makes exactly
that invariant fire).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.energy.cache_model import CacheEnergyModel
from repro.energy.params import EnergyParams
from repro.engine.kernels import baseline_counters, way_placement_counters
from repro.errors import SanitizerError, SchemeError
from repro.experiments.runner import ExperimentRunner
from repro.layout.placement import LayoutPolicy
from repro.schemes import BaselineScheme, FetchScheme, WayPlacementScheme
from repro.sim.machine import XSCALE_BASELINE
from repro.trace.events import LineEventTrace
from repro.verify.sanitizer import (
    SANITIZER_INVARIANTS,
    SanitizerHook,
    check_conflict_certificates,
    check_counters,
    check_differential,
    check_energy,
    check_hint_inert,
    check_scheme_state,
    check_wayhint,
    raise_if_violations,
    sanitize_counters,
    sanitize_events,
)
from tests.scheme_helpers import TINY_GEOMETRY, events_from

GEOMETRY = XSCALE_BASELINE.icache
WPA = 4 * 1024


@pytest.fixture(scope="module")
def events():
    runner = ExperimentRunner(eval_instructions=20_000, profile_instructions=8_000)
    return runner.events("crc", LayoutPolicy.WAY_PLACEMENT, GEOMETRY.line_size)


@pytest.fixture(scope="module")
def wp_counters(events):
    return way_placement_counters(events, GEOMETRY, wpa_size=WPA)


def _ids(violations):
    return {violation.invariant for violation in violations}


# ---------------------------------------------------------------------------
# S001 / S002 — counter consistency and the tag-check bound
# ---------------------------------------------------------------------------
def test_clean_counters_pass(events, wp_counters):
    assert check_counters(wp_counters, GEOMETRY, events=events) == []


def test_s001_fires_on_tampered_fetch_total(events, wp_counters):
    bad = dataclasses.replace(wp_counters, fetches=wp_counters.fetches + 1)
    violations = check_counters(bad, GEOMETRY, events=events)
    assert "S001" in _ids(violations)


def test_s001_fires_on_tampered_event_total(events, wp_counters):
    bad = dataclasses.replace(wp_counters, line_events=wp_counters.line_events - 1)
    assert "S001" in _ids(check_counters(bad, GEOMETRY, events=events))


def test_s002_fires_on_excess_precharge(events, wp_counters):
    bound = (
        GEOMETRY.ways * wp_counters.full_searches + wp_counters.single_way_searches
    )
    bad = dataclasses.replace(wp_counters, ways_precharged=bound + 1)
    assert "S002" in _ids(check_counters(bad, GEOMETRY, events=events))


def test_hint_inert_fires_on_baseline_with_hint_activity(events):
    base = baseline_counters(events, GEOMETRY)
    assert check_hint_inert(base) == []
    bad = dataclasses.replace(base, hint_false_positives=1)
    assert "S001" in _ids(check_hint_inert(bad))


# ---------------------------------------------------------------------------
# S003 — way-hint / I-TLB agreement
# ---------------------------------------------------------------------------
def test_clean_wayhint_agrees(events, wp_counters):
    assert check_wayhint(events, wp_counters, WPA) == []


@pytest.mark.parametrize(
    "field",
    [
        "hint_false_positives",
        "hint_false_negatives",
        "second_accesses",
        "single_way_searches",
        "full_searches",
    ],
)
def test_s003_fires_on_each_tampered_hint_counter(events, wp_counters, field):
    bad = dataclasses.replace(wp_counters, **{field: getattr(wp_counters, field) + 1})
    assert "S003" in _ids(check_wayhint(events, bad, WPA))


def test_s003_fires_on_a_wrong_wpa_claim(events):
    # Counters produced with no WPA cannot satisfy a 4KB-WPA contract.
    counters = way_placement_counters(events, GEOMETRY, wpa_size=0)
    assert "S003" in _ids(check_wayhint(events, counters, WPA))


def test_clean_wayhint_agrees_without_same_line_skip(events):
    counters = way_placement_counters(
        events, GEOMETRY, wpa_size=WPA, same_line_skip=False
    )
    assert check_wayhint(events, counters, WPA, same_line_skip=False) == []


# ---------------------------------------------------------------------------
# S004 — energy reconciliation
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("organisation", ["cam", "ram"])
def test_clean_energy_reconciles(events, wp_counters, organisation):
    model = CacheEnergyModel(
        GEOMETRY, EnergyParams(), organisation=organisation, wayhint=True
    )
    assert check_energy(wp_counters, model.energy(wp_counters), model) == []


def test_s004_fires_on_tampered_component(events, wp_counters):
    model = CacheEnergyModel(GEOMETRY, EnergyParams(), wayhint=True)
    breakdown = model.energy(wp_counters)
    bad = dataclasses.replace(breakdown, tag_pj=breakdown.tag_pj + 1.0)
    violations = check_energy(wp_counters, bad, model)
    assert "S004" in _ids(violations)
    assert any("tag_pj" in v.message for v in violations)


# ---------------------------------------------------------------------------
# S005 — way-placement residency
# ---------------------------------------------------------------------------
def test_clean_scheme_state_passes(events):
    scheme = WayPlacementScheme(GEOMETRY, wpa_size=WPA)
    scheme.run(events)
    assert check_scheme_state(scheme) == []


def test_s005_fires_on_misplaced_wpa_line():
    scheme = WayPlacementScheme(GEOMETRY, wpa_size=WPA)
    address = 0  # inside the WPA
    wrong_way = (GEOMETRY.mandated_way(address) + 1) % GEOMETRY.ways
    scheme.cache.fill(
        GEOMETRY.set_index(address), GEOMETRY.tag(address), way=wrong_way
    )
    assert "S005" in _ids(check_scheme_state(scheme))


def test_s005_fires_on_duplicate_tags():
    scheme = BaselineScheme(GEOMETRY)
    scheme.cache.fill(0, 7, way=0)
    scheme.cache.fill(0, 7, way=1)
    assert "S005" in _ids(check_scheme_state(scheme))


# ---------------------------------------------------------------------------
# S006 — baseline differential
# ---------------------------------------------------------------------------
def test_clean_differential_holds(events):
    assert check_differential(events, GEOMETRY) == []


def test_s006_fires_on_misseeded_predictor(events):
    # Seeding the hint bit true with an empty WPA manufactures a false
    # positive on the first access, so the differential must catch it.
    violations = check_differential(events, GEOMETRY, hint_initial=True)
    assert "S006" in _ids(violations)


# ---------------------------------------------------------------------------
# S007 — segment monotonicity (via the hook)
# ---------------------------------------------------------------------------
class _DroppingScheme(FetchScheme):
    """Silently loses one event per segment."""

    name = "dropping"

    def _process(self, events: LineEventTrace) -> None:
        self.counters.line_events += max(events.num_events - 1, 0)
        self.counters.fetches += events.num_fetches
        self.counters.hits += max(events.num_events - 1, 0)


class _RegressingScheme(FetchScheme):
    """A counter that runs backwards."""

    name = "regressing"

    def _process(self, events: LineEventTrace) -> None:
        self.counters.line_events += events.num_events
        self.counters.fetches += events.num_fetches
        self.counters.hits += events.num_events
        self.counters.misses -= 1


def test_s007_fires_on_lost_events(events):
    hook = SanitizerHook(
        _DroppingScheme(GEOMETRY), segment_events=64, raise_on_violation=False
    )
    hook.run(events)
    assert "S007" in _ids(hook.violations)


def test_s007_fires_on_decreasing_counter(events):
    hook = SanitizerHook(
        _RegressingScheme(GEOMETRY), segment_events=64, raise_on_violation=False
    )
    hook.run(events)
    violations = [v for v in hook.violations if v.invariant == "S007"]
    assert any("decreased" in v.message for v in violations)


# ---------------------------------------------------------------------------
# The hook on real schemes
# ---------------------------------------------------------------------------
def test_hook_clean_on_way_placement(events):
    hook = SanitizerHook(WayPlacementScheme(GEOMETRY, wpa_size=WPA), segment_events=512)
    counters = hook.run(events)
    assert hook.violations == []
    assert hook.segments_checked >= 2
    # Supervision must not perturb the simulation.
    plain = WayPlacementScheme(GEOMETRY, wpa_size=WPA).run(events)
    assert counters == plain


def test_hook_clean_on_baseline(events):
    hook = SanitizerHook(BaselineScheme(GEOMETRY))
    hook.run(events)
    assert hook.violations == []


def test_hook_raises_by_default(events):
    hook = SanitizerHook(_DroppingScheme(GEOMETRY), segment_events=64)
    with pytest.raises(SanitizerError) as excinfo:
        hook.run(events)
    assert excinfo.value.violations


def test_hook_refuses_to_rerun(events):
    hook = SanitizerHook(WayPlacementScheme(GEOMETRY, wpa_size=WPA))
    hook.run(events)
    with pytest.raises(SchemeError, match="already ran"):
        hook.run(events)


# ---------------------------------------------------------------------------
# S009 — conflict certificates against reference replay
# ---------------------------------------------------------------------------
def test_clean_conflict_certificates_hold(events, wp_counters):
    base = baseline_counters(events, GEOMETRY)
    assert (
        check_conflict_certificates("baseline", events, GEOMETRY, base, {}) == []
    )
    assert (
        check_conflict_certificates(
            "way-placement", events, GEOMETRY, wp_counters, {"wpa_size": WPA}
        )
        == []
    )


def test_s009_fires_on_tampered_miss_total(events, wp_counters):
    bad = dataclasses.replace(wp_counters, misses=wp_counters.misses + 1)
    violations = check_conflict_certificates(
        "way-placement", events, GEOMETRY, bad, {"wpa_size": WPA}
    )
    assert "S009" in _ids(violations)


def test_s009_fires_on_a_wrong_wpa_claim():
    # Lines 0x0 and 0x100 share set 0 and mandated way 0 of the tiny
    # geometry: pinned they evict each other (4 misses), round-robin
    # they coexist (2 misses).  Counters measured with the WPA active
    # but checked under a lying ``wpa_size=0`` must not pass.
    stream = events_from([0, 256, 0, 256])
    pinned = way_placement_counters(
        stream, TINY_GEOMETRY, wpa_size=512, page_size=16
    )
    assert (
        check_conflict_certificates(
            "way-placement", stream, TINY_GEOMETRY, pinned, {"wpa_size": 512}
        )
        == []
    )
    violations = check_conflict_certificates(
        "way-placement", stream, TINY_GEOMETRY, pinned, {"wpa_size": 0}
    )
    assert "S009" in _ids(violations)


def test_s009_skips_unmodelled_schemes(events, wp_counters):
    assert (
        check_conflict_certificates(
            "way-memoization", events, GEOMETRY, wp_counters, {}
        )
        == []
    )


# ---------------------------------------------------------------------------
# Dispatchers
# ---------------------------------------------------------------------------
def test_sanitize_counters_clean_for_both_fast_schemes(events, wp_counters):
    base = baseline_counters(events, GEOMETRY)
    assert sanitize_counters("baseline", events, GEOMETRY, base) == []
    assert (
        sanitize_counters(
            "way-placement", events, GEOMETRY, wp_counters, {"wpa_size": WPA}
        )
        == []
    )


def test_sanitize_counters_catches_cross_scheme_swap(events, wp_counters):
    # Feeding the way-placement counters through the baseline contract
    # (and vice versa) must not pass silently.
    base = baseline_counters(events, GEOMETRY)
    assert sanitize_counters("baseline", events, GEOMETRY, wp_counters) != []
    assert (
        sanitize_counters(
            "way-placement", events, GEOMETRY, base, {"wpa_size": WPA}
        )
        != []
    )


def test_sanitize_events_certifies_a_real_trace(events):
    violations = sanitize_events(
        events, GEOMETRY, WPA, energy_params=EnergyParams()
    )
    assert violations == []


def test_raise_if_violations_previews_and_attaches(events, wp_counters):
    bad = dataclasses.replace(wp_counters, fetches=wp_counters.fetches + 1)
    violations = check_counters(bad, GEOMETRY, events=events)
    with pytest.raises(SanitizerError) as excinfo:
        raise_if_violations(violations, "way-placement")
    assert excinfo.value.violations == violations
    assert "S001" in str(excinfo.value)


def test_invariant_catalog_is_closed():
    # Every violation any check can emit uses a catalogued invariant id.
    assert set(SANITIZER_INVARIANTS) == {
        "S001",
        "S002",
        "S003",
        "S004",
        "S005",
        "S006",
        "S007",
        "S008",
        "S009",
    }
