"""Unit tests for the baseline (full CAM search every fetch) scheme."""

import pytest

from repro.errors import SchemeError
from repro.schemes.baseline import BaselineScheme
from tests.scheme_helpers import TINY_GEOMETRY, events_from, line_of


class TestBaselineActivity:
    def test_every_fetch_searches_all_ways(self):
        scheme = BaselineScheme(TINY_GEOMETRY)
        counters = scheme.run(events_from([(0x00, 3), (0x10, 2)]))
        assert counters.fetches == 5
        assert counters.full_searches == 5
        assert counters.ways_precharged == 5 * 4
        assert counters.same_line_fetches == 0

    def test_figure1_example_twelve_comparisons(self):
        # Paper Figure 1: three instructions, 2-set 4-way cache, 12 checks.
        from repro.cache.geometry import CacheGeometry

        geometry = CacheGeometry(32, 4, 4)  # 2 sets x 4 ways x 4B lines
        scheme = BaselineScheme(geometry, page_size=16)
        counters = scheme.run(events_from([(0x04, 1), (0x08, 1), (0x20, 1)], 4))
        assert counters.ways_precharged == 12

    def test_cold_misses_and_fills(self):
        scheme = BaselineScheme(TINY_GEOMETRY)
        counters = scheme.run(events_from([0x00, 0x10, 0x20, 0x00]))
        # 0x00 and 0x10 share set 0; 0x20 set 2... line 0x00->set0, 0x10->set1
        assert counters.misses == 3
        assert counters.hits == 1
        assert counters.fills == 3

    def test_conflict_eviction_in_one_set(self):
        scheme = BaselineScheme(TINY_GEOMETRY)
        set0_lines = [line_of(TINY_GEOMETRY, 0, tag) for tag in range(5)]
        counters = scheme.run(events_from(set0_lines + [set0_lines[0]]))
        # 5 distinct tags in a 4-way set: tag 0 evicted (round robin), re-missed
        assert counters.misses == 6
        assert counters.evictions == 2  # fills 5 and 6 displace valid lines

    def test_same_line_skip_option(self):
        scheme = BaselineScheme(TINY_GEOMETRY, same_line_skip=True)
        counters = scheme.run(events_from([(0x00, 4), (0x10, 4)]))
        assert counters.full_searches == 2
        assert counters.same_line_fetches == 6
        assert counters.ways_precharged == 2 * 4

    def test_itlb_accounted(self):
        scheme = BaselineScheme(TINY_GEOMETRY, itlb_entries=2, page_size=1024)
        counters = scheme.run(events_from([0x0000, 0x0400, 0x0800, 0x0000]))
        assert counters.itlb_accesses == 4
        assert counters.itlb_misses == 4  # 3 cold + 1 capacity (RR evicted)

    def test_single_use(self):
        scheme = BaselineScheme(TINY_GEOMETRY)
        scheme.run(events_from([0x00]))
        with pytest.raises(SchemeError, match="already ran"):
            scheme.run(events_from([0x00]))

    def test_line_size_mismatch_rejected(self):
        scheme = BaselineScheme(TINY_GEOMETRY)
        with pytest.raises(SchemeError, match="line size"):
            scheme.run(events_from([0x00], line_size=32))

    def test_counters_validate(self):
        scheme = BaselineScheme(TINY_GEOMETRY)
        counters = scheme.run(events_from([(0x00, 2), (0x40, 1)]))
        counters.validate()  # no exception
        assert counters.hits + counters.misses == counters.line_events
