"""Helpers for driving fetch schemes with hand-written event streams."""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple, Union

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.trace.events import LineEventTrace, SEQUENTIAL_SLOT

__all__ = ["events_from", "TINY_GEOMETRY", "line_of"]

#: 4 sets x 4 ways x 16B lines = 256B — small enough to reason by hand.
TINY_GEOMETRY = CacheGeometry(256, 4, 16)

EventSpec = Union[int, Tuple[int, int], Tuple[int, int, int]]


def events_from(specs: Iterable[EventSpec], line_size: int = 16) -> LineEventTrace:
    """Build a LineEventTrace from (line_addr[, count[, slot]]) specs."""
    addrs, counts, slots = [], [], []
    for spec in specs:
        if isinstance(spec, int):
            spec = (spec,)
        addr = spec[0]
        count = spec[1] if len(spec) > 1 else 1
        slot = spec[2] if len(spec) > 2 else SEQUENTIAL_SLOT
        addrs.append(addr)
        counts.append(count)
        slots.append(slot)
    return LineEventTrace(
        line_size=line_size,
        line_addrs=np.asarray(addrs, dtype=np.int64),
        counts=np.asarray(counts, dtype=np.int32),
        slots=np.asarray(slots, dtype=np.int16),
    )


def line_of(geometry: CacheGeometry, set_index: int, tag: int) -> int:
    """Line address that maps to (set_index, tag) under ``geometry``."""
    return geometry.reconstruct_address(tag, set_index)
