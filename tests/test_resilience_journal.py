"""Tests for grid checkpoint–resume: content keys, serialization, journal."""

import json
import warnings

import pytest

from repro.engine.grid import GridCell
from repro.experiments.runner import ExperimentRunner
from repro.resilience.journal import (
    ResumeJournal,
    cell_content_key,
    grid_digest,
    report_from_dict,
    report_to_dict,
)
from repro.sim.machine import XSCALE_BASELINE

KB = 1024


def make_runner(cache_dir, **kwargs):
    kwargs.setdefault("eval_instructions", 8_000)
    kwargs.setdefault("profile_instructions", 4_000)
    return ExperimentRunner(cache_dir=cache_dir, **kwargs)


class TestContentKeys:
    def test_key_distinguishes_every_cell_axis(self):
        base = GridCell("crc", "baseline")
        variants = [
            GridCell("sha", "baseline"),
            GridCell("crc", "way-placement"),
            GridCell("crc", "baseline", wpa_size=8 * KB),
            GridCell("crc", "baseline", l0_size=256),
            GridCell(
                "crc", "baseline", machine=XSCALE_BASELINE.with_icache(16 * KB, 16, 32)
            ),
        ]
        keys = {cell_content_key(cell) for cell in variants}
        assert cell_content_key(base) not in keys
        assert len(keys) == len(variants)

    def test_grid_digest_covers_result_bearing_spec_fields(self):
        cells = [cell_content_key(GridCell("crc", "baseline"))]
        spec = {"eval_instructions": 8000, "profile_instructions": 4000, "seed": 1}
        assert grid_digest(spec, cells) == grid_digest(dict(spec), list(cells))
        changed = dict(spec, eval_instructions=9000)
        assert grid_digest(changed, cells) != grid_digest(spec, cells)
        assert grid_digest(spec, cells + ["extra"]) != grid_digest(spec, cells)

    def test_grid_digest_ignores_execution_only_settings(self):
        """Changing cache dir / engine / strictness must not orphan a journal."""
        cells = ["k"]
        spec = {"eval_instructions": 8000, "seed": 1, "cache_dir": "/a", "engine": None}
        other = dict(spec, cache_dir="/b", engine="reference", strict=True)
        assert grid_digest(spec, cells) == grid_digest(other, cells)

    def test_cell_order_does_not_matter(self):
        spec = {"seed": 1}
        assert grid_digest(spec, ["a", "b"]) == grid_digest(spec, ["b", "a"])


class TestReportSerialization:
    def test_report_roundtrips_bit_identically(self, fast_runner):
        report = fast_runner.report("crc", "way-placement", wpa_size=8 * KB)
        payload = json.loads(json.dumps(report_to_dict(report)))
        assert report_from_dict(payload) == report


class TestResumeJournal:
    def test_record_flush_load_roundtrip(self, tmp_path, fast_runner):
        report = fast_runner.report("crc", "baseline")
        journal = ResumeJournal.for_grid(tmp_path, "g1")
        journal.record("cell-key", report)
        journal.flush()
        fresh = ResumeJournal.for_grid(tmp_path, "g1")
        completed = fresh.load()
        assert set(completed) == {"cell-key"}
        assert report_from_dict(completed["cell-key"]) == report

    def test_foreign_or_corrupt_journal_loads_empty(self, tmp_path, fast_runner):
        journal = ResumeJournal.for_grid(tmp_path, "g1")
        journal.record("k", fast_runner.report("crc", "baseline"))
        journal.flush()
        assert ResumeJournal.for_grid(tmp_path, "other-grid").load() == {}
        journal.path.write_text("{torn")
        assert ResumeJournal.for_grid(tmp_path, "g1").load() == {}

    def test_missing_journal_loads_empty(self, tmp_path):
        assert ResumeJournal.for_grid(tmp_path, "g1").load() == {}

    def test_discard_removes_the_file(self, tmp_path, fast_runner):
        journal = ResumeJournal.for_grid(tmp_path, "g1")
        journal.record("k", fast_runner.report("crc", "baseline"))
        journal.flush()
        assert journal.path.exists()
        journal.discard()
        assert not journal.path.exists()
        journal.discard()  # idempotent

    def test_unwritable_journal_degrades_with_one_warning(
        self, tmp_path, fast_runner
    ):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory must go")
        journal = ResumeJournal(blocker / "grids" / "j.json", "g1")
        journal.record("k", fast_runner.report("crc", "baseline"))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            journal.flush()
            journal.flush()
        messages = [w for w in caught if "journal write failed" in str(w.message)]
        assert len(messages) == 1
        assert journal._disabled

    def test_flush_appends_jsonl_records_under_a_header(self, tmp_path, fast_runner):
        """The journal is header + one self-contained JSON record per line,
        and flushing appends only what accumulated since the last flush."""
        journal = ResumeJournal.for_grid(tmp_path, "g1")
        journal.record("k1", fast_runner.report("crc", "baseline"))
        journal.flush()
        first_size = journal.path.stat().st_size
        journal.record("k2", fast_runner.report("sha", "baseline"))
        journal.flush()
        leftovers = [
            p for p in journal.path.parent.iterdir() if p.name != journal.path.name
        ]
        assert leftovers == []
        lines = journal.path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header == {"version": 2, "grid_key": "g1"}
        assert [json.loads(line)["cell"] for line in lines[1:]] == ["k1", "k2"]
        # append-only: the first flush's bytes are a prefix of the file
        assert journal.path.read_text().encode()[:first_size]
        assert journal.path.stat().st_size > first_size

    def test_torn_trailing_line_loses_only_that_record(self, tmp_path, fast_runner):
        """A crash mid-append tears at most the last line; the loader skips
        it with one warning and only the torn cell re-executes."""
        journal = ResumeJournal.for_grid(tmp_path, "g1")
        journal.record("k1", fast_runner.report("crc", "baseline"))
        journal.record("k2", fast_runner.report("sha", "baseline"))
        journal.flush()
        lines = journal.path.read_text().splitlines()
        torn = "\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2]
        journal.path.write_text(torn)  # tear the trailing (k2) record
        fresh = ResumeJournal.for_grid(tmp_path, "g1")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            completed = fresh.load()
        assert set(completed) == {"k1"}
        messages = [w for w in caught if "corrupt record" in str(w.message)]
        assert len(messages) == 1

    def test_garbage_records_are_skipped_with_one_warning(
        self, tmp_path, fast_runner
    ):
        journal = ResumeJournal.for_grid(tmp_path, "g1")
        journal.record("k1", fast_runner.report("crc", "baseline"))
        journal.flush()
        with open(journal.path, "a") as handle:
            handle.write("not json at all\n")
            handle.write('{"neither": "cell", "nor": "lease"}\n')
            handle.write('{"cell": 17, "report": "not-a-dict"}\n')
        fresh = ResumeJournal.for_grid(tmp_path, "g1")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            completed = fresh.load()
        assert set(completed) == {"k1"}
        messages = [w for w in caught if "3 corrupt record" in str(w.message)]
        assert len(messages) == 1

    def test_duplicate_cell_records_are_replay_safe(self, tmp_path, fast_runner):
        """A cell recorded twice (resume, duplicate shard delivery) loads
        once; the engines are bit-identical so the last occurrence wins."""
        report = fast_runner.report("crc", "baseline")
        journal = ResumeJournal.for_grid(tmp_path, "g1")
        journal.record("k", report)
        journal.record("k", report)
        journal.flush()
        fresh = ResumeJournal.for_grid(tmp_path, "g1")
        completed = fresh.load()
        assert set(completed) == {"k"}
        assert report_from_dict(completed["k"]) == report

    def test_lease_records_roundtrip_alongside_cells(self, tmp_path, fast_runner):
        journal = ResumeJournal.for_grid(tmp_path, "g1")
        journal.record_lease("crc:original:32KB", worker=1, attempt=1, cell_keys=["a", "b"])
        journal.record("a", fast_runner.report("crc", "baseline"))
        journal.record_lease("crc:original:32KB", worker=2, attempt=2, cell_keys=["a", "b"])
        journal.flush()
        fresh = ResumeJournal.for_grid(tmp_path, "g1")
        leases = fresh.load_leases()
        assert [lease["worker"] for lease in leases] == [1, 2]
        assert leases[0]["cells"] == ["a", "b"]
        assert set(fresh.completed) == {"a"}


class TestJournalLifecycleInGrids:
    CELLS = [
        GridCell("crc", "baseline"),
        GridCell("crc", "way-placement", wpa_size=8 * KB),
    ]

    def test_clean_grid_leaves_no_journal(self, tmp_path):
        runner = make_runner(tmp_path / "cache")
        runner.run_grid(self.CELLS, jobs=1)
        grids = tmp_path / "cache" / "grids"
        assert not grids.exists() or list(grids.iterdir()) == []

    def test_resume_without_store_is_rejected(self):
        from repro.errors import ResilienceError
        from repro.resilience.policy import DEFAULT_RESILIENCE
        import dataclasses

        runner = make_runner("off")
        config = dataclasses.replace(DEFAULT_RESILIENCE, resume=True)
        with pytest.raises(ResilienceError, match="resume"):
            runner.run_grid(self.CELLS, jobs=1, resilience=config)
