"""Tests for the deterministic fault-injection (chaos) harness."""

import errno

import pytest

from repro.errors import ResilienceError, SanitizerError
from repro.resilience import chaos
from repro.resilience.chaos import (
    ChaosConfig,
    ChaosRule,
    InjectedFault,
    chaos_point,
    corrupt_file,
)


def one_rule(**kwargs):
    kwargs.setdefault("site", "cell")
    kwargs.setdefault("fault", "raise")
    return ChaosConfig(seed=0, rules=(ChaosRule(**kwargs),))


class TestValidation:
    def test_unknown_site_and_fault_are_rejected(self):
        with pytest.raises(ResilienceError, match="unknown chaos site"):
            ChaosRule(site="nowhere", fault="raise").validate()
        with pytest.raises(ResilienceError, match="unknown chaos fault"):
            ChaosRule(site="cell", fault="meteor").validate()

    def test_probability_and_delay_bounds(self):
        with pytest.raises(ResilienceError, match="probability"):
            ChaosRule(site="cell", fault="raise", probability=1.5).validate()
        with pytest.raises(ResilienceError, match="delay_s"):
            ChaosRule(site="cell", fault="hang", delay_s=-1).validate()

    def test_roundtrip_through_dict(self):
        config = ChaosConfig(
            seed=9,
            rules=(
                ChaosRule("worker", "crash", match="crc@1"),
                ChaosRule("store.save", "enospc", times=-1, probability=0.5),
            ),
        )
        assert ChaosConfig.from_dict(config.to_dict()) == config


class TestChaosPoint:
    def test_noop_without_installed_config(self):
        chaos.uninstall()
        chaos_point("cell", "anything")  # must not raise

    def test_raise_fault(self):
        with chaos.active(one_rule(fault="raise")):
            with pytest.raises(InjectedFault):
                chaos_point("cell", "crc:baseline")

    def test_environment_faults_carry_errno(self):
        with chaos.active(one_rule(fault="enospc")):
            with pytest.raises(OSError) as info:
                chaos_point("cell", "k")
        assert info.value.errno == errno.ENOSPC
        with chaos.active(one_rule(fault="eacces")):
            with pytest.raises(OSError) as info:
                chaos_point("cell", "k")
        assert info.value.errno == errno.EACCES

    def test_sanitizer_fault(self):
        with chaos.active(one_rule(fault="sanitizer")):
            with pytest.raises(SanitizerError):
                chaos_point("cell", "k")

    def test_times_budget_is_per_rule(self):
        with chaos.active(one_rule(times=2)):
            for _ in range(2):
                with pytest.raises(InjectedFault):
                    chaos_point("cell", "k")
            chaos_point("cell", "k")  # budget spent: no-op

    def test_zero_times_disables_and_negative_is_unlimited(self):
        with chaos.active(one_rule(times=0)):
            chaos_point("cell", "k")
        with chaos.active(one_rule(times=-1)):
            for _ in range(5):
                with pytest.raises(InjectedFault):
                    chaos_point("cell", "k")

    def test_match_filters_by_substring(self):
        with chaos.active(one_rule(match="way-placement", times=-1)):
            chaos_point("cell", "crc:baseline:wpa0")
            with pytest.raises(InjectedFault):
                chaos_point("cell", "crc:way-placement:wpa8192")

    def test_site_must_match(self):
        with chaos.active(one_rule(site="kernel", times=-1)):
            chaos_point("cell", "k")
            with pytest.raises(InjectedFault):
                chaos_point("kernel", "k")

    def test_probability_draws_are_deterministic(self):
        def fires(seed):
            outcomes = []
            with chaos.active(
                ChaosConfig(
                    seed=seed,
                    rules=(
                        ChaosRule("cell", "raise", times=-1, probability=0.5),
                    ),
                )
            ):
                for index in range(20):
                    try:
                        chaos_point("cell", f"key{index}")
                        outcomes.append(False)
                    except InjectedFault:
                        outcomes.append(True)
            return outcomes

        first = fires(seed=11)
        assert fires(seed=11) == first
        assert any(first) and not all(first)
        assert fires(seed=12) != first

    def test_active_context_restores_previous_state(self):
        chaos.uninstall()
        with chaos.active(one_rule()):
            assert chaos.current() is not None
        assert chaos.current() is None


class TestCorruptFile:
    def test_truncates_matching_file(self, tmp_path):
        victim = tmp_path / "entry.npz"
        victim.write_bytes(b"x" * 1000)
        config = ChaosConfig(
            seed=0, rules=(ChaosRule("store.save", "truncate", match="entry"),)
        )
        with chaos.active(config):
            corrupt_file("store.save", "entry.npz", victim)
        assert victim.stat().st_size == 500

    def test_noop_without_matching_rule(self, tmp_path):
        victim = tmp_path / "entry.npz"
        victim.write_bytes(b"x" * 1000)
        with chaos.active(one_rule(site="store.save", fault="truncate", match="zzz")):
            corrupt_file("store.save", "entry.npz", victim)
        assert victim.stat().st_size == 1000
