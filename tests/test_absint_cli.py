"""The ``repro analyze`` subcommand: verdicts, determinism, exit codes.

Mirrors the ``repro verify`` CLI contract: explicit targets or
``--all-workloads``, text and JSON renderings, stdout byte-for-byte
deterministic across runs (wall time goes to stderr), exit 0 when every
workload's measured counters sit inside the static bounds and exit 2
when a bracket is violated.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

import repro.analysis.absint as absint
from repro.cli import main

FAST = ["--eval-instructions", "20000", "--profile-instructions", "8000"]


class TestAnalyze:
    def test_text_verdict(self, capsys):
        assert main(["analyze", "crc", *FAST]) == 0
        out = capsys.readouterr().out
        assert "crc" in out and "bounded" in out
        assert "1/1 workload(s) inside static bounds" in out

    def test_json_is_deterministic(self, capsys):
        assert main(["analyze", "crc", "bitcount", "--format", "json", *FAST]) == 0
        first = capsys.readouterr().out
        assert main(["analyze", "crc", "bitcount", "--format", "json", *FAST]) == 0
        second = capsys.readouterr().out
        assert first == second

        payload = json.loads(first)
        assert payload["summary"] == {"clean": 2, "total": 2, "violated": 0}
        benchmarks = [c["benchmark"] for c in payload["certificates"]]
        assert benchmarks == sorted(benchmarks) == ["bitcount", "crc"]
        for certificate in payload["certificates"]:
            assert certificate["ok"] is True
            schemes = [config["scheme"] for config in certificate["configs"]]
            assert schemes == ["baseline", "way-placement"]
            for config in certificate["configs"]:
                assert config["bounds_hold"] is True
                assert config["violations"] == []
                fixpoint = config["fixpoint"]
                assert fixpoint is None or fixpoint["converged"] is True
                low, high = config["energy_bracket_pj"]
                assert low <= config["energy_pj"] <= high
                for field, (lower, upper) in config["bounds"].items():
                    assert lower <= upper, field

    def test_rejects_unknown_benchmark(self, capsys):
        assert main(["analyze", "nonesuch", *FAST]) == 1
        assert "unknown benchmark" in capsys.readouterr().err

    def test_all_workloads_excludes_targets(self, capsys):
        assert main(["analyze", "crc", "--all-workloads", *FAST]) == 1
        assert "--all-workloads" in capsys.readouterr().err

    def test_violated_bounds_exit_code(self, capsys, monkeypatch):
        real = absint.analyze_workload

        def tampered(runner, benchmark, *args, **kwargs):
            certificate = real(runner, benchmark, *args, **kwargs)
            config = certificate.configs[0]
            broken = dataclasses.replace(
                config,
                violations=(
                    absint.BoundsViolation("misses", 10**9, 0, 1),
                ),
            )
            return dataclasses.replace(
                certificate, configs=(broken, *certificate.configs[1:])
            )

        monkeypatch.setattr(absint, "analyze_workload", tampered)
        assert main(["analyze", "crc", *FAST]) == 2
        out = capsys.readouterr().out
        assert "VIOLATED" in out
        assert "misses = 1000000000 outside static bounds [0, 1]" in out
