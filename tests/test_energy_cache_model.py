"""Unit tests for the cache energy model."""

import pytest

from repro.cache.access import FetchCounters
from repro.cache.geometry import CacheGeometry
from repro.energy.cache_model import CacheEnergyModel, EnergyBreakdown
from repro.energy.params import EnergyParams
from repro.errors import EnergyModelError

XSCALE = CacheGeometry(32 * 1024, 32, 32)
PARAMS = EnergyParams()


class TestPerEventEnergies:
    def test_full_search_is_ways_times_one_way(self):
        model = CacheEnergyModel(XSCALE, PARAMS)
        assert model.full_search_pj == pytest.approx(32 * model.tag_way_pj)

    def test_tag_energy_grows_with_cache_size(self):
        small = CacheEnergyModel(CacheGeometry(16 * 1024, 32, 32), PARAMS)
        large = CacheEnergyModel(CacheGeometry(64 * 1024, 32, 32), PARAMS)
        assert large.tag_way_pj > small.tag_way_pj

    def test_memo_links_widen_reads_and_fills(self):
        plain = CacheEnergyModel(XSCALE, PARAMS)
        memo = CacheEnergyModel(XSCALE, PARAMS, memo_links=True)
        assert memo.data_read_pj == pytest.approx(
            plain.data_read_pj * (1 + PARAMS.link_data_overhead)
        )
        assert memo.line_fill_pj == pytest.approx(
            plain.line_fill_pj * (1 + PARAMS.link_fill_overhead)
        )

    def test_memory_energy_per_line(self):
        model = CacheEnergyModel(XSCALE, PARAMS)
        assert model.memory_line_pj == pytest.approx(
            PARAMS.memory_pj_per_bit * 32 * 8
        )

    def test_bad_organisation_rejected(self):
        with pytest.raises(EnergyModelError):
            CacheEnergyModel(XSCALE, PARAMS, organisation="dram")


class TestPricing:
    def counters(self, **kwargs):
        base = dict(
            fetches=100,
            line_events=20,
            full_searches=20,
            ways_precharged=20 * 32,
            hits=19,
            misses=1,
            fills=1,
            itlb_accesses=20,
            itlb_misses=1,
        )
        base.update(kwargs)
        return FetchCounters(**base)

    def test_tag_energy_prices_precharges(self):
        model = CacheEnergyModel(XSCALE, PARAMS)
        breakdown = model.energy(self.counters())
        assert breakdown.tag_pj == pytest.approx(20 * 32 * model.tag_way_pj)

    def test_data_energy_per_fetch(self):
        model = CacheEnergyModel(XSCALE, PARAMS)
        breakdown = model.energy(self.counters())
        assert breakdown.data_pj == pytest.approx(100 * model.data_read_pj)

    def test_hint_energy_only_when_enabled(self):
        plain = CacheEnergyModel(XSCALE, PARAMS).energy(self.counters())
        hinted = CacheEnergyModel(XSCALE, PARAMS, wayhint=True).energy(
            self.counters()
        )
        assert plain.hint_pj == 0.0
        assert hinted.hint_pj == pytest.approx(20 * PARAMS.wayhint_pj)

    def test_link_writes_priced(self):
        model = CacheEnergyModel(XSCALE, PARAMS, memo_links=True)
        breakdown = model.energy(self.counters(link_writes=5))
        assert breakdown.link_pj == pytest.approx(5 * PARAMS.link_write_pj)

    def test_icache_total_excludes_memory_and_tlb(self):
        model = CacheEnergyModel(XSCALE, PARAMS)
        breakdown = model.energy(self.counters())
        assert breakdown.icache_pj == pytest.approx(
            breakdown.tag_pj + breakdown.data_pj + breakdown.fill_pj
        )
        assert breakdown.fetch_path_pj == pytest.approx(
            breakdown.icache_pj + breakdown.itlb_pj + breakdown.memory_pj
        )

    def test_ram_organisation_reads_all_ways_on_full_access(self):
        cam = CacheEnergyModel(XSCALE, PARAMS, organisation="cam")
        ram = CacheEnergyModel(XSCALE, PARAMS, organisation="ram")
        counters = self.counters()
        assert ram.energy(counters).data_pj > cam.energy(counters).data_pj

    def test_zero_counters_zero_energy(self):
        model = CacheEnergyModel(XSCALE, PARAMS)
        breakdown = model.energy(FetchCounters())
        assert breakdown.icache_pj == 0.0
        assert breakdown.fetch_path_pj == 0.0
