"""Tests for the energy-model sensitivity analysis."""

import pytest

from repro.energy.params import EnergyParams
from repro.errors import ExperimentError
from repro.experiments.runner import ExperimentRunner
from repro.experiments.sensitivity import reprice_report, sensitivity_grid

SUBSET = ["crc", "susan_c"]


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(eval_instructions=40_000, profile_instructions=15_000)


class TestReprice:
    def test_identity_parameters_reproduce_energy(self, runner):
        report = runner.report("crc", "baseline")
        repriced = reprice_report(report, runner.energy_params)
        assert repriced.icache_pj == pytest.approx(report.icache_energy_pj)
        assert repriced.cycles == report.cycles

    def test_scaled_tag_energy_scales_tag_component(self, runner):
        from dataclasses import replace

        report = runner.report("crc", "baseline")
        params = runner.energy_params
        doubled = replace(params, cam_pj_per_way_bit=2 * params.cam_pj_per_way_bit)
        repriced = reprice_report(report, doubled)
        assert repriced.breakdown.tag_pj == pytest.approx(
            2 * report.breakdown.tag_pj
        )
        assert repriced.breakdown.data_pj == pytest.approx(report.breakdown.data_pj)

    def test_memo_scheme_keeps_link_overhead(self, runner):
        report = runner.report("crc", "way-memoization")
        repriced = reprice_report(report, runner.energy_params)
        assert repriced.icache_pj == pytest.approx(report.icache_energy_pj)


class TestGrid:
    def test_grid_shape(self, runner):
        result = sensitivity_grid(
            runner, cam_scales=[0.8, 1.0], data_scales=[1.0, 1.2],
            benchmarks=SUBSET,
        )
        assert len(result.points) == 4
        assert result.point(1.0, 1.0).placement_energy < 1.0

    def test_calibration_point_matches_runner(self, runner):
        result = sensitivity_grid(
            runner, cam_scales=[1.0], data_scales=[1.0], benchmarks=SUBSET
        )
        point = result.point(1.0, 1.0)
        direct = [
            runner.normalised(b, "way-placement", wpa_size=32 * 1024).icache_energy
            for b in SUBSET
        ]
        assert point.placement_energy == pytest.approx(sum(direct) / len(direct))

    def test_more_tag_energy_means_more_saving(self, runner):
        result = sensitivity_grid(
            runner, cam_scales=[0.7, 1.4], data_scales=[1.0], benchmarks=SUBSET
        )
        assert (
            result.point(1.4, 1.0).placement_energy
            < result.point(0.7, 1.0).placement_energy
        )

    def test_conclusion_robust_around_calibration(self, runner):
        result = sensitivity_grid(runner, benchmarks=SUBSET)
        assert result.conclusion_robust

    def test_missing_point_raises(self, runner):
        result = sensitivity_grid(
            runner, cam_scales=[1.0], data_scales=[1.0], benchmarks=SUBSET
        )
        with pytest.raises(ExperimentError):
            result.point(9.0, 9.0)

    def test_empty_suite_rejected(self, runner):
        with pytest.raises(ExperimentError):
            sensitivity_grid(runner, benchmarks=[])
