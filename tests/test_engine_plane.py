"""Tests for the shared-memory trace plane (:mod:`repro.engine.plane`).

Unit level: publish/attach roundtrips are bit-identical and read-only,
segments are unlinked on close, unknown keys and injected ``plane.attach``
faults degrade to ``None`` (the caller's store/derive fallback).  Grid
level: parallel runs on both backends attach published traces zero-copy
and stay bit-identical to serial runs — with the plane disabled, under
chaos, and with the arena active.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.engine.grid import GridCell
from repro.engine.plane import PlaneClient, TraceArena, plane_enabled
from repro.experiments.runner import ExperimentRunner
from repro.layout import original_layout
from repro.resilience import chaos
from repro.resilience.chaos import ChaosConfig, ChaosRule
from repro.resilience.drill import run_drill
from repro.resilience.policy import ResilienceConfig
from repro.trace.executor import CfgWalker
from repro.trace.fetch import line_events_from_block_trace

KB = 1024

CELLS = [
    GridCell("crc", "baseline"),
    GridCell("crc", "way-placement", wpa_size=8 * KB),
    GridCell("sha", "baseline"),
    GridCell("sha", "way-placement", wpa_size=8 * KB),
]

SHARDED = ResilienceConfig(
    retries=3,
    backoff_s=0.01,
    timeout_s=10.0,
    backend="sharded",
    lease_timeout_s=0.5,
)


@pytest.fixture()
def traced(toy_program, toy_models):
    trace = CfgWalker(toy_program, toy_models, seed=0).walk(800)
    layout = original_layout(toy_program)
    events = line_events_from_block_trace(trace, toy_program, layout, 32)
    return trace, events


@pytest.fixture()
def arena():
    arena = TraceArena()
    yield arena
    arena.close()


def make_runner(cache_dir, **kwargs):
    kwargs.setdefault("eval_instructions", 8_000)
    kwargs.setdefault("profile_instructions", 4_000)
    return ExperimentRunner(cache_dir=cache_dir, **kwargs)


class TestArenaAndClient:
    def test_publish_attach_roundtrip_is_identical_and_readonly(
        self, arena, traced
    ):
        trace, events = traced
        assert arena.publish_block_trace("bk", trace) == 1
        assert arena.publish_events("ek", events) == 1
        assert arena.publish_events("ek", events) == 0  # duplicate: no-op
        assert len(arena) == 2

        client = PlaneClient(arena.handles())
        got_trace = client.block_trace("bk")
        assert got_trace is not None
        assert got_trace.program_name == trace.program_name
        assert got_trace.num_instructions == trace.num_instructions
        assert got_trace.num_program_runs == trace.num_program_runs
        assert np.array_equal(got_trace.uids, trace.uids)
        assert got_trace.uids.flags.writeable is False

        got_events = client.events("ek")
        assert got_events is not None
        assert got_events.line_size == events.line_size
        assert np.array_equal(got_events.line_addrs, events.line_addrs)
        assert np.array_equal(got_events.counts, events.counts)
        assert np.array_equal(got_events.slots, events.slots)
        assert got_events.line_addrs.flags.writeable is False
        assert client.attached == 2 and client.degraded == 0

    def test_close_unlinks_every_segment_and_is_idempotent(self, traced):
        trace, events = traced
        arena = TraceArena()
        arena.publish_block_trace("bk", trace)
        arena.publish_events("ek", events)
        names = [handle["segment"] for handle in arena.handles().values()]
        assert len(names) == 2
        arena.close()
        assert len(arena) == 0
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        arena.close()  # second close is a no-op
        # a closed arena refuses new publications
        assert arena.publish_block_trace("bk2", trace) == 0

    def test_unknown_key_and_kind_mismatch_return_none(self, arena, traced):
        trace, events = traced
        arena.publish_block_trace("bk", trace)
        arena.publish_events("ek", events)
        client = PlaneClient(arena.handles())
        assert client.block_trace("missing") is None
        assert client.events("missing") is None
        # key exists but holds the other artifact kind
        assert client.events("bk") is None
        assert client.block_trace("ek") is None
        # unpublished keys are silent misses, not degradations
        assert client.attached == 0 and client.degraded == 0

    def test_vanished_segment_degrades_to_none(self, traced):
        trace, _ = traced
        arena = TraceArena()
        arena.publish_block_trace("bk", trace)
        handles = arena.handles()
        arena.close()  # segment gone before the worker attaches
        client = PlaneClient(handles)
        assert client.block_trace("bk") is None
        assert client.degraded == 1

    def test_chaos_attach_fault_degrades_then_recovers(self, arena, traced):
        trace, _ = traced
        arena.publish_block_trace("bk", trace)
        client = PlaneClient(arena.handles())
        rule = ChaosRule("plane.attach", "raise", times=1)
        with chaos.active(ChaosConfig(seed=0, rules=(rule,))):
            assert client.block_trace("bk") is None
            assert client.degraded == 1
            # the fault was one-shot: the next attach succeeds
            assert client.block_trace("bk") is not None
        assert client.attached == 1

    def test_plane_enabled_env_knob(self, monkeypatch):
        monkeypatch.delenv("REPRO_PLANE", raising=False)
        assert plane_enabled() is True
        for value in ("off", "0", "none", "", "OFF", "disabled"):
            monkeypatch.setenv("REPRO_PLANE", value)
            assert plane_enabled() is False
        monkeypatch.setenv("REPRO_PLANE", "on")
        assert plane_enabled() is True


class TestGridIntegration:
    def _warm(self, cache):
        """Serial warm-up run: fills the store so the plane can publish."""
        runner = make_runner(cache)
        return runner.run_grid(CELLS, jobs=1)

    def test_local_backend_attaches_and_matches_serial(self, tmp_path):
        cache = tmp_path / "cache"
        want = self._warm(cache)
        parallel = make_runner(cache)
        got = parallel.run_grid(CELLS, jobs=2)
        for a, b in zip(want, got):
            assert a.counters == b.counters
            assert a.cycles == b.cycles
        grid = parallel.last_grid
        assert grid is not None
        assert grid.plane_attached > 0
        assert grid.plane_degraded == 0

    def test_sharded_backend_attaches_and_matches_serial(self, tmp_path):
        cache = tmp_path / "cache"
        want = self._warm(cache)
        parallel = make_runner(cache, resilience=SHARDED)
        got = parallel.run_grid(CELLS, jobs=2)
        for a, b in zip(want, got):
            assert a.counters == b.counters
        grid = parallel.last_grid
        assert grid is not None
        assert grid.plane_attached > 0

    def test_plane_off_env_disables_publication(self, tmp_path, monkeypatch):
        cache = tmp_path / "cache"
        want = self._warm(cache)
        monkeypatch.setenv("REPRO_PLANE", "off")
        parallel = make_runner(cache)
        got = parallel.run_grid(CELLS, jobs=2)
        for a, b in zip(want, got):
            assert a.counters == b.counters
        grid = parallel.last_grid
        assert grid is not None
        assert grid.plane_attached == 0 and grid.plane_degraded == 0

    def test_cold_cache_publishes_nothing_but_still_matches(self, tmp_path):
        """Publication is warm-only: a cold store leaves the workers on
        their own derive-and-persist path, bit-identically."""
        want = make_runner("off").run_grid(CELLS, jobs=1)
        parallel = make_runner(tmp_path / "cold-cache")
        got = parallel.run_grid(CELLS, jobs=2)
        for a, b in zip(want, got):
            assert a.counters == b.counters
        grid = parallel.last_grid
        assert grid is not None
        assert grid.plane_attached == 0

    @pytest.mark.parametrize("backend", ["local", "sharded"])
    def test_chaos_drill_stays_bit_identical_with_plane_faults(self, backend):
        """The standard drill (which includes a ``plane.attach`` fault on a
        published artifact) passes its acceptance bar on both backends."""
        summary = run_drill(seed=5, backend=backend)
        assert any("plane.attach" in line for line in summary["schedule"])
        assert summary["identical"] and summary["recovered"]
