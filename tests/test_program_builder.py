"""Unit tests for program construction (builder, blocks, functions)."""

import pytest

from repro.errors import ProgramError
from repro.isa.instructions import Opcode
from repro.program import BlockKind, ProgramBuilder, function_from_assembly
from repro.program.builder import BodyGenerator, filler_body
from tests.conftest import build_toy_program


class TestFillerBody:
    def test_length(self):
        assert len(filler_body(7)) == 7

    def test_no_branches(self):
        assert not any(i.is_branch for i in filler_body(50))

    def test_negative_rejected(self):
        with pytest.raises(ProgramError):
            filler_body(-1)

    def test_mem_density_zero(self):
        body = filler_body(100, mem_density=0.0)
        assert not any(i.is_memory_access for i in body)

    def test_mem_density_one(self):
        body = filler_body(16, mem_density=1.0)
        assert all(i.is_memory_access for i in body)

    def test_mem_density_long_run_average(self):
        generator = BodyGenerator(mem_density=0.1)
        total = mem = 0
        for _ in range(200):
            body = generator.body(5)
            total += len(body)
            mem += sum(1 for i in body if i.is_memory_access)
        assert mem / total == pytest.approx(0.1, abs=0.01)

    def test_mem_density_out_of_range(self):
        with pytest.raises(ProgramError):
            filler_body(4, mem_density=1.5)


class TestBlockKinds:
    def test_toy_program_kinds(self):
        program = build_toy_program()
        kinds = {
            block.label: block.kind for block in program.functions["main"].blocks
        }
        assert kinds["entry"] is BlockKind.FALLTHROUGH
        assert kinds["body"] is BlockKind.CALL
        assert kinds["latch"] is BlockKind.CONDJUMP
        assert kinds["fin"] is BlockKind.RETURN

    def test_fall_defaults_to_next_block(self):
        program = build_toy_program()
        entry = program.block_by_label("main", "entry")
        assert entry.fall_label == "loop_head"

    def test_terminator_detection(self):
        program = build_toy_program()
        latch = program.block_by_label("main", "latch")
        assert latch.terminator is not None
        assert latch.terminator.opcode is Opcode.B
        entry = program.block_by_label("main", "entry")
        assert entry.terminator is None

    def test_sizes(self):
        program = build_toy_program()
        body = program.block_by_label("main", "body")
        assert body.num_instructions == 5  # 4 filler + bl
        assert body.size_bytes == 20


class TestBuilderErrors:
    def test_duplicate_label(self):
        builder = ProgramBuilder("p")
        fn = builder.function("f")
        fn.block("a", 1, ret=True)
        with pytest.raises(ProgramError, match="duplicate"):
            fn.block("a", 1, ret=True)

    def test_fall_off_function_end(self):
        builder = ProgramBuilder("p")
        builder.function("f").block("a", 2)
        with pytest.raises(ProgramError, match="falls through past"):
            builder.build()

    def test_mutually_exclusive_terminators(self):
        builder = ProgramBuilder("p")
        fn = builder.function("f")
        with pytest.raises(ProgramError, match="mutually exclusive"):
            fn.block("a", 1, jump="x", ret=True)

    def test_empty_program(self):
        with pytest.raises(ProgramError, match="no functions"):
            ProgramBuilder("p").build()

    def test_unknown_entry(self):
        builder = ProgramBuilder("p")
        builder.function("f").block("a", 1, ret=True)
        with pytest.raises(ProgramError, match="entry function"):
            builder.build(entry="missing")

    def test_unknown_branch_target(self):
        builder = ProgramBuilder("p")
        builder.function("f").block("a", 1, jump="nowhere")
        with pytest.raises(ProgramError, match="unknown label"):
            builder.build()

    def test_unknown_callee(self):
        builder = ProgramBuilder("p")
        fn = builder.function("f")
        fn.block("a", 1, call="ghost")
        fn.block("b", 1, ret=True)
        with pytest.raises(ProgramError, match="unknown function"):
            builder.build()


class TestProgramQueries:
    def test_uids_unique_and_dense(self):
        program = build_toy_program()
        uids = [block.uid for block in program.blocks()]
        assert len(uids) == len(set(uids)) == program.num_blocks

    def test_block_lookup(self):
        program = build_toy_program()
        block = program.block_by_label("helper", "h0")
        assert program.block_by_uid(block.uid) is block

    def test_missing_lookup_raises(self):
        program = build_toy_program()
        with pytest.raises(ProgramError):
            program.block_by_label("main", "nope")
        with pytest.raises(ProgramError):
            program.block_by_uid(10_000)

    def test_totals(self):
        program = build_toy_program()
        assert program.num_instructions == sum(
            b.num_instructions for b in program.blocks()
        )
        assert program.size_bytes == 4 * program.num_instructions


class TestFunctionFromAssembly:
    SOURCE = """
    start:
        mov r0, #10
    loop:
        sub r0, r0, r5
        cmp r0, r1
        bne loop
        bl callee
        ret
    """

    def build(self):
        builder = ProgramBuilder("asm")
        function_from_assembly(builder, "main", self.SOURCE)
        callee = builder.function("callee")
        callee.block("c0", 2, ret=True)
        return builder.build(entry="main")

    def test_blocks_carved_at_leaders(self):
        program = self.build()
        labels = [b.label for b in program.functions["main"].blocks]
        # leaders: start, loop, after bne, after bl
        assert labels[0] == "start"
        assert "loop" in labels
        assert len(labels) == 4

    def test_branch_becomes_condjump(self):
        program = self.build()
        loop = program.block_by_label("main", "loop")
        assert loop.kind is BlockKind.CONDJUMP
        assert loop.taken_label == "loop"

    def test_call_block_kind(self):
        program = self.build()
        call_blocks = [
            b for b in program.functions["main"].blocks if b.kind is BlockKind.CALL
        ]
        assert len(call_blocks) == 1
        assert call_blocks[0].callee == "callee"

    def test_interior_branch_rejected(self):
        builder = ProgramBuilder("bad")
        fn = builder.function("f")
        with pytest.raises(ProgramError, match="unknown"):
            function_from_assembly(builder, "g", "b missing_label\nnop")

    def test_empty_source_rejected(self):
        builder = ProgramBuilder("bad")
        with pytest.raises(ProgramError, match="empty"):
            function_from_assembly(builder, "g", "  ; only a comment")
