"""Unit tests for the filter-cache scheme (Kin et al.)."""

import pytest

from repro.errors import SchemeError
from repro.schemes.filter_cache import FilterCacheScheme
from tests.scheme_helpers import TINY_GEOMETRY, events_from


def run(specs, l0_size=64, **kwargs):
    scheme = FilterCacheScheme(TINY_GEOMETRY, l0_size=l0_size, page_size=16, **kwargs)
    return scheme, scheme.run(events_from(specs))


class TestL0Behaviour:
    def test_l0_hit_avoids_l1(self):
        _, counters = run([(0x00, 2), (0x10, 2), (0x00, 2), (0x10, 2)])
        # 64B L0 with 16B lines = 4 entries: both lines fit
        assert counters.l0_misses == 2
        assert counters.l0_hits == 2
        assert counters.full_searches == 2  # only the L0 misses reach L1

    def test_every_fetch_reads_l0(self):
        _, counters = run([(0x00, 5), (0x10, 3)])
        assert counters.l0_accesses == 8

    def test_l0_conflict_thrashing(self):
        # two lines 64B apart collide in a 4-entry direct-mapped L0
        _, counters = run([0x00, 0x40, 0x00, 0x40])
        assert counters.l0_misses == 4
        assert counters.l0_hits == 0
        # but the L1 keeps both: only 2 real misses
        assert counters.misses == 2
        assert counters.hits == 2

    def test_l0_miss_penalty_cycles(self):
        _, counters = run([0x00, 0x40, 0x00, 0x40])
        assert counters.extra_access_cycles == counters.l0_misses

    def test_l1_miss_fills_both(self):
        scheme, counters = run([0x00])
        assert counters.misses == 1
        assert counters.fills == 1
        assert scheme._l0_tags[0] == 0  # line number resident in L0


class TestConfiguration:
    def test_l0_size_validated(self):
        with pytest.raises(SchemeError):
            FilterCacheScheme(TINY_GEOMETRY, l0_size=24, page_size=16)
        with pytest.raises(SchemeError):
            FilterCacheScheme(TINY_GEOMETRY, l0_size=8, page_size=16)
