"""Shared fixtures: small hand-built programs and a reduced-budget runner."""

from __future__ import annotations

import pytest

from repro import (
    ExperimentRunner,
    ProgramBuilder,
    branch_models_for,
    load_benchmark,
    LARGE_INPUT,
    SMALL_INPUT,
)
from repro.trace.branch_model import BernoulliBranch, BranchModelMap, LoopBranch


def build_toy_program():
    """A two-function program with a loop, a call, and a diamond.

    Layout (original order)::

        main:   entry -> loop_head -> body(call helper) -> latch(-> loop_head)
                -> cond(-> skip) -> taken_path -> skip -> fin(ret)
        helper: h0 -> h1(ret)
    """
    builder = ProgramBuilder("toy")
    main = builder.function("main")
    main.block("entry", 3)
    main.block("loop_head", 2)
    main.block("body", 4, call="helper")
    main.block("latch", 2, branch="loop_head")
    main.block("cond", 2, branch="skip")
    main.block("taken_path", 3)
    main.block("skip", 2)
    main.block("fin", 1, ret=True)
    helper = builder.function("helper")
    helper.block("h0", 5)
    helper.block("h1", 2, ret=True)
    return builder.build(entry="main")


@pytest.fixture()
def toy_program():
    return build_toy_program()


@pytest.fixture()
def toy_models(toy_program):
    """Deterministic-ish branch behaviour for the toy program."""
    return BranchModelMap(
        {
            toy_program.uid_of_label("main", "latch"): LoopBranch(4, 4),
            toy_program.uid_of_label("main", "cond"): BernoulliBranch(0.5),
        }
    )


@pytest.fixture(scope="session")
def fast_runner():
    """An ExperimentRunner with budgets small enough for unit tests."""
    return ExperimentRunner(eval_instructions=80_000, profile_instructions=30_000)


@pytest.fixture(scope="session")
def lint_all_workloads():
    """Static-analysis diagnostics for every bundled synthetic workload.

    Runs the full rule set over each benchmark's program, way-placement
    layout, profile, and the XScale cache geometry with a fitted WPA.
    Session-scoped because profiling all benchmarks is the expensive part.
    """
    from repro.analysis import Analyzer, AnalysisContext
    from repro.layout.placement import LayoutPolicy
    from repro.sim.machine import XSCALE_BASELINE
    from repro.utils.bitops import align_up
    from repro.workloads import benchmark_names

    runner = ExperimentRunner(
        eval_instructions=20_000, profile_instructions=8_000
    )
    machine = XSCALE_BASELINE
    analyzer = Analyzer()
    results = {}
    for benchmark in benchmark_names():
        layout = runner.layout(benchmark, LayoutPolicy.WAY_PLACEMENT)
        wpa_size = min(
            machine.icache.size_bytes,
            align_up(layout.end_address, machine.page_size),
        )
        profile = runner.profile(benchmark)
        context = AnalysisContext.for_experiment(
            program=runner.workload(benchmark).program,
            layout=layout,
            block_counts=profile.block_counts,
            edge_counts=profile.edge_counts,
            geometry=machine.icache,
            wpa_size=wpa_size,
            page_size=machine.page_size,
            energy=runner.energy_params,
            subject=benchmark,
        )
        results[benchmark] = analyzer.run(context)
    return results


@pytest.fixture(scope="session")
def crc_workload():
    return load_benchmark("crc")


@pytest.fixture(scope="session")
def crc_small_models(crc_workload):
    return branch_models_for(crc_workload, SMALL_INPUT)


@pytest.fixture(scope="session")
def crc_large_models(crc_workload):
    return branch_models_for(crc_workload, LARGE_INPUT)
