"""Unit tests for program validation rules."""

import pytest

from repro.errors import ProgramError
from repro.program import ProgramBuilder


def test_unreachable_function_rejected():
    builder = ProgramBuilder("p")
    builder.function("main").block("a", 1, ret=True)
    builder.function("dead").block("d", 1, ret=True)
    with pytest.raises(ProgramError, match="unreachable"):
        builder.build(entry="main")


def test_function_without_exit_rejected():
    builder = ProgramBuilder("p")
    fn = builder.function("main")
    fn.block("a", 2, branch="a", fall="b")
    fn.block("b", 1, jump="a")
    # 'main' has a jump so it passes the no-exit rule; now build one without.
    builder2 = ProgramBuilder("q")
    f2 = builder2.function("main")
    f2.block("x", 2, branch="x", fall="x2")
    f2.block("x2", 1, branch="x", fall="x")
    with pytest.raises(ProgramError, match="no return and no jump"):
        builder2.build()


def test_duplicate_fall_in_rejected():
    builder = ProgramBuilder("p")
    fn = builder.function("main")
    # both 'a' and 'c' fall through to 'join'
    fn.block("a", 1, fall="join")
    fn.block("c", 1, fall="join")
    fn.block("join", 1, ret=True)
    with pytest.raises(ProgramError, match="fall-through target of both"):
        builder.build()


def test_valid_program_passes():
    builder = ProgramBuilder("ok")
    fn = builder.function("main")
    fn.block("a", 2)
    fn.block("b", 1, ret=True)
    program = builder.build()
    assert program.num_blocks == 2


def test_validation_reports_multiple_problems_at_once():
    builder = ProgramBuilder("p")
    builder.function("main").block("a", 1, ret=True)
    builder.function("dead1").block("d", 1, ret=True)
    builder.function("dead2").block("e", 1, ret=True)
    with pytest.raises(ProgramError) as excinfo:
        builder.build(entry="main")
    message = str(excinfo.value)
    assert "dead1" in message and "dead2" in message
