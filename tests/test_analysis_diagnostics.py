"""Unit tests for the diagnostic model, registry, and analyzer plumbing."""

from __future__ import annotations

import pytest

from repro.analysis import (
    Analyzer,
    AnalysisContext,
    DEFAULT_REGISTRY,
    Diagnostic,
    Finding,
    Location,
    Rule,
    RuleRegistry,
    Severity,
    max_severity,
)
from repro.errors import AnalysisError


def _diag(rule_id="X001", detail="a", message="m", severity=Severity.ERROR):
    return Diagnostic(
        rule_id=rule_id,
        rule_name="test-rule",
        severity=severity,
        location=Location("config", "t", detail),
        message=message,
    )


# ---------------------------------------------------------------------------
# Severity and Diagnostic values
# ---------------------------------------------------------------------------
def test_severity_is_ordered():
    assert Severity.ERROR > Severity.WARNING > Severity.INFO
    assert str(Severity.WARNING) == "warning"


def test_severity_from_name_round_trips():
    assert Severity.from_name("Error") is Severity.ERROR
    with pytest.raises(ValueError, match="unknown severity"):
        Severity.from_name("fatal")


def test_diagnostic_sort_key_orders_by_rule_then_location():
    diagnostics = [
        _diag(rule_id="X002", detail="a"),
        _diag(rule_id="X001", detail="b"),
        _diag(rule_id="X001", detail="a"),
    ]
    ordered = sorted(diagnostics, key=Diagnostic.sort_key)
    assert [(d.rule_id, d.location.detail) for d in ordered] == [
        ("X001", "a"),
        ("X001", "b"),
        ("X002", "a"),
    ]


def test_diagnostic_to_dict_and_render():
    diagnostic = _diag()
    payload = diagnostic.to_dict()
    assert payload["rule"] == "X001"
    assert payload["severity"] == "error"
    assert payload["location"] == {"kind": "config", "name": "t", "detail": "a"}
    assert "X001 error" in diagnostic.render()


def test_max_severity():
    assert max_severity([]) is None
    assert (
        max_severity([_diag(severity=Severity.INFO), _diag(severity=Severity.WARNING)])
        is Severity.WARNING
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
def _noop_rule(rule_id, severity=Severity.WARNING):
    return Rule(rule_id, "noop", "config", severity, "does nothing", lambda ctx: [])


def test_registry_rejects_duplicate_ids():
    registry = RuleRegistry()
    registry.register(_noop_rule("T001"))
    with pytest.raises(AnalysisError, match="duplicate rule id"):
        registry.register(_noop_rule("T001"))


def test_registry_selection_by_prefix_and_id():
    registry = RuleRegistry()
    for rule_id in ("T001", "T002", "U001"):
        registry.register(_noop_rule(rule_id))
    assert [r.rule_id for r in registry.selection(["T"])] == ["T001", "T002"]
    assert [r.rule_id for r in registry.selection(None, ["U"])] == ["T001", "T002"]
    assert [r.rule_id for r in registry.selection(["T", "U001"], ["T002"])] == [
        "T001",
        "U001",
    ]


def test_registry_unknown_selector_raises():
    registry = RuleRegistry()
    registry.register(_noop_rule("T001"))
    with pytest.raises(AnalysisError, match="matches no rule"):
        registry.selection(["Z"])


def test_default_registry_has_all_six_layers():
    layers = {rule.layer for rule in DEFAULT_REGISTRY}
    assert layers == {"program", "layout", "config", "verify", "absint", "interference"}
    assert len(DEFAULT_REGISTRY) >= 10


# ---------------------------------------------------------------------------
# Analyzer
# ---------------------------------------------------------------------------
def _firing_registry():
    registry = RuleRegistry()

    def fire(ctx):
        yield Finding(Location("config", ctx.subject, "x"), "it fired")

    registry.register(Rule("T001", "fires", "config", Severity.WARNING, "", fire))
    registry.register(_noop_rule("T002"))
    return registry


def test_analyzer_severity_override():
    registry = _firing_registry()
    analyzer = Analyzer(
        registry=registry, severity_overrides={"T001": Severity.ERROR}
    )
    diagnostics = analyzer.run(AnalysisContext(subject="s"))
    assert [d.severity for d in diagnostics] == [Severity.ERROR]


def test_analyzer_unknown_override_raises():
    with pytest.raises(AnalysisError, match="unknown rule id"):
        Analyzer(
            registry=_firing_registry(),
            severity_overrides={"Z999": Severity.ERROR},
        )


def test_analyzer_select_ignore():
    registry = _firing_registry()
    assert Analyzer(registry=registry, ignore=["T001"]).run(
        AnalysisContext(subject="s")
    ) == []
    assert len(Analyzer(registry=registry, select=["T001"]).run(
        AnalysisContext(subject="s")
    )) == 1


def test_check_errors_raises_with_attached_diagnostics():
    registry = _firing_registry()
    analyzer = Analyzer(
        registry=registry, severity_overrides={"T001": Severity.ERROR}
    )
    with pytest.raises(AnalysisError, match="failed static analysis") as excinfo:
        analyzer.check_errors(AnalysisContext(subject="s"), "subject s")
    assert [d.rule_id for d in excinfo.value.diagnostics] == ["T001"]


def test_check_errors_passes_warnings_through():
    analyzer = Analyzer(registry=_firing_registry())
    diagnostics = analyzer.check_errors(AnalysisContext(subject="s"), "subject s")
    assert [d.severity for d in diagnostics] == [Severity.WARNING]
