"""Unit and property tests for line-event expansion."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.layout import original_layout
from repro.program import ProgramBuilder
from repro.trace.branch_model import BranchModelMap, LoopBranch
from repro.trace.events import SEQUENTIAL_SLOT, LineEventTrace
from repro.trace.executor import CfgWalker
from repro.trace.fetch import block_line_segments, line_events_from_block_trace


class TestBlockLineSegments:
    def test_block_within_one_line(self):
        assert block_line_segments(0x104, 3, 32) == [(0x100, 3)]

    def test_block_spanning_lines(self):
        # 10 instructions from 0x104: 7 fit in line 0x100, 3 in line 0x120
        assert block_line_segments(0x104, 10, 32) == [(0x100, 7), (0x120, 3)]

    def test_block_aligned_full_lines(self):
        assert block_line_segments(0x100, 16, 32) == [(0x100, 8), (0x120, 8)]

    def test_empty_block_rejected(self):
        with pytest.raises(Exception):
            block_line_segments(0, 0, 32)

    @given(
        start_words=st.integers(0, 1000),
        n=st.integers(1, 200),
        line_exp=st.integers(2, 7),
    )
    @settings(max_examples=60)
    def test_segments_cover_exactly(self, start_words, n, line_exp):
        line_size = 1 << line_exp
        start = start_words * 4
        segments = block_line_segments(start, n, line_size)
        assert sum(count for _, count in segments) == n
        # line addresses strictly increase by line_size
        addresses = [a for a, _ in segments]
        assert all(b - a == line_size for a, b in zip(addresses, addresses[1:]))
        assert addresses[0] == start & ~(line_size - 1)


def _walk_events(program, models, budget, line_size=32, seed=0):
    trace = CfgWalker(program, models, seed=seed).walk(budget)
    layout = original_layout(program)
    return trace, line_events_from_block_trace(trace, program, layout, line_size)


class TestLineEvents:
    def test_fetch_count_matches_instructions(self, toy_program, toy_models):
        trace, events = _walk_events(toy_program, toy_models, 700)
        assert events.num_fetches == trace.num_instructions

    def test_no_adjacent_duplicate_lines(self, toy_program, toy_models):
        _, events = _walk_events(toy_program, toy_models, 700)
        addrs = events.line_addrs
        assert (addrs[1:] != addrs[:-1]).all()

    def test_lines_are_aligned(self, toy_program, toy_models):
        _, events = _walk_events(toy_program, toy_models, 700)
        assert (events.line_addrs % 32 == 0).all()

    def test_counts_positive(self, toy_program, toy_models):
        _, events = _walk_events(toy_program, toy_models, 700)
        assert int(events.counts.min()) >= 1

    def test_slots_in_range(self, toy_program, toy_models):
        _, events = _walk_events(toy_program, toy_models, 700)
        slots = events.slots
        assert int(slots.min()) >= SEQUENTIAL_SLOT
        assert int(slots.max()) < 32 // 4

    def test_tight_loop_in_one_line_produces_single_event(self):
        # A loop whose head+latch fit in one 32B line: the backward branch
        # stays within the line, so events merge (the same-line skip case).
        builder = ProgramBuilder("tight")
        fn = builder.function("main")
        fn.block("head", 2)  # 2 instructions at 0x0
        fn.block("latch", 1, branch="head")  # 2 instructions ending at 0x13
        fn.block("out", 1, ret=True)
        program = builder.build()
        models = BranchModelMap(
            {program.uid_of_label("main", "latch"): LoopBranch(50, 50)}
        )
        trace = CfgWalker(program, models, seed=0).walk(150)
        layout = original_layout(program)
        events = line_events_from_block_trace(trace, program, layout, 32)
        # 4-instruction loop entirely inside line 0: one big merged event
        # per 50-trip burst (plus the out/restart transitions).
        biggest = int(events.counts.max())
        assert biggest >= 150  # ~50 trips x 4 instructions merged
        assert events.compression_ratio > 20

    def test_line_size_must_match_power_of_two(self, toy_program, toy_models):
        trace = CfgWalker(toy_program, toy_models, seed=0).walk(100)
        layout = original_layout(toy_program)
        with pytest.raises(Exception):
            line_events_from_block_trace(trace, toy_program, layout, 33)

    def test_different_line_sizes_conserve_fetches(self, toy_program, toy_models):
        trace = CfgWalker(toy_program, toy_models, seed=0).walk(900)
        layout = original_layout(toy_program)
        for line_size in (8, 16, 32, 64):
            events = line_events_from_block_trace(trace, toy_program, layout, line_size)
            assert events.num_fetches == trace.num_instructions


class TestLineEventTraceValidation:
    def test_mismatched_arrays_rejected(self):
        with pytest.raises(Exception):
            LineEventTrace(
                line_size=32,
                line_addrs=np.array([0], dtype=np.int64),
                counts=np.array([1, 2], dtype=np.int32),
                slots=np.array([0], dtype=np.int16),
            )

    def test_zero_count_rejected(self):
        with pytest.raises(Exception):
            LineEventTrace(
                line_size=32,
                line_addrs=np.array([0], dtype=np.int64),
                counts=np.array([0], dtype=np.int32),
                slots=np.array([0], dtype=np.int16),
            )

    def test_empty_trace_ok(self):
        trace = LineEventTrace(
            line_size=32,
            line_addrs=np.array([], dtype=np.int64),
            counts=np.array([], dtype=np.int32),
            slots=np.array([], dtype=np.int16),
        )
        assert trace.num_events == 0
        assert trace.num_fetches == 0
        assert trace.compression_ratio == 0.0

    def test_touched_lines_unique_sorted(self, toy_program, toy_models):
        _, events = _walk_events(toy_program, toy_models, 700)
        touched = events.touched_lines()
        assert (np.diff(touched) > 0).all()
