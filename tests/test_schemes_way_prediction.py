"""Unit tests for the MRU way-prediction scheme (Inoue et al.)."""

from repro.schemes.way_prediction import WayPredictionScheme
from tests.scheme_helpers import TINY_GEOMETRY, events_from, line_of


def run(specs, **kwargs):
    scheme = WayPredictionScheme(TINY_GEOMETRY, page_size=16, **kwargs)
    return scheme, scheme.run(events_from(specs))


class TestPrediction:
    def test_repeated_line_predicted_correctly(self):
        _, counters = run([0x00, 0x40, 0x00, 0x40, 0x00])
        # 0x00 and 0x40 both map to set 0 but different ways; MRU alternates
        # so every probe after the cold fills mispredicts
        assert counters.second_accesses >= 3

    def test_single_hot_line_one_probe(self):
        _, counters = run([0x00, 0x100, 0x00 + 0, ])
        # distinct sets: set 0 twice with nothing between -> MRU correct
        assert counters.misses == 2

    def test_monotone_stream_probe_counts(self):
        _, counters = run([(0x00, 4)] * 1)
        assert counters.single_way_searches == 1
        assert counters.same_line_fetches == 3

    def test_mispredict_costs_cycle_and_full_search(self):
        scheme, counters = run([0x00, 0x40, 0x00])
        assert counters.extra_access_cycles == counters.second_accesses
        assert counters.full_searches == counters.second_accesses
        assert (
            counters.ways_precharged
            == counters.single_way_searches + 4 * counters.full_searches
        )

    def test_mru_updated_on_fill(self):
        scheme, _ = run([0x00])
        set_index = TINY_GEOMETRY.set_index(0x00)
        way = scheme.cache.find(set_index, TINY_GEOMETRY.tag(0x00))
        assert scheme._mru[set_index] == way

    def test_alternating_sets_stay_predicted(self):
        a = line_of(TINY_GEOMETRY, 0, 0)
        b = line_of(TINY_GEOMETRY, 1, 0)
        _, counters = run([a, b] * 6)
        # each set holds one hot line; per-set MRU stays correct after fills
        assert counters.second_accesses == 2  # only the two cold misses
