"""Unit tests for the CFG walker."""

import pytest

from repro.errors import TraceError
from repro.program import ProgramBuilder
from repro.trace.branch_model import BranchModelMap, LoopBranch, TakenBranch
from repro.trace.executor import CfgWalker


class TestWalkStructure:
    def test_trace_follows_loop(self, toy_program, toy_models):
        walker = CfgWalker(toy_program, toy_models, seed=0)
        trace = walker.walk(200)
        labels = [toy_program.block_by_uid(u).label for u in trace.uids.tolist()]
        # The loop executes its 4-trip pattern: head, body, helper, latch x4.
        assert labels[0] == "entry"
        assert labels[1:5] == ["loop_head", "body", "h0", "h1"]
        assert labels.count("latch") >= 4

    def test_call_and_return(self, toy_program, toy_models):
        walker = CfgWalker(toy_program, toy_models, seed=0)
        trace = walker.walk(100)
        labels = [toy_program.block_by_uid(u).label for u in trace.uids.tolist()]
        # every helper execution is followed by returning to the latch
        for i, label in enumerate(labels[:-1]):
            if label == "h1":
                assert labels[i + 1] == "latch"

    def test_budget_respected_at_block_granularity(self, toy_program, toy_models):
        walker = CfgWalker(toy_program, toy_models, seed=0)
        trace = walker.walk(500)
        sizes = {b.uid: b.num_instructions for b in toy_program.blocks()}
        total = sum(sizes[u] for u in trace.uids.tolist())
        assert total == trace.num_instructions
        assert 500 <= total < 500 + max(sizes.values())

    def test_program_restarts_when_entry_returns(self, toy_program, toy_models):
        walker = CfgWalker(toy_program, toy_models, seed=1)
        trace = walker.walk(3000)
        assert trace.num_program_runs >= 1
        labels = [toy_program.block_by_uid(u).label for u in trace.uids.tolist()]
        # after fin (entry function returns) the walk restarts at entry
        for i, label in enumerate(labels[:-1]):
            if label == "fin":
                assert labels[i + 1] == "entry"

    def test_determinism(self, toy_program, toy_models):
        t1 = CfgWalker(toy_program, toy_models, seed=5).walk(400)
        t2 = CfgWalker(toy_program, toy_models, seed=5).walk(400)
        assert (t1.uids == t2.uids).all()

    def test_seed_changes_walk(self, toy_program, toy_models):
        t1 = CfgWalker(toy_program, toy_models, seed=5).walk(400)
        t2 = CfgWalker(toy_program, toy_models, seed=6).walk(400)
        assert not (t1.uids.shape == t2.uids.shape and (t1.uids == t2.uids).all())

    def test_block_counts(self, toy_program, toy_models):
        trace = CfgWalker(toy_program, toy_models, seed=0).walk(400)
        counts = trace.block_counts(toy_program.num_blocks)
        assert counts.sum() == trace.num_block_executions


class TestWalkErrors:
    def test_zero_budget_rejected(self, toy_program, toy_models):
        walker = CfgWalker(toy_program, toy_models)
        with pytest.raises(TraceError, match="positive"):
            walker.walk(0)

    def test_runaway_recursion_detected(self):
        builder = ProgramBuilder("rec")
        fn = builder.function("main")
        fn.block("a", 1, call="main")
        fn.block("b", 1, ret=True)
        program = builder.build()
        walker = CfgWalker(program, BranchModelMap({}))
        with pytest.raises(TraceError, match="recursion"):
            walker.walk(100_000)
