"""Unit tests for the way-memoization comparator (Ma et al.)."""

import pytest

from repro.schemes.way_memoization import WayMemoizationScheme
from repro.trace.events import SEQUENTIAL_SLOT
from tests.scheme_helpers import TINY_GEOMETRY, events_from, line_of


def run(specs):
    scheme = WayMemoizationScheme(TINY_GEOMETRY, page_size=16)
    return scheme, scheme.run(events_from(specs))


class TestLinkLearning:
    def test_first_transition_full_search_writes_link(self):
        _, counters = run([(0x00, 1), (0x10, 1, SEQUENTIAL_SLOT)])
        assert counters.full_searches == 2  # both cold
        assert counters.link_writes == 1  # the 0x00 -> 0x10 sequential link

    def test_repeated_transition_follows_link(self):
        # loop between two lines: A -> B -> A -> B ... via branch slot 1
        a, b = 0x00, 0x10
        specs = [(a, 2)] + [(b, 2, 1), (a, 2, 1)] * 5
        _, counters = run(specs)
        assert counters.link_followed >= 8  # all but the first two transitions
        assert counters.full_searches <= 3
        # link-followed transitions are guaranteed hits with no precharge
        assert counters.ways_precharged == counters.full_searches * 4

    def test_link_keys_distinguish_slots(self):
        # Transitions from line A via two different slots both get links.
        a, b, c = 0x00, 0x10, 0x20
        specs = [(a, 1), (b, 1, 0), (a, 1, 1), (c, 1, 2), (a, 1, 1)]
        scheme, counters = run(specs)
        assert counters.link_writes == 4

    def test_sequential_and_branch_links_distinct(self):
        a, b = 0x00, 0x10
        specs = [
            (a, 1),
            (b, 1, SEQUENTIAL_SLOT),
            (a, 1, 1),
            (b, 1, 1),  # branch-slot link, distinct from the sequential one
            (a, 1, 1),
            (b, 1, SEQUENTIAL_SLOT),  # now the sequential link hits
        ]
        _, counters = run(specs)
        assert counters.link_followed >= 2


class TestLinkInvalidation:
    def test_link_stale_after_target_eviction(self):
        geometry = TINY_GEOMETRY
        a = line_of(geometry, 1, 0)  # the link source, parked in set 1
        set0 = [line_of(geometry, 0, tag) for tag in range(5)]
        b = set0[0]
        # learn a->b, then wipe set 0 with 4 more tags (b evicted), then a->b
        specs = (
            [(a, 1), (b, 1, 0), (a, 1, 0), (b, 1, 0)]  # learn and confirm
            + [(line, 1, 0) for line in set0[1:]]  # evict b from set 0
            + [(a, 1, 0), (b, 1, 0)]  # the old link must NOT be followed
        )
        scheme, counters = run(specs)
        # the final a->b transition found b evicted: full search + miss
        assert counters.misses >= 6
        scheme.cache.assert_no_duplicate_tags()

    def test_link_stale_after_source_replacement(self):
        geometry = TINY_GEOMETRY
        a = line_of(geometry, 0, 0)
        b = line_of(geometry, 1, 0)
        fillers = [line_of(geometry, 0, tag) for tag in range(1, 5)]
        specs = (
            [(a, 1), (b, 1, 0)]  # learn a->b (link on a's physical slot)
            + [(f, 1, 0) for f in fillers]  # replace a in set 0
            + [(a, 1, 0)]  # a refilled in some way; its links are fresh
            + [(b, 1, 0)]  # must not blindly follow the stale slot link
        )
        _, counters = run(specs)
        # b is still resident at the end; the final transition must not
        # follow the stale physical-slot link — it full-searches and hits.
        assert counters.hits == 1
        assert counters.misses == 7
        assert counters.link_followed == 0

    def test_varying_target_never_links_wrongly(self):
        # A return-like slot jumping to different lines each time: the link
        # must mismatch (full search) rather than fetch the wrong line.
        a, b, c = 0x00, 0x10, 0x20
        specs = [(a, 1), (b, 1, 3), (a, 1, 0), (c, 1, 3), (a, 1, 0), (b, 1, 3)]
        _, counters = run(specs)
        # transitions via slot 3 alternate b/c; each flips the link
        assert counters.link_followed <= 2
        assert counters.hits + counters.misses == counters.line_events


class TestOverheadAccounting:
    def test_links_per_line(self):
        scheme = WayMemoizationScheme(TINY_GEOMETRY, page_size=16)
        # 16B line = 4 instructions -> 4 slot links + 1 sequential link
        assert scheme.links_per_line == 5

    def test_same_line_skip_default_on(self):
        _, counters = run([(0x00, 6)])
        assert counters.same_line_fetches == 5
        assert counters.ways_precharged == 4  # one cold full search


class TestInvalidationPolicies:
    def test_flash_clears_all_links_on_fill(self):
        geometry = TINY_GEOMETRY
        a, b = 0x00, 0x10
        # learn a->b twice, then force a miss elsewhere, then retry a->b
        specs = [
            (a, 1), (b, 1, 0), (a, 1, 0), (b, 1, 0),
            (0x200, 1, 0),  # miss: flash-clears the link table
            (a, 1, 0), (b, 1, 0),
        ]
        exact = WayMemoizationScheme(TINY_GEOMETRY, page_size=16)
        exact_counters = exact.run(events_from(specs))
        flash = WayMemoizationScheme(
            TINY_GEOMETRY, page_size=16, invalidation="flash"
        )
        flash_counters = flash.run(events_from(specs))
        # flash can only follow fewer links...
        assert flash_counters.link_followed < exact_counters.link_followed
        # ...but cache contents (hits/misses) are identical
        assert flash_counters.misses == exact_counters.misses
        assert flash_counters.hits == exact_counters.hits

    def test_flash_never_beats_exact(self):
        # random-ish longer stream: exact tracking is an upper bound
        specs = [((i * 7) % 13 * 16, 2, i % 4) for i in range(200)]
        specs = [s for i, s in enumerate(specs) if i == 0 or s[0] != specs[i - 1][0]]
        exact = WayMemoizationScheme(TINY_GEOMETRY, page_size=16).run(
            events_from(specs)
        )
        flash = WayMemoizationScheme(
            TINY_GEOMETRY, page_size=16, invalidation="flash"
        ).run(events_from(specs))
        assert flash.link_followed <= exact.link_followed
        assert flash.ways_precharged >= exact.ways_precharged

    def test_unknown_policy_rejected(self):
        import pytest as _pytest

        with _pytest.raises(Exception, match="invalidation"):
            WayMemoizationScheme(TINY_GEOMETRY, page_size=16, invalidation="lazy")
