"""Unit tests for the interprocedural CFG."""

import pytest

from repro.errors import ProgramError
from repro.program.cfg import EdgeKind
from tests.conftest import build_toy_program


class TestEdges:
    def setup_method(self):
        self.program = build_toy_program()
        self.cfg = self.program.cfg

    def uid(self, function, label):
        return self.program.uid_of_label(function, label)

    def test_fallthrough_edge(self):
        edges = self.cfg.successors(self.uid("main", "entry"))
        assert [(e.kind, e.dst) for e in edges] == [
            (EdgeKind.FALLTHROUGH, self.uid("main", "loop_head"))
        ]

    def test_condjump_has_two_successors(self):
        edges = self.cfg.successors(self.uid("main", "latch"))
        kinds = {e.kind for e in edges}
        assert kinds == {EdgeKind.TAKEN, EdgeKind.FALLTHROUGH}

    def test_call_block_has_call_and_continuation(self):
        edges = self.cfg.successors(self.uid("main", "body"))
        by_kind = {e.kind: e.dst for e in edges}
        assert by_kind[EdgeKind.CALL] == self.uid("helper", "h0")
        assert by_kind[EdgeKind.CONTINUATION] == self.uid("main", "latch")

    def test_return_has_no_static_successors(self):
        assert self.cfg.successors(self.uid("main", "fin")) == []
        assert self.cfg.successors(self.uid("helper", "h1")) == []

    def test_predecessors_inverse_of_successors(self):
        for block in self.program.blocks():
            for edge in self.cfg.successors(block.uid):
                assert edge in self.cfg.predecessors(edge.dst)

    def test_fallthrough_successor_helper(self):
        assert self.cfg.fallthrough_successor(
            self.uid("main", "entry")
        ) == self.uid("main", "loop_head")

    def test_fallthrough_successor_raises_on_returns(self):
        fin = self.uid("main", "fin")
        assert not self.cfg.has_fallthrough(fin)
        with pytest.raises(ProgramError, match="fin.*no fall-through"):
            self.cfg.fallthrough_successor(fin)

    def test_has_fallthrough_matches_successor_kinds(self):
        for block in self.program.blocks():
            kinds = {e.kind for e in self.cfg.successors(block.uid)}
            expected = bool(kinds & {EdgeKind.FALLTHROUGH, EdgeKind.CONTINUATION})
            assert self.cfg.has_fallthrough(block.uid) == expected

    def test_reachability_covers_whole_toy_program(self):
        reachable = set(self.cfg.reachable_from(self.program.entry_block.uid))
        assert reachable == {b.uid for b in self.program.blocks()}
