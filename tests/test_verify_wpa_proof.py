"""Unit tests for the symbolic way-placement proof."""

from __future__ import annotations

import pytest

from repro.analysis.context import GeometrySpec

from repro.verify.wpa_proof import prove_wpa_placement

XSCALE = GeometrySpec(size_bytes=32 * 1024, ways=32, line_size=32)


def test_full_capacity_wpa_is_injective():
    proof = prove_wpa_placement(XSCALE, 32 * 1024, page_size=1024)
    assert proof.holds
    assert proof.num_lines == 1024
    assert proof.distinct_homes == 1024  # every (set, way) exactly once
    assert proof.num_conflicts == 0
    assert proof.conflicts == ()


def test_partial_wpa_is_injective():
    proof = prove_wpa_placement(XSCALE, 8 * 1024, page_size=1024)
    assert proof.holds
    assert proof.distinct_homes == proof.num_lines == 256


def test_oversized_wpa_wraps_and_conflicts():
    proof = prove_wpa_placement(XSCALE, 64 * 1024, page_size=1024)
    assert not proof.injective and not proof.holds
    # Every line beyond one capacity clashes with its image one period back.
    assert proof.num_conflicts == 1024
    first, second = proof.conflicts[0]
    assert second - first == 32 * 1024


def test_conflict_witnesses_share_a_home():
    small = GeometrySpec(size_bytes=1024, ways=2, line_size=32)
    proof = prove_wpa_placement(small, 2048, page_size=1024)
    assert not proof.injective
    for first, second in proof.conflicts:
        assert small.set_index(first) == small.set_index(second)
        assert small.mandated_way(first) == small.mandated_way(second)


def test_unaligned_wpa_straddles_a_page():
    proof = prove_wpa_placement(XSCALE, 1536, page_size=1024)
    assert proof.injective  # placement itself is fine
    assert not proof.itlb_representable and not proof.holds
    assert proof.straddled_page == 1


def test_unsound_geometry_fails_extraction():
    proof = prove_wpa_placement(GeometrySpec(3000, 3, 24), 1024, page_size=1024)
    assert not proof.extraction_consistent and not proof.holds
    assert proof.extraction_mismatches


def test_degenerate_inputs_do_not_crash():
    assert prove_wpa_placement(GeometrySpec(0, 0, 0), 1024).num_lines == 0
    assert prove_wpa_placement(XSCALE, 0).num_lines == 0


@pytest.mark.parametrize("wpa_kb", [1, 2, 4, 8, 16, 32])
def test_every_aligned_wpa_up_to_capacity_holds(wpa_kb):
    proof = prove_wpa_placement(XSCALE, wpa_kb * 1024, page_size=1024)
    assert proof.holds


def test_to_dict_is_json_ready():
    import json

    proof = prove_wpa_placement(XSCALE, 64 * 1024, page_size=1024)
    payload = proof.to_dict()
    assert json.loads(json.dumps(payload)) == payload
    assert payload["holds"] is False
    assert payload["num_conflicts"] == 1024
