"""The abstract cache domain: lattice laws and per-access soundness.

The must/may lattice (:mod:`repro.analysis.absint.lattice`) is the
foundation of every static claim downstream — classifications, counter
bounds, pruning certificates.  Two layers of defense here:

* **algebra** — ``join`` is a commutative, associative, idempotent least
  upper bound for the "smaller must / larger may" order, and the
  transfer function preserves that order (monotonicity), so the fixpoint
  iteration is well-defined;
* **soundness against the reference schemes** — walking the abstract
  state alongside a concrete :class:`BaselineScheme` /
  :class:`WayPlacementScheme` replay of the *same* event stream, a
  static ``HIT`` verdict always coincides with a concrete hit and a
  static ``MISS`` with a concrete miss, on Hypothesis-generated streams.

Plus the two structural proofs the precision rests on: budget-one sets
(fills are permanent) and definite forced evictions (provable
way-placement thrash).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.absint import AbstractState, CacheUniverse, Classification
from repro.schemes.baseline import BaselineScheme
from repro.schemes.way_placement import WayPlacementScheme
from tests.scheme_helpers import TINY_GEOMETRY, events_from
from tests.test_schemes_equivalence import event_streams

#: TINY_GEOMETRY is 4 sets x 4 ways x 16B lines; set = addr[5:4],
#: mandated way = addr[7:6], so addresses 256 apart share both.
HOME_STRIDE = 64
ALIAS_STRIDE = 256


def states(universe_size: int = 6):
    masks = st.integers(0, (1 << universe_size) - 1)
    return st.tuples(masks, masks).map(
        lambda pair: AbstractState(pair[0] & pair[1], pair[1])
    )


def less_precise(a: AbstractState, b: AbstractState) -> bool:
    """``a`` is below ``b`` in the lattice order (a safe weakening)."""
    return (a.must & b.must) == a.must and (a.may | b.may) == a.may


class TestLatticeAlgebra:
    @given(states(), states())
    def test_join_commutes(self, a, b):
        assert a.join(b) == b.join(a)

    @given(states(), states(), states())
    def test_join_associates(self, a, b, c):
        assert a.join(b).join(c) == a.join(b.join(c))

    @given(states())
    def test_join_idempotent(self, a):
        assert a.join(a) == a

    @given(states(), states())
    def test_join_is_upper_bound(self, a, b):
        joined = a.join(b)
        assert less_precise(joined, a) and less_precise(joined, b)

    def test_empty_is_cold(self):
        empty = AbstractState.empty()
        assert empty.must == 0 and empty.may == 0


@pytest.mark.parametrize("scheme,wpa_size", [("baseline", 0), ("way-placement", 256)])
@given(event_streams(), st.data())
@settings(max_examples=40, deadline=None)
def test_transfer_monotone(scheme, wpa_size, specs, data):
    """s1 below s2 implies access(s1) below access(s2), for every line."""
    addrs = [spec[0] for spec in specs]
    universe = CacheUniverse(addrs, TINY_GEOMETRY, scheme, wpa_size)
    full = (1 << universe.num_lines) - 1
    may2 = data.draw(st.integers(0, full))
    must2 = data.draw(st.integers(0, full)) & may2
    s2 = AbstractState(must2, may2)
    # A weakening of s2: drop from must, add to may.
    s1 = AbstractState(
        must2 & data.draw(st.integers(0, full)),
        may2 | data.draw(st.integers(0, full)),
    )
    for index in range(universe.num_lines):
        assert less_precise(universe.access(s1, index), universe.access(s2, index))


def concrete_miss_deltas(scheme_factory, specs):
    """Cumulative-miss deltas per event, via prefix replays of the scheme."""
    deltas = []
    previous = 0
    for i in range(1, len(specs) + 1):
        misses = scheme_factory().run(events_from(specs[:i])).misses
        deltas.append(misses - previous)
        previous = misses
    return deltas


@pytest.mark.parametrize(
    "scheme,wpa_size",
    [("baseline", 0), ("way-placement", 128), ("way-placement", 656)],
)
@given(event_streams())
@settings(max_examples=25, deadline=None)
def test_classification_sound_against_reference(scheme, wpa_size, specs):
    """Static HIT => concrete hit, static MISS => concrete miss, per access."""
    if scheme == "baseline":
        factory = lambda: BaselineScheme(TINY_GEOMETRY, page_size=16)
    else:
        factory = lambda: WayPlacementScheme(
            TINY_GEOMETRY, wpa_size=wpa_size, page_size=16
        )
    deltas = concrete_miss_deltas(factory, specs)
    universe = CacheUniverse([s[0] for s in specs], TINY_GEOMETRY, scheme, wpa_size)
    state = AbstractState.empty()
    for spec, delta in zip(specs, deltas):
        index = universe.index[spec[0]]
        verdict = universe.classify(state, index)
        if verdict is Classification.HIT:
            assert delta == 0, f"static HIT but concrete miss at {spec}"
        elif verdict is Classification.MISS:
            assert delta == 1, f"static MISS but concrete hit at {spec}"
        state = universe.access(state, index)
        # The soundness invariant: must <= may always.
        assert state.must & state.may == state.must


class TestBudgetOne:
    def test_baseline_set_within_ways_is_budget_one(self):
        addrs = [i * HOME_STRIDE for i in range(4)]  # one set, 4 distinct tags
        universe = CacheUniverse(addrs, TINY_GEOMETRY, "baseline", 0)
        assert all(universe.budget_one)
        state = AbstractState.empty()
        for index in range(universe.num_lines):
            state = universe.access(state, index)
        # Every fill was permanent: all lines are guaranteed resident.
        for index in range(universe.num_lines):
            assert universe.classify(state, index) is Classification.HIT

    def test_baseline_set_beyond_ways_is_not(self):
        addrs = [i * HOME_STRIDE for i in range(5)]  # 5 tags > 4 ways
        universe = CacheUniverse(addrs, TINY_GEOMETRY, "baseline", 0)
        assert not any(universe.budget_one)
        state = AbstractState.empty()
        for index in range(universe.num_lines):
            state = universe.access(state, index)
        # An unconstrained fill guarantees only the last accessed line.
        assert state.must == 1 << (universe.num_lines - 1)

    def test_way_placement_distinct_homes_is_budget_one(self):
        # Four WPA lines of one set with pairwise distinct mandated ways.
        addrs = [i * HOME_STRIDE for i in range(4)]
        universe = CacheUniverse(addrs, TINY_GEOMETRY, "way-placement", 512)
        assert all(universe.is_wpa) and all(universe.budget_one)

    def test_way_placement_aliased_homes_is_not(self):
        addrs = [0, ALIAS_STRIDE]  # same set, same mandated way
        universe = CacheUniverse(addrs, TINY_GEOMETRY, "way-placement", 512)
        assert not any(universe.budget_one)


def test_definite_forced_eviction_proves_thrash():
    """A certain miss on a WPA line statically evicts its home aliases."""
    a, b = 0, ALIAS_STRIDE
    universe = CacheUniverse([a, b], TINY_GEOMETRY, "way-placement", 512)
    state = universe.access(AbstractState.empty(), universe.index[a])
    assert universe.classify(state, universe.index[a]) is Classification.HIT
    # b has never been seen: its access is a guaranteed miss whose forced
    # fill lands in a's mandated way — a is provably gone.
    state = universe.access(state, universe.index[b])
    assert universe.classify(state, universe.index[a]) is Classification.MISS
    # And the ping-pong repeats: re-fetching a definitely evicts b.
    state = universe.access(state, universe.index[a])
    assert universe.classify(state, universe.index[b]) is Classification.MISS
