"""Seeded-fault tests for the ``V`` verification rules.

``V_TRIGGERS`` mirrors the ``TRIGGERS`` mapping of
``tests/test_analysis_rules.py``: one builder per rule id returning a
context corrupted so that exactly that rule's invariant is violated.  The
registry-completeness test over there consumes this mapping, so a new V
rule without a trigger fails loudly.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    Analyzer,
    AnalysisContext,
    DEFAULT_REGISTRY,
    GeometrySpec,
    LayoutView,
    ProgramView,
)
from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import Register
from repro.program import ProgramBuilder
from repro.program.basic_block import BasicBlock, BlockKind
from repro.program.function import Function


def _flow_program():
    builder = ProgramBuilder("flow")
    main = builder.function("main")
    main.block("a", 2)
    main.block("b", 2, branch="a")
    main.block("c", 1, call="helper")
    main.block("d", 1, ret=True)
    helper = builder.function("helper")
    helper.block("h0", 1, ret=True)
    return builder.build(entry="main")


def _uids(program):
    return {
        label: program.uid_of_label(function, label)
        for function, label in (
            ("main", "a"),
            ("main", "b"),
            ("main", "c"),
            ("main", "d"),
            ("helper", "h0"),
        )
    }


def _good_profile(uids):
    blocks = {uids["a"]: 2, uids["b"]: 2, uids["c"]: 1, uids["h0"]: 1, uids["d"]: 1}
    edges = {
        (uids["a"], uids["b"]): 2,
        (uids["b"], uids["a"]): 1,
        (uids["b"], uids["c"]): 1,
        (uids["c"], uids["h0"]): 1,
        (uids["h0"], uids["d"]): 1,
    }
    return blocks, edges


def _profiled_context(block_counts=None, edge_counts=None, layout=None):
    program = _flow_program()
    uids = _uids(program)
    blocks, edges = _good_profile(uids)
    context = AnalysisContext(
        subject="flow",
        program=ProgramView.from_program(program),
        block_counts=block_counts(uids, blocks) if block_counts else blocks,
        edge_counts=edge_counts(uids, edges) if edge_counts else edges,
        layout=layout(uids) if layout else None,
    )
    return context


# ---------------------------------------------------------------------------
# Triggers: one corrupted context per rule
# ---------------------------------------------------------------------------
def _trigger_v001():
    def tamper(uids, blocks):
        blocks[uids["b"]] += 3  # count no longer explained by inflow
        return blocks

    return _profiled_context(block_counts=tamper)


def _trigger_v002():
    def tamper(uids, edges):
        edges[(uids["a"], uids["c"])] = 1  # a never reaches c directly
        return edges

    return _profiled_context(edge_counts=tamper)


def _trigger_v003():
    # c executed while its dominator b never ran (no edge counts: the
    # dominator rule must fire on block counts alone).
    program = _flow_program()
    uids = _uids(program)
    return AnalysisContext(
        subject="flow",
        program=ProgramView.from_program(program),
        block_counts={uids["a"]: 1, uids["b"]: 0, uids["c"]: 1},
    )


def _trigger_v004():
    def misplace(uids):
        # b must start at a.end (8 bytes of a) but sits at 64.
        return LayoutView(
            "flow",
            {uids["a"]: 0, uids["b"]: 64},
            {uids["a"]: 8, uids["b"]: 12},
        )

    return _profiled_context(layout=misplace)


def _trigger_v005():
    # 1KB cache, 2KB WPA: every line past one capacity wraps onto an
    # earlier line's (set, way) home.
    return AnalysisContext(
        subject="t",
        geometry=GeometrySpec(size_bytes=1024, ways=2, line_size=32),
        wpa_size=2048,
        page_size=1024,
    )


def _trigger_v006():
    # Non-power-of-two geometry: bit slicing cannot agree with the
    # arithmetic mapping.
    return AnalysisContext(
        subject="t",
        geometry=GeometrySpec(size_bytes=3000, ways=3, line_size=24),
        wpa_size=1024,
        page_size=1024,
    )


V_TRIGGERS = {
    "V001": _trigger_v001,
    "V002": _trigger_v002,
    "V003": _trigger_v003,
    "V004": _trigger_v004,
    "V005": _trigger_v005,
    "V006": _trigger_v006,
}


@pytest.mark.parametrize("rule_id", sorted(V_TRIGGERS))
def test_rule_fires_on_its_trigger(rule_id):
    diagnostics = Analyzer().run(V_TRIGGERS[rule_id]())
    assert rule_id in {d.rule_id for d in diagnostics}


@pytest.mark.parametrize("rule_id", sorted(V_TRIGGERS))
def test_rule_respects_default_severity(rule_id):
    diagnostics = Analyzer().run(V_TRIGGERS[rule_id]())
    expected = DEFAULT_REGISTRY.get(rule_id).severity
    for diagnostic in diagnostics:
        if diagnostic.rule_id == rule_id:
            assert diagnostic.severity is expected


def test_consistent_profile_passes_all_v_rules():
    assert Analyzer(select=("V",)).run(_profiled_context()) == []


def test_v_rules_gate_on_missing_context():
    # A config-only context must not crash or fire the dataflow rules.
    context = AnalysisContext(subject="c")
    assert Analyzer(select=("V",)).run(context) == []


def test_v003_flags_unreachable_executed_blocks():
    ret = Instruction(Opcode.RET)
    alu = Instruction(Opcode.ADD, rd=Register.R1, rn=Register.R2, rm=Register.R3)
    main = Function(
        "main",
        (
            BasicBlock(
                uid=0,
                label="a",
                function="main",
                instructions=(alu, ret),
                kind=BlockKind.RETURN,
            ),
        ),
    )
    orphan = Function(
        "orphan",
        (
            BasicBlock(
                uid=1,
                label="o",
                function="orphan",
                instructions=(ret,),
                kind=BlockKind.RETURN,
            ),
        ),
    )
    context = AnalysisContext(
        subject="t",
        program=ProgramView("t", [main, orphan], entry="main"),
        block_counts={0: 1, 1: 7},  # the orphan can never have run
    )
    diagnostics = [
        d for d in Analyzer(select=("V003",)).run(context) if d.rule_id == "V003"
    ]
    assert diagnostics and "unreachable" in diagnostics[0].message


def test_v006_flags_page_straddling_wpa():
    context = AnalysisContext(
        subject="t",
        geometry=GeometrySpec(size_bytes=32 * 1024, ways=32, line_size=32),
        wpa_size=1536,
        page_size=1024,
    )
    diagnostics = [
        d for d in Analyzer(select=("V006",)).run(context) if d.rule_id == "V006"
    ]
    assert diagnostics and "splits page" in diagnostics[0].message


def test_v001_finding_names_the_worst_block():
    diagnostics = Analyzer(select=("V001",)).run(_trigger_v001())
    assert len(diagnostics) == 1
    assert "incoming edges carry" in diagnostics[0].message
    assert diagnostics[0].location.kind == "program"


def test_verifier_runs_under_the_lint_selector_machinery():
    # The V pack is part of the standard registry: prefix selection works.
    analyzer = Analyzer(select=("V",))
    assert analyzer.rule_ids == sorted(V_TRIGGERS)
