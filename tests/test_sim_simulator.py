"""Integration-level tests of the Simulator driver."""

import pytest

from repro.errors import SchemeError
from repro.layout import original_layout, way_placement_layout
from repro.profiling import profile_program
from repro.sim import Simulator, XSCALE_BASELINE, simulate
from repro.trace.executor import CfgWalker
from repro.trace.fetch import line_events_from_block_trace


class TestSimulateConvenience:
    def test_end_to_end_baseline(self, toy_program, toy_models):
        layout = original_layout(toy_program)
        report = simulate(
            toy_program, layout, "baseline", toy_models, max_instructions=2000
        )
        assert report.counters.fetches >= 2000
        assert report.cycles >= report.counters.fetches
        assert report.icache_energy_pj > 0
        assert report.scheme == "baseline"

    def test_way_placement_saves_energy_on_toy(self, toy_program, toy_models):
        profile = profile_program(toy_program, toy_models, 2000)
        base_layout = original_layout(toy_program)
        wp_layout = way_placement_layout(toy_program, profile.block_counts)
        baseline = simulate(
            toy_program, base_layout, "baseline", toy_models, 4000
        )
        placed = simulate(
            toy_program,
            wp_layout,
            "way-placement",
            toy_models,
            4000,
            wpa_size=1024,
        )
        result = placed.normalise(baseline)
        assert result.icache_energy < 0.75
        assert result.ed_product < 1.0

    def test_normalise_rejects_mismatched_benchmark(self, toy_program, toy_models):
        layout = original_layout(toy_program)
        a = simulate(toy_program, layout, "baseline", toy_models, 1000)
        mismatched = simulate(
            toy_program, layout, "baseline", toy_models, 1000
        )
        object.__setattr__(mismatched, "benchmark", "other")
        with pytest.raises(Exception):
            a.normalise(mismatched)


class TestRunEventsValidation:
    def _events(self, toy_program, toy_models):
        trace = CfgWalker(toy_program, toy_models, seed=0).walk(1000)
        layout = original_layout(toy_program)
        return line_events_from_block_trace(trace, toy_program, layout, 32)

    def test_wpa_page_multiple_enforced(self, toy_program, toy_models):
        events = self._events(toy_program, toy_models)
        simulator = Simulator()
        with pytest.raises(SchemeError, match="multiple"):
            simulator.run_events(events, "way-placement", wpa_size=1500)

    def test_wpa_rejected_for_other_schemes(self, toy_program, toy_models):
        events = self._events(toy_program, toy_models)
        simulator = Simulator()
        with pytest.raises(SchemeError, match="does not take"):
            simulator.run_events(events, "baseline", wpa_size=1024)

    def test_unknown_scheme(self, toy_program, toy_models):
        events = self._events(toy_program, toy_models)
        simulator = Simulator()
        with pytest.raises(SchemeError, match="unknown scheme"):
            simulator.run_events(events, "psychic-cache")

    def test_report_fields_populated(self, toy_program, toy_models):
        events = self._events(toy_program, toy_models)
        report = Simulator().run_events(
            events, "way-placement", benchmark="toy", wpa_size=1024
        )
        assert report.wpa_size == 1024
        assert report.geometry == XSCALE_BASELINE.icache
        assert report.processor.instructions == report.counters.fetches
