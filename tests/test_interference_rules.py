"""One failing fixture per interference rule, plus the layer's gating.

``I_TRIGGERS`` mirrors ``TRIGGERS``/``V_TRIGGERS`` from the sibling rule
suites: each builder returns a minimal context violating exactly the
pathology its rule describes, and the completeness test in
``test_analysis_rules`` pins the union of all three maps to the registry.

Every context uses the hand-checkable tiny geometry (4 sets x 4 ways x
16B lines), where set and mandated-way arithmetic can be verified from
the addresses alone: set = addr[5:4], mandated way = addr[7:6].
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    Analyzer,
    AnalysisContext,
    DEFAULT_REGISTRY,
    GeometrySpec,
    LayoutView,
    ProgramView,
)
from repro.isa.instructions import INSTRUCTION_SIZE
from repro.program import ProgramBuilder
from tests.conftest import build_toy_program

TINY = GeometrySpec(size_bytes=256, ways=4, line_size=16)


def _loop_program(loop_blocks, block_size=4):
    """main: entry -> l0 .. l(n-1) (-> l0) -> fin; the l* form one loop."""
    builder = ProgramBuilder("t")
    main = builder.function("main")
    main.block("entry", 1)
    for index in range(loop_blocks):
        branch = "l0" if index == loop_blocks - 1 else None
        main.block(f"l{index}", block_size, branch=branch)
    main.block("fin", 1, ret=True)
    return builder.build(entry="main")


def _context(program, placements, wpa_size=None):
    """A context placing blocks by label; labels absent stay unplaced."""
    addresses, sizes = {}, {}
    for block in program.blocks():
        if block.label in placements:
            addresses[block.uid] = placements[block.label]
            sizes[block.uid] = block.num_instructions * INSTRUCTION_SIZE
    return AnalysisContext(
        subject="t",
        program=ProgramView.from_program(program),
        layout=LayoutView("t", addresses, sizes),
        geometry=TINY,
        wpa_size=wpa_size,
    )


def _trigger_i001():
    # Six 16B loop blocks at a 64B stride: the 6-line loop fits the
    # 16-line cache but piles all six lines into set 0 (4 ways; an even
    # spread would need 2 per set).
    program = _loop_program(6)
    placements = {f"l{i}": 64 * i for i in range(6)}
    placements.update({"entry": 352, "fin": 356})
    return _context(program, placements)


def _trigger_i002():
    # The 84-byte program fits the cache, yet the loop's set-0 lines sit
    # on both sides of the 64B WPA boundary.
    program = _loop_program(2)
    return _context(
        program, {"entry": 32, "l0": 0, "l1": 64, "fin": 80}, wpa_size=64
    )


def _trigger_i003():
    # Lines 0x0 and 0x100 share set 0 *and* mandated way 0; a WPA
    # covering both breaks the one-home-per-line contract.
    program = _loop_program(1)
    return _context(
        program, {"entry": 0, "l0": 256, "fin": 16}, wpa_size=512
    )


def _trigger_i004():
    # The only same-set pair in the program is the loop's (0x0, 0x40),
    # so set 0 carries 100% of the predicted conflict weight.
    program = _loop_program(2)
    return _context(program, {"entry": 32, "l0": 0, "l1": 64, "fin": 48})


def _trigger_i005():
    # l1 is inside the loop but the layout never places it.
    program = _loop_program(2)
    return _context(program, {"entry": 0, "l0": 16, "fin": 32})


def _trigger_i006():
    # The binary fits the cache but looped line 0x40 lies above the 64B
    # WPA boundary (no set has lines on both sides, keeping I002 quiet).
    program = _loop_program(2)
    return _context(
        program, {"entry": 32, "l0": 16, "l1": 64, "fin": 48}, wpa_size=64
    )


I_TRIGGERS = {
    "I001": _trigger_i001,
    "I002": _trigger_i002,
    "I003": _trigger_i003,
    "I004": _trigger_i004,
    "I005": _trigger_i005,
    "I006": _trigger_i006,
}


@pytest.mark.parametrize("rule_id", sorted(I_TRIGGERS))
def test_rule_fires_on_its_trigger(rule_id):
    diagnostics = Analyzer().run(I_TRIGGERS[rule_id]())
    fired = {diagnostic.rule_id for diagnostic in diagnostics}
    assert rule_id in fired


@pytest.mark.parametrize("rule_id", sorted(I_TRIGGERS))
def test_rule_respects_default_severity(rule_id):
    diagnostics = Analyzer().run(I_TRIGGERS[rule_id]())
    expected = DEFAULT_REGISTRY.get(rule_id).severity
    for diagnostic in diagnostics:
        if diagnostic.rule_id == rule_id:
            assert diagnostic.severity is expected


@pytest.mark.parametrize("rule_id", sorted(I_TRIGGERS))
def test_findings_carry_suggestions_and_interference_locations(rule_id):
    diagnostics = Analyzer().run(I_TRIGGERS[rule_id]())
    target = [d for d in diagnostics if d.rule_id == rule_id]
    assert target
    for diagnostic in target:
        assert diagnostic.suggestion
        assert diagnostic.location.kind == "interference"


def test_layer_self_gates_without_a_layout():
    """Program-only contexts skip the whole layer silently."""
    context = AnalysisContext.for_program(build_toy_program())
    assert Analyzer(select=("I",)).run(context) == []


def test_layer_self_gates_on_unsound_geometry():
    program = _loop_program(2)
    context = _context(program, {"entry": 0, "l0": 16, "l1": 32, "fin": 48})
    context.geometry = GeometrySpec(size_bytes=100, ways=3, line_size=16)
    assert Analyzer(select=("I",)).run(context) == []


def test_healthy_toy_layout_is_interference_clean():
    """A contiguous toy placement on a cache it fits has no findings."""
    program = build_toy_program()
    placements, cursor = {}, 0
    for block in program.blocks():
        placements[block.label] = cursor
        cursor += block.num_instructions * INSTRUCTION_SIZE
    context = _context(program, placements, wpa_size=256)
    assert Analyzer(select=("I",)).run(context) == []
