"""Static counter bounds: every engine tier stays inside the bracket.

:func:`repro.analysis.absint.bounds.footprint_bounds` claims that for
any replay of a given event stream, every :class:`FetchCounters` field
lies in ``[lower, upper]``.  The claim is checked against all four
engine tiers — the reference schemes, the vectorized kernels, the
batched family kernel, and the differential family kernel — on
Hypothesis-generated streams over an adversarial option grid, plus:

* **exactness** on structurally eviction-free (budget-one) streams,
  where the interval must collapse to a point;
* **refinement**: proven never-hit lines raise the miss lower bound and
  the refined bracket still contains the real run;
* **gating**: :func:`bounds_for_options` declines (returns ``None``)
  exactly the configurations the model does not cover;
* **energy**: pricing the bracket endpoints brackets the priced energy
  of the real run (model monotonicity).
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings

from repro.cache.access import FetchCounters
from repro.energy.cache_model import CacheEnergyModel
from repro.energy.params import EnergyParams
from repro.engine.batch import BatchMember, batch_counters
from repro.engine.differential import differential_counters
from repro.engine.kernels import fast_counters
from repro.analysis.absint import bounds_for_options, energy_bounds, footprint_bounds
from tests.scheme_helpers import TINY_GEOMETRY, events_from
from tests.test_engine_batch import MIXED_FAMILY, reference_counters
from tests.test_schemes_equivalence import event_streams


def assert_bracketed(bounds, counters, label):
    violations = bounds.violations(counters)
    rendered = "; ".join(v.render() for v in violations)
    assert violations == [], f"{label}: {rendered}"


def bounds_for(member, events):
    bounds = bounds_for_options(
        member.scheme, events, TINY_GEOMETRY, dict(member.options)
    )
    assert bounds is not None, f"{member} should be modelled"
    return bounds


class TestBracketing:
    @given(event_streams())
    @settings(max_examples=50, deadline=None)
    def test_reference_and_vector_tiers(self, specs):
        events = events_from(specs)
        for member in MIXED_FAMILY:
            bounds = bounds_for(member, events)
            assert_bracketed(
                bounds, reference_counters(member, events), f"reference {member}"
            )
            kernel = fast_counters(
                member.scheme, events, TINY_GEOMETRY, **dict(member.options)
            )
            assert_bracketed(bounds, kernel, f"vector {member}")

    @given(event_streams())
    @settings(max_examples=50, deadline=None)
    def test_batch_and_differential_tiers(self, specs):
        events = events_from(specs)
        batched = batch_counters(events, TINY_GEOMETRY, MIXED_FAMILY)
        differential = differential_counters(events, TINY_GEOMETRY, MIXED_FAMILY)
        for member, batch, diff in zip(MIXED_FAMILY, batched, differential):
            bounds = bounds_for(member, events)
            assert_bracketed(bounds, batch, f"batch {member}")
            assert_bracketed(bounds, diff, f"differential {member}")

    @given(event_streams())
    @settings(max_examples=50, deadline=None)
    def test_bracket_is_ordered(self, specs):
        events = events_from(specs)
        for member in MIXED_FAMILY:
            bounds = bounds_for(member, events)
            for field in dataclasses.fields(FetchCounters):
                low = getattr(bounds.lower, field.name)
                high = getattr(bounds.upper, field.name)
                assert 0 <= low <= high, f"{field.name} bracket inverted"


class TestExactness:
    def test_budget_one_stream_collapses_to_a_point(self):
        # Four distinct lines of one set in a 4-way cache: structurally
        # eviction-free, so hits/misses/fills/evictions are all exact.
        specs = [(0, 1), (64, 1), (128, 1), (192, 1), (0, 2), (128, 1)]
        events = events_from(specs)
        bounds = footprint_bounds("baseline", events, TINY_GEOMETRY, page_size=16)
        assert bounds.lower == bounds.upper
        assert bounds.lower.misses == 4
        assert bounds.lower.hits == len(specs) - 4
        assert bounds.lower.evictions == 0
        assert_bracketed(
            bounds,
            reference_counters(BatchMember("baseline", {"page_size": 16}), events),
            "baseline budget-one",
        )

    def test_conflicted_stream_keeps_a_real_interval(self):
        # Five tags of one set cycled twice: evictions are unavoidable but
        # their exact count depends on replacement order — a true interval.
        specs = [(tag * 64, 1) for tag in range(5)] * 2
        events = events_from(specs)
        bounds = footprint_bounds("baseline", events, TINY_GEOMETRY, page_size=16)
        assert bounds.lower.misses == 5
        assert bounds.upper.misses == len(specs)
        assert bounds.lower != bounds.upper
        assert_bracketed(
            bounds,
            reference_counters(BatchMember("baseline", {"page_size": 16}), events),
            "baseline conflicted",
        )


class TestNeverHitRefinement:
    #: 0 and 256 share (set, mandated way): the classic WPA ping-pong.
    THRASH = [(0, 1), (256, 1)] * 4

    def test_refinement_tightens_and_still_brackets(self):
        events = events_from(self.THRASH)
        kwargs = dict(wpa_size=512, page_size=16)
        plain = footprint_bounds("way-placement", events, TINY_GEOMETRY, **kwargs)
        refined = footprint_bounds(
            "way-placement",
            events,
            TINY_GEOMETRY,
            never_hit=frozenset({0, 256}),
            **kwargs,
        )
        assert refined.lower.misses > plain.lower.misses
        # Every access of a proven never-hit line is a miss: the refined
        # lower bound is the whole stream, meeting the upper bound.
        assert refined.lower.misses == len(self.THRASH)
        member = BatchMember("way-placement", dict(kwargs))
        actual = reference_counters(member, events)
        assert_bracketed(refined, actual, "refined thrash")
        assert actual.misses == len(self.THRASH)

    def test_unrelated_never_hit_lines_are_ignored(self):
        events = events_from(self.THRASH)
        bounds = footprint_bounds(
            "way-placement",
            events,
            TINY_GEOMETRY,
            wpa_size=512,
            page_size=16,
            never_hit=frozenset({4096}),  # not in the trace footprint
        )
        assert bounds.lower.misses == 2  # one per distinct line, as unrefined


class TestOptionGating:
    EVENTS = events_from([(0, 1), (64, 2)])

    def test_unmodelled_scheme_declines(self):
        assert (
            bounds_for_options("way-memoization", self.EVENTS, TINY_GEOMETRY, {})
            is None
        )

    def test_unknown_option_declines(self):
        assert (
            bounds_for_options(
                "baseline", self.EVENTS, TINY_GEOMETRY, {"l0_size": 64}
            )
            is None
        )

    def test_nonzero_wpa_base_declines(self):
        assert (
            bounds_for_options(
                "way-placement",
                self.EVENTS,
                TINY_GEOMETRY,
                {"wpa_size": 64, "wpa_base": 128},
            )
            is None
        )

    def test_modelled_options_accepted(self):
        options = {
            "wpa_size": 64,
            "page_size": 16,
            "itlb_entries": 2,
            "same_line_skip": False,
            "hint_initial": True,
        }
        bounds = bounds_for_options(
            "way-placement", self.EVENTS, TINY_GEOMETRY, options
        )
        assert bounds is not None
        member = BatchMember("way-placement", options)
        assert_bracketed(bounds, reference_counters(member, self.EVENTS), "gated")


def test_violations_flag_escaped_counters():
    events = events_from([(0, 1), (64, 1)])
    bounds = footprint_bounds("baseline", events, TINY_GEOMETRY, page_size=16)
    counters = reference_counters(BatchMember("baseline", {"page_size": 16}), events)
    assert bounds.violations(counters) == []
    counters.misses += 100
    violations = bounds.violations(counters)
    assert [v.field for v in violations] == ["misses"]
    assert "outside static bounds" in violations[0].render()


@given(event_streams())
@settings(max_examples=25, deadline=None)
def test_energy_bracket_contains_the_priced_run(specs):
    events = events_from(specs)
    params = EnergyParams()
    for member in MIXED_FAMILY:
        wayhint = member.scheme == "way-placement"
        model = CacheEnergyModel(TINY_GEOMETRY, params, wayhint=wayhint)
        bounds = bounds_for(member, events)
        low, high = energy_bounds(bounds, model)
        actual = model.energy(reference_counters(member, events))
        assert low.icache_pj <= actual.icache_pj <= high.icache_pj, member
