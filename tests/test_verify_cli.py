"""Tests for the ``repro verify`` subcommand."""

from __future__ import annotations

import json

from repro.cli import main

FAST = ["--eval-instructions", "20000", "--profile-instructions", "8000"]


def test_verify_clean_benchmark(capsys):
    assert main(["verify", "crc", *FAST]) == 0
    captured = capsys.readouterr()
    assert "certified" in captured.out
    assert "1/1 workload(s) certified" in captured.out
    # Wall time is recorded on stderr, keeping stdout deterministic.
    assert "verified 1 workload(s) in" in captured.err


def test_verify_json_payload(capsys):
    assert main(["verify", "crc", "--format", "json", *FAST]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"] == {"certified": 1, "failed": 0, "total": 1}
    certificate = payload["certificates"][0]
    assert certificate["benchmark"] == "crc"
    assert certificate["ok"] is True
    assert certificate["wpa_proof"]["holds"] is True
    assert certificate["sanitized"] is True
    assert certificate["sanitizer_violations"] == []


def test_verify_json_output_is_deterministic(capsys):
    outputs = []
    for _ in range(2):
        assert main(["verify", "crc", "sha", "--format", "json", *FAST]) == 0
        outputs.append(capsys.readouterr().out)
    assert outputs[0] == outputs[1]


def test_verify_oversized_wpa_fails(capsys):
    # 64KB WPA on a 32KB cache: the injectivity proof must fail.
    assert main(["verify", "crc", "--wpa-kb", "64", *FAST]) == 2
    out = capsys.readouterr().out
    assert "V005" in out
    assert "FAILED" in out


def test_verify_unaligned_wpa_fails(capsys):
    assert main(["verify", "crc", "--wpa-kb", "1", "--page-kb", "2", *FAST]) == 2
    out = capsys.readouterr().out
    assert "V006" in out


def test_verify_all_workloads_conflicts_with_targets(capsys):
    assert main(["verify", "--all-workloads", "crc", *FAST]) == 1
    assert "cannot be combined" in capsys.readouterr().err


def test_verify_unknown_benchmark_errors(capsys):
    assert main(["verify", "no-such-benchmark", *FAST]) == 1
    assert "unknown benchmarks" in capsys.readouterr().err


def test_verify_select_restricts_rules(capsys):
    # Restricting to program rules still runs the proof and sanitizer, so
    # a bad WPA fails via the proof even when V rules are deselected.
    assert main(["verify", "crc", "--select", "P", "--wpa-kb", "64", *FAST]) == 2
    out = capsys.readouterr().out
    assert "V005" not in out  # the rule was deselected...
    assert "proof=FAILS" in out  # ...but the proof still carries the verdict
