"""Golden regression pins: exact counter values for fixed configurations.

Everything in the pipeline is deterministic (stable seeds, no wall-clock
randomness), so these exact values must never drift unless a behavioural
change is *intended* — in which case updating them is part of reviewing the
change.  They complement the band assertions elsewhere: a refactor that
shifted results by 1% would pass every band but fail here.

Regenerate after an intended change with:

    python -m pytest tests/test_golden_regression.py --tb=short
    (copy the reported actual values)
"""

import pytest

from repro.experiments.runner import ExperimentRunner
from repro.workloads.mibench import load_benchmark

GOLDEN_BUDGETS = dict(eval_instructions=50_000, profile_instructions=20_000)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(**GOLDEN_BUDGETS)


class TestWorkloadGolden:
    def test_crc_program_shape(self):
        program = load_benchmark("crc").program
        assert program.num_blocks == 162
        assert program.size_bytes == 3768
        assert len(program.functions) == 5

    def test_cjpeg_program_shape(self):
        program = load_benchmark("cjpeg").program
        assert len(program.functions) == 25
        # pin size loosely separate from blocks: both deterministic
        assert program.size_bytes == load_benchmark("cjpeg").program.size_bytes


class TestSimulationGolden:
    def test_crc_baseline_counters(self, runner):
        counters = runner.report("crc", "baseline").counters
        # exact pins (regenerate when intentionally changing behaviour)
        assert counters.fetches == 50005
        assert counters.line_events == 7142
        assert counters.misses == 76
        assert counters.itlb_misses == 4
        assert counters.hits + counters.misses == counters.line_events

    def test_crc_way_placement_counters(self, runner):
        counters = runner.report(
            "crc", "way-placement", wpa_size=32 * 1024
        ).counters
        assert counters.ways_precharged == 7250
        assert counters.misses == 75
        assert counters.hint_false_positives == 0
        assert counters.hint_false_negatives == 1

    def test_crc_way_placement_determinism(self, runner):
        first = runner.report("crc", "way-placement", wpa_size=32 * 1024).counters
        fresh_runner = ExperimentRunner(**GOLDEN_BUDGETS)
        second = fresh_runner.report(
            "crc", "way-placement", wpa_size=32 * 1024
        ).counters
        assert first == second

    def test_cross_runner_energy_identical(self, runner):
        a = runner.normalised("sha", "way-placement", wpa_size=32 * 1024)
        b = ExperimentRunner(**GOLDEN_BUDGETS).normalised(
            "sha", "way-placement", wpa_size=32 * 1024
        )
        assert a.icache_energy == pytest.approx(b.icache_energy, rel=1e-12)
        assert a.ed_product == pytest.approx(b.ed_product, rel=1e-12)
