"""Unit tests for input models (small/large, trip scaling, jitter)."""

import pytest

from repro.errors import WorkloadError
from repro.trace.branch_model import BernoulliBranch, LoopBranch
from repro.workloads.inputs import (
    InputModel,
    LARGE_INPUT,
    SMALL_INPUT,
    branch_models_for,
)
from repro.workloads.synth import SynthSpec, generate_workload


@pytest.fixture(scope="module")
def workload():
    return generate_workload(
        SynthSpec(name="inputs-test", code_kb=8.0, num_functions=5, cold_prob=0.3)
    )


class TestInputValidation:
    def test_defaults(self):
        InputModel(name="x")

    def test_bad_scale(self):
        with pytest.raises(WorkloadError):
            InputModel(name="x", trip_scale=0.0)

    def test_bad_jitter(self):
        with pytest.raises(WorkloadError):
            InputModel(name="x", trip_jitter=1.0)
        with pytest.raises(WorkloadError):
            InputModel(name="x", prob_jitter=0.9)


class TestModelConstruction:
    def test_every_role_gets_a_model(self, workload):
        models = branch_models_for(workload, LARGE_INPUT)
        assert len(models) == len(workload.roles)

    def test_loop_roles_become_loop_models(self, workload):
        models = branch_models_for(workload, LARGE_INPUT)
        for uid, role in workload.roles.items():
            model = models.model_for(uid)
            if role.kind == "loop":
                assert isinstance(model, LoopBranch)
            else:
                assert isinstance(model, BernoulliBranch)

    def test_small_input_scales_trips_down(self, workload):
        small = branch_models_for(workload, SMALL_INPUT)
        large = branch_models_for(workload, LARGE_INPUT)
        for uid, role in workload.roles.items():
            if role.kind != "loop":
                continue
            assert small.model_for(uid).max_trips <= large.model_for(uid).max_trips

    def test_trips_never_below_one(self, workload):
        tiny = InputModel(name="tiny", trip_scale=0.001)
        models = branch_models_for(workload, tiny)
        for uid, role in workload.roles.items():
            if role.kind == "loop":
                assert models.model_for(uid).min_trips >= 1

    def test_cold_guards_stay_cold_under_jitter(self, workload):
        jittery = InputModel(name="j", prob_jitter=0.5)
        models = branch_models_for(workload, jittery)
        for uid, role in workload.roles.items():
            if role.kind == "cond" and role.cold_guard:
                assert models.model_for(uid).p_taken <= 0.15

    def test_deterministic_per_input(self, workload):
        a = branch_models_for(workload, SMALL_INPUT)
        b = branch_models_for(workload, SMALL_INPUT)
        for uid, role in workload.roles.items():
            ma, mb = a.model_for(uid), b.model_for(uid)
            if role.kind == "loop":
                assert (ma.min_trips, ma.max_trips) == (mb.min_trips, mb.max_trips)
            else:
                assert ma.p_taken == mb.p_taken

    def test_inputs_differ(self, workload):
        small = branch_models_for(workload, SMALL_INPUT)
        large = branch_models_for(workload, LARGE_INPUT)
        differs = False
        for uid, role in workload.roles.items():
            if role.kind == "loop":
                if small.model_for(uid).max_trips != large.model_for(uid).max_trips:
                    differs = True
        assert differs, "small and large inputs must not be identical"
