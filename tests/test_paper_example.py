"""The paper's Figure 1 worked example, end to end.

Three instructions (add, br, mul) fetched from a two-set, four-way cache:
a conventional CAM cache performs 12 tag comparisons, way-placement only 3
— "a saving of 75%".
"""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.isa import assemble
from repro.schemes.baseline import BaselineScheme
from repro.schemes.way_placement import WayPlacementScheme
from tests.scheme_helpers import events_from

#: Two sets, four ways, one instruction per line — the figure's cache.
FIGURE1_CACHE = CacheGeometry(32, 4, 4)

#: The three fetches of Figure 1(a): add @ 0x04, br @ 0x08, mul @ 0x20.
FIGURE1_FETCHES = [(0x04, 1), (0x08, 1), (0x20, 1)]


def figure1_events():
    return events_from(FIGURE1_FETCHES, line_size=4)


class TestFigure1:
    def test_instructions_assemble(self):
        unit = assemble("add r1, r2, r3\nb out\nout: mul r1, r2, r3")
        assert len(unit.instructions) == 3

    def test_sets_match_figure(self):
        # add goes to one set, br and mul to the other
        set_add = FIGURE1_CACHE.set_index(0x04)
        set_br = FIGURE1_CACHE.set_index(0x08)
        set_mul = FIGURE1_CACHE.set_index(0x20)
        assert set_br == set_mul
        assert set_add != set_br

    def test_baseline_twelve_comparisons(self):
        scheme = BaselineScheme(FIGURE1_CACHE, page_size=16)
        counters = scheme.run(figure1_events())
        assert counters.ways_precharged == 12

    def test_way_placement_three_comparisons(self):
        scheme = WayPlacementScheme(
            FIGURE1_CACHE, wpa_size=48, page_size=16, hint_initial=True
        )
        counters = scheme.run(figure1_events())
        assert counters.ways_precharged == 3

    def test_saving_is_75_percent(self):
        baseline = BaselineScheme(FIGURE1_CACHE, page_size=16).run(figure1_events())
        placed = WayPlacementScheme(
            FIGURE1_CACHE, wpa_size=48, page_size=16, hint_initial=True
        ).run(figure1_events())
        saving = 1 - placed.ways_precharged / baseline.ways_precharged
        assert saving == pytest.approx(0.75)
