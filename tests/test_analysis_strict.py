"""Strict-mode pre-flight: the runner must refuse bad configurations."""

from __future__ import annotations

import pytest

from repro.energy.params import EnergyParams
from repro.errors import AnalysisError
from repro.experiments.runner import ExperimentRunner

FAST = dict(eval_instructions=20_000, profile_instructions=8_000)


def test_strict_runner_accepts_good_config():
    runner = ExperimentRunner(strict=True, **FAST)
    report = runner.report("crc", "way-placement", wpa_size=2048)
    assert report.cycles > 0


def test_strict_runner_rejects_unaligned_wpa():
    runner = ExperimentRunner(strict=True, **FAST)
    with pytest.raises(AnalysisError, match="L004") as excinfo:
        runner.report("crc", "way-placement", wpa_size=1536)
    assert any(d.rule_id == "L004" for d in excinfo.value.diagnostics)


def test_strict_runner_rejects_nonconserving_energy():
    params = EnergyParams(way_mux_pj=1e6)
    runner = ExperimentRunner(strict=True, energy_params=params, **FAST)
    with pytest.raises(AnalysisError, match="C001"):
        runner.report("crc", "baseline")


def test_failed_preflight_is_not_memoised():
    runner = ExperimentRunner(strict=True, **FAST)
    for _ in range(2):  # failure must not be cached as a pass
        with pytest.raises(AnalysisError):
            runner.report("crc", "way-placement", wpa_size=1536)
    assert runner._preflighted == set()


def test_non_strict_runner_does_not_preflight():
    # The same energy params that strict mode refuses (C001) simulate
    # fine on a default runner: the pre-flight must be opt-in.
    params = EnergyParams(way_mux_pj=1e6)
    runner = ExperimentRunner(strict=False, energy_params=params, **FAST)
    assert runner.strict is False
    report = runner.report("crc", "baseline")
    assert report.cycles > 0
    assert runner._preflighted == set()


def test_preflight_is_memoised():
    runner = ExperimentRunner(strict=True, **FAST)
    runner.preflight("crc", runner._resolve_layout_policy("way-placement", None))
    before = set(runner._preflighted)
    runner.preflight("crc", runner._resolve_layout_policy("way-placement", None))
    assert set(runner._preflighted) == before and len(before) == 1


def test_spawn_spec_carries_strict_flag():
    assert ExperimentRunner(strict=True, **FAST).spawn_spec()["strict"] is True
    assert ExperimentRunner(strict=False, **FAST).spawn_spec()["strict"] is False
