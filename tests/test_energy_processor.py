"""Unit tests for the processor energy model and ED product."""

import pytest

from repro.cache.access import FetchCounters
from repro.energy.cache_model import EnergyBreakdown
from repro.energy.params import EnergyParams
from repro.energy.processor import ProcessorEnergyModel, ProcessorReport
from repro.errors import EnergyModelError

PARAMS = EnergyParams()
MODEL = ProcessorEnergyModel(PARAMS)


def make_report(icache_pj=1000.0, cycles=100, instructions=100, mem_fraction=0.25):
    counters = FetchCounters(fetches=instructions)
    breakdown = EnergyBreakdown(tag_pj=icache_pj / 2, data_pj=icache_pj / 2)
    return MODEL.report(counters, breakdown, cycles, mem_fraction)


class TestCoreEnergy:
    def test_components(self):
        energy = MODEL.core_energy_pj(10, 20, mem_fraction=0.5)
        expected = 10 * (
            PARAMS.core_pj_per_instruction + 0.5 * PARAMS.mem_op_extra_pj
        ) + 20 * PARAMS.core_pj_per_cycle
        assert energy == pytest.approx(expected)

    def test_mem_fraction_raises_core_energy(self):
        low = MODEL.core_energy_pj(100, 100, mem_fraction=0.0)
        high = MODEL.core_energy_pj(100, 100, mem_fraction=0.5)
        assert high > low

    def test_mem_fraction_validated(self):
        with pytest.raises(EnergyModelError):
            MODEL.core_energy_pj(1, 1, mem_fraction=1.5)


class TestReportMetrics:
    def test_processor_energy_sums_core_and_fetch_path(self):
        report = make_report()
        assert report.processor_pj == pytest.approx(
            report.breakdown.fetch_path_pj + report.core_pj
        )

    def test_icache_fraction(self):
        report = make_report(icache_pj=1000.0)
        assert report.icache_fraction == pytest.approx(
            1000.0 / report.processor_pj
        )

    def test_cpi(self):
        report = make_report(cycles=150, instructions=100)
        assert report.cpi == pytest.approx(1.5)


class TestNormalisation:
    def test_identity(self):
        report = make_report()
        assert report.ed_product(report) == pytest.approx(1.0)
        assert report.normalised_icache_energy(report) == pytest.approx(1.0)
        assert report.normalised_delay(report) == pytest.approx(1.0)

    def test_half_energy_same_delay(self):
        baseline = make_report(icache_pj=1000.0)
        better = make_report(icache_pj=500.0)
        assert better.normalised_icache_energy(baseline) == pytest.approx(0.5)
        energy_ratio = better.processor_pj / baseline.processor_pj
        assert better.ed_product(baseline) == pytest.approx(energy_ratio)

    def test_slower_run_raises_ed(self):
        baseline = make_report(cycles=100)
        slower = make_report(cycles=120)
        assert slower.ed_product(baseline) > slower.processor_pj / baseline.processor_pj

    def test_zero_baseline_rejected(self):
        report = make_report()
        zero = ProcessorReport(
            instructions=0, cycles=0, breakdown=EnergyBreakdown(), core_pj=0.0
        )
        with pytest.raises(EnergyModelError):
            report.ed_product(zero)
        with pytest.raises(EnergyModelError):
            report.normalised_icache_energy(zero)
