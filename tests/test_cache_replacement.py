"""Unit tests for replacement policies."""

import pytest

from repro.cache.replacement import (
    LruReplacement,
    RandomReplacement,
    RoundRobinReplacement,
    make_policy,
)
from repro.errors import CacheConfigError


class TestRoundRobin:
    def test_cycles_through_ways(self):
        policy = RoundRobinReplacement(2, 4)
        assert [policy.victim(0) for _ in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_sets_independent(self):
        policy = RoundRobinReplacement(2, 4)
        policy.victim(0)
        policy.victim(0)
        assert policy.victim(1) == 0

    def test_geometry_validated(self):
        with pytest.raises(CacheConfigError):
            RoundRobinReplacement(0, 4)


class TestRandom:
    def test_within_range_and_deterministic(self):
        a = RandomReplacement(1, 8, seed=3)
        b = RandomReplacement(1, 8, seed=3)
        va = [a.victim(0) for _ in range(20)]
        vb = [b.victim(0) for _ in range(20)]
        assert va == vb
        assert all(0 <= v < 8 for v in va)


class TestLru:
    def test_evicts_least_recent(self):
        policy = LruReplacement(1, 3)
        for way in range(3):
            policy.on_fill(0, way)
        policy.on_access(0, 0)  # order now: 1, 2, 0
        assert policy.victim(0) == 1

    def test_fill_refreshes(self):
        policy = LruReplacement(1, 2)
        policy.on_fill(0, 0)
        policy.on_fill(0, 1)
        policy.on_fill(0, 0)
        assert policy.victim(0) == 1


class TestFactory:
    def test_names(self):
        assert isinstance(make_policy("rr", 2, 2), RoundRobinReplacement)
        assert isinstance(make_policy("round-robin", 2, 2), RoundRobinReplacement)
        assert isinstance(make_policy("random", 2, 2), RandomReplacement)
        assert isinstance(make_policy("lru", 2, 2), LruReplacement)

    def test_unknown_name(self):
        with pytest.raises(CacheConfigError, match="unknown replacement"):
            make_policy("plru", 2, 2)
