"""Unit tests for the machine configuration (Table 1)."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.errors import CacheConfigError
from repro.sim.machine import MachineConfig, XSCALE_BASELINE, table1_rows


class TestBaselineConfig:
    def test_xscale_defaults(self):
        config = XSCALE_BASELINE
        assert config.icache == CacheGeometry(32 * 1024, 32, 32)
        assert config.itlb_entries == 32
        assert config.memory_latency_cycles == 50
        assert config.issue_width == 1

    def test_with_icache_changes_only_icache(self):
        varied = XSCALE_BASELINE.with_icache(16 * 1024, 8)
        assert varied.icache == CacheGeometry(16 * 1024, 8, 32)
        assert varied.dcache == XSCALE_BASELINE.dcache
        assert varied.memory_latency_cycles == 50

    def test_with_icache_line_override(self):
        varied = XSCALE_BASELINE.with_icache(16 * 1024, 8, line_size=64)
        assert varied.icache.line_size == 64

    def test_validation(self):
        with pytest.raises(CacheConfigError):
            MachineConfig(pipeline_stages=0)
        with pytest.raises(CacheConfigError):
            MachineConfig(memory_latency_cycles=0)
        with pytest.raises(CacheConfigError):
            MachineConfig(page_size=1000)


class TestTable1:
    def test_rows_match_paper(self):
        rows = dict(table1_rows())
        assert rows["Pipeline"] == "7/8 Stages"
        assert rows["Functional Units"] == "1 ALU, 1 MAC, 1 Load/Store"
        assert rows["Issue"] == "Single Issue, In-Order"
        assert rows["Commit"] == "Out-of-Order (Scoreboard)"
        assert rows["Memory Bus Width"] == "32 Bit"
        assert rows["Memory Latency"] == "50 Cycles"
        assert rows["I-TLB, D-TLB"] == "32-Entry Fully Associative"
        assert rows["I-Cache, D-Cache"] == "32KB, 32-Way, 32B Block"

    def test_rows_follow_configuration(self):
        rows = dict(table1_rows(XSCALE_BASELINE.with_icache(16 * 1024, 8)))
        assert rows["I-Cache, D-Cache"] == "16KB, 8-Way, 32B Block"
