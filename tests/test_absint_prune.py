"""Certified sweep pruning: provably-equivalent cells never re-run.

The pruning certificate (:mod:`repro.analysis.absint.prune`) collapses
family members whose WPA thresholds cut the layout's line-start sequence
at the same place.  Nothing it does is allowed to change a number:

* **certificate algebra** — line-start extraction, threshold classing,
  clone mapping, re-validation against changed member lists;
* **runner execution** — ``report_family_pruned`` reproduces the
  unpruned family bit-identically, reconstructed cells keep their own
  ``wpa_size`` metadata, and a dense sweep prunes well past the 20%
  acceptance floor;
* **supervision** — ``ExperimentRunner(prune=True)`` grids match the
  reference engine, the :class:`GridSummary` reports the planner's
  decisions, and a chaos fault at the ``prune`` site degrades to
  unpruned execution with a recovered :class:`FailureReport`.
"""

from __future__ import annotations

import pytest

from repro.engine.batch import BatchMember
from repro.engine.grid import GridCell
from repro.layout.placement import LayoutPolicy
from repro.resilience import chaos
from repro.resilience.chaos import ChaosConfig, ChaosRule
from repro.analysis.absint import PruneCertificate, layout_line_starts, plan_prune
from tests.test_engine_batch import make_runner

KB = 1024

#: Line starts with a deliberate gap: thresholds in (64, 128] all cut at
#: the same position, thresholds <= 16 at another.
LINE_STARTS = (0, 16, 64, 128)


def wp(wpa_size, **options):
    return BatchMember("way-placement", {"wpa_size": wpa_size, **options})


class TestLayoutLineStarts:
    def test_blocks_expand_to_covered_lines(self):
        addresses = {1: 0, 2: 40, 3: 100}
        sizes = {1: 16, 2: 20, 3: 8}
        # Block 2 spans lines 2..3, block 3 sits inside line 6.
        assert layout_line_starts(addresses, sizes, 16) == (0, 32, 48, 96)

    def test_zero_sized_blocks_are_skipped(self):
        assert layout_line_starts({1: 0, 2: 64}, {1: 0, 2: 4}, 16) == (64,)

    def test_overlapping_blocks_deduplicate(self):
        addresses = {1: 0, 2: 8}
        sizes = {1: 16, 2: 16}
        assert layout_line_starts(addresses, sizes, 16) == (0, 16)


class TestPlanPrune:
    def test_same_gap_thresholds_collapse(self):
        members = [wp(65), wp(100), wp(128), wp(200), wp(1000)]
        certificate = plan_prune(LINE_STARTS, members)
        # 65/100/128 cut before index 3; 200/1000 cut past every line.
        assert certificate.clone_of == (0, 0, 0, 3, 3)
        assert certificate.representatives == (0, 3)
        assert certificate.pruned == 3
        assert certificate.pruned_fraction == pytest.approx(0.6)

    def test_distinct_cuts_yield_none(self):
        members = [wp(8), wp(40), wp(100), wp(200)]
        assert plan_prune(LINE_STARTS, members) is None

    def test_non_threshold_options_split_classes(self):
        members = [wp(65), wp(100, same_line_skip=False), wp(100)]
        certificate = plan_prune(LINE_STARTS, members)
        assert certificate.clone_of == (0, 1, 0)

    def test_baseline_members_ignore_the_cut(self):
        members = [
            BatchMember("baseline", {}),
            BatchMember("baseline", {}),
            wp(65),
        ]
        certificate = plan_prune(LINE_STARTS, members)
        assert certificate.clone_of == (0, 0, 2)

    def test_validate_rejects_changed_members(self):
        members = [wp(65), wp(100), wp(200)]
        certificate = PruneCertificate(LINE_STARTS, members)
        assert certificate.validate(members)
        # Reversed, the clone structure differs: (0, 0, 2) vs (0, 1, 1).
        assert not certificate.validate(list(reversed(members)))
        assert not certificate.validate(members[:-1])

    def test_to_dict_is_json_friendly(self):
        certificate = PruneCertificate(LINE_STARTS, [wp(65), wp(100)])
        payload = certificate.to_dict()
        assert payload == {
            "clone_of": [0, 0],
            "line_starts": len(LINE_STARTS),
            "pruned": 1,
            "representatives": [0],
            "total": 2,
        }


#: A dense 32-point sweep: far more thresholds than crc has distinct
#: line-start cut positions in 8..40KB, so most cells must collapse.
DENSE_SWEEP = [
    GridCell("crc", "way-placement", wpa_size=point * KB)
    for point in range(1, 33)
]


class TestRunnerExecution:
    def test_pruned_family_is_bit_identical(self):
        pruned_runner = make_runner(prune=True)
        reports, certificate = pruned_runner.report_family_pruned(DENSE_SWEEP)
        assert certificate is not None
        assert certificate.pruned_fraction >= 0.20
        plain = make_runner().report_family(DENSE_SWEEP)
        for cell, report, reference in zip(DENSE_SWEEP, reports, plain):
            assert report.counters == reference.counters, cell
            assert report.breakdown == reference.breakdown, cell
            assert report.cycles == reference.cycles, cell
            # Reconstructed cells keep their own configuration metadata.
            assert report.wpa_size == cell.wpa_size

    def test_unprunable_family_falls_through(self):
        runner = make_runner(prune=True)
        # Distinct non-threshold options: the members can never collapse.
        cells = [
            GridCell("crc", "way-placement", wpa_size=4 * KB),
            GridCell("crc", "way-placement", wpa_size=4 * KB, same_line_skip=False),
        ]
        reports, certificate = runner.report_family_pruned(cells)
        assert certificate is None
        assert len(reports) == len(cells)

    def test_line_starts_are_memoized_per_layout(self):
        runner = make_runner()
        first = runner.line_starts("crc", LayoutPolicy.WAY_PLACEMENT, 32)
        assert first == runner.line_starts("crc", LayoutPolicy.WAY_PLACEMENT, 32)
        assert first and all(start % 32 == 0 for start in first)
        assert list(first) == sorted(set(first))


class TestSupervisedGrid:
    def test_pruned_grid_matches_reference(self):
        pruned_runner = make_runner(engine="batch", prune=True)
        reports = pruned_runner.run_grid(DENSE_SWEEP)
        reference_reports = make_runner(engine="reference").run_grid(DENSE_SWEEP)
        for cell, report, reference in zip(DENSE_SWEEP, reports, reference_reports):
            assert report.counters == reference.counters, cell
            assert report.breakdown == reference.breakdown, cell

        summary = pruned_runner.last_grid
        assert summary is not None
        assert summary.families == 1
        assert summary.family_cells == len(DENSE_SWEEP)
        assert summary.pruned >= len(DENSE_SWEEP) * 0.20
        assert len(summary.prune_certificates) == 1
        descriptor = summary.prune_certificates[0]
        assert descriptor.startswith(f"crc:{LayoutPolicy.WAY_PLACEMENT.value}:")
        assert descriptor.endswith(f"/{len(DENSE_SWEEP)} pruned")
        assert pruned_runner.last_failures == []

    def test_prune_disabled_reports_no_pruning(self):
        runner = make_runner(engine="batch")
        runner.run_grid(DENSE_SWEEP)
        summary = runner.last_grid
        assert summary is not None and summary.pruned == 0
        assert summary.prune_certificates == ()

    def test_prune_fault_degrades_to_unpruned(self):
        runner = make_runner(engine="batch", prune=True)
        rule = ChaosRule("prune", "raise", match="crc", times=-1)
        with chaos.active(ChaosConfig(seed=0, rules=(rule,))):
            reports = runner.run_grid(DENSE_SWEEP)

        incidents = [f for f in runner.last_failures if f.site == "prune"]
        assert incidents, "prune fault left no FailureReport"
        incident = incidents[0]
        assert incident.recovered and incident.recovery == "unpruned"
        assert incident.benchmark == "crc"
        assert "InjectedFault" in incident.causes[0]
        summary = runner.last_grid
        assert summary is not None and summary.pruned == 0

        reference_reports = make_runner(engine="reference").run_grid(DENSE_SWEEP)
        for report, reference in zip(reports, reference_reports):
            assert report.counters == reference.counters

    def test_prune_flag_travels_to_workers(self):
        runner = make_runner(prune=True)
        assert runner.spawn_spec()["prune"] is True
        assert make_runner().spawn_spec()["prune"] is False
