"""The documented rule catalogs must match the registries exactly.

``docs/analysis.md`` and ``docs/verification.md`` both carry markdown
tables of rule/invariant ids.  These tests pin every table row to the
live registry (id, name, and severity) and fail on stale or missing
rows, so the docs cannot drift from the code.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.analysis import DEFAULT_REGISTRY
from repro.verify.sanitizer import SANITIZER_INVARIANTS

DOCS = Path(__file__).resolve().parent.parent / "docs"
README = DOCS.parent / "README.md"

_RULE_ROW = re.compile(
    r"^\|\s*([APLCVI]\d{3})\s*\|\s*([a-z0-9-]+)\s*\|\s*(\w+)\s*\|", re.MULTILINE
)
_INVARIANT_ROW = re.compile(
    r"^\|\s*(S\d{3})\s*\|\s*([a-z0-9-]+)\s*\|", re.MULTILINE
)


def _rule_rows(text):
    return {match[0]: (match[1], match[2]) for match in _RULE_ROW.findall(text)}


def test_analysis_doc_lists_every_registered_rule():
    rows = _rule_rows((DOCS / "analysis.md").read_text())
    assert set(rows) == set(DEFAULT_REGISTRY.ids())
    for rule_id, (name, severity) in rows.items():
        rule = DEFAULT_REGISTRY.get(rule_id)
        assert name == rule.name, rule_id
        assert severity == rule.severity.name.lower(), rule_id


def test_verification_doc_lists_every_v_rule():
    rows = _rule_rows((DOCS / "verification.md").read_text())
    v_ids = {rid for rid in DEFAULT_REGISTRY.ids() if rid.startswith("V")}
    assert set(rows) == v_ids
    for rule_id, (name, severity) in rows.items():
        rule = DEFAULT_REGISTRY.get(rule_id)
        assert name == rule.name, rule_id
        assert severity == rule.severity.name.lower(), rule_id


def test_verification_doc_lists_every_sanitizer_invariant():
    rows = dict(_INVARIANT_ROW.findall((DOCS / "verification.md").read_text()))
    assert rows == SANITIZER_INVARIANTS


def test_analysis_doc_covers_the_absint_layer():
    """The A rules exist, are documented, and point at static_analysis.md."""
    a_ids = {rid for rid in DEFAULT_REGISTRY.ids() if rid.startswith("A")}
    assert a_ids, "the absint rule layer vanished from the registry"
    text = (DOCS / "analysis.md").read_text()
    assert a_ids <= set(_rule_rows(text))
    assert "static_analysis.md" in text


def test_analysis_doc_covers_the_interference_layer():
    """The I rules exist, are documented, and point at static_analysis.md."""
    i_ids = {rid for rid in DEFAULT_REGISTRY.ids() if rid.startswith("I")}
    assert i_ids, "the interference rule layer vanished from the registry"
    text = (DOCS / "analysis.md").read_text()
    assert i_ids <= set(_rule_rows(text))
    assert "static_analysis.md" in text


def test_sanitizer_catalog_includes_static_bounds():
    assert SANITIZER_INVARIANTS["S008"] == "static-bounds-bracketing"


def test_sanitizer_catalog_includes_conflict_certificates():
    assert SANITIZER_INVARIANTS["S009"] == "conflict-certificate-replay"


def test_verification_doc_is_linked():
    assert "verification.md" in README.read_text()
    assert "verification.md" in (DOCS / "architecture.md").read_text()


def test_static_analysis_doc_is_linked():
    assert (DOCS / "static_analysis.md").exists()
    assert "static_analysis.md" in (DOCS / "architecture.md").read_text()
    assert "static_analysis.md" in (DOCS / "verification.md").read_text()
