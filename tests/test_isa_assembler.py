"""Unit tests for the assembler and disassembler."""

import pytest

from repro.errors import AssemblerError
from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble, format_instruction
from repro.isa.instructions import Condition, Opcode
from repro.isa.registers import Register


class TestBasicParsing:
    def test_alu_three_operand(self):
        unit = assemble("add r1, r2, r3")
        (ins,) = unit.instructions
        assert ins.opcode is Opcode.ADD
        assert (ins.rd, ins.rn, ins.rm) == (Register.R1, Register.R2, Register.R3)

    def test_mov_immediate(self):
        (ins,) = assemble("mov r0, #42").instructions
        assert ins.opcode is Opcode.MOV and ins.imm == 42

    def test_negative_and_hex_immediates(self):
        (a, b) = assemble("mov r0, #-7\nmov r1, #0x10").instructions
        assert a.imm == -7 and b.imm == 16

    def test_shift_immediate(self):
        (ins,) = assemble("lsl r0, r1, #3").instructions
        assert ins.opcode is Opcode.LSL and ins.imm == 3

    def test_memory_operands(self):
        (a, b) = assemble("ldr r4, [sp, #8]\nstr r4, [r5]").instructions
        assert a.opcode is Opcode.LDR and a.rn is Register.SP and a.imm == 8
        assert b.opcode is Opcode.STR and b.rn is Register.R5 and b.imm == 0

    def test_register_aliases(self):
        (ins,) = assemble("mvn r0, lr").instructions
        assert ins.rm is Register.LR


class TestControlFlow:
    def test_unconditional_branch_target(self):
        unit = assemble("top:\n  b top")
        (ins,) = unit.instructions
        assert ins.opcode is Opcode.B and ins.target == "top"
        assert unit.labels == {"top": 0}

    def test_condition_suffixes(self):
        source = "bne x\nblt x\nbge x\nbgt x\nble x\nbeq x\nx: nop"
        conditions = [i.condition for i in assemble(source).instructions[:-1]]
        assert conditions == [
            Condition.NE,
            Condition.LT,
            Condition.GE,
            Condition.GT,
            Condition.LE,
            Condition.EQ,
        ]

    def test_ble_is_branch_le_not_bl(self):
        (ins, _) = assemble("ble out\nout: nop").instructions
        assert ins.opcode is Opcode.B and ins.condition is Condition.LE

    def test_bl_is_call(self):
        (ins,) = assemble("bl helper").instructions
        assert ins.opcode is Opcode.BL and ins.is_call

    def test_ret(self):
        (ins,) = assemble("ret").instructions
        assert ins.is_return


class TestLabelsAndComments:
    def test_label_on_own_line(self):
        unit = assemble("start:\n  nop")
        assert unit.labels["start"] == 0

    def test_label_with_instruction(self):
        unit = assemble("go: add r1, r2, r3")
        assert unit.labels["go"] == 0
        assert len(unit.instructions) == 1

    def test_semicolon_comment(self):
        unit = assemble("nop ; this is a comment")
        assert len(unit.instructions) == 1

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError, match="duplicate label"):
            assemble("x: nop\nx: nop")


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble("frobnicate r1")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError, match="expects"):
            assemble("add r1, r2")

    def test_bad_register(self):
        with pytest.raises(AssemblerError, match="register"):
            assemble("add r1, r2, r99")

    def test_unbalanced_brackets(self):
        with pytest.raises(AssemblerError, match="unbalanced brackets"):
            assemble("ldr r1, [r2")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblerError, match="memory operand"):
            assemble("ldr r1, [r2, r3]")

    def test_branch_needs_one_target(self):
        with pytest.raises(AssemblerError, match="one target"):
            assemble("b a, b")


class TestDisassemblerRoundTrip:
    SOURCE = "\n".join(
        [
            "start:",
            "  mov r0, #10",
            "loop:",
            "  sub r0, r0, r5",
            "  ldr r4, [sp, #8]",
            "  str r4, [r5]",
            "  cmp r0, r1",
            "  bne loop",
            "  bl start",
            "  ret",
        ]
    )

    def test_format_reassembles_identically(self):
        unit = assemble(self.SOURCE)
        retext = "\n".join(format_instruction(i) for i in unit.instructions)
        reunit = assemble(retext)
        assert reunit.instructions == unit.instructions

    def test_disassemble_has_addresses(self):
        unit = assemble("nop\nnop")
        text = disassemble(unit.instructions, base_address=0x100)
        assert "0x00000100" in text and "0x00000104" in text
