"""Tests for binary image emission — the proof that ISA, layout, and CFG
agree: every branch in the emitted bytes must land on the address the
layout assigned to its target block, under *both* layouts."""

import pytest

from repro.binary import BinaryImage, emit_image, load_image
from repro.errors import LayoutError
from repro.isa.instructions import INSTRUCTION_SIZE, Opcode
from repro.layout import original_layout, way_placement_layout
from repro.profiling import profile_program
from repro.program.basic_block import BlockKind
from repro.workloads import SMALL_INPUT, branch_models_for, load_benchmark
from tests.conftest import build_toy_program


def _branch_targets_resolve(program, layout, image):
    """Check every branch/call word jumps to its block's laid-out target."""
    checked = 0
    for function in program.functions.values():
        for block in function.blocks:
            terminator = block.terminator
            if terminator is None or terminator.opcode not in (Opcode.B, Opcode.BL):
                continue
            address = (
                layout.address_of(block.uid)
                + (block.num_instructions - 1) * INSTRUCTION_SIZE
            )
            decoded = load_image(
                image.data[
                    address - image.base_address : address - image.base_address + 4
                ]
            )[0]
            target_address = address + decoded.imm * INSTRUCTION_SIZE
            if terminator.opcode is Opcode.BL:
                expected = layout.address_of(
                    program.functions[block.callee].entry.uid
                )
            else:
                expected = layout.address_of(
                    program.block_by_label(block.function, block.taken_label).uid
                )
            assert target_address == expected, (
                f"{block.function}:{block.label} branch lands at "
                f"{target_address:#x}, expected {expected:#x}"
            )
            checked += 1
    return checked


class TestToyProgram:
    def test_image_size_matches_layout(self):
        program = build_toy_program()
        layout = original_layout(program)
        image = emit_image(program, layout)
        assert image.size_bytes == layout.end_address
        assert image.num_words == program.num_instructions

    def test_branches_resolve_original_layout(self):
        program = build_toy_program()
        layout = original_layout(program)
        image = emit_image(program, layout)
        assert _branch_targets_resolve(program, layout, image) >= 3

    def test_branches_resolve_after_reordering(self):
        """The crucial property: reordering blocks re-links every branch."""
        program = build_toy_program()
        counts = {b.uid: b.uid * 7 + 1 for b in program.blocks()}  # arbitrary
        layout = way_placement_layout(program, counts)
        image = emit_image(program, layout)
        assert _branch_targets_resolve(program, layout, image) >= 3

    def test_roundtrip_preserves_non_branch_instructions(self):
        program = build_toy_program()
        layout = original_layout(program)
        image = emit_image(program, layout)
        decoded = load_image(image.data, image.base_address)
        for block in program.blocks():
            start = (layout.address_of(block.uid) - image.base_address) // 4
            for offset, instruction in enumerate(block.instructions):
                if not instruction.is_branch:
                    assert decoded[start + offset] == instruction

    def test_word_at(self):
        import struct

        program = build_toy_program()
        layout = original_layout(program)
        image = emit_image(program, layout)
        first_word = struct.unpack_from("<I", image.data, 0)[0]
        assert image.word_at(image.base_address) == first_word
        with pytest.raises(LayoutError):
            image.word_at(image.base_address + 2)  # unaligned


class TestWorkloadImages:
    @pytest.mark.parametrize("bench", ["crc", "patricia"])
    def test_full_benchmark_emits_and_relinks(self, bench):
        workload = load_benchmark(bench)
        program = workload.program
        profile = profile_program(
            program, branch_models_for(workload, SMALL_INPUT), 30_000
        )
        for layout in (
            original_layout(program),
            way_placement_layout(program, profile.block_counts),
        ):
            image = emit_image(program, layout)
            assert image.size_bytes == program.size_bytes
            checked = _branch_targets_resolve(program, layout, image)
            assert checked > 20  # plenty of branches in a real workload

    def test_symbol_table_included(self):
        program = build_toy_program()
        layout = original_layout(program)
        image = emit_image(program, layout)
        assert image.symbols["main:entry"] == layout.address_of(
            program.uid_of_label("main", "entry")
        )


class TestErrors:
    def test_ragged_image_rejected(self):
        with pytest.raises(LayoutError):
            load_image(b"\x00\x01\x02")

    def test_word_at_out_of_range(self):
        program = build_toy_program()
        image = emit_image(program, original_layout(program))
        with pytest.raises(LayoutError):
            image.word_at(image.base_address + image.size_bytes)

    def test_disassemble_smoke(self):
        program = build_toy_program()
        image = emit_image(program, original_layout(program))
        text = image.disassemble()
        assert text.count("\n") + 1 == image.num_words
        assert "bl" in text
