"""Reference conflict replay: miss decomposition and certificate soundness.

:func:`conflict_replay` claims two things the S009 sanitizer invariant
leans on:

* its total misses equal the engine kernels' miss counter for the
  baseline and way-placement schemes (misses are hint-independent), and
* every set certified conflict-free replays zero conflict misses, for
  *any* access order.

Both are checked on hand-written streams (where the round-robin and
WPA-pinning behaviour can be verified move by move) and on Hypothesis
streams against the vectorized kernels.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis.context import GeometrySpec
from repro.analysis.interference.graph import certify_conflict_free
from repro.analysis.interference.replay import (
    conflict_free_violations,
    conflict_replay,
    trace_certified_sets,
)
from repro.engine.kernels import fast_counters
from tests.scheme_helpers import TINY_GEOMETRY, events_from
from tests.test_schemes_equivalence import event_streams

SPEC = GeometrySpec.from_geometry(TINY_GEOMETRY)

#: Five lines that all map to set 0 — one more than the associativity.
THRASH = [0, 64, 128, 192, 256]


class TestColdMisses:
    def test_distinct_lines_are_cold_misses_only(self):
        replay = conflict_replay(events_from([0, 16, 32, 48]), SPEC)
        assert replay.total_misses == 4
        assert replay.total_conflict_misses == 0

    def test_repeat_accesses_hit(self):
        replay = conflict_replay(events_from([0, 16, 0, 16, 0]), SPEC)
        assert replay.total_misses == 2
        assert replay.total_conflict_misses == 0

    def test_counts_do_not_multiply_misses(self):
        # A (line, count) event is one transition however large the count.
        replay = conflict_replay(events_from([(0, 4), (16, 3)]), SPEC)
        assert replay.total_misses == 2


class TestRoundRobin:
    def test_five_line_thrash_conflicts_every_revisit(self):
        """4-way set, 5 lines, cycled twice: the classic worst case.

        First pass: 5 cold misses (the fifth fill evicts line 0).  The
        second pass chases the round-robin pointer, missing on all 5.
        """
        replay = conflict_replay(events_from(THRASH * 2), SPEC)
        assert replay.total_misses == 10
        assert replay.total_conflict_misses == 5
        assert replay.conflict_misses_of(0) == 5
        assert replay.conflict_misses_of(1) == 0

    def test_within_associativity_never_conflicts(self):
        replay = conflict_replay(events_from(THRASH[:4] * 3), SPEC)
        assert replay.total_misses == 4
        assert replay.total_conflict_misses == 0


class TestWpaPinning:
    def test_mandated_collision_conflicts(self):
        # 0 and 256 share set 0 and mandated way 0; they evict each other
        # even though the set has four ways.
        replay = conflict_replay(events_from([0, 256, 0]), SPEC, wpa_size=512)
        assert replay.total_misses == 3
        assert replay.total_conflict_misses == 1

    def test_distinct_mandated_ways_coexist(self):
        replay = conflict_replay(
            events_from([0, 64, 128, 192] * 2), SPEC, wpa_size=256
        )
        assert replay.total_misses == 4
        assert replay.total_conflict_misses == 0

    def test_wpa_fill_does_not_advance_the_pointer(self):
        """A pinned fill leaves the round-robin pointer at way 0, so the
        next free fill lands on way 0 and evicts the pinned line."""
        replay = conflict_replay(events_from([0, 64, 0]), SPEC, wpa_size=64)
        assert replay.total_misses == 3
        assert replay.total_conflict_misses == 1


class TestTraceCertificates:
    def test_certified_sets_from_trace_footprint(self):
        events = events_from(THRASH + [16, 32])
        assert trace_certified_sets(events, SPEC) == (1, 2)
        # Pinning gives the five set-0 lines distinct homes? No: 0 and
        # 256 share mandated way 0, so set 0 stays uncertified.
        assert trace_certified_sets(events, SPEC, wpa_size=512) == (1, 2)
        assert not certify_conflict_free(THRASH, SPEC, 512)

    def test_violations_flag_miscertified_sets(self):
        replay = conflict_replay(events_from(THRASH * 2), SPEC)
        # Set 0 was never actually certified; claiming it is must be
        # reported with its 5 conflict misses.
        assert conflict_free_violations(replay, [0, 1]) == {0: 5}
        assert conflict_free_violations(replay, [1, 2, 3]) == {}


@given(specs=event_streams(), wpa_size=st.sampled_from([0, 64, 256]))
@settings(max_examples=60, deadline=None)
def test_certified_sets_replay_clean_on_random_streams(specs, wpa_size):
    """Soundness: a certificate survives whatever order the trace picks."""
    events = events_from(specs)
    replay = conflict_replay(events, SPEC, wpa_size)
    certified = trace_certified_sets(events, SPEC, wpa_size)
    assert conflict_free_violations(replay, certified) == {}


@given(specs=event_streams())
@settings(max_examples=60, deadline=None)
def test_replay_misses_match_the_baseline_kernel(specs):
    events = events_from(specs)
    counters = fast_counters("baseline", events, TINY_GEOMETRY, page_size=16)
    assert counters is not None
    assert conflict_replay(events, SPEC).total_misses == counters.misses


@given(specs=event_streams(), wpa_size=st.sampled_from([0, 64, 256]))
@settings(max_examples=60, deadline=None)
def test_replay_misses_match_the_way_placement_kernel(specs, wpa_size):
    events = events_from(specs)
    counters = fast_counters(
        "way-placement", events, TINY_GEOMETRY, wpa_size=wpa_size, page_size=16
    )
    assert counters is not None
    assert conflict_replay(events, SPEC, wpa_size).total_misses == counters.misses
