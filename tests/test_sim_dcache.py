"""Tests for the data-stream generator and D-cache refinement."""

import pytest

from repro.errors import WorkloadError
from repro.sim.dcache import simulate_dcache
from repro.sim.machine import XSCALE_BASELINE
from repro.workloads.data_model import (
    DATA_BASE,
    STACK_BASE,
    DataSpec,
    data_spec_for,
    synthesize_data_events,
)


class TestDataSpec:
    def test_fractions_validated(self):
        with pytest.raises(WorkloadError):
            DataSpec("x", streaming_fraction=0.5, random_fraction=0.5, stack_fraction=0.5)

    def test_presets_cover_suite(self):
        from repro.workloads.mibench import benchmark_names

        for name in benchmark_names():
            spec = data_spec_for(name)
            assert spec.name == name

    def test_class_differences(self):
        assert data_spec_for("cjpeg").streaming_fraction > data_spec_for(
            "patricia"
        ).streaming_fraction
        assert data_spec_for("crc").working_set_kb < data_spec_for(
            "tiff2bw"
        ).working_set_kb


class TestSynthesis:
    def test_access_count_exact(self):
        events = synthesize_data_events(data_spec_for("crc"), 5000)
        assert events.num_fetches == 5000

    def test_deterministic(self):
        a = synthesize_data_events(data_spec_for("sha"), 2000)
        b = synthesize_data_events(data_spec_for("sha"), 2000)
        assert (a.line_addrs == b.line_addrs).all()
        assert (a.counts == b.counts).all()

    def test_addresses_in_data_segments(self):
        events = synthesize_data_events(data_spec_for("patricia"), 3000)
        for addr in events.touched_lines().tolist():
            assert addr >= DATA_BASE
            assert addr < STACK_BASE + 2**20

    def test_no_adjacent_duplicates(self):
        events = synthesize_data_events(data_spec_for("ispell"), 3000)
        addrs = events.line_addrs
        assert (addrs[1:] != addrs[:-1]).all()

    def test_zero_accesses(self):
        events = synthesize_data_events(data_spec_for("crc"), 0)
        assert events.num_events == 0


class TestDcacheSimulation:
    def test_compact_working_set_mostly_hits(self):
        events = synthesize_data_events(data_spec_for("crc"), 20_000)
        result = simulate_dcache(events, XSCALE_BASELINE)
        assert result.miss_rate < 0.02  # 8KB data in a 32KB cache

    def test_streaming_working_set_misses_more(self):
        compact = simulate_dcache(
            synthesize_data_events(data_spec_for("crc"), 20_000)
        )
        streaming = simulate_dcache(
            synthesize_data_events(data_spec_for("tiff2bw"), 20_000)
        )
        assert streaming.miss_rate > compact.miss_rate

    def test_energy_and_stalls_positive(self):
        events = synthesize_data_events(data_spec_for("cjpeg"), 10_000)
        result = simulate_dcache(events)
        assert result.energy_pj > 0
        assert result.stall_cycles == (
            result.counters.misses * XSCALE_BASELINE.memory_latency_cycles
        )
