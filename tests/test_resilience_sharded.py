"""Tests for the sharded execution backend: leases, steals, degradation.

The acceptance bar (see docs/robustness.md): a seeded chaos run on the
sharded backend — shard crashes, lease expiries, stolen stragglers,
forced duplicate deliveries, a torn transport — must still return reports
bit-identical to a fault-free run on the local backend, with a recovered
FailureReport per incident; and an interrupted sharded grid must resume
from its journal, re-executing only the unfinished shards' cells.
"""

import dataclasses
import warnings

import pytest

from repro.engine.grid import GridCell
from repro.errors import CellFailure, ResilienceError
from repro.experiments.runner import ExperimentRunner
from repro.resilience import chaos
from repro.resilience.backends import LocalBackend, resolve_backend
from repro.resilience.chaos import ChaosConfig, ChaosRule
from repro.resilience.journal import ResumeJournal, cell_content_key, grid_digest
from repro.resilience.policy import FallbackPolicy, ResilienceConfig
from repro.resilience.sharded import ShardedBackend, plan_shards

KB = 1024

CELLS = [
    GridCell("crc", "baseline"),
    GridCell("crc", "way-placement", wpa_size=8 * KB),
    GridCell("sha", "baseline"),
    GridCell("sha", "way-placement", wpa_size=8 * KB),
]

#: The fast-expiring sharded config every chaos test here runs under.
SHARDED = ResilienceConfig(
    retries=3,
    backoff_s=0.01,
    timeout_s=10.0,
    backend="sharded",
    lease_timeout_s=0.3,
)

RESOLVE = ExperimentRunner._resolve_layout_policy


def make_runner(cache_dir="off", **kwargs):
    kwargs.setdefault("eval_instructions", 8_000)
    kwargs.setdefault("profile_instructions", 4_000)
    return ExperimentRunner(cache_dir=cache_dir, **kwargs)


def fault_free_reports(cells=None):
    return make_runner().run_grid(cells or CELLS, jobs=1)


class TestBackendResolution:
    def test_names_resolve_to_backends(self):
        assert isinstance(resolve_backend(None), LocalBackend)
        assert isinstance(resolve_backend("local"), LocalBackend)
        assert isinstance(resolve_backend("sharded"), ShardedBackend)

    def test_unknown_backend_is_rejected_with_choices(self):
        with pytest.raises(ResilienceError, match="local.*sharded"):
            resolve_backend("mainframe")


class TestPlanShards:
    def test_shards_follow_the_family_planner_key(self):
        shards = plan_shards(CELLS, RESOLVE)
        assert [shard.shard_id for shard in shards] == [
            "crc:original:32768B/32w/32L",
            "crc:way-placement:32768B/32w/32L",
            "sha:original:32768B/32w/32L",
            "sha:way-placement:32768B/32w/32L",
        ]
        assert all(len(shard.cells) == 1 for shard in shards)
        assert [shard.benchmark for shard in shards] == ["crc", "crc", "sha", "sha"]

    def test_cells_sharing_a_key_share_a_shard(self):
        cells = [
            GridCell("crc", "baseline"),
            GridCell("crc", "baseline", l0_size=256),
        ]
        shards = plan_shards(cells, RESOLVE)
        assert len(shards) == 1
        assert shards[0].cells == tuple(cells)

    def test_target_splits_the_widest_shard_without_mixing_keys(self):
        cells = [GridCell("crc", "baseline", l0_size=size) for size in (0, 128, 256, 512)]
        cells.append(GridCell("sha", "baseline"))
        shards = plan_shards(cells, RESOLVE, target=4)
        assert len(shards) == 4
        # split pieces of one planner key are numbered, others untouched
        assert [shard.shard_id for shard in shards] == [
            "crc:original:32768B/32w/32L#0",
            "crc:original:32768B/32w/32L#1",
            "crc:original:32768B/32w/32L#2",
            "sha:original:32768B/32w/32L",
        ]
        assert all(len({c.benchmark for c in shard.cells}) == 1 for shard in shards)
        assert sum(len(shard.cells) for shard in shards) == len(cells)

    def test_single_cell_shards_cannot_split_further(self):
        shards = plan_shards(CELLS, RESOLVE, target=100)
        assert len(shards) == len(CELLS)

    def test_planning_is_deterministic(self):
        assert plan_shards(CELLS, RESOLVE, target=3) == plan_shards(
            CELLS, RESOLVE, target=3
        )


class TestShardedFaultFree:
    def test_matches_the_local_backend_bit_identically(self):
        want = fault_free_reports()
        runner = make_runner(resilience=SHARDED)
        got = runner.run_grid(CELLS, jobs=2)
        assert got == want
        assert runner.last_failures == []
        summary = runner.last_grid
        assert summary.backend == "sharded"
        assert summary.shards == len(CELLS)
        assert summary.duplicate_results == 0
        assert summary.failed == ()


class TestShardedChaos:
    """Each fault class recovers with its own label, results bit-identical."""

    def run_chaos(self, rules, seed=13):
        runner = make_runner(resilience=SHARDED)
        with chaos.active(ChaosConfig(seed=seed, rules=tuple(rules))):
            got = runner.run_grid(CELLS, jobs=2)
        return runner, got

    def test_crashed_shard_workers_are_reassigned(self):
        # every shard's first lease dies at the worker entry point
        runner, got = self.run_chaos([ChaosRule("shard", "crash", match="@1", times=1)])
        assert got == fault_free_reports()
        incidents = runner.last_failures
        assert len(incidents) == len(CELLS)
        assert all(f.recovered for f in incidents)
        assert {f.site for f in incidents} == {"shard"}
        assert {f.recovery for f in incidents} == {"reassigned"}
        causes = " ".join(c for f in incidents for c in f.causes)
        assert "crashed" in causes

    def test_silenced_heartbeats_expire_the_lease(self):
        # one shard's workers go mute while still computing: its leases
        # expire and the shard is reassigned until a mute worker finishes
        # anyway and delivers — the partitioned-host scenario.
        runner, got = self.run_chaos(
            [
                ChaosRule("lease", "heartbeat-loss", match="crc:original", times=1),
                ChaosRule(
                    "shard", "hang", match="crc:original", times=1, delay_s=1.2
                ),
            ]
        )
        assert got == fault_free_reports()
        incidents = runner.last_failures
        assert all(f.recovered for f in incidents)
        assert "lease" in {f.site for f in incidents}
        assert {f.recovery for f in incidents} <= {"reassigned", "work-steal"}
        causes = " ".join(c for f in incidents for c in f.causes)
        assert "lease expired" in causes

    def test_straggler_shard_is_stolen(self):
        # heartbeats keep flowing, so only the straggler-steal path reacts
        runner, got = self.run_chaos(
            [ChaosRule("shard", "hang", match="crc:original", times=1, delay_s=1.0)]
        )
        assert got == fault_free_reports()
        incidents = runner.last_failures
        assert all(f.recovered for f in incidents)
        steals = [f for f in incidents if f.site == "steal"]
        assert steals and {f.recovery for f in steals} == {"work-steal"}
        assert "straggler" in steals[0].causes[0]

    def test_forced_duplicate_delivery_is_idempotent(self):
        runner, got = self.run_chaos(
            [ChaosRule("steal", "duplicate", match="crc:original", times=1)]
        )
        assert got == fault_free_reports()
        incidents = runner.last_failures
        assert all(f.recovered for f in incidents)
        duplicated = [f for f in incidents if f.recovery == "duplicate-delivery"]
        assert len(duplicated) == 1 and duplicated[0].site == "steal"
        # the copy's results were dropped, not double-adopted
        assert runner.last_grid.duplicate_results >= 1

    def test_transport_failure_degrades_to_the_local_backend(self):
        runner, got = self.run_chaos(
            [ChaosRule("transport", "raise", match="recv", times=1)]
        )
        assert got == fault_free_reports()
        incidents = runner.last_failures
        assert all(f.recovered for f in incidents)
        outages = [f for f in incidents if f.site == "transport"]
        assert len(outages) == 1
        assert outages[0].recovery == "local-backend"
        summary = runner.last_grid
        assert summary.failed == ()
        assert len(summary.executed) == len(CELLS)

    def test_exhausted_shard_falls_back_to_the_in_process_rung(self):
        # a shard that fails every lease (crash on all attempts) must
        # still finish via the supervisor's in-process last resort
        runner, got = self.run_chaos(
            [ChaosRule("shard", "crash", match="sha:original", times=-1)]
        )
        assert got == fault_free_reports()
        incidents = runner.last_failures
        assert all(f.recovered for f in incidents)
        in_process = [f for f in incidents if f.recovery == "in-process"]
        assert in_process and in_process[0].benchmark == "sha"


class TestShardedResume:
    def test_resume_re_executes_only_unfinished_shards(self, tmp_path):
        cache = tmp_path / "cache"
        fail_fast = dataclasses.replace(
            SHARDED, retries=0, fallback=FallbackPolicy.NONE
        )
        first = make_runner(cache, resilience=fail_fast)
        rule = ChaosRule("cell", "raise", match="sha:way-placement", times=-1)
        with chaos.active(ChaosConfig(seed=0, rules=(rule,))):
            with pytest.raises(CellFailure):
                first.run_grid(CELLS, jobs=2)

        # the journal holds the three completed shards' cells plus the
        # lease audit trail of every grant
        key = grid_digest(first.spawn_spec(), [cell_content_key(c) for c in CELLS])
        journal = ResumeJournal.for_grid(cache, key)
        completed = set(journal.load())
        assert completed == {cell_content_key(c) for c in CELLS[:3]}
        granted = {lease["shard"] for lease in journal.leases}
        assert len(granted) == len(CELLS)

        # a fresh process resumes: only the unfinished shard's cell runs
        resumed = make_runner(
            cache, resilience=dataclasses.replace(SHARDED, resume=True)
        )
        reports = resumed.run_grid(CELLS, jobs=2)
        assert reports == fault_free_reports()
        summary = resumed.last_grid
        assert set(summary.resumed) == completed
        assert summary.executed == (cell_content_key(CELLS[3]),)
        assert not journal.path.exists()


class TestStoreWarningDedup:
    """Satellite: one degrade warning for a whole pool of failing workers."""

    @pytest.mark.parametrize("backend", ["local", "sharded"])
    def test_worker_store_degradation_warns_once_in_parent(
        self, tmp_path, backend
    ):
        from repro.engine import store as store_module

        store_module._warned_write_failure = False
        try:
            runner = make_runner(
                tmp_path / "cache",
                resilience=dataclasses.replace(SHARDED, backend=backend),
            )
            rule = ChaosRule("store.save", "enospc", times=-1)
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                with chaos.active(ChaosConfig(seed=3, rules=(rule,))):
                    got = runner.run_grid(CELLS, jobs=2)
            assert got == fault_free_reports()
            degrade = [
                w for w in caught if "trace cache write" in str(w.message)
            ]
            assert len(degrade) == 1
        finally:
            store_module._warned_write_failure = False


class TestDifferentialTierChaos:
    """Satellite: worker replacement + the differential→batch→per-cell
    ladder, all in one supervised parallel run."""

    FAMILY_CELLS = [
        GridCell("crc", "way-placement", wpa_size=4 * KB),
        GridCell("crc", "way-placement", wpa_size=8 * KB),
        GridCell("sha", "way-placement", wpa_size=4 * KB),
        GridCell("sha", "way-placement", wpa_size=8 * KB),
    ]

    def test_hung_worker_is_replaced_and_family_tiers_degrade(self):
        want = fault_free_reports(self.FAMILY_CELLS)
        runner = make_runner(
            engine="differential",
            resilience=ResilienceConfig(retries=2, backoff_s=0.01, timeout_s=2.0),
        )
        config = ChaosConfig(
            seed=13,
            rules=(
                # the first crc worker hangs until the supervisor kills it
                ChaosRule("worker", "hang", match="crc@1", times=1, delay_s=60.0),
                # in its replacement, the differential tier fails once ...
                ChaosRule("differential", "raise", match="crc", times=1),
                # ... and so does the batch tier, falling to per-cell
                ChaosRule("family", "raise", match="crc", times=1),
            ),
        )
        with chaos.active(config):
            got = runner.run_grid(self.FAMILY_CELLS, jobs=2)
        assert got == want
        incidents = runner.last_failures
        assert all(f.recovered for f in incidents)
        recoveries = {f.recovery for f in incidents}
        assert {"fresh-worker", "batch", "per-cell"} <= recoveries
        causes = " ".join(c for f in incidents for c in f.causes)
        assert "timed out" in causes


class TestShardedCliFlags:
    def test_backend_flags_reach_the_runner(self):
        from repro.cli import _make_runner, build_parser

        args = build_parser().parse_args(
            [
                "figure4",
                "--benchmarks",
                "crc",
                "--backend",
                "sharded",
                "--shards",
                "8",
                "--lease-timeout",
                "2.5",
            ]
        )
        config = _make_runner(args).resilience
        assert config.backend == "sharded"
        assert config.shards == 8
        assert config.lease_timeout_s == 2.5

    def test_chaos_seed_flags_are_mutually_exclusive(self, capsys):
        from repro.cli import main

        assert main(["chaos", "--seed", "1", "--seeds", "1,2"]) == 2
        assert "not both" in capsys.readouterr().err


class TestChaosDrill:
    def test_build_rules_is_deterministic_and_backend_specific(self):
        from repro.resilience.drill import build_rules

        assert build_rules(13, "sharded") == build_rules(13, "sharded")
        local = {rule.site for rule in build_rules(13, "local")}
        sharded = {rule.site for rule in build_rules(13, "sharded")}
        assert "worker" in local and "shard" not in local
        assert {"shard", "lease", "steal"} <= sharded

    def test_sharded_drill_passes_the_acceptance_bar(self):
        from repro.resilience.drill import run_drill

        summary = run_drill(seed=1, backend="sharded")
        assert summary["ok"], summary["incidents"]
        assert summary["identical"] and summary["recovered"]
        assert summary["shards"] == 4
