"""Unit tests for the MiBench benchmark suite definitions."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.mibench import (
    MIBENCH_BENCHMARKS,
    benchmark_names,
    load_benchmark,
)

#: The paper's Figure 4 benchmark list, in order.
PAPER_BENCHMARKS = [
    "bitcount",
    "susan_c",
    "susan_e",
    "susan_s",
    "cjpeg",
    "djpeg",
    "tiff2bw",
    "tiff2rgba",
    "tiffdither",
    "tiffmedian",
    "patricia",
    "ispell",
    "rsynth",
    "blowfish_d",
    "blowfish_e",
    "rijndael_d",
    "rijndael_e",
    "sha",
    "rawcaudio",
    "rawdaudio",
    "crc",
    "fft",
    "fft_i",
]


class TestSuiteDefinition:
    def test_exactly_the_paper_suite(self):
        assert benchmark_names() == PAPER_BENCHMARKS

    def test_twenty_three_benchmarks(self):
        assert len(MIBENCH_BENCHMARKS) == 23

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(WorkloadError, match="unknown benchmark"):
            load_benchmark("gsm")

    def test_specs_carry_their_names(self):
        for name, spec in MIBENCH_BENCHMARKS.items():
            assert spec.name == name


class TestSuiteDiversity:
    def test_code_sizes_span_classes(self):
        sizes = {name: spec.code_kb for name, spec in MIBENCH_BENCHMARKS.items()}
        assert sizes["crc"] < 5 < sizes["susan_c"] < 30 < sizes["tiff2rgba"]

    def test_mem_density_spread(self):
        densities = [spec.mem_density for spec in MIBENCH_BENCHMARKS.values()]
        assert min(densities) < 0.1
        assert max(densities) > 0.35

    def test_generated_sizes_ordered_by_class(self):
        tiny = load_benchmark("crc").program.size_bytes
        large = load_benchmark("cjpeg").program.size_bytes
        assert large > 5 * tiny


class TestGeneratedBenchmarks:
    @pytest.mark.parametrize("name", ["crc", "susan_c", "cjpeg"])
    def test_loadable_and_valid(self, name):
        workload = load_benchmark(name)
        assert workload.name == name
        assert workload.program.num_blocks > 10
        assert workload.roles

    def test_load_is_deterministic(self):
        a = load_benchmark("sha")
        b = load_benchmark("sha")
        assert a.program.size_bytes == b.program.size_bytes
        assert a.roles.keys() == b.roles.keys()
