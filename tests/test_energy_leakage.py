"""Unit tests for the drowsy-leakage extension."""

import pytest

from repro.energy.leakage import DrowsyModel, DrowsyStats, LeakageParams
from repro.errors import EnergyModelError
from tests.scheme_helpers import TINY_GEOMETRY, events_from


class TestParams:
    def test_defaults_valid(self):
        LeakageParams()

    def test_validation(self):
        with pytest.raises(EnergyModelError):
            LeakageParams(leak_pj_per_line_cycle=-1)
        with pytest.raises(EnergyModelError):
            LeakageParams(drowsy_factor=2.0)
        with pytest.raises(EnergyModelError):
            LeakageParams(decay_window_cycles=0)


class TestDrowsyModel:
    def test_line_cycle_conservation(self):
        model = DrowsyModel(TINY_GEOMETRY, LeakageParams(decay_window_cycles=8))
        stats = model.run(events_from([(0x00, 4), (0x10, 4), (0x00, 4)]))
        assert (
            stats.active_line_cycles + stats.drowsy_line_cycles
            == stats.num_lines * stats.total_cycles
        )

    def test_hot_line_stays_active(self):
        model = DrowsyModel(TINY_GEOMETRY, LeakageParams(decay_window_cycles=100))
        stats = model.run(events_from([(0x00, 50), (0x10, 1), (0x00, 50)]))
        # untouched slots are drowsy for the whole run; of the two touched
        # slots, only 0x10's pre-first-access cold period (50 cycles) is
        # drowsy — the continuously fetched line 0x00 never goes drowsy.
        expected_drowsy = (stats.num_lines - 2) * stats.total_cycles + 50
        assert stats.drowsy_line_cycles == expected_drowsy

    def test_idle_line_goes_drowsy(self):
        window = 10
        model = DrowsyModel(TINY_GEOMETRY, LeakageParams(decay_window_cycles=window))
        # line 0 fetched, then 100 cycles elsewhere, then refetched
        stats = model.run(events_from([(0x00, 1), (0x10, 100), (0x00, 1)]))
        assert stats.wakes >= 1
        assert stats.drowsy_line_cycles > 0

    def test_mostly_idle_cache_saves_most_leakage(self):
        params = LeakageParams(decay_window_cycles=16)
        model = DrowsyModel(TINY_GEOMETRY, params)
        stats = model.run(events_from([(0x00, 2000)]))
        # one hot line out of 16: ~15/16 of leakage is drowsy-rated
        assert stats.drowsy_fraction > 0.9
        assert stats.leakage_saving(params) > 0.8

    def test_zero_window_effects_bounded(self):
        params = LeakageParams(decay_window_cycles=1)
        model = DrowsyModel(TINY_GEOMETRY, params)
        stats = model.run(events_from([(0x00, 3), (0x10, 3), (0x00, 3)]))
        assert stats.leakage_pj(params) <= stats.always_on_leakage_pj(params)

    def test_wake_penalty_accounted(self):
        params = LeakageParams(decay_window_cycles=5, wake_cycles=2)
        model = DrowsyModel(TINY_GEOMETRY, params)
        stats = model.run(events_from([(0x00, 1), (0x10, 50), (0x00, 1)]))
        assert stats.wake_penalty_cycles == 2 * stats.wakes


class TestStats:
    def test_empty_stats(self):
        stats = DrowsyStats(
            total_cycles=0,
            num_lines=16,
            active_line_cycles=0,
            drowsy_line_cycles=0,
            wakes=0,
            wake_penalty_cycles=0,
        )
        assert stats.drowsy_fraction == 0.0
        assert stats.leakage_saving(LeakageParams()) == 0.0
