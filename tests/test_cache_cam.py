"""Unit tests for the CAM cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.cam_cache import CamCache
from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import LruReplacement
from repro.errors import CacheConfigError


def small_cache():
    return CamCache(CacheGeometry(256, 4, 16))  # 4 sets x 4 ways


class TestFindAndFill:
    def test_empty_cache_misses(self):
        cache = small_cache()
        assert cache.find(0, 0x1) == -1

    def test_fill_then_find(self):
        cache = small_cache()
        way, evicted = cache.fill(2, 0x7)
        assert not evicted
        assert cache.find(2, 0x7) == way
        assert cache.probe_way(2, way, 0x7)
        assert not cache.probe_way(2, (way + 1) % 4, 0x7)

    def test_explicit_way_fill(self):
        cache = small_cache()
        way, _ = cache.fill(1, 0x9, way=3)
        assert way == 3
        assert cache.tag_at(1, 3) == 0x9

    def test_eviction_flag(self):
        cache = small_cache()
        cache.fill(0, 0x1, way=0)
        _, evicted = cache.fill(0, 0x2, way=0)
        assert evicted
        assert cache.find(0, 0x1) == -1

    def test_round_robin_default(self):
        cache = small_cache()
        ways = [cache.fill(0, tag)[0] for tag in range(1, 6)]
        assert ways == [0, 1, 2, 3, 0]

    def test_negative_tag_rejected(self):
        cache = small_cache()
        with pytest.raises(CacheConfigError):
            cache.fill(0, -2)

    def test_policy_geometry_checked(self):
        with pytest.raises(CacheConfigError, match="does not match"):
            CamCache(CacheGeometry(256, 4, 16), LruReplacement(2, 4))


class TestGenerations:
    def test_generation_bumps_on_fill(self):
        cache = small_cache()
        g0 = cache.generation(0, 1)
        cache.fill(0, 0x5, way=1)
        assert cache.generation(0, 1) == g0 + 1
        cache.fill(0, 0x6, way=1)
        assert cache.generation(0, 1) == g0 + 2

    def test_generation_identifies_line(self):
        cache = small_cache()
        cache.fill(0, 0x5, way=1)
        generation = cache.generation(0, 1)
        cache.fill(0, 0x5, way=2)  # a different physical line
        assert cache.generation(0, 1) == generation  # untouched


class TestIntrospection:
    def test_occupancy(self):
        cache = small_cache()
        assert cache.occupancy() == 0.0
        cache.fill(0, 1)
        cache.fill(1, 2)
        assert cache.occupancy() == pytest.approx(2 / 16)

    def test_resident_lines(self):
        cache = small_cache()
        cache.fill(3, 0xA, way=2)
        assert cache.resident_lines() == [(3, 2, 0xA)]

    def test_invalidate_all(self):
        cache = small_cache()
        cache.fill(0, 1)
        cache.invalidate_all()
        assert cache.occupancy() == 0.0

    def test_duplicate_tag_detection(self):
        cache = small_cache()
        cache.fill(0, 0x5, way=0)
        cache.fill(0, 0x5, way=1)
        with pytest.raises(CacheConfigError, match="duplicate tag"):
            cache.assert_no_duplicate_tags()

    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 50)), max_size=60))
    @settings(max_examples=30)
    def test_find_consistent_with_resident(self, fills):
        cache = small_cache()
        for set_index, tag in fills:
            cache.fill(set_index, tag)
        for set_index, way, tag in cache.resident_lines():
            found = cache.find(set_index, tag)
            # the tag is resident; find returns *a* way holding it
            assert cache.tag_at(set_index, found) == tag
