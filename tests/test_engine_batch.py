"""Batched replay equivalence: one traversal, bit-identical per member.

The batched kernel (:mod:`repro.engine.batch`) is only allowed to exist
because it is indistinguishable from the engines it accelerates.  This
suite pins that down three ways:

* **kernel equivalence** — for mixed families (a WPA sweep, baseline and
  way-placement together, ``same_line_skip`` on and off, divergent I-TLB
  shapes), every :class:`~repro.cache.access.FetchCounters` field from
  ``batch_counters`` equals the per-config kernel *and* the reference
  scheme, on Hypothesis-generated and large seeded streams;
* **planner behaviour** — :func:`~repro.engine.grid.plan_families` groups
  exactly the cells sharing (benchmark, resolved layout policy, geometry),
  and leaves non-batchable, invalid, and lone cells on the per-cell path;
* **supervision** — a chaos fault injected at the new ``family`` site
  degrades the family to per-cell replay with a recovered
  :class:`~repro.resilience.policy.FailureReport`, and the grid results
  stay bit-identical to the reference engine.
"""

import dataclasses
import random

import pytest
from hypothesis import given, settings

from repro.cache.access import FetchCounters
from repro.engine.batch import BatchMember, batch_counters, batchable
from repro.engine.grid import GridCell, plan_families
from repro.engine.kernels import fast_counters
from repro.errors import ExperimentError, SchemeError
from repro.experiments.runner import ExperimentRunner
from repro.layout.placement import LayoutPolicy
from repro.resilience import chaos
from repro.resilience.chaos import ChaosConfig, ChaosRule
from repro.schemes.baseline import BaselineScheme
from repro.schemes.way_placement import WayPlacementScheme
from repro.trace.events import SEQUENTIAL_SLOT
from tests.scheme_helpers import TINY_GEOMETRY, events_from
from tests.test_schemes_equivalence import event_streams

KB = 1024

# A deliberately adversarial family: baseline and way-placement mixed, a WPA
# sweep with a duplicate point, same_line_skip toggled against each kernel's
# default, a non-default hint seed, and a tiny I-TLB.  Listed out of
# threshold order so the results must be mapped back to input order.
MIXED_FAMILY = [
    BatchMember("way-placement", {"wpa_size": 256, "page_size": 16}),
    BatchMember("baseline", {"page_size": 16}),
    BatchMember("way-placement", {"wpa_size": 0, "page_size": 16}),
    BatchMember("way-placement", {"wpa_size": 64, "page_size": 16}),
    BatchMember(
        "way-placement",
        {"wpa_size": 256, "page_size": 16, "same_line_skip": False},
    ),
    BatchMember("baseline", {"page_size": 16, "same_line_skip": True}),
    BatchMember(
        "way-placement",
        {"wpa_size": 128, "page_size": 16, "hint_initial": True},
    ),
    BatchMember(
        "way-placement",
        {"wpa_size": 64, "page_size": 16, "itlb_entries": 2},
    ),
    BatchMember("way-placement", {"wpa_size": 64, "page_size": 16}),
]


def reference_counters(member, events):
    cls = BaselineScheme if member.scheme == "baseline" else WayPlacementScheme
    return cls(TINY_GEOMETRY, **dict(member.options)).run(events)


def assert_identical(actual, expected, member):
    for field in dataclasses.fields(FetchCounters):
        assert getattr(actual, field.name) == getattr(expected, field.name), (
            f"{field.name} diverges for {member}: "
            f"{getattr(actual, field.name)} != {getattr(expected, field.name)}"
        )


class TestKernelEquivalence:
    @given(event_streams())
    @settings(max_examples=60, deadline=None)
    def test_mixed_family_matches_kernels_and_reference(self, specs):
        events = events_from(specs)
        batched = batch_counters(events, TINY_GEOMETRY, MIXED_FAMILY)
        assert len(batched) == len(MIXED_FAMILY)
        for member, counters in zip(MIXED_FAMILY, batched):
            kernel = fast_counters(
                member.scheme, events, TINY_GEOMETRY, **dict(member.options)
            )
            assert_identical(counters, kernel, member)
            assert_identical(counters, reference_counters(member, events), member)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_seeded_large_streams(self, seed):
        rng = random.Random(seed)
        specs = []
        previous = None
        for _ in range(600):
            line = rng.randrange(120)
            if line == previous:
                line = (line + 1) % 120
            previous = line
            specs.append(
                (
                    line * 16,
                    rng.randint(1, 8),
                    rng.choice([SEQUENTIAL_SLOT, 0, 1, 2, 3]),
                )
            )
        events = events_from(specs)
        for member, counters in zip(
            MIXED_FAMILY, batch_counters(events, TINY_GEOMETRY, MIXED_FAMILY)
        ):
            kernel = fast_counters(
                member.scheme, events, TINY_GEOMETRY, **dict(member.options)
            )
            assert_identical(counters, kernel, member)

    def test_empty_trace(self):
        empty = events_from([])
        for member, counters in zip(
            MIXED_FAMILY, batch_counters(empty, TINY_GEOMETRY, MIXED_FAMILY)
        ):
            assert_identical(
                counters,
                fast_counters(
                    member.scheme, empty, TINY_GEOMETRY, **dict(member.options)
                ),
                member,
            )

    def test_no_members_is_empty(self):
        events = events_from([(0, 1), (16, 2)])
        assert batch_counters(events, TINY_GEOMETRY, []) == []


class TestBatchableGate:
    def test_gate(self):
        assert batchable("baseline", {})
        assert batchable("baseline", {"page_size": 16, "same_line_skip": True})
        assert batchable("way-placement", {"wpa_size": 64, "hint_initial": True})
        assert not batchable("baseline", {"l0_size": 64})
        assert not batchable("way-placement", {"invalidation": "exact"})
        assert not batchable("way-memoization", {})
        assert not batchable("filter-cache", {"l0_size": 64})

    def test_non_batchable_member_raises(self):
        events = events_from([(0, 1)])
        with pytest.raises(SchemeError, match="not\\s+batchable"):
            batch_counters(
                events, TINY_GEOMETRY, [BatchMember("way-memoization", {})]
            )

    def test_wpa_base_rejected(self):
        events = events_from([(0, 1)])
        member = BatchMember(
            "way-placement", {"wpa_size": 64, "page_size": 16, "wpa_base": 64}
        )
        with pytest.raises(SchemeError, match="beginning"):
            batch_counters(events, TINY_GEOMETRY, [member])

    def test_negative_wpa_rejected(self):
        events = events_from([(0, 1)])
        member = BatchMember("way-placement", {"wpa_size": -16, "page_size": 16})
        with pytest.raises(SchemeError):
            batch_counters(events, TINY_GEOMETRY, [member])


def make_runner(**kwargs):
    kwargs.setdefault("eval_instructions", 8_000)
    kwargs.setdefault("profile_instructions", 4_000)
    return ExperimentRunner(cache_dir="off", **kwargs)


SWEEP_CELLS = [
    GridCell("crc", "baseline"),
    GridCell("crc", "way-placement", wpa_size=4 * KB),
    GridCell("crc", "way-placement", wpa_size=8 * KB),
    GridCell("crc", "way-placement", wpa_size=16 * KB),
]


class TestPlanner:
    def test_groups_by_benchmark_policy_and_geometry(self):
        runner = make_runner()
        cells = SWEEP_CELLS + [
            GridCell("sha", "way-placement", wpa_size=8 * KB),
            GridCell("crc", "way-memoization"),
        ]
        families, singles = plan_families(cells, runner._resolve_layout_policy)
        assert len(families) == 1
        family = families[0]
        assert family.benchmark == "crc"
        assert family.layout_policy is LayoutPolicy.WAY_PLACEMENT
        assert family.geometry == cells[1].machine.icache
        assert family.indices == (1, 2, 3)
        # baseline is alone in its (crc, ORIGINAL) group; the sha sweep
        # point is alone in its trace group; way-memoization has no kernel.
        assert singles == [0, 4, 5]

    def test_two_baselines_form_a_family(self):
        runner = make_runner()
        cells = [
            GridCell("crc", "baseline"),
            GridCell("crc", "baseline", same_line_skip=True),
        ]
        families, singles = plan_families(cells, runner._resolve_layout_policy)
        assert len(families) == 1 and families[0].indices == (0, 1)
        assert families[0].layout_policy is LayoutPolicy.ORIGINAL
        assert singles == []

    def test_invalid_cell_left_for_per_cell_diagnosis(self):
        runner = make_runner()
        # 1000B is not a multiple of the 1KB page size: scheme_options
        # raises, and the planner must leave the cell on the per-cell path
        # so the error surfaces with the usual supervision context.
        cells = SWEEP_CELLS + [GridCell("crc", "way-placement", wpa_size=1000)]
        families, singles = plan_families(cells, runner._resolve_layout_policy)
        assert families and families[0].indices == (1, 2, 3)
        assert 4 in singles


class TestFamilyExecution:
    def test_report_family_rejects_mixed_traces(self):
        runner = make_runner()
        with pytest.raises(ExperimentError, match="sharing"):
            runner.report_family(
                [
                    GridCell("crc", "way-placement", wpa_size=4 * KB),
                    GridCell("sha", "way-placement", wpa_size=4 * KB),
                ]
            )

    def test_run_grid_batch_matches_reference(self):
        batch_reports = make_runner(engine="batch").run_grid(SWEEP_CELLS)
        reference_reports = make_runner(engine="reference").run_grid(SWEEP_CELLS)
        for cell, batch_report, reference_report in zip(
            SWEEP_CELLS, batch_reports, reference_reports
        ):
            assert batch_report.counters == reference_report.counters, cell
            assert batch_report.breakdown == reference_report.breakdown, cell
            assert batch_report.cycles == reference_report.cycles, cell

    def test_family_failure_degrades_to_per_cell(self):
        runner = make_runner(engine="batch")
        rule = ChaosRule("family", "raise", match="crc", times=-1)
        with chaos.active(ChaosConfig(seed=0, rules=(rule,))):
            reports = runner.run_grid(SWEEP_CELLS)

        incidents = [f for f in runner.last_failures if f.site == "family"]
        assert incidents, "family fault left no FailureReport"
        incident = incidents[0]
        assert incident.recovered and incident.recovery == "per-cell"
        assert incident.benchmark == "crc"
        assert "3-cell family" in incident.cell
        assert "InjectedFault" in incident.causes[0]

        reference_reports = make_runner(engine="reference").run_grid(SWEEP_CELLS)
        for report, reference_report in zip(reports, reference_reports):
            assert report.counters == reference_report.counters
