"""End-to-end integration tests reproducing the paper's headline effects
on a reduced scale (small instruction budgets, a few benchmarks).

These are the guardrails for the reproduction itself: if a refactor breaks
the chain (profiling -> chaining -> placement -> simulation -> energy), the
band assertions here fail long before the full benchmark harness runs.
"""

import pytest

from repro.experiments.runner import ExperimentRunner
from repro.layout.placement import LayoutPolicy
from repro.sim.machine import XSCALE_BASELINE

KB = 1024


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(eval_instructions=80_000, profile_instructions=30_000)


class TestHeadlineResult:
    """The abstract's claim: ~50% energy saving vs ~32% for way-memoization."""

    @pytest.mark.parametrize("bench", ["crc", "sha", "susan_c", "cjpeg"])
    def test_way_placement_band(self, runner, bench):
        result = runner.normalised(bench, "way-placement", wpa_size=32 * KB)
        assert 0.45 <= result.icache_energy <= 0.60
        assert result.ed_product < 1.0

    @pytest.mark.parametrize("bench", ["crc", "sha", "susan_c", "cjpeg"])
    def test_memoization_band(self, runner, bench):
        result = runner.normalised(bench, "way-memoization")
        assert 0.58 <= result.icache_energy <= 0.75

    @pytest.mark.parametrize("bench", ["crc", "sha", "cjpeg"])
    def test_placement_beats_memoization(self, runner, bench):
        placed = runner.normalised(bench, "way-placement", wpa_size=32 * KB)
        memo = runner.normalised(bench, "way-memoization")
        assert placed.icache_energy < memo.icache_energy

    def test_performance_essentially_unchanged(self, runner):
        """The paper: 'no change in performance' — delay within 3%."""
        for bench in ("crc", "susan_c", "cjpeg"):
            result = runner.normalised(bench, "way-placement", wpa_size=32 * KB)
            assert result.delay == pytest.approx(1.0, abs=0.03)


class TestWpaSweep:
    def test_shrinking_wpa_degrades_gracefully(self, runner):
        energies = []
        for wpa in (32 * KB, 4 * KB, 1 * KB):
            result = runner.normalised("cjpeg", "way-placement", wpa_size=wpa)
            energies.append(result.icache_energy)
        assert energies[0] <= energies[1] <= energies[2]
        assert energies[2] < 0.68  # even 1KB clearly beats way-memoization


class TestCacheConfigTrends:
    def test_savings_grow_with_associativity(self, runner):
        savings = {}
        for ways in (8, 32):
            machine = XSCALE_BASELINE.with_icache(32 * KB, ways)
            result = runner.normalised(
                "sha", "way-placement", machine, wpa_size=8 * KB
            )
            savings[ways] = 1 - result.icache_energy
        assert savings[32] > savings[8]

    def test_memoization_backfires_on_small_low_assoc_cache(self, runner):
        machine = XSCALE_BASELINE.with_icache(16 * KB, 8)
        result = runner.normalised("sha", "way-memoization", machine)
        assert result.icache_energy > 1.0

    def test_best_config_is_large_highly_associative(self, runner):
        machine = XSCALE_BASELINE.with_icache(64 * KB, 32)
        result = runner.normalised("sha", "way-placement", machine, wpa_size=16 * KB)
        assert result.icache_energy < 0.48
        assert result.ed_product < 0.93


class TestLayoutMatters:
    def test_chained_layout_beats_original_for_small_wpa(self, runner):
        """The compiler pass is what makes a small WPA effective."""
        chained = runner.normalised("cjpeg", "way-placement", wpa_size=4 * KB)
        unchained = runner.normalised(
            "cjpeg",
            "way-placement",
            wpa_size=4 * KB,
            layout_policy=LayoutPolicy.ORIGINAL,
        )
        assert chained.icache_energy < unchained.icache_energy

    def test_coldest_first_is_adversarial(self, runner):
        placed = runner.normalised("crc", "way-placement", wpa_size=2 * KB)
        adversarial = runner.normalised(
            "crc",
            "way-placement",
            wpa_size=2 * KB,
            layout_policy=LayoutPolicy.COLDEST_FIRST,
        )
        assert placed.icache_energy < adversarial.icache_energy


class TestProfileTransfer:
    def test_small_input_profile_transfers_to_large_input(self, runner):
        """Train on small, evaluate on large (the paper's methodology) —
        the saving must survive the input change."""
        result = runner.normalised("susan_e", "way-placement", wpa_size=8 * KB)
        assert result.icache_energy < 0.60
