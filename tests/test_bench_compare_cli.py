"""The bench regression gate: ``compare_snapshots`` and its CLI face.

The gate guards the engine speedup ratios in ``BENCH_engine.json``.
Policy under test: a guarded metric may improve or drift slightly, but
dropping more than the tolerance below the baseline fails; a metric
missing from the current snapshot fails (a silently skipped bench must
not pass); one missing from the baseline is reported and skipped.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.experiments.bench import (
    DEFAULT_BASELINE,
    GUARDED,
    compare_snapshots,
    load_metrics,
)


def _metrics(**overrides):
    """A full metrics block with every guarded field present."""
    base = {
        "grid.wpa_sweep_16": {"batch_speedup": 4.0},
        "grid.wpa_sweep_256": {"differential_speedup": 10.0},
        "grid.wpa_sweep_256_pruned": {"pruned_fraction": 0.9},
        "grid.sharded_sweep": {"chaos_identical": 1.0},
        "store.load_events": {"warm_speedup": 8.0},
        "grid.arena_rss": {"arena_no_worse": 1.0},
    }
    for metric, fields in overrides.items():
        base[metric] = fields
    return base


class TestCompareSnapshots:
    def test_identical_snapshots_pass(self):
        comparison = compare_snapshots(_metrics(), _metrics())
        assert comparison.ok
        assert [v.status for v in comparison.verdicts] == ["ok"] * len(GUARDED)
        assert "bench regression gate passed" in comparison.render()

    def test_improvement_and_small_drift_pass(self):
        current = _metrics(
            **{
                "grid.wpa_sweep_16": {"batch_speedup": 9.0},
                "grid.wpa_sweep_256": {"differential_speedup": 8.5},
            }
        )
        assert compare_snapshots(current, _metrics(), tolerance=0.20).ok

    def test_drop_beyond_tolerance_fails(self):
        current = _metrics(**{"grid.wpa_sweep_16": {"batch_speedup": 3.0}})
        comparison = compare_snapshots(current, _metrics(), tolerance=0.20)
        assert not comparison.ok
        assert any("grid.wpa_sweep_16" in failure for failure in comparison.failures)
        assert "FAILED" in comparison.render()

    def test_drop_at_the_floor_passes(self):
        current = _metrics(**{"grid.wpa_sweep_16": {"batch_speedup": 3.2}})
        assert compare_snapshots(current, _metrics(), tolerance=0.20).ok

    def test_metric_missing_from_current_fails(self):
        current = _metrics()
        del current["grid.wpa_sweep_256"]
        comparison = compare_snapshots(current, _metrics())
        assert not comparison.ok
        assert any("missing" in failure for failure in comparison.failures)

    def test_metric_missing_from_baseline_is_skipped(self):
        baseline = _metrics()
        del baseline["grid.wpa_sweep_256_pruned"]
        comparison = compare_snapshots(_metrics(), baseline)
        assert comparison.ok
        assert any(v.status == "SKIP" for v in comparison.verdicts)
        assert "not in baseline" in comparison.render()

    @pytest.mark.parametrize("tolerance", [-0.1, 1.0, 2.5])
    def test_tolerance_must_be_a_fraction(self, tolerance):
        with pytest.raises(ReproError):
            compare_snapshots(_metrics(), _metrics(), tolerance=tolerance)


class TestLoadMetrics:
    def test_reads_the_metrics_block(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps({"metrics": _metrics()}))
        assert load_metrics(path) == _metrics()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            load_metrics(tmp_path / "absent.json")

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text("{not json")
        with pytest.raises(ReproError, match="not valid JSON"):
            load_metrics(path)

    def test_missing_metrics_block_raises(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps({"walls": {}}))
        with pytest.raises(ReproError, match="no 'metrics' block"):
            load_metrics(path)

    def test_committed_baseline_carries_every_guarded_metric(self):
        metrics = load_metrics(DEFAULT_BASELINE)
        for metric, field in GUARDED:
            assert metrics[metric][field] > 0, (metric, field)


def _snapshot(tmp_path, name, metrics):
    path = tmp_path / name
    path.write_text(json.dumps({"metrics": metrics}))
    return str(path)


class TestCli:
    def test_passing_gate_exits_zero(self, tmp_path, capsys):
        current = _snapshot(tmp_path, "current.json", _metrics())
        baseline = _snapshot(tmp_path, "baseline.json", _metrics())
        assert main(["bench", "compare", current, "--baseline", baseline]) == 0
        assert "bench regression gate passed" in capsys.readouterr().out

    def test_failing_gate_exits_one(self, tmp_path, capsys):
        current = _snapshot(
            tmp_path,
            "current.json",
            _metrics(**{"grid.wpa_sweep_16": {"batch_speedup": 1.0}}),
        )
        baseline = _snapshot(tmp_path, "baseline.json", _metrics())
        assert main(["bench", "compare", current, "--baseline", baseline]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_tolerance_flag_is_honoured(self, tmp_path):
        current = _snapshot(
            tmp_path,
            "current.json",
            _metrics(**{"grid.wpa_sweep_16": {"batch_speedup": 3.9}}),
        )
        baseline = _snapshot(tmp_path, "baseline.json", _metrics())
        argv = ["bench", "compare", current, "--baseline", baseline]
        assert main(argv + ["--tolerance", "0.1"]) == 0
        assert main(argv + ["--tolerance", "0.01"]) == 1

    def test_default_baseline_self_compare_passes(self):
        assert main(["bench", "compare", str(DEFAULT_BASELINE)]) == 0
