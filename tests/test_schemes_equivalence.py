"""Cross-scheme property tests: invariants that must hold for any stream.

These drive every scheme with randomly generated (but structurally valid)
event streams and check the accounting identities the energy and timing
models rely on.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.geometry import CacheGeometry
from repro.engine.kernels import fast_counters
from repro.schemes.baseline import BaselineScheme
from repro.schemes.filter_cache import FilterCacheScheme
from repro.schemes.way_memoization import WayMemoizationScheme
from repro.schemes.way_placement import WayPlacementScheme
from repro.schemes.way_prediction import WayPredictionScheme
from repro.trace.events import SEQUENTIAL_SLOT, LineEventTrace
from tests.scheme_helpers import TINY_GEOMETRY, events_from


@st.composite
def event_streams(draw):
    """Random event streams over a handful of lines, no adjacent repeats."""
    n = draw(st.integers(min_value=1, max_value=60))
    lines = draw(
        st.lists(st.integers(0, 40), min_size=n, max_size=n)
    )
    specs = []
    previous = None
    for index, line_number in enumerate(lines):
        if line_number == previous:
            line_number = (line_number + 1) % 41
        previous = line_number
        count = draw(st.integers(1, 4))
        slot = draw(st.sampled_from([SEQUENTIAL_SLOT, 0, 1, 2, 3]))
        specs.append((line_number * 16, count, slot))
    return specs


def make_all_schemes():
    return [
        BaselineScheme(TINY_GEOMETRY, page_size=16),
        WayPlacementScheme(TINY_GEOMETRY, wpa_size=256, page_size=16),
        WayPlacementScheme(TINY_GEOMETRY, wpa_size=64, page_size=16),
        WayMemoizationScheme(TINY_GEOMETRY, page_size=16),
        WayPredictionScheme(TINY_GEOMETRY, page_size=16),
        FilterCacheScheme(TINY_GEOMETRY, l0_size=64, page_size=16),
    ]


@given(event_streams())
@settings(max_examples=60, deadline=None)
def test_accounting_identities(specs):
    events = events_from(specs)
    total_fetches = sum(s[1] for s in specs)
    for scheme in make_all_schemes():
        counters = scheme.run(events)
        counters.validate()
        assert counters.fetches == total_fetches
        assert counters.line_events == len(specs)
        assert counters.fills >= counters.misses
        assert counters.wp_fills <= counters.fills
        # every line transition resolves exactly once (filter cache resolves
        # only its L0 misses against the L1)
        if isinstance(scheme, FilterCacheScheme):
            assert counters.hits + counters.misses == counters.l0_misses
        else:
            assert counters.hits + counters.misses == counters.line_events


@given(event_streams())
@settings(max_examples=40, deadline=None)
def test_baseline_and_memoization_agree_on_misses(specs):
    """Way-memoization never changes cache *contents*, only tag activity."""
    events = events_from(specs)
    base = BaselineScheme(TINY_GEOMETRY, page_size=16).run(events)
    memo = WayMemoizationScheme(TINY_GEOMETRY, page_size=16).run(events)
    assert base.misses == memo.misses
    assert base.hits == memo.hits
    assert base.evictions == memo.evictions


@given(event_streams())
@settings(max_examples=40, deadline=None)
def test_way_placement_invariant_holds_for_any_stream(specs):
    """A WPA line is only ever resident in its mandated way."""
    for wpa_size in (64, 128, 256):
        scheme = WayPlacementScheme(TINY_GEOMETRY, wpa_size=wpa_size, page_size=16)
        scheme.run(events_from(specs))
        geometry = scheme.geometry
        for set_index, way, tag in scheme.cache.resident_lines():
            address = geometry.reconstruct_address(tag, set_index)
            if address < wpa_size:
                assert way == geometry.mandated_way(address)
        scheme.cache.assert_no_duplicate_tags()


@given(event_streams())
@settings(max_examples=40, deadline=None)
def test_way_placement_precharge_bound_vs_baseline(specs):
    """Way placement beats baseline precharge up to misprediction overhead.

    Each hint false positive costs a corrective full search (`ways` extra
    precharges), so an adversarial stream that mispredicts on nearly every
    transition can precharge *more* than baseline — the unconditional
    "never more than baseline" claim only holds for streams with locality.
    The bound that holds for any stream is baseline + ways * false_positives.
    """
    events = events_from(specs)
    base = BaselineScheme(TINY_GEOMETRY, page_size=16).run(events)
    placed = WayPlacementScheme(
        TINY_GEOMETRY, wpa_size=256, page_size=16
    ).run(events)
    slack = TINY_GEOMETRY.ways * placed.hint_false_positives
    assert placed.ways_precharged <= base.ways_precharged + slack


@given(event_streams())
@settings(max_examples=40, deadline=None)
def test_memoization_links_never_fetch_wrong_line(specs):
    """Every link-followed transition must be a true hit of the right tag."""
    events = events_from(specs)
    scheme = WayMemoizationScheme(TINY_GEOMETRY, page_size=16)
    counters = scheme.run(events)
    # If a link ever fetched the wrong line, contents would diverge from
    # the baseline simulation of the same stream:
    reference = BaselineScheme(TINY_GEOMETRY, page_size=16).run(events)
    assert counters.misses == reference.misses


@given(event_streams())
@settings(max_examples=30, deadline=None)
def test_determinism_across_runs(specs):
    events = events_from(specs)
    for factory in (
        lambda: BaselineScheme(TINY_GEOMETRY, page_size=16),
        lambda: WayPlacementScheme(TINY_GEOMETRY, wpa_size=128, page_size=16),
        lambda: WayMemoizationScheme(TINY_GEOMETRY, page_size=16),
    ):
        first = factory().run(events)
        second = factory().run(events)
        assert first == second


# ---------------------------------------------------------------------------
# Vectorized kernels (repro.engine.kernels) against the reference schemes.
# The kernels promise *bit-identical* FetchCounters — every field, not just
# the energy-relevant ones — so these compare whole counter objects.
# ---------------------------------------------------------------------------

#: Geometries spanning set counts, associativities, and line sizes.
KERNEL_GEOMETRIES = [
    TINY_GEOMETRY,
    CacheGeometry(512, 8, 16),
    CacheGeometry(1024, 4, 32),
    CacheGeometry(2048, 32, 32),
]


def random_events(
    rng: np.random.Generator, n: int, num_lines: int, line_size: int
) -> LineEventTrace:
    """A seeded stream with locality (random walk over a small line pool)."""
    walk = np.cumsum(rng.integers(-3, 4, size=n)) % num_lines
    # collapse adjacent repeats, which LineEventTrace forbids
    walk[1:][walk[1:] == walk[:-1]] += 1
    walk %= num_lines
    keep = np.ones(n, dtype=bool)
    keep[1:] = walk[1:] != walk[:-1]
    lines = walk[keep]
    m = len(lines)
    return LineEventTrace(
        line_size=line_size,
        line_addrs=(lines * line_size).astype(np.int64),
        counts=rng.integers(1, 5, size=m).astype(np.int32),
        slots=rng.choice(
            np.asarray([SEQUENTIAL_SLOT, 0, 1, 2, 3], dtype=np.int16), size=m
        ),
    )


@pytest.mark.parametrize("geometry", KERNEL_GEOMETRIES)
@pytest.mark.parametrize("same_line_skip", [False, True])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_vectorized_baseline_bit_identical(geometry, same_line_skip, seed):
    rng = np.random.default_rng(seed)
    events = random_events(rng, 500, 3 * geometry.num_lines, geometry.line_size)
    reference = BaselineScheme(
        geometry, itlb_entries=4, page_size=256, same_line_skip=same_line_skip
    ).run(events)
    fast = fast_counters(
        "baseline",
        events,
        geometry,
        itlb_entries=4,
        page_size=256,
        same_line_skip=same_line_skip,
    )
    assert fast == reference


@pytest.mark.parametrize("geometry", KERNEL_GEOMETRIES)
@pytest.mark.parametrize("same_line_skip", [False, True])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_vectorized_way_placement_bit_identical(geometry, same_line_skip, seed):
    rng = np.random.default_rng(100 + seed)
    events = random_events(rng, 500, 3 * geometry.num_lines, geometry.line_size)
    # WPA sizes from "nothing" through "part of a way" to "several ways".
    way_size = geometry.size_bytes // geometry.ways
    for wpa_size in (0, 256, way_size, 2 * way_size):
        if wpa_size % 256:
            continue
        reference = WayPlacementScheme(
            geometry,
            wpa_size=wpa_size,
            itlb_entries=4,
            page_size=256,
            same_line_skip=same_line_skip,
        ).run(events)
        fast = fast_counters(
            "way-placement",
            events,
            geometry,
            wpa_size=wpa_size,
            itlb_entries=4,
            page_size=256,
            same_line_skip=same_line_skip,
        )
        assert fast == reference


@pytest.mark.parametrize("hint_initial", [False, True])
def test_vectorized_way_placement_hint_initial(hint_initial):
    rng = np.random.default_rng(7)
    events = random_events(rng, 200, 40, 16)
    reference = WayPlacementScheme(
        TINY_GEOMETRY, wpa_size=128, page_size=16, hint_initial=hint_initial
    ).run(events)
    fast = fast_counters(
        "way-placement",
        events,
        TINY_GEOMETRY,
        wpa_size=128,
        page_size=16,
        hint_initial=hint_initial,
    )
    assert fast == reference


@given(event_streams())
@settings(max_examples=60, deadline=None)
def test_vectorized_kernels_bit_identical_on_adversarial_streams(specs):
    """Hypothesis hunts for streams where the kernels diverge."""
    events = events_from(specs)
    base_ref = BaselineScheme(TINY_GEOMETRY, page_size=16).run(events)
    assert fast_counters("baseline", events, TINY_GEOMETRY, page_size=16) == base_ref
    for wpa_size in (0, 64, 128, 256):
        placed_ref = WayPlacementScheme(
            TINY_GEOMETRY, wpa_size=wpa_size, page_size=16
        ).run(events)
        fast = fast_counters(
            "way-placement", events, TINY_GEOMETRY, wpa_size=wpa_size, page_size=16
        )
        assert fast == placed_ref


def test_fast_counters_declines_unknown_schemes_and_options():
    events = events_from([(0, 1)])
    assert fast_counters("way-memoization", events, TINY_GEOMETRY) is None
    assert fast_counters("baseline", events, TINY_GEOMETRY, l0_size=64) is None
    assert (
        fast_counters("way-placement", events, TINY_GEOMETRY, adaptive=True) is None
    )


def test_empty_trace_matches_reference():
    events = events_from([])
    assert fast_counters("baseline", events, TINY_GEOMETRY, page_size=16) == (
        BaselineScheme(TINY_GEOMETRY, page_size=16).run(events)
    )
    assert fast_counters(
        "way-placement", events, TINY_GEOMETRY, wpa_size=64, page_size=16
    ) == WayPlacementScheme(TINY_GEOMETRY, wpa_size=64, page_size=16).run(events)


@given(event_streams(), st.integers(min_value=1, max_value=13))
@settings(max_examples=30, deadline=None)
def test_segmented_feed_equals_single_run(specs, chunk):
    """Feeding a trace in segments must equal one-shot processing for every
    scheme — the invariant the adaptive-WPA controller relies on."""
    events = events_from(specs)
    for make in (
        lambda: BaselineScheme(TINY_GEOMETRY, page_size=16),
        lambda: WayPlacementScheme(TINY_GEOMETRY, wpa_size=128, page_size=16),
        lambda: WayMemoizationScheme(TINY_GEOMETRY, page_size=16),
        lambda: WayPredictionScheme(TINY_GEOMETRY, page_size=16),
        lambda: FilterCacheScheme(TINY_GEOMETRY, l0_size=64, page_size=16),
    ):
        whole = make()
        whole.run(events)
        segmented = make()
        for start in range(0, events.num_events, chunk):
            segmented.feed(
                events.segment(start, min(start + chunk, events.num_events))
            )
        assert whole.counters == segmented.counters
