"""Differential replay equivalence: delta-driven state, bit-identical counters.

The differential tier (:mod:`repro.engine.differential`) replays a sweep
family by evolving interval-shared per-set state snapshots, splitting at
threshold-straddling misses and merging on reconvergence, with the sweep
reductions answered from per-trace sorted aggregates.  None of that is
allowed to change a number.  This suite pins it down four ways:

* **kernel equivalence** — for mixed families (baseline and way-placement
  together, non-contiguous and duplicate thresholds, degenerate 1-config
  families), every :class:`~repro.cache.access.FetchCounters` field from
  ``differential_counters`` equals ``batch_counters``, the per-config
  kernel, *and* the reference scheme, on Hypothesis-generated and large
  seeded streams — including a direct-mapped geometry where every split
  must reconverge through eviction cascades;
* **planner behaviour** — :func:`~repro.engine.grid.plan_families` marks a
  family ``differential`` only when that engine is requested *and* the
  family sweeps two or more distinct effective thresholds;
* **grid execution** — ``--engine differential`` grids stay bit-identical
  to the reference engine;
* **supervision** — seeded chaos faults walk the full degradation ladder:
  a differential fault re-runs the family on the batch tier
  (``site="differential"``, ``recovery="batch"``), and a family fault on
  top degrades the members to per-cell replay, with results unchanged at
  every rung.
"""

import dataclasses
import random

import pytest
from hypothesis import given, settings

from repro.cache.access import FetchCounters
from repro.cache.geometry import CacheGeometry
from repro.engine.batch import BatchMember, batch_counters
from repro.engine.differential import differential_counters
from repro.engine.grid import GridCell, plan_families
from repro.engine.kernels import fast_counters
from repro.errors import ExperimentError, SchemeError
from repro.resilience import chaos
from repro.resilience.chaos import ChaosConfig, ChaosRule
from repro.trace.events import SEQUENTIAL_SLOT
from tests.scheme_helpers import TINY_GEOMETRY, events_from
from tests.test_engine_batch import (
    MIXED_FAMILY,
    SWEEP_CELLS,
    assert_identical,
    make_runner,
    reference_counters,
)
from tests.test_schemes_equivalence import event_streams

KB = 1024

#: A direct-mapped variant: with one way per set, every fill evicts, so a
#: split run reconverges on the very next shared fill — the merge path
#: runs constantly instead of rarely.
DIRECT_MAPPED = CacheGeometry(64, 1, 16)

#: Non-contiguous thresholds: gaps, duplicates, and points beyond the
#: 40-line stream extent, so some adjacent pairs never see a delta event
#: and others straddle almost every address.
SPARSE_SWEEP = [
    BatchMember("way-placement", {"wpa_size": 32, "page_size": 16}),
    BatchMember("way-placement", {"wpa_size": 640, "page_size": 16}),
    BatchMember("baseline", {"page_size": 16}),
    BatchMember("way-placement", {"wpa_size": 64, "page_size": 16}),
    BatchMember("way-placement", {"wpa_size": 64, "page_size": 16}),
    BatchMember("way-placement", {"wpa_size": 4096, "page_size": 16}),
]


def assert_family_agrees(events, geometry, members):
    batched = batch_counters(events, geometry, members)
    differential = differential_counters(events, geometry, members)
    assert len(differential) == len(members)
    for member, diff, batch in zip(members, differential, batched):
        assert_identical(diff, batch, member)
        kernel = fast_counters(
            member.scheme, events, geometry, **dict(member.options)
        )
        assert_identical(diff, kernel, member)


class TestKernelEquivalence:
    @given(event_streams())
    @settings(max_examples=60, deadline=None)
    def test_mixed_family_matches_batch_kernels_and_reference(self, specs):
        events = events_from(specs)
        differential = differential_counters(events, TINY_GEOMETRY, MIXED_FAMILY)
        batched = batch_counters(events, TINY_GEOMETRY, MIXED_FAMILY)
        for member, diff, batch in zip(MIXED_FAMILY, differential, batched):
            assert_identical(diff, batch, member)
            assert_identical(diff, reference_counters(member, events), member)

    @given(event_streams())
    @settings(max_examples=40, deadline=None)
    def test_sparse_sweep_direct_mapped(self, specs):
        events = events_from(specs)
        assert_family_agrees(events, DIRECT_MAPPED, SPARSE_SWEEP)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("geometry", [TINY_GEOMETRY, DIRECT_MAPPED])
    def test_seeded_large_streams(self, seed, geometry):
        rng = random.Random(seed)
        specs = []
        previous = None
        for _ in range(600):
            line = rng.randrange(120)
            if line == previous:
                line = (line + 1) % 120
            previous = line
            specs.append(
                (
                    line * 16,
                    rng.randint(1, 8),
                    rng.choice([SEQUENTIAL_SLOT, 0, 1, 2, 3]),
                )
            )
        events = events_from(specs)
        assert_family_agrees(events, geometry, MIXED_FAMILY)
        assert_family_agrees(events, geometry, SPARSE_SWEEP)

    def test_degenerate_one_config_family(self):
        events = events_from([(0, 1), (16, 2), (0, 1), (96, 3)])
        for member in MIXED_FAMILY:
            assert_family_agrees(events, TINY_GEOMETRY, [member])

    def test_empty_trace(self):
        empty = events_from([])
        for member, counters in zip(
            MIXED_FAMILY, differential_counters(empty, TINY_GEOMETRY, MIXED_FAMILY)
        ):
            assert_identical(
                counters,
                fast_counters(
                    member.scheme, empty, TINY_GEOMETRY, **dict(member.options)
                ),
                member,
            )

    def test_no_members_is_empty(self):
        events = events_from([(0, 1), (16, 2)])
        assert differential_counters(events, TINY_GEOMETRY, []) == []

    def test_non_batchable_member_raises(self):
        events = events_from([(0, 1)])
        with pytest.raises(SchemeError, match="not\\s+batchable"):
            differential_counters(
                events, TINY_GEOMETRY, [BatchMember("way-memoization", {})]
            )


class TestPlanner:
    def test_sweep_family_marked_differential(self):
        runner = make_runner(engine="differential")
        families, singles = plan_families(
            SWEEP_CELLS, runner._resolve_layout_policy, engine="differential"
        )
        assert len(families) == 1
        assert families[0].engine == "differential"
        assert families[0].indices == (1, 2, 3)
        assert singles == [0]

    def test_single_threshold_family_stays_batch(self):
        runner = make_runner(engine="differential")
        cells = [
            GridCell("crc", "way-placement", wpa_size=4 * KB),
            GridCell("crc", "way-placement", wpa_size=4 * KB, same_line_skip=False),
        ]
        families, singles = plan_families(
            cells, runner._resolve_layout_policy, engine="differential"
        )
        assert len(families) == 1 and families[0].engine == "batch"
        assert singles == []

    def test_batch_engine_never_marks_differential(self):
        runner = make_runner(engine="batch")
        families, _ = plan_families(
            SWEEP_CELLS, runner._resolve_layout_policy, engine="batch"
        )
        assert families and all(family.engine == "batch" for family in families)

    def test_default_engine_never_marks_differential(self):
        runner = make_runner()
        families, _ = plan_families(SWEEP_CELLS, runner._resolve_layout_policy)
        assert families and all(family.engine == "batch" for family in families)


class TestFamilyExecution:
    def test_report_family_rejects_unknown_engine(self):
        runner = make_runner()
        with pytest.raises(ExperimentError, match="family"):
            runner.report_family(SWEEP_CELLS[1:], engine="vector")

    def test_run_grid_differential_matches_reference(self):
        differential_reports = make_runner(engine="differential").run_grid(SWEEP_CELLS)
        reference_reports = make_runner(engine="reference").run_grid(SWEEP_CELLS)
        for cell, diff_report, reference_report in zip(
            SWEEP_CELLS, differential_reports, reference_reports
        ):
            assert diff_report.counters == reference_report.counters, cell
            assert diff_report.breakdown == reference_report.breakdown, cell
            assert diff_report.cycles == reference_report.cycles, cell

    def test_differential_fault_degrades_to_batch(self):
        runner = make_runner(engine="differential")
        rule = ChaosRule("differential", "raise", match="crc", times=-1)
        with chaos.active(ChaosConfig(seed=0, rules=(rule,))):
            reports = runner.run_grid(SWEEP_CELLS)

        incidents = [f for f in runner.last_failures if f.site == "differential"]
        assert incidents, "differential fault left no FailureReport"
        incident = incidents[0]
        assert incident.recovered and incident.recovery == "batch"
        assert incident.benchmark == "crc"
        assert "3-cell family" in incident.cell
        assert "InjectedFault" in incident.causes[0]
        assert not [f for f in runner.last_failures if f.site == "family"]

        reference_reports = make_runner(engine="reference").run_grid(SWEEP_CELLS)
        for report, reference_report in zip(reports, reference_reports):
            assert report.counters == reference_report.counters

    def test_full_ladder_degrades_to_per_cell(self):
        runner = make_runner(engine="differential")
        rules = (
            ChaosRule("differential", "raise", match="crc", times=-1),
            ChaosRule("family", "raise", match="crc", times=-1),
        )
        with chaos.active(ChaosConfig(seed=0, rules=rules)):
            reports = runner.run_grid(SWEEP_CELLS)

        rungs = [(f.site, f.recovery) for f in runner.last_failures]
        assert ("differential", "batch") in rungs
        assert ("family", "per-cell") in rungs

        reference_reports = make_runner(engine="reference").run_grid(SWEEP_CELLS)
        for report, reference_report in zip(reports, reference_reports):
            assert report.counters == reference_report.counters

    def test_batch_grid_unaffected_by_differential_rule(self):
        # A differential-site rule must not fire on the batch tier: the
        # chaos sites keep the ladder rungs independently addressable.
        runner = make_runner(engine="batch")
        rule = ChaosRule("differential", "raise", match="crc", times=-1)
        with chaos.active(ChaosConfig(seed=0, rules=(rule,))):
            runner.run_grid(SWEEP_CELLS)
        assert runner.last_failures == []


def test_counters_are_plain_fetch_counters():
    # Downstream pricing treats family results exactly like per-cell ones;
    # a subclass or array-backed impostor would pickle differently.
    events = events_from([(0, 1), (16, 2)])
    results = differential_counters(events, TINY_GEOMETRY, MIXED_FAMILY)
    assert all(type(counters) is FetchCounters for counters in results)
    for counters in results:
        for field in dataclasses.fields(FetchCounters):
            assert isinstance(getattr(counters, field.name), int), field.name
