"""Sanitizer-vs-engine agreement: the fast kernels obey every invariant.

Every bundled workload's evaluation trace replays through the vectorized
``engine.kernels`` and then through the full post-hoc sanitizer array
checks — zero violations expected — and through the family tiers: a WPA
sweep family must come back from ``differential_counters`` and
``batch_counters`` bit-identical to the per-cell kernels on every
workload — and every tier's counters must sit inside the abstract
interpretation's static bounds (the S008 invariant).  One session-scoped
runner serves all parametrized cases so profiling, layout, and trace
generation happen once per benchmark.
"""

from __future__ import annotations

import pytest

from repro.engine.batch import BatchMember, batch_counters
from repro.engine.differential import differential_counters
from repro.engine.kernels import fast_counters, way_placement_counters
from repro.errors import SanitizerError
from repro.experiments.runner import ExperimentRunner
from repro.layout.placement import LayoutPolicy
from repro.schemes import BaselineScheme, WayPlacementScheme
from repro.sim.machine import XSCALE_BASELINE
from repro.utils.bitops import align_up
from repro.verify.sanitizer import SanitizerHook, sanitize_events
from repro.workloads.mibench import benchmark_names

MACHINE = XSCALE_BASELINE


@pytest.fixture(scope="session")
def agreement_runner():
    return ExperimentRunner(eval_instructions=20_000, profile_instructions=8_000)


def _fitted_wpa(runner, benchmark):
    layout = runner.layout(benchmark, LayoutPolicy.WAY_PLACEMENT)
    return min(
        MACHINE.icache.size_bytes,
        align_up(layout.end_address, MACHINE.page_size),
    )


@pytest.mark.parametrize("workload", benchmark_names())
def test_kernels_satisfy_every_invariant(agreement_runner, workload):
    events = agreement_runner.events(
        workload, LayoutPolicy.WAY_PLACEMENT, MACHINE.icache.line_size
    )
    violations = sanitize_events(
        events,
        MACHINE.icache,
        _fitted_wpa(agreement_runner, workload),
        itlb_entries=MACHINE.itlb_entries,
        page_size=MACHINE.page_size,
        energy_params=agreement_runner.energy_params,
        organisation=agreement_runner.organisation,
    )
    assert violations == []


@pytest.mark.parametrize("workload", benchmark_names())
def test_family_tiers_agree_with_the_kernels(agreement_runner, workload):
    """differential ≡ batch ≡ per-cell on every bundled workload's trace."""
    events = agreement_runner.events(
        workload, LayoutPolicy.WAY_PLACEMENT, MACHINE.icache.line_size
    )
    fitted = _fitted_wpa(agreement_runner, workload)
    shared = {
        "page_size": MACHINE.page_size,
        "itlb_entries": MACHINE.itlb_entries,
    }
    members = [
        BatchMember("baseline", dict(shared)),
        BatchMember("way-placement", {"wpa_size": 4096, **shared}),
        BatchMember(
            "way-placement",
            {"wpa_size": align_up(max(fitted // 2, 4096), MACHINE.page_size), **shared},
        ),
        BatchMember("way-placement", {"wpa_size": fitted, **shared}),
    ]
    batched = batch_counters(events, MACHINE.icache, members)
    differential = differential_counters(events, MACHINE.icache, members)
    for member, diff, batch in zip(members, differential, batched):
        assert diff == batch, f"differential != batch for {member} on {workload}"
        kernel = fast_counters(
            member.scheme, events, MACHINE.icache, **dict(member.options)
        )
        assert diff == kernel, f"differential != kernel for {member} on {workload}"


@pytest.mark.parametrize("workload", benchmark_names())
def test_static_bounds_bracket_every_engine_tier(agreement_runner, workload):
    """The absint counter bounds contain all four tiers' replay results.

    This is the S008 invariant exercised explicitly: for the baseline and
    the fitted way-placement configuration, every FetchCounters field from
    the reference schemes, the vectorized kernels, and both family tiers
    must land inside the static ``[lower, upper]`` bracket.
    """
    from repro.analysis.absint import bounds_for_options

    events = agreement_runner.events(
        workload, LayoutPolicy.WAY_PLACEMENT, MACHINE.icache.line_size
    )
    shared = {
        "page_size": MACHINE.page_size,
        "itlb_entries": MACHINE.itlb_entries,
    }
    members = [
        BatchMember("baseline", dict(shared)),
        BatchMember(
            "way-placement",
            {"wpa_size": _fitted_wpa(agreement_runner, workload), **shared},
        ),
    ]
    batched = batch_counters(events, MACHINE.icache, members)
    differential = differential_counters(events, MACHINE.icache, members)
    for member, batch, diff in zip(members, batched, differential):
        options = dict(member.options)
        bounds = bounds_for_options(member.scheme, events, MACHINE.icache, options)
        assert bounds is not None, f"{member} must be modelled"
        scheme_cls = (
            BaselineScheme if member.scheme == "baseline" else WayPlacementScheme
        )
        tiers = {
            "reference": scheme_cls(MACHINE.icache, **options).run(events),
            "vector": fast_counters(member.scheme, events, MACHINE.icache, **options),
            "batch": batch,
            "differential": diff,
        }
        for tier, counters in tiers.items():
            violations = bounds.violations(counters)
            rendered = "; ".join(v.render() for v in violations)
            assert violations == [], f"{tier} escapes bounds on {workload}: {rendered}"


def test_hooked_reference_schemes_match_the_kernels(agreement_runner):
    events = agreement_runner.events(
        "crc", LayoutPolicy.WAY_PLACEMENT, MACHINE.icache.line_size
    )
    wpa = _fitted_wpa(agreement_runner, "crc")
    hook = SanitizerHook(
        WayPlacementScheme(
            MACHINE.icache,
            wpa_size=wpa,
            itlb_entries=MACHINE.itlb_entries,
            page_size=MACHINE.page_size,
        )
    )
    reference = hook.run(events)
    kernel = way_placement_counters(
        events,
        MACHINE.icache,
        wpa_size=wpa,
        itlb_entries=MACHINE.itlb_entries,
        page_size=MACHINE.page_size,
    )
    assert hook.violations == []
    assert reference == kernel


def test_hooked_baseline_matches_the_plain_run(agreement_runner):
    events = agreement_runner.events(
        "crc", LayoutPolicy.WAY_PLACEMENT, MACHINE.icache.line_size
    )
    hooked = SanitizerHook(
        BaselineScheme(
            MACHINE.icache,
            itlb_entries=MACHINE.itlb_entries,
            page_size=MACHINE.page_size,
        )
    ).run(events)
    plain = BaselineScheme(
        MACHINE.icache,
        itlb_entries=MACHINE.itlb_entries,
        page_size=MACHINE.page_size,
    ).run(events)
    assert hooked == plain


@pytest.mark.parametrize("engine", ["vector", "reference"])
@pytest.mark.parametrize("scheme", ["baseline", "way-placement"])
def test_sanitized_runner_reports_cleanly(engine, scheme):
    runner = ExperimentRunner(
        eval_instructions=20_000,
        profile_instructions=8_000,
        engine=engine,
        sanitize=True,
    )
    report = runner.report(
        "crc",
        scheme,
        MACHINE,
        wpa_size=4096 if scheme == "way-placement" else 0,
    )
    assert report.counters.fetches > 0


def test_sanitized_runner_spawn_spec_carries_the_flag():
    runner = ExperimentRunner(
        eval_instructions=20_000, profile_instructions=8_000, sanitize=True
    )
    assert runner.spawn_spec()["sanitize"] is True


def test_sanitizer_error_surfaces_through_the_simulator(monkeypatch):
    # A fault injected into the kernel output propagates as SanitizerError
    # rather than silently pricing corrupt numbers.
    from repro.sim import simulator as sim_module
    from repro.sim.simulator import Simulator

    runner = ExperimentRunner(eval_instructions=20_000, profile_instructions=8_000)
    events = runner.events("crc", LayoutPolicy.WAY_PLACEMENT, MACHINE.icache.line_size)
    clean = Simulator(MACHINE, runner.energy_params, sanitize=True)
    clean.run_events(events, "way-placement", wpa_size=4096)  # must not raise

    real = sim_module.fast_counters

    def tampered(scheme, trace, geometry, **options):
        counters = real(scheme, trace, geometry, **options)
        counters.hint_false_positives += 1
        return counters

    monkeypatch.setattr(sim_module, "fast_counters", tampered)
    bad = Simulator(MACHINE, runner.energy_params, sanitize=True)
    with pytest.raises(SanitizerError):
        bad.run_events(events, "way-placement", wpa_size=4096)
