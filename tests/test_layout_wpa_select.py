"""Unit tests for the OS's way-placement-area size selection."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.errors import LayoutError
from repro.layout import way_placement_layout
from repro.layout.wpa_select import choose_wpa_size, estimate_wpa_energy
from repro.profiling import profile_program
from repro.workloads import SMALL_INPUT, branch_models_for, load_benchmark

KB = 1024
XSCALE = CacheGeometry(32 * KB, 32, 32)


@pytest.fixture(scope="module")
def placed_crc():
    workload = load_benchmark("crc")
    profile = profile_program(
        workload.program, branch_models_for(workload, SMALL_INPUT), 40_000
    )
    layout = way_placement_layout(workload.program, profile.block_counts)
    return workload.program, layout, profile


class TestEstimator:
    def test_coverage_monotone_in_size(self, placed_crc):
        program, layout, profile = placed_crc
        coverages = []
        for size in (1 * KB, 2 * KB, 4 * KB):
            _, coverage, _ = estimate_wpa_energy(
                program, layout, profile.block_counts, XSCALE, size
            )
            coverages.append(coverage)
        assert coverages == sorted(coverages)
        assert coverages[-1] == pytest.approx(1.0)  # crc fits in 4KB

    def test_full_coverage_minimises_tag_term(self, placed_crc):
        program, layout, profile = placed_crc
        small, _, _ = estimate_wpa_energy(
            program, layout, profile.block_counts, XSCALE, 1 * KB,
            profile.edge_counts,
        )
        full, _, _ = estimate_wpa_energy(
            program, layout, profile.block_counts, XSCALE, 4 * KB,
            profile.edge_counts,
        )
        assert full <= small

    def test_empty_profile_rejected(self, placed_crc):
        program, layout, _ = placed_crc
        with pytest.raises(LayoutError):
            estimate_wpa_energy(program, layout, {}, XSCALE, 1 * KB)


class TestChoice:
    def test_choice_covers_the_hot_code(self, placed_crc):
        program, layout, profile = placed_crc
        choice = choose_wpa_size(
            program,
            layout,
            profile.block_counts,
            XSCALE,
            page_size=1 * KB,
            edge_counts=profile.edge_counts,
        )
        assert choice.coverage >= 0.95
        assert choice.wpa_size % KB == 0
        # crc is ~4KB: nothing beyond the binary size should be chosen
        assert choice.wpa_size <= 4 * KB

    def test_ranking_sorted_best_first(self, placed_crc):
        program, layout, profile = placed_crc
        choice = choose_wpa_size(
            program, layout, profile.block_counts, XSCALE, page_size=1 * KB
        )
        estimates = [estimate for _, estimate in choice.ranking]
        assert estimates == sorted(estimates)
        assert choice.ranking[0][0] == choice.wpa_size

    def test_explicit_candidates(self, placed_crc):
        program, layout, profile = placed_crc
        choice = choose_wpa_size(
            program,
            layout,
            profile.block_counts,
            XSCALE,
            page_size=1 * KB,
            candidates=[1 * KB, 2 * KB],
        )
        assert choice.wpa_size in (1 * KB, 2 * KB)

    def test_bad_candidate_rejected(self, placed_crc):
        program, layout, profile = placed_crc
        with pytest.raises(LayoutError, match="page multiple"):
            choose_wpa_size(
                program,
                layout,
                profile.block_counts,
                XSCALE,
                page_size=1 * KB,
                candidates=[1536],
            )

    def test_selection_matches_simulation_ranking(self):
        """The estimator's winner must be within a point of the simulated
        best — the property that makes the OS policy useful."""
        from repro.experiments.runner import ExperimentRunner
        from repro.layout.placement import LayoutPolicy

        runner = ExperimentRunner(
            eval_instructions=60_000, profile_instructions=25_000
        )
        bench = "susan_e"
        program = runner.workload(bench).program
        layout = runner.layout(bench, LayoutPolicy.WAY_PLACEMENT)
        profile = runner.profile(bench)
        candidates = [1 * KB, 4 * KB, 16 * KB, 32 * KB]
        choice = choose_wpa_size(
            program,
            layout,
            profile.block_counts,
            XSCALE,
            page_size=1 * KB,
            candidates=candidates,
            edge_counts=profile.edge_counts,
        )
        simulated = {
            size: runner.normalised(
                bench, "way-placement", wpa_size=size
            ).icache_energy
            for size in candidates
        }
        best_simulated = min(simulated.values())
        assert simulated[choice.wpa_size] <= best_simulated + 0.01
