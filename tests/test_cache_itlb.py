"""Unit tests for the I-TLB with way-placement bits."""

import pytest

from repro.cache.itlb import InstructionTlb
from repro.errors import CacheConfigError


class TestTranslation:
    def test_miss_then_hit(self):
        tlb = InstructionTlb(4, 1024)
        tlb.access(0x1234)
        assert (tlb.hits, tlb.misses) == (0, 1)
        tlb.access(0x1238)  # same page
        assert (tlb.hits, tlb.misses) == (1, 1)

    def test_capacity_eviction_round_robin(self):
        tlb = InstructionTlb(2, 1024)
        tlb.access(0 * 1024)
        tlb.access(1 * 1024)
        tlb.access(2 * 1024)  # evicts page 0
        tlb.access(0 * 1024)
        assert tlb.misses == 4

    def test_resident_pages(self):
        tlb = InstructionTlb(4, 1024)
        tlb.access(5 * 1024)
        assert 5 in tlb.resident()


class TestWayPlacementBit:
    def test_bit_set_inside_wpa(self):
        tlb = InstructionTlb(8, 1024, wpa_size=4 * 1024)
        assert tlb.access(0) is True
        assert tlb.access(3 * 1024) is True
        assert tlb.access(4 * 1024) is False

    def test_ground_truth_helper(self):
        tlb = InstructionTlb(8, 1024, wpa_size=2 * 1024)
        assert tlb.is_way_placed(2047)
        assert not tlb.is_way_placed(2048)

    def test_resize_rewrites_resident_entries(self):
        tlb = InstructionTlb(8, 1024, wpa_size=4 * 1024)
        tlb.access(3 * 1024)
        assert tlb.resident()[3] is True
        tlb.set_wpa_size(2 * 1024)  # the OS shrinks the area at runtime
        assert tlb.resident()[3] is False
        assert tlb.access(3 * 1024) is False  # and it was a hit
        assert tlb.hits == 1

    def test_wpa_must_be_page_multiple(self):
        with pytest.raises(CacheConfigError, match="multiple"):
            InstructionTlb(8, 1024, wpa_size=1536)

    def test_zero_wpa_all_false(self):
        tlb = InstructionTlb(8, 1024, wpa_size=0)
        assert tlb.access(0) is False


class TestValidation:
    def test_entries_positive(self):
        with pytest.raises(CacheConfigError):
            InstructionTlb(0, 1024)

    def test_page_size_power_of_two(self):
        with pytest.raises(CacheConfigError):
            InstructionTlb(4, 1000)
