"""Unit tests for the whole-program dataflow analyses behind the V rules."""

from __future__ import annotations

import pytest

from repro.analysis.context import LayoutView, ProgramView
from repro.program import ProgramBuilder
from repro.verify.dataflow import (
    broken_fallthroughs,
    build_flow_graph,
    dominators_of,
    entry_block_uid,
    flow_imbalances,
    illegal_edges,
    immediate_dominators,
    reverse_postorder,
)


def _flow_program():
    """a ->fall b; b ->cond a | fall c; c calls helper, continues at d."""
    builder = ProgramBuilder("flow")
    main = builder.function("main")
    main.block("a", 2)
    main.block("b", 2, branch="a")
    main.block("c", 1, call="helper")
    main.block("d", 1, ret=True)
    helper = builder.function("helper")
    helper.block("h0", 1, ret=True)
    return builder.build(entry="main")


@pytest.fixture(scope="module")
def program():
    return _flow_program()


@pytest.fixture(scope="module")
def view(program):
    return ProgramView.from_program(program)


@pytest.fixture(scope="module")
def uids(program):
    return {
        label: program.uid_of_label(function, label)
        for function, label in (
            ("main", "a"),
            ("main", "b"),
            ("main", "c"),
            ("main", "d"),
            ("helper", "h0"),
        )
    }


def _good_profile(uids):
    """Counts of the trace a b a b c h0 d — exactly flow-conserving."""
    blocks = {uids["a"]: 2, uids["b"]: 2, uids["c"]: 1, uids["h0"]: 1, uids["d"]: 1}
    edges = {
        (uids["a"], uids["b"]): 2,
        (uids["b"], uids["a"]): 1,
        (uids["b"], uids["c"]): 1,
        (uids["c"], uids["h0"]): 1,
        (uids["h0"], uids["d"]): 1,
    }
    return blocks, edges


# ---------------------------------------------------------------------------
# Graph construction, RPO, dominators
# ---------------------------------------------------------------------------
def test_entry_block_uid(view, uids):
    assert entry_block_uid(view) == uids["a"]


def test_entry_block_uid_none_without_entry():
    assert entry_block_uid(ProgramView("empty", [])) is None
    assert build_flow_graph(ProgramView("empty", [])) is None


def test_flow_graph_successors(view, uids):
    graph = build_flow_graph(view)
    assert set(graph.successors[uids["a"]]) == {uids["b"]}
    assert set(graph.successors[uids["b"]]) == {uids["a"], uids["c"]}
    # A call block's successors are its continuation and the callee entry.
    assert set(graph.successors[uids["c"]]) == {uids["d"], uids["h0"]}
    assert graph.successors[uids["d"]] == ()
    assert set(graph.predecessors[uids["d"]]) == {uids["c"]}


def test_reverse_postorder_starts_at_entry(view, uids):
    graph = build_flow_graph(view)
    order = reverse_postorder(graph)
    assert order[0] == uids["a"]
    assert set(order) == set(uids.values())
    # A node appears after at least one of its predecessors.
    position = {uid: index for index, uid in enumerate(order)}
    assert position[uids["b"]] > position[uids["a"]]


def test_immediate_dominators(view, uids):
    graph = build_flow_graph(view)
    idom = immediate_dominators(graph)
    assert idom[uids["a"]] == uids["a"]
    assert idom[uids["b"]] == uids["a"]
    assert idom[uids["c"]] == uids["b"]
    assert idom[uids["d"]] == uids["c"]
    assert idom[uids["h0"]] == uids["c"]
    assert dominators_of(uids["d"], idom) == [uids["c"], uids["b"], uids["a"]]


def test_dominators_exclude_unreachable_nodes(view, uids):
    graph = build_flow_graph(view)
    # Remove the entry's outgoing edges: everything else becomes unreachable.
    from repro.verify.dataflow import FlowGraph

    pruned = FlowGraph(
        graph.entry,
        {**dict(graph.successors), uids["a"]: ()},
        graph.predecessors,
    )
    idom = immediate_dominators(pruned)
    assert set(idom) == {uids["a"]}


# ---------------------------------------------------------------------------
# Kirchhoff flow conservation
# ---------------------------------------------------------------------------
def test_consistent_profile_is_conserved(view, uids):
    blocks, edges = _good_profile(uids)
    assert flow_imbalances(view, blocks, edges) == []


def test_tampered_block_count_breaks_conservation(view, uids):
    blocks, edges = _good_profile(uids)
    blocks[uids["b"]] += 3
    violations = flow_imbalances(view, blocks, edges)
    assert [v.uid for v in violations] == [uids["b"]]
    assert violations[0].imbalance == 3


def test_entry_block_gets_the_trace_start_credit(view, uids):
    blocks, edges = _good_profile(uids)
    violations = flow_imbalances(view, blocks, edges)
    assert violations == []
    # Removing the credit (pretend entry inflow must fully cover it)
    # would flag the entry: its count exceeds its inflow by exactly one.
    entry_inflow = sum(c for (_s, d), c in edges.items() if d == uids["a"])
    assert blocks[uids["a"]] == entry_inflow + 1


def test_tolerance_admits_small_imbalances(view, uids):
    blocks, edges = _good_profile(uids)
    blocks[uids["b"]] += 1
    assert flow_imbalances(view, blocks, edges, tolerance=1) == []
    assert flow_imbalances(view, blocks, edges, tolerance=0) != []


# ---------------------------------------------------------------------------
# Profile-edge legality
# ---------------------------------------------------------------------------
def test_consistent_profile_has_no_illegal_edges(view, uids):
    _blocks, edges = _good_profile(uids)
    assert illegal_edges(view, edges) == []


def test_phantom_edge_is_illegal(view, uids):
    _blocks, edges = _good_profile(uids)
    edges[(uids["a"], uids["c"])] = 1  # a falls through to b, never to c
    violations = illegal_edges(view, edges)
    assert [(v.src, v.dst) for v in violations] == [(uids["a"], uids["c"])]
    assert "fallthrough" in violations[0].reason


def test_edge_to_unknown_uid_is_illegal(view, uids):
    _blocks, edges = _good_profile(uids)
    edges[(uids["a"], 9999)] = 1
    violations = illegal_edges(view, edges)
    assert violations and "does not define" in violations[0].reason


def test_return_edges_to_continuation_and_entry_are_legal(view, uids):
    # helper returns to d (continuation of the call in c); the entry
    # function's return restarts the walker at the entry block.
    edges = {(uids["h0"], uids["d"]): 5, (uids["d"], uids["a"]): 2}
    assert illegal_edges(view, edges) == []
    # ... but a return into an arbitrary block is not legal.
    assert illegal_edges(view, {(uids["h0"], uids["b"]): 1}) != []


def test_zero_count_edges_are_ignored(view, uids):
    assert illegal_edges(view, {(uids["a"], uids["c"]): 0}) == []


# ---------------------------------------------------------------------------
# Fall-through contiguity
# ---------------------------------------------------------------------------
def test_contiguous_layout_is_clean(view, uids):
    layout = LayoutView(
        "flow",
        {uids["a"]: 0, uids["b"]: 8},
        {uids["a"]: 8, uids["b"]: 12},
    )
    assert broken_fallthroughs(view, layout) == []


def test_gap_in_fallthrough_chain_is_flagged(view, uids):
    layout = LayoutView(
        "flow",
        {uids["a"]: 0, uids["b"]: 64},
        {uids["a"]: 8, uids["b"]: 12},
    )
    violations = broken_fallthroughs(view, layout)
    assert [(v.src, v.dst) for v in violations] == [(uids["a"], uids["b"])]
    assert violations[0].expected_address == 8
    assert violations[0].actual_address == 64


def test_unplaced_blocks_are_not_judged(view, uids):
    layout = LayoutView("flow", {uids["a"]: 0}, {uids["a"]: 8})
    assert broken_fallthroughs(view, layout) == []
