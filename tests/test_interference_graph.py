"""Interference graph unit tests and the renumbering-invariance property.

The graph (:mod:`repro.analysis.interference.graph`) keys every weight
by *line address* and loop-component membership, never by block uid, so
its output must be bit-identical when the same program is merely built
in a different declaration order (which renumbers every uid).  The
Hypothesis property at the bottom builds one program structure under a
drawn function permutation and checks exactly that.

The unit tests pin the certificate predicate, the closed-form pair sum,
the loop-nesting forest of the shared toy program, and the exact graph
the toy program produces on the hand-checkable tiny geometry.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings, strategies as st

from repro import ProgramBuilder
from repro.analysis.context import GeometrySpec, LayoutView, ProgramView
from repro.analysis.interference.graph import (
    build_interference_graph,
    certify_conflict_free,
    loop_nest_for,
    predicted_conflict_weight,
    _min_pair_sum,
)
from repro.isa.instructions import INSTRUCTION_SIZE
from tests.conftest import build_toy_program
from tests.scheme_helpers import TINY_GEOMETRY

#: 4 sets x 4 ways x 16B lines; set = addr[5:4], mandated way = addr[7:6].
SPEC = GeometrySpec.from_geometry(TINY_GEOMETRY)

#: Line addresses that all map to set 0 of SPEC (multiples of 64).
SET0 = [0, 64, 128, 192, 256, 320, 384, 448]


class TestCertifyConflictFree:
    def test_within_associativity_is_certified(self):
        assert certify_conflict_free(SET0[:4], SPEC, wpa_size=0)

    def test_overflowing_associativity_is_not(self):
        assert not certify_conflict_free(SET0[:5], SPEC, wpa_size=0)

    def test_wpa_lines_with_distinct_mandated_ways_are_certified(self):
        # 0, 64, 128, 192 carry tags 0..3 -> mandated ways 0..3.
        assert certify_conflict_free(SET0[:4], SPEC, wpa_size=1024)

    def test_wpa_mandated_way_collision_is_not(self):
        # 0 and 256 both have tag & 3 == 0 -> both pin way 0.
        assert not certify_conflict_free([0, 256], SPEC, wpa_size=1024)
        assert certify_conflict_free([0, 256], SPEC, wpa_size=0)

    def test_mixed_wpa_and_round_robin_lines(self):
        # One non-WPA line claims way 0; a WPA line mandated to way 0 loses.
        assert not certify_conflict_free([0, 192], SPEC, wpa_size=64)
        # Mandated ways 1 and 2 stay above the single round-robin way.
        assert certify_conflict_free([64, 128, 192], SPEC, wpa_size=192)

    @given(
        lines=st.lists(st.sampled_from(SET0), unique=True, max_size=6),
        wpa_size=st.sampled_from([0, 64, 192, 320, 1024]),
    )
    @settings(max_examples=200, deadline=None)
    def test_monotone_under_subsets(self, lines, wpa_size):
        """A certificate for a line set covers every subset of it."""
        if not certify_conflict_free(sorted(lines), SPEC, wpa_size):
            return
        for size in range(len(lines) + 1):
            for subset in itertools.combinations(lines, size):
                assert certify_conflict_free(sorted(subset), SPEC, wpa_size)


class TestMinPairSum:
    def test_small_examples(self):
        assert _min_pair_sum([]) == 0
        assert _min_pair_sum([7]) == 0
        assert _min_pair_sum([2, 5]) == 2
        assert _min_pair_sum([1, 2, 3]) == 1 + 1 + 2

    @given(st.lists(st.integers(0, 100), max_size=20))
    @settings(max_examples=200, deadline=None)
    def test_matches_quadratic_brute_force(self, counts):
        expected = sum(min(a, b) for a, b in itertools.combinations(counts, 2))
        assert _min_pair_sum(counts) == expected


def _toy_uid(program, spec):
    function, label = spec.split(":")
    return program.uid_of_label(function, label)


def test_toy_loop_nest_threads_the_call():
    """The toy's loop nests one level deeper and swallows its callee."""
    program = build_toy_program()
    nest = loop_nest_for(ProgramView.from_program(program))
    assert nest is not None
    entry = _toy_uid(program, "main:entry")
    loop_head = _toy_uid(program, "main:loop_head")
    latch = _toy_uid(program, "main:latch")
    h0 = _toy_uid(program, "helper:h0")
    h1 = _toy_uid(program, "helper:h1")

    assert nest.depth(loop_head) == nest.depth(entry) + 1
    # The callee is threaded into the calling loop's component.
    assert nest.depth(h0) == nest.depth(loop_head)
    assert nest.shared_depth(latch, loop_head) == nest.depth(loop_head)
    assert nest.shared_depth(entry, loop_head) == nest.depth(entry)
    inner = {loop_head, _toy_uid(program, "main:body"), latch, h0, h1}
    assert any(inner <= component.members for component in nest.components)


def _contiguous_layout(program, skip_function=None):
    """Place blocks contiguously at 0 in their declaration order."""
    addresses, sizes = {}, {}
    cursor = 0
    for block in program.blocks():
        if block.function == skip_function:
            continue
        size = block.num_instructions * INSTRUCTION_SIZE
        addresses[block.uid] = cursor
        sizes[block.uid] = size
        cursor += size
    return LayoutView(program.name, addresses, sizes)


def test_toy_graph_exact_weights():
    """Pin the toy program's graph on the tiny geometry (BASE = 10).

    The 104-byte program covers lines 0..0x70; each of the four sets
    holds exactly two lines, so every set is certified at wpa 0.  The
    inner loop (level 2) drives the three heavy pairs; the outer
    whole-program cycle adds the light set-0 pair.
    """
    program = build_toy_program()
    view = ProgramView.from_program(program)
    layout = _contiguous_layout(program)
    graph = build_interference_graph(view, layout, SPEC, wpa_size=0)

    assert graph.loop_count == 2
    assert graph.interfering_pairs == 4
    assert graph.total_weight == 360
    assert graph.total_weight == sum(entry.pressure for entry in graph.sets)
    assert [entry.pressure for entry in graph.sets] == [20, 120, 110, 110]
    assert graph.conflict_free_sets() == (0, 1, 2, 3)
    assert not graph.pair_enumeration_truncated
    # Every line weight is a power-of-BASE sum over the blocks covering it.
    assert all(weight > 0 for weight in graph.line_weight.values())
    assert predicted_conflict_weight(view, layout, SPEC, 0) == 360


def test_toy_graph_wpa_pinning_removes_all_pairs():
    """With the whole program inside the WPA every pair has distinct
    mandated ways (two lines 64 apart differ in tag), so no interference
    survives the inclusion-exclusion."""
    program = build_toy_program()
    view = ProgramView.from_program(program)
    layout = _contiguous_layout(program)
    graph = build_interference_graph(view, layout, SPEC, wpa_size=128)
    assert graph.total_weight == 0
    assert graph.interfering_pairs == 0
    assert graph.conflict_free_sets() == (0, 1, 2, 3)


HELPER_COUNT = 4
LABELS = ["a", "b", "c"]


def _build_renumbered(order, sizes):
    """One fixed program structure, helper functions declared in ``order``.

    ``main`` calls helpers f0..f3 in index order regardless of the
    declaration order, and each helper is a self-loop (a -> b -> a with
    a fall-through exit), so the CFG is identical across variants while
    every uid changes.
    """
    builder = ProgramBuilder("renumbered")
    for index in order:
        if index == -1:
            main = builder.function("main")
            main.block("entry", 2)
            for callee in range(HELPER_COUNT):
                main.block(f"call{callee}", 1, call=f"f{callee}")
            main.block("fin", 1, ret=True)
        else:
            helper = builder.function(f"f{index}")
            helper.block("a", sizes[index][0])
            helper.block("b", sizes[index][1], branch="a")
            helper.block("c", 1, ret=True)
    program = builder.build(entry="main")

    # Canonical placement: identical (function, label) -> address in every
    # variant, whatever the declaration (and hence uid) order was.
    addresses, sizes_by_uid = {}, {}
    cursor = 0
    placement = [("main", "entry")]
    placement += [("main", f"call{i}") for i in range(HELPER_COUNT)]
    placement += [("main", "fin")]
    for index in range(HELPER_COUNT):
        placement += [(f"f{index}", label) for label in LABELS]
    blocks = {(b.function, b.label): b for b in program.blocks()}
    for key in placement:
        block = blocks[key]
        size = block.num_instructions * INSTRUCTION_SIZE
        addresses[block.uid] = cursor
        sizes_by_uid[block.uid] = size
        cursor += size
    return ProgramView.from_program(program), LayoutView(
        program.name, addresses, sizes_by_uid
    )


def _graph_fingerprint(graph):
    return (
        graph.total_weight,
        graph.interfering_pairs,
        graph.loop_count,
        dict(graph.line_weight),
        [(s.set_index, s.lines, s.pressure, s.conflict_free) for s in graph.sets],
        [
            (e.line_a, e.line_b, e.set_index, e.depth, e.weight)
            for e in graph.top_pairs
        ],
    )


@given(
    order=st.permutations(list(range(HELPER_COUNT)) + [-1]),
    sizes=st.lists(
        st.tuples(st.integers(1, 6), st.integers(1, 6)),
        min_size=HELPER_COUNT,
        max_size=HELPER_COUNT,
    ),
    wpa_size=st.sampled_from([0, 64, 256]),
)
@settings(max_examples=40, deadline=None)
def test_graph_invariant_under_block_renumbering(order, sizes, wpa_size):
    """Same structure + same placement => the same graph, any uid order.

    ``-1`` in the permutation marks where ``main`` is declared relative
    to the helpers, so the entry function's uids move around too.
    """
    baseline_view, baseline_layout = _build_renumbered(
        list(range(HELPER_COUNT)) + [-1], sizes
    )
    variant_view, variant_layout = _build_renumbered(order, sizes)
    baseline = build_interference_graph(
        baseline_view, baseline_layout, SPEC, wpa_size
    )
    variant = build_interference_graph(variant_view, variant_layout, SPEC, wpa_size)
    assert _graph_fingerprint(variant) == _graph_fingerprint(baseline)
