"""Tests for supervised grid execution: the recovery ladder end to end.

The acceptance bar (see docs/robustness.md): a seeded chaos run that
crashes workers, hangs workers, and injects store faults mid-grid must
still return reports bit-identical to a fault-free serial run, with a
FailureReport describing every recovery; and an interrupted grid must
resume from its journal, re-executing only the missing cells.
"""

import dataclasses

import pytest

from repro.engine.grid import GridCell
from repro.errors import CellFailure, RetriesExhausted, SchemeError
from repro.experiments.runner import ExperimentRunner
from repro.resilience import chaos
from repro.resilience.chaos import ChaosConfig, ChaosRule
from repro.resilience.journal import ResumeJournal, cell_content_key, grid_digest
from repro.resilience.policy import FallbackPolicy, ResilienceConfig
from repro.resilience.supervisor import run_cell

KB = 1024

CELLS = [
    GridCell("crc", "baseline"),
    GridCell("crc", "way-placement", wpa_size=8 * KB),
    GridCell("sha", "baseline"),
    GridCell("sha", "way-placement", wpa_size=8 * KB),
]


def make_runner(cache_dir="off", **kwargs):
    kwargs.setdefault("eval_instructions", 8_000)
    kwargs.setdefault("profile_instructions", 4_000)
    return ExperimentRunner(cache_dir=cache_dir, **kwargs)


def fault_free_reports():
    return make_runner().run_grid(CELLS, jobs=1)


class TestRunCell:
    """The per-cell rung of the ladder, in isolation."""

    def test_transient_fault_is_retried(self):
        runner = make_runner()
        config = ResilienceConfig(retries=2, backoff_s=0.0)
        failures = []
        rule = ChaosRule("cell", "raise", match="crc:baseline", times=1)
        with chaos.active(ChaosConfig(seed=0, rules=(rule,))):
            report = run_cell(runner, CELLS[0], config, failures)
        assert report == make_runner().report("crc", "baseline")
        assert len(failures) == 1
        incident = failures[0]
        assert incident.recovered and incident.recovery == "retry"
        assert incident.attempts == 2
        assert "InjectedFault" in incident.causes[0]

    def test_sanitizer_failure_degrades_to_reference_engine(self):
        runner = make_runner()
        config = ResilienceConfig(retries=2, backoff_s=0.0)
        failures = []
        rule = ChaosRule("kernel", "sanitizer", match="crc:way-placement", times=-1)
        with chaos.active(ChaosConfig(seed=0, rules=(rule,))):
            report = run_cell(runner, CELLS[1], config, failures)
        # bit-identical despite running on the reference schemes
        assert report == make_runner().report(
            "crc", "way-placement", wpa_size=8 * KB
        )
        assert failures[0].recovery == "engine-fallback"
        assert runner.engine is None  # original engine restored

    def test_fallback_can_be_disabled(self):
        runner = make_runner()
        config = ResilienceConfig(
            retries=1, backoff_s=0.0, fallback=FallbackPolicy.NONE
        )
        failures = []
        rule = ChaosRule("kernel", "sanitizer", match="crc:way-placement", times=-1)
        with chaos.active(ChaosConfig(seed=0, rules=(rule,))):
            with pytest.raises(RetriesExhausted):
                run_cell(runner, CELLS[1], config, failures)
        assert not failures[0].recovered

    def test_persistent_fault_exhausts_retries_then_falls_back(self):
        """A retryable fault that never clears still recovers via the
        reference engine (which skips the chaos-instrumented kernel)."""
        runner = make_runner()
        config = ResilienceConfig(retries=1, backoff_s=0.0)
        failures = []
        rule = ChaosRule("kernel", "raise", match="crc:way-placement", times=-1)
        with chaos.active(ChaosConfig(seed=0, rules=(rule,))):
            report = run_cell(runner, CELLS[1], config, failures)
        assert report.counters.fetches > 0
        assert failures[0].recovery == "engine-fallback"
        assert failures[0].attempts == 3  # 1 + 1 retry + 1 fallback

    def test_static_errors_fail_immediately(self):
        runner = make_runner()
        failures = []
        cell = GridCell("crc", "no-such-scheme")
        with pytest.raises(RetriesExhausted) as info:
            run_cell(runner, cell, ResilienceConfig(retries=3), failures)
        assert info.value.attempts == 1  # no retry for config errors
        assert isinstance(info.value.__cause__, SchemeError)
        assert not failures[0].recovered


class TestChaosGridAcceptance:
    """Crash + hang + store faults mid-grid; results still bit-identical."""

    def test_supervised_grid_survives_seeded_chaos(self, tmp_path):
        want = fault_free_reports()
        config = ChaosConfig(
            seed=13,
            rules=(
                # first crc worker dies at its entry point
                ChaosRule("worker", "crash", match="crc@1", times=1),
                # first sha worker hangs until the supervisor kills it
                ChaosRule("worker", "hang", match="sha@1", times=1, delay_s=60.0),
                # the vectorized kernel trips the sanitizer once per process
                ChaosRule("kernel", "sanitizer", match="crc:way-placement", times=1),
                # and the trace store hits a full disk on first write
                ChaosRule("store.save", "enospc", match="blocks:", times=1),
            ),
        )
        runner = make_runner(
            tmp_path / "cache",
            resilience=ResilienceConfig(retries=2, backoff_s=0.01, timeout_s=2.0),
        )
        with chaos.active(config):
            got = runner.run_grid(CELLS, jobs=2)

        assert got == want  # bit-identical, not merely close
        assert runner.last_failures, "chaos incidents must be reported"
        assert all(failure.recovered for failure in runner.last_failures)
        recoveries = {failure.recovery for failure in runner.last_failures}
        assert "fresh-worker" in recoveries
        causes = " ".join(
            cause for failure in runner.last_failures for cause in failure.causes
        )
        assert "crashed" in causes
        assert "timed out" in causes
        summary = runner.last_grid
        assert summary.total == len(CELLS)
        assert summary.failed == ()
        assert len(summary.executed) == len(CELLS)

    def test_serial_chaos_grid_is_also_bit_identical(self):
        want = fault_free_reports()
        config = ChaosConfig(
            seed=7,
            rules=(
                ChaosRule("cell", "raise", match="sha:baseline", times=1),
                ChaosRule("kernel", "sanitizer", match="crc:way-placement", times=-1),
            ),
        )
        runner = make_runner(
            resilience=ResilienceConfig(retries=2, backoff_s=0.0)
        )
        with chaos.active(config):
            got = runner.run_grid(CELLS, jobs=1)
        assert got == want
        recoveries = {f.recovery for f in runner.last_failures}
        assert recoveries == {"retry", "engine-fallback"}


class TestPartialCompletion:
    """Satellite: completed work is adopted before a failure surfaces."""

    def test_serial_failure_keeps_completed_cells(self):
        runner = make_runner(
            resilience=ResilienceConfig(
                retries=0, backoff_s=0.0, fallback=FallbackPolicy.NONE
            )
        )
        rule = ChaosRule("cell", "raise", match="sha:way-placement", times=-1)
        with chaos.active(ChaosConfig(seed=0, rules=(rule,))):
            with pytest.raises(CellFailure) as info:
                runner.run_grid(CELLS, jobs=1)
        for cell in CELLS[:3]:
            assert runner.has_report(cell), "completed cells must be adopted"
        assert not runner.has_report(CELLS[3])
        assert runner.last_grid.failed == (cell_content_key(CELLS[3]),)
        fatal = [f for f in info.value.failures if not f.recovered]
        assert len(fatal) == 1 and fatal[0].benchmark == "sha"

    def test_parallel_failure_keeps_other_chunks_and_partial_chunks(self):
        """A chunk that fails mid-way ships its completed cells back; the
        supervisor adopts them (and every other chunk) before raising."""
        runner = make_runner(
            resilience=ResilienceConfig(
                retries=0, backoff_s=0.0, fallback=FallbackPolicy.NONE
            )
        )
        rule = ChaosRule("cell", "raise", match="sha:way-placement", times=-1)
        with chaos.active(ChaosConfig(seed=0, rules=(rule,))):
            with pytest.raises(CellFailure):
                runner.run_grid(CELLS, jobs=2)
        for cell in CELLS[:3]:
            assert runner.has_report(cell)
        assert not runner.has_report(CELLS[3])

    def test_cell_failure_chains_the_underlying_error(self):
        runner = make_runner(
            resilience=ResilienceConfig(retries=0, fallback=FallbackPolicy.NONE)
        )
        rule = ChaosRule("cell", "raise", match="crc", times=-1)
        with chaos.active(ChaosConfig(seed=0, rules=(rule,))):
            with pytest.raises(CellFailure) as info:
                runner.run_grid(CELLS[:2], jobs=1)
        assert isinstance(info.value.__cause__, RetriesExhausted)


class TestResumeAcceptance:
    """Interrupt a grid, resume it, re-execute only the missing cells."""

    def test_interrupted_grid_resumes_from_journal(self, tmp_path):
        cache = tmp_path / "cache"
        fail_fast = ResilienceConfig(
            retries=0, backoff_s=0.0, fallback=FallbackPolicy.NONE
        )
        first = make_runner(cache, resilience=fail_fast)
        rule = ChaosRule("cell", "raise", match="sha:way-placement", times=-1)
        with chaos.active(ChaosConfig(seed=0, rules=(rule,))):
            with pytest.raises(CellFailure):
                first.run_grid(CELLS, jobs=1)

        # the journal holds exactly the three completed cells
        key = grid_digest(first.spawn_spec(), [cell_content_key(c) for c in CELLS])
        journal = ResumeJournal.for_grid(cache, key)
        completed = journal.load()
        assert set(completed) == {cell_content_key(c) for c in CELLS[:3]}

        # a fresh process resumes: only the missing cell re-executes
        resumed = make_runner(
            cache, resilience=dataclasses.replace(fail_fast, resume=True)
        )
        reports = resumed.run_grid(CELLS, jobs=1)
        assert reports == fault_free_reports()
        summary = resumed.last_grid
        assert set(summary.resumed) == {cell_content_key(c) for c in CELLS[:3]}
        assert summary.executed == (cell_content_key(CELLS[3]),)
        # clean completion deletes the journal
        assert not journal.path.exists()

    def test_resume_of_a_different_grid_re_executes_everything(self, tmp_path):
        cache = tmp_path / "cache"
        config = ResilienceConfig(resume=True, backoff_s=0.0)
        runner = make_runner(cache, resilience=config)
        runner.run_grid(CELLS[:2], jobs=1)
        # different eval budget => different grid digest => cold resume
        other = make_runner(cache, eval_instructions=9_000, resilience=config)
        other.run_grid(CELLS[:2], jobs=1)
        assert other.last_grid.resumed == ()
        assert len(other.last_grid.executed) == 2


class TestRunnerSurface:
    def test_runner_validates_resilience_config(self):
        from repro.errors import ResilienceError

        with pytest.raises(ResilienceError):
            make_runner(resilience=ResilienceConfig(retries=-2))

    def test_default_config_reports_clean_summary(self):
        runner = make_runner()
        runner.run_grid(CELLS[:2], jobs=1)
        assert runner.last_failures == []
        assert runner.last_grid.failed == ()
        # re-running is all memo hits
        runner.run_grid(CELLS[:2], jobs=1)
        assert len(runner.last_grid.memoised) == 2
        assert runner.last_grid.executed == ()


class TestCliFlags:
    def test_supervision_flags_reach_the_runner(self):
        from repro.cli import _make_runner, build_parser

        args = build_parser().parse_args(
            [
                "figure4",
                "--benchmarks",
                "crc",
                "--retries",
                "5",
                "--timeout",
                "30",
                "--resume",
                "--fallback-policy",
                "none",
            ]
        )
        runner = _make_runner(args)
        config = runner.resilience
        assert config.retries == 5
        assert config.timeout_s == 30.0
        assert config.resume is True
        assert config.fallback is FallbackPolicy.NONE

    def test_no_flags_means_no_explicit_config(self):
        from repro.cli import _make_runner, build_parser

        args = build_parser().parse_args(["figure4", "--benchmarks", "crc"])
        assert _make_runner(args).resilience is None
