"""Certificate validation across every bundled workload.

The load-bearing claim of the interference analysis: a cache set the
static certificate calls conflict-free must replay **zero** conflict
misses on the real evaluation trace — on the paper's baseline geometry
and on a deliberately starved 2KB 2-way geometry where conflicts
actually happen.  The replay itself is held against the engine kernels
(total misses must agree exactly), so the decomposition is anchored to
the same counters the figures are built from.

Budgets match the CI lint/analyze jobs (20k eval / 8k profile), so the
whole sweep stays inside unit-test time.
"""

from __future__ import annotations

import pytest

from repro import ExperimentRunner
from repro.analysis.context import GeometrySpec, LayoutView, ProgramView
from repro.analysis.interference.graph import build_interference_graph
from repro.analysis.interference.replay import (
    conflict_free_violations,
    conflict_replay,
    trace_certified_sets,
)
from repro.cache.geometry import CacheGeometry
from repro.engine.kernels import fast_counters
from repro.layout.placement import LayoutPolicy
from repro.sim.machine import XSCALE_BASELINE
from repro.utils.bitops import align_up
from repro.workloads import benchmark_names

#: Undersized geometry: 2KB, 2-way, 32B lines — 32 sets of 2 ways, so
#: most workloads overflow sets and real conflict misses appear.
PRESSURE = CacheGeometry(2 * 1024, 2, 32)


@pytest.fixture(scope="module")
def interference_runner():
    return ExperimentRunner(eval_instructions=20_000, profile_instructions=8_000)


def _configs(layout):
    """(geometry, wpa_size) pairs to validate one workload under."""
    machine = XSCALE_BASELINE
    fitted = min(
        machine.icache.size_bytes,
        align_up(layout.end_address, machine.page_size),
    )
    return [
        (machine.icache, 0),
        (machine.icache, fitted),
        (PRESSURE, 0),
        (PRESSURE, 1024),
    ]


@pytest.mark.parametrize("benchmark_name", benchmark_names())
def test_certified_sets_replay_conflict_free(benchmark_name, interference_runner):
    runner = interference_runner
    layout = runner.layout(benchmark_name, LayoutPolicy.WAY_PLACEMENT)
    view = ProgramView.from_program(runner.workload(benchmark_name).program)
    layout_view = LayoutView.from_layout(layout)
    for geometry, wpa_size in _configs(layout):
        events = runner.events(
            benchmark_name, LayoutPolicy.WAY_PLACEMENT, geometry.line_size
        )
        spec = GeometrySpec.from_geometry(geometry)
        replay = conflict_replay(events, spec, wpa_size)

        # The decomposition is anchored to the engine's own miss counter.
        if wpa_size:
            counters = fast_counters(
                "way-placement",
                events,
                geometry,
                wpa_size=wpa_size,
                page_size=XSCALE_BASELINE.page_size,
            )
        else:
            counters = fast_counters(
                "baseline", events, geometry, page_size=XSCALE_BASELINE.page_size
            )
        assert counters is not None
        assert replay.total_misses == counters.misses, (benchmark_name, wpa_size)

        # Trace-level certificates hold on the trace itself.
        certified = trace_certified_sets(events, spec, wpa_size)
        assert conflict_free_violations(replay, certified) == {}, (
            benchmark_name,
            geometry,
            wpa_size,
        )

        # Layout-level certificates are weaker (they see every placed
        # line, not just the touched ones) but must also replay clean.
        graph = build_interference_graph(view, layout_view, spec, wpa_size)
        layout_certified = graph.conflict_free_sets()
        # Monotonicity: certifying the full placed footprint implies the
        # trace-footprint certificate on every set the trace touches.
        touched = {entry.set_index for entry in replay.sets}
        assert set(layout_certified) & touched <= set(certified)
        assert conflict_free_violations(replay, layout_certified) == {}, (
            benchmark_name,
            geometry,
            wpa_size,
        )


def test_pressure_geometry_actually_conflicts(interference_runner):
    """The starved geometry is a real test: at least one workload must
    replay conflict misses there, or the suite proves nothing."""
    runner = interference_runner
    spec = GeometrySpec.from_geometry(PRESSURE)
    total = 0
    for benchmark in benchmark_names():
        events = runner.events(
            benchmark, LayoutPolicy.WAY_PLACEMENT, PRESSURE.line_size
        )
        total += conflict_replay(events, spec).total_conflict_misses
    assert total > 0
