"""Unit tests for energy parameters."""

import dataclasses

import pytest

from repro.energy.params import EnergyParams, REFERENCE_SIZE_BYTES
from repro.errors import EnergyModelError


class TestValidation:
    def test_defaults_valid(self):
        EnergyParams()  # no exception

    @pytest.mark.parametrize(
        "field",
        [
            "cam_pj_per_way_bit",
            "data_read_pj",
            "fill_pj_per_bit",
            "memory_pj_per_bit",
            "itlb_search_pj",
            "link_write_pj",
            "core_pj_per_instruction",
            "mem_op_extra_pj",
        ],
    )
    def test_negative_rejected(self, field):
        with pytest.raises(EnergyModelError):
            EnergyParams(**{field: -1.0})

    def test_overhead_fraction_range(self):
        with pytest.raises(EnergyModelError):
            EnergyParams(link_data_overhead=1.5)
        with pytest.raises(EnergyModelError):
            EnergyParams(link_fill_overhead=-0.1)

    def test_exponent_range(self):
        with pytest.raises(EnergyModelError):
            EnergyParams(tag_size_exponent=3.0)


class TestSizeScale:
    def test_reference_point_is_unity(self):
        params = EnergyParams()
        assert params.size_scale(REFERENCE_SIZE_BYTES, 0.7) == pytest.approx(1.0)

    def test_monotone_in_size(self):
        params = EnergyParams()
        assert params.size_scale(64 * 1024, 0.7) > 1.0 > params.size_scale(
            16 * 1024, 0.7
        )

    def test_zero_exponent_flat(self):
        params = EnergyParams()
        assert params.size_scale(1024, 0.0) == 1.0


class TestCalibrationRatios:
    """Pin the ratios that drive the paper-shape results (see DESIGN.md)."""

    def test_tag_search_comparable_to_data_read_at_reference(self):
        params = EnergyParams()
        full_search = params.cam_pj_per_way_bit * 22 * 32  # 32KB/32-way tags
        assert 0.8 <= full_search / params.data_read_pj <= 1.2

    def test_memo_read_overhead_exceeds_storage_overhead(self):
        params = EnergyParams()
        assert params.link_data_overhead >= params.link_fill_overhead

    def test_is_frozen(self):
        params = EnergyParams()
        with pytest.raises(dataclasses.FrozenInstanceError):
            params.data_read_pj = 1.0
