"""Unit tests for chain construction (the Section 3 must-link step)."""

import pytest

from repro.errors import LayoutError
from repro.layout.chains import build_chains
from repro.program import ProgramBuilder
from tests.conftest import build_toy_program


class TestChainStructure:
    def test_every_block_in_exactly_one_chain(self):
        program = build_toy_program()
        chains = build_chains(program)
        seen = [uid for chain in chains for uid in chain.uids]
        assert sorted(seen) == sorted(b.uid for b in program.blocks())

    def test_fall_edges_respected_within_chains(self):
        program = build_toy_program()
        chains = build_chains(program)
        position = {}
        for chain in chains:
            for index, uid in enumerate(chain.uids):
                position[uid] = (id(chain), index)
        for block in program.blocks():
            if block.fall_label is None:
                continue
            fall_uid = program.uid_of_label(block.function, block.fall_label)
            chain_id, index = position[block.uid]
            fall_chain, fall_index = position[fall_uid]
            assert chain_id == fall_chain
            assert fall_index == index + 1

    def test_jump_breaks_chain(self):
        builder = ProgramBuilder("p")
        fn = builder.function("main")
        fn.block("a", 1, jump="c")
        fn.block("b", 1, jump="c")  # entered only by... nothing; unreachable ok?
        fn.block("c", 1, ret=True)
        # 'b' is unreachable -> validation failure; build chains directly
        # from a reachable variant instead:
        builder = ProgramBuilder("p2")
        fn = builder.function("main")
        fn.block("a", 1, branch="c")
        fn.block("b", 1, jump="c")
        fn.block("c", 1, ret=True)
        program = builder.build()
        chains = build_chains(program)
        # a falls to b (one chain); c entered by jumps only (own chain)
        assert sorted(len(c) for c in chains) == [1, 2]

    def test_weight_sums_instruction_counts(self):
        program = build_toy_program()
        chains = build_chains(program)
        counts = {b.uid: 10 for b in program.blocks()}
        sizes = {b.uid: b.num_instructions for b in program.blocks()}
        for chain in chains:
            expected = sum(counts[u] * sizes[u] for u in chain.uids)
            weights = {u: counts[u] * sizes[u] for u in chain.uids}
            assert chain.weight(weights) == expected

    def test_chains_deterministic_order(self):
        program = build_toy_program()
        assert [c.uids for c in build_chains(program)] == [
            c.uids for c in build_chains(program)
        ]
