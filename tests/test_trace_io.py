"""Tests for trace persistence."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.layout import original_layout
from repro.trace.executor import CfgWalker
from repro.trace.fetch import line_events_from_block_trace
from repro.trace.io import (
    load_block_trace,
    load_events,
    save_block_trace,
    save_events,
)


@pytest.fixture()
def traced(toy_program, toy_models):
    trace = CfgWalker(toy_program, toy_models, seed=0).walk(800)
    layout = original_layout(toy_program)
    events = line_events_from_block_trace(trace, toy_program, layout, 32)
    return trace, events


class TestEventsRoundtrip:
    def test_roundtrip(self, tmp_path, traced):
        _, events = traced
        path = tmp_path / "events.npz"
        save_events(events, path)
        loaded = load_events(path)
        assert loaded.line_size == events.line_size
        assert np.array_equal(loaded.line_addrs, events.line_addrs)
        assert np.array_equal(loaded.counts, events.counts)
        assert np.array_equal(loaded.slots, events.slots)

    def test_loaded_trace_drives_schemes_identically(self, tmp_path, traced):
        from repro.sim.simulator import Simulator

        _, events = traced
        path = tmp_path / "events.npz"
        save_events(events, path)
        loaded = load_events(path)
        a = Simulator().run_events(events, "baseline")
        b = Simulator().run_events(loaded, "baseline")
        assert a.counters == b.counters

    def test_wrong_kind_rejected(self, tmp_path, traced):
        trace, _ = traced
        path = tmp_path / "blocks.npz"
        save_block_trace(trace, path)
        with pytest.raises(TraceError, match="not a line-event"):
            load_events(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_events(tmp_path / "nope.npz")


class TestBlockTraceRoundtrip:
    def test_roundtrip(self, tmp_path, traced):
        trace, _ = traced
        path = tmp_path / "blocks.npz"
        save_block_trace(trace, path)
        loaded = load_block_trace(path)
        assert loaded.program_name == trace.program_name
        assert loaded.num_instructions == trace.num_instructions
        assert loaded.num_program_runs == trace.num_program_runs
        assert np.array_equal(loaded.uids, trace.uids)

    def test_wrong_kind_rejected(self, tmp_path, traced):
        _, events = traced
        path = tmp_path / "events.npz"
        save_events(events, path)
        with pytest.raises(TraceError, match="not a block-trace"):
            load_block_trace(path)
