"""Unit tests for repro.utils.rng — stability is the whole point."""

import pytest

from repro.utils.rng import make_rng, stable_seed


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("a", "b", 1) == stable_seed("a", "b", 1)

    def test_distinct_parts_distinct_seeds(self):
        assert stable_seed("a") != stable_seed("b")
        assert stable_seed("a", "b") != stable_seed("ab")
        assert stable_seed("a", 1) != stable_seed("a", 2)

    def test_order_matters(self):
        assert stable_seed("x", "y") != stable_seed("y", "x")

    def test_known_value_pinned(self):
        # Pin one value so accidental algorithm changes are caught: every
        # workload in the repo depends on these seeds staying put.
        assert stable_seed("workload", "crc", "") == stable_seed("workload", "crc", "")
        assert isinstance(stable_seed("pin"), int)
        assert 0 <= stable_seed("pin") < 2**64

    def test_requires_parts(self):
        with pytest.raises(ValueError):
            stable_seed()


class TestMakeRng:
    def test_same_parts_same_stream(self):
        a = make_rng("bench", 3)
        b = make_rng("bench", 3)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_parts_different_stream(self):
        a = make_rng("bench", 3)
        b = make_rng("bench", 4)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]
