"""Unit and property tests for cache geometry and the way mapping."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.geometry import CacheGeometry
from repro.errors import CacheConfigError


XSCALE = CacheGeometry(32 * 1024, 32, 32)


class TestDerivedQuantities:
    def test_xscale_geometry(self):
        assert XSCALE.num_lines == 1024
        assert XSCALE.num_sets == 32
        assert XSCALE.offset_bits == 5
        assert XSCALE.set_bits == 5
        assert XSCALE.way_bits == 5
        assert XSCALE.tag_bits == 22
        assert XSCALE.instructions_per_line == 8

    def test_describe_mentions_size_and_ways(self):
        text = XSCALE.describe()
        assert "32KB" in text and "32-way" in text

    @pytest.mark.parametrize(
        "size_kb,ways", [(16, 8), (16, 16), (16, 32), (32, 8), (64, 32)]
    )
    def test_figure6_geometries_valid(self, size_kb, ways):
        geometry = CacheGeometry(size_kb * 1024, ways, 32)
        assert geometry.num_sets * geometry.ways * geometry.line_size == size_kb * 1024


class TestValidation:
    def test_non_power_of_two_size(self):
        with pytest.raises(CacheConfigError):
            CacheGeometry(3000, 4, 32)

    def test_non_power_of_two_ways(self):
        with pytest.raises(CacheConfigError):
            CacheGeometry(4096, 3, 32)

    def test_line_too_small(self):
        with pytest.raises(CacheConfigError):
            CacheGeometry(4096, 4, 2)

    def test_too_many_ways_for_size(self):
        with pytest.raises(CacheConfigError):
            CacheGeometry(128, 8, 32)


class TestAddressSlicing:
    def test_line_address(self):
        assert XSCALE.line_address(0x1234) == 0x1220

    def test_set_and_tag(self):
        address = 0x0008_1234
        assert XSCALE.set_index(address) == (address >> 5) & 31
        assert XSCALE.tag(address) == address >> 10

    def test_reconstruct_inverse(self):
        address = 0x0008_1220
        tag = XSCALE.tag(address)
        set_index = XSCALE.set_index(address)
        assert XSCALE.reconstruct_address(tag, set_index) == address

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=100)
    def test_slicing_partitions_address(self, address):
        line = XSCALE.line_address(address)
        reconstructed = XSCALE.reconstruct_address(
            XSCALE.tag(address), XSCALE.set_index(address)
        )
        assert reconstructed == line


class TestWayPlacementMapping:
    def test_paper_mapping_lower_tag_bits(self):
        # "a 32-way cache uses the lower 5 bits from the tag"
        address = 0b1_10101_00000_00000  # tag LSBs = 10101
        assert XSCALE.mandated_way(address) == XSCALE.tag(address) & 31

    def test_one_cache_size_covers_every_slot_exactly_once(self):
        # The defining property of the mapping: a contiguous cache-sized
        # region starting at 0 maps onto each (set, way) exactly once.
        slots = set()
        for line in range(0, XSCALE.size_bytes, XSCALE.line_size):
            slots.add((XSCALE.set_index(line), XSCALE.mandated_way(line)))
        assert len(slots) == XSCALE.num_lines

    @given(st.integers(min_value=0, max_value=2**30))
    @settings(max_examples=100)
    def test_addresses_one_cache_apart_share_slot(self, address):
        other = address + XSCALE.size_bytes
        assert XSCALE.set_index(address) == XSCALE.set_index(other)
        assert XSCALE.mandated_way(address) == XSCALE.mandated_way(other)

    @pytest.mark.parametrize("size_kb,ways", [(16, 8), (32, 16), (64, 32)])
    def test_mapping_bijection_other_geometries(self, size_kb, ways):
        geometry = CacheGeometry(size_kb * 1024, ways, 32)
        slots = {
            (geometry.set_index(line), geometry.mandated_way(line))
            for line in range(0, geometry.size_bytes, geometry.line_size)
        }
        assert len(slots) == geometry.num_lines

    def test_wpa_smaller_than_cache_restricts_ways(self):
        # an 8KB prefix of a 32KB/32-way cache touches only ways 0..7
        ways_used = {
            XSCALE.mandated_way(line) for line in range(0, 8 * 1024, 32)
        }
        assert ways_used == set(range(8))
