"""The conflict-aware layout policy: validity, determinism, and its win.

``conflict-aware`` is the first consumer of the static interference
analysis — a profile-free competitor to the paper's profile-chained
pass.  These tests pin:

* structural validity (a chain permutation that re-links cleanly, every
  block placed, fall-through adjacency preserved by construction);
* bit-for-bit determinism across repeated builds;
* end-to-end usability through the runner/grid ``layout_policy`` knob
  (the sanitizer, including S009, runs inside ``report``);
* the headline claim: on the optimizer's own objective (predicted
  conflict weight at the paper's 32KB geometry) it beats or ties the
  profile-driven Pettis-Hansen placement on at least 15 of the 23
  bundled workloads.
"""

from __future__ import annotations

import pytest

from repro import ExperimentRunner
from repro.analysis.context import GeometrySpec, LayoutView, ProgramView
from repro.analysis.interference.graph import predicted_conflict_weight
from repro.layout import conflict_aware_layout, link_blocks, make_layout
from repro.layout.placement import LayoutPolicy
from repro.sim.machine import XSCALE_BASELINE
from repro.workloads import benchmark_names
from tests.conftest import build_toy_program

#: The optimizer's default target: the paper's 32KB 32-way 32B baseline.
TARGET = GeometrySpec(32 * 1024, 32, 32)

#: The acceptance floor: conflict-aware must win or tie Pettis-Hansen on
#: predicted conflict weight on at least this many workloads.
WIN_FLOOR = 15


@pytest.fixture(scope="module")
def layout_runner():
    return ExperimentRunner(eval_instructions=20_000, profile_instructions=8_000)


def _weight_of(program, layout):
    view = ProgramView.from_program(program)
    return predicted_conflict_weight(
        view, LayoutView.from_layout(layout), TARGET, 0
    )


def test_toy_layout_is_a_valid_relink(toy_program):
    layout = conflict_aware_layout(toy_program)
    # link_blocks re-validates the permutation and fall-through adjacency.
    relinked = link_blocks(toy_program, layout.block_order)
    assert relinked.block_order == layout.block_order
    assert {uid for uid in layout.block_order} == {
        block.uid for block in toy_program.blocks()
    }
    assert layout.description.startswith("conflict-aware (")


def test_toy_layout_is_deterministic(toy_program):
    first = conflict_aware_layout(toy_program)
    second = conflict_aware_layout(build_toy_program())
    assert first.block_order == second.block_order
    assert first.description == second.description
    assert [first.address_of(uid) for uid in first.block_order] == [
        second.address_of(uid) for uid in second.block_order
    ]


def test_make_layout_dispatches_without_a_profile(toy_program):
    layout = make_layout(toy_program, LayoutPolicy.CONFLICT_AWARE)
    assert layout.block_order == conflict_aware_layout(toy_program).block_order


def test_benchmark_layouts_are_valid_and_deterministic(layout_runner):
    for benchmark in ("crc", "bitcount"):
        program = layout_runner.workload(benchmark).program
        layout = layout_runner.layout(benchmark, LayoutPolicy.CONFLICT_AWARE)
        assert link_blocks(program, layout.block_order).block_order == (
            layout.block_order
        )
        rebuilt = conflict_aware_layout(program)
        assert rebuilt.block_order == layout.block_order


def test_runner_report_accepts_the_policy(layout_runner):
    """End to end through simulation — the sanitizer (S001..S009) runs on
    the resulting counters inside ``report``."""
    report = layout_runner.report(
        "crc",
        "way-placement",
        XSCALE_BASELINE,
        wpa_size=2048,
        layout_policy=LayoutPolicy.CONFLICT_AWARE,
    )
    assert report.counters.fetches > 0
    assert report.counters.hits + report.counters.misses > 0


def test_conflict_aware_beats_or_ties_pettis_hansen(layout_runner):
    """The optimizer wins on its own objective across the suite."""
    runner = layout_runner
    wins_or_ties, losses = 0, []
    for benchmark in benchmark_names():
        program = runner.workload(benchmark).program
        aware = _weight_of(
            program, runner.layout(benchmark, LayoutPolicy.CONFLICT_AWARE)
        )
        hansen = _weight_of(
            program, runner.layout(benchmark, LayoutPolicy.PETTIS_HANSEN)
        )
        if aware <= hansen:
            wins_or_ties += 1
        else:
            losses.append((benchmark, aware, hansen))
    assert wins_or_ties >= WIN_FLOOR, (
        f"conflict-aware only beat/tied Pettis-Hansen on {wins_or_ties}/23; "
        f"losses: {losses}"
    )
