"""Unit tests for repro.utils.bitops."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CacheConfigError
from repro.utils.bitops import (
    align_down,
    align_up,
    bit_field,
    is_power_of_two,
    log2_exact,
    mask,
)


class TestIsPowerOfTwo:
    def test_accepts_powers(self):
        for exponent in range(20):
            assert is_power_of_two(1 << exponent)

    def test_rejects_non_powers(self):
        for value in (0, -1, -2, 3, 5, 6, 7, 9, 12, 100):
            assert not is_power_of_two(value)


class TestLog2Exact:
    def test_exact_values(self):
        assert log2_exact(1) == 0
        assert log2_exact(32) == 5
        assert log2_exact(32 * 1024) == 15

    def test_rejects_non_power(self):
        with pytest.raises(CacheConfigError, match="power of two"):
            log2_exact(12)

    def test_error_names_the_quantity(self):
        with pytest.raises(CacheConfigError, match="line size"):
            log2_exact(13, "line size")

    @given(st.integers(min_value=0, max_value=40))
    def test_roundtrip(self, exponent):
        assert log2_exact(1 << exponent) == exponent


class TestMaskAndBitField:
    def test_mask_widths(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(5) == 0b11111

    def test_mask_rejects_negative(self):
        with pytest.raises(ValueError):
            mask(-1)

    def test_bit_field_extracts(self):
        word = 0b1011_0110
        assert bit_field(word, 0, 3) == 0b110
        assert bit_field(word, 4, 4) == 0b1011

    def test_bit_field_rejects_negative_low(self):
        with pytest.raises(ValueError):
            bit_field(1, -1, 2)

    @given(st.integers(min_value=0, max_value=2**40), st.integers(0, 30), st.integers(0, 20))
    def test_bit_field_matches_shift_mask(self, value, low, nbits):
        assert bit_field(value, low, nbits) == (value >> low) & ((1 << nbits) - 1)


class TestAlignment:
    def test_align_down(self):
        assert align_down(0x37, 16) == 0x30
        assert align_down(0x40, 16) == 0x40

    def test_align_up(self):
        assert align_up(0x37, 16) == 0x40
        assert align_up(0x40, 16) == 0x40

    def test_rejects_non_power_alignment(self):
        with pytest.raises(ValueError):
            align_down(10, 3)
        with pytest.raises(ValueError):
            align_up(10, 0)

    @given(st.integers(min_value=0, max_value=2**32), st.integers(0, 12))
    def test_align_invariants(self, value, exp):
        alignment = 1 << exp
        down = align_down(value, alignment)
        up = align_up(value, alignment)
        assert down % alignment == 0
        assert up % alignment == 0
        assert down <= value <= up
        assert up - down in (0, alignment)
