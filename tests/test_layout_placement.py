"""Unit tests for the way-placement layout pass (the paper's Section 3)."""

import pytest

from repro.errors import LayoutError
from repro.layout import (
    LayoutPolicy,
    build_chains,
    coldest_first_layout,
    make_layout,
    original_layout,
    random_layout,
    way_placement_layout,
)
from repro.profiling import profile_program
from tests.conftest import build_toy_program


@pytest.fixture()
def toy_profile(toy_program, toy_models):
    return profile_program(toy_program, toy_models, 2000)


class TestWayPlacementLayout:
    def test_heaviest_chain_first(self, toy_program, toy_profile):
        layout = way_placement_layout(toy_program, toy_profile.block_counts)
        chains = build_chains(toy_program)
        weights = {
            b.uid: toy_profile.count_of(b.uid) * b.num_instructions
            for b in toy_program.blocks()
        }
        first_chain = next(
            c for c in chains if c.head == layout.block_order[0]
        )
        for chain in chains:
            assert chain.weight(weights) <= first_chain.weight(weights)

    def test_hot_loop_starts_the_binary(self, toy_program, toy_profile):
        layout = way_placement_layout(toy_program, toy_profile.block_counts)
        # the loop chain (entry..latch) is the hottest; its head must be at 0
        first = toy_program.block_by_uid(layout.block_order[0])
        assert first.label in ("entry", "loop_head", "h0")
        # and the rarely-executed taken_path must come later than the loop
        hot = toy_program.uid_of_label("main", "latch")
        assert layout.address_of(hot) < layout.end_address / 2

    def test_addresses_weighted_by_execution(self, toy_program, toy_profile):
        """Average fetch address must drop versus the original layout."""
        original = original_layout(toy_program)
        placed = way_placement_layout(toy_program, toy_profile.block_counts)

        def mean_fetch_address(layout):
            total = weight = 0
            for block in toy_program.blocks():
                executed = toy_profile.count_of(block.uid) * block.num_instructions
                total += executed * layout.address_of(block.uid)
                weight += executed
            return total / weight

        assert mean_fetch_address(placed) <= mean_fetch_address(original)

    def test_respects_fall_edges(self, toy_program, toy_profile):
        # link_blocks validates adjacency internally; just ensure it builds
        layout = way_placement_layout(toy_program, toy_profile.block_counts)
        assert layout.end_address == toy_program.size_bytes

    def test_deterministic(self, toy_program, toy_profile):
        a = way_placement_layout(toy_program, toy_profile.block_counts)
        b = way_placement_layout(toy_program, toy_profile.block_counts)
        assert a.block_order == b.block_order

    def test_empty_profile_degenerates_to_chain_order(self, toy_program):
        layout = way_placement_layout(toy_program, {})
        chains = build_chains(toy_program)
        expected = [uid for chain in chains for uid in chain.uids]
        assert list(layout.block_order) == expected


class TestOtherPolicies:
    def test_original_matches_declaration_order(self, toy_program):
        layout = original_layout(toy_program)
        assert list(layout.block_order) == [b.uid for b in toy_program.blocks()]

    def test_random_layout_seed_dependent(self, toy_program):
        a = random_layout(toy_program, seed=1)
        b = random_layout(toy_program, seed=2)
        c = random_layout(toy_program, seed=1)
        assert a.block_order == c.block_order
        assert a.block_order != b.block_order or len(build_chains(toy_program)) <= 2

    def test_coldest_first_reverses_preference(self, toy_program, toy_profile):
        hot_first = way_placement_layout(toy_program, toy_profile.block_counts)
        cold_first = coldest_first_layout(toy_program, toy_profile.block_counts)
        hot_uid = toy_program.uid_of_label("main", "latch")
        assert cold_first.address_of(hot_uid) >= hot_first.address_of(hot_uid)

    def test_make_layout_dispatch(self, toy_program, toy_profile):
        for policy in LayoutPolicy:
            layout = make_layout(
                toy_program, policy, toy_profile.block_counts, seed=3,
                profile=toy_profile,
            )
            assert layout.end_address == toy_program.size_bytes

    def test_make_layout_requires_profile(self, toy_program):
        with pytest.raises(LayoutError, match="profile"):
            make_layout(toy_program, LayoutPolicy.WAY_PLACEMENT)
