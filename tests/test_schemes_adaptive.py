"""Tests for the adaptive (runtime-resized) way-placement controller."""

import pytest

from repro.errors import SchemeError
from repro.layout.placement import LayoutPolicy
from repro.schemes.adaptive import AdaptiveWpaController
from repro.schemes.way_placement import WayPlacementScheme
from repro.sim.machine import XSCALE_BASELINE
from tests.scheme_helpers import TINY_GEOMETRY, events_from

KB = 1024


class TestConfiguration:
    def test_needs_candidates(self):
        with pytest.raises(SchemeError):
            AdaptiveWpaController(TINY_GEOMETRY, [], page_size=16)

    def test_candidates_page_aligned(self):
        with pytest.raises(SchemeError):
            AdaptiveWpaController(TINY_GEOMETRY, [24], page_size=16)

    def test_window_positive(self):
        with pytest.raises(SchemeError):
            AdaptiveWpaController(
                TINY_GEOMETRY, [16], page_size=16, window_events=0
            )


class TestSegmentedEquivalence:
    def test_feed_in_segments_equals_single_run(self):
        specs = [((i * 5) % 11 * 16, 2, i % 4) for i in range(300)]
        specs = [
            s for i, s in enumerate(specs) if i == 0 or s[0] != specs[i - 1][0]
        ]
        events = events_from(specs)
        whole = WayPlacementScheme(TINY_GEOMETRY, wpa_size=64, page_size=16)
        whole.run(events)
        segmented = WayPlacementScheme(TINY_GEOMETRY, wpa_size=64, page_size=16)
        for start in range(0, events.num_events, 17):
            segmented.feed(events.segment(start, min(start + 17, events.num_events)))
        assert whole.counters == segmented.counters


class TestAdaptiveRun:
    def _events(self, runner_budget=60_000):
        from repro.experiments.runner import ExperimentRunner

        runner = ExperimentRunner(
            eval_instructions=runner_budget, profile_instructions=20_000
        )
        return runner.events("crc", LayoutPolicy.WAY_PLACEMENT, 32)

    def test_trials_every_candidate_then_locks(self):
        events = self._events()
        controller = AdaptiveWpaController(
            XSCALE_BASELINE.icache,
            [1 * KB, 4 * KB, 32 * KB],
            window_events=512,
        )
        result = controller.run(events)
        assert result.trial_windows >= 3
        assert result.chosen_wpa in (1 * KB, 4 * KB, 32 * KB)
        assert any(record.phase == "locked" for record in result.history)

    def test_counters_cover_whole_trace(self):
        events = self._events()
        controller = AdaptiveWpaController(
            XSCALE_BASELINE.icache, [1 * KB, 32 * KB], window_events=512
        )
        result = controller.run(events)
        assert result.counters.fetches == events.num_fetches
        assert result.counters.line_events == events.num_events

    def test_adaptive_close_to_best_fixed(self):
        """After locking, the adaptive run's tag traffic approaches the best
        fixed configuration's (trial overhead amortises away)."""
        events = self._events()
        candidates = [1 * KB, 4 * KB]
        fixed = {}
        for size in candidates:
            scheme = WayPlacementScheme(XSCALE_BASELINE.icache, wpa_size=size)
            fixed[size] = scheme.run(events).ways_precharged
        best_fixed = min(fixed.values())

        controller = AdaptiveWpaController(
            XSCALE_BASELINE.icache, candidates, window_events=256
        )
        result = controller.run(events)
        # the trial phase is a fixed cost that amortises with trace length;
        # on this short trace allow it 25% headroom over the oracle-fixed run
        assert result.counters.ways_precharged <= best_fixed * 1.25
        # and crucially the controller picked the right size
        assert result.chosen_wpa == min(
            candidates, key=lambda s: fixed[s]
        )

    def test_resize_flushes_cache(self):
        controller = AdaptiveWpaController(
            TINY_GEOMETRY, [16, 64], page_size=16, window_events=4
        )
        scheme = controller.scheme
        scheme.feed(events_from([0x00, 0x10, 0x20]))
        assert scheme.cache.occupancy() > 0
        controller._resize(64)
        assert scheme.cache.occupancy() == 0.0
