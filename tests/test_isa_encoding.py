"""Unit and property tests for instruction encoding/decoding."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EncodingError
from repro.isa.encoding import OPERAND_SIGNATURES, decode_instruction, encode_instruction
from repro.isa.instructions import Condition, Instruction, Opcode
from repro.isa.registers import Register


def make_instruction(opcode, condition, rd, rn, rm, imm):
    """Build an instruction consistent with its opcode's operand signature."""
    signature = OPERAND_SIGNATURES[opcode]
    return Instruction(
        opcode,
        rd=rd if "d" in signature else None,
        rn=rn if "n" in signature else None,
        rm=rm if "m" in signature else None,
        imm=imm if "i" in signature else 0,
        condition=condition,
    )


_NON_BRANCH = [op for op in Opcode if op not in (Opcode.B, Opcode.BL)]


class TestRoundTrip:
    @given(
        opcode=st.sampled_from(_NON_BRANCH),
        condition=st.sampled_from(list(Condition)),
        rd=st.sampled_from(list(Register)),
        rn=st.sampled_from(list(Register)),
        rm=st.sampled_from(list(Register)),
        imm=st.integers(min_value=-2048, max_value=2047),
    )
    def test_non_branch_roundtrip(self, opcode, condition, rd, rn, rm, imm):
        instruction = make_instruction(opcode, condition, rd, rn, rm, imm)
        word = encode_instruction(instruction)
        assert 0 <= word < 2**32
        assert decode_instruction(word) == instruction

    @given(
        offset=st.integers(min_value=-(2**23), max_value=2**23 - 1),
        opcode=st.sampled_from([Opcode.B, Opcode.BL]),
        condition=st.sampled_from(list(Condition)),
    )
    def test_branch_offset_roundtrip(self, offset, opcode, condition):
        instruction = Instruction(opcode, condition=condition, imm=offset)
        decoded = decode_instruction(encode_instruction(instruction))
        assert decoded.opcode is opcode
        assert decoded.condition is condition
        assert decoded.imm == offset


class TestBranchResolution:
    def test_symbolic_target_resolved_via_symbols(self):
        branch = Instruction(Opcode.B, target="dest")
        word = encode_instruction(branch, address=0x100, symbols={"dest": 0x80})
        decoded = decode_instruction(word)
        assert decoded.imm == (0x80 - 0x100) // 4

    def test_unresolved_target_raises(self):
        branch = Instruction(Opcode.BL, target="nowhere")
        with pytest.raises(EncodingError, match="unresolved"):
            encode_instruction(branch, address=0, symbols={})

    def test_unaligned_target_raises(self):
        branch = Instruction(Opcode.B, target="dest")
        with pytest.raises(EncodingError, match="aligned"):
            encode_instruction(branch, address=0, symbols={"dest": 0x7})

    def test_offset_out_of_range(self):
        branch = Instruction(Opcode.B, imm=2**23)
        with pytest.raises(EncodingError, match="out of signed"):
            encode_instruction(branch)


class TestDecodeErrors:
    def test_rejects_oversized_word(self):
        with pytest.raises(EncodingError):
            decode_instruction(2**32)

    def test_rejects_unknown_opcode(self):
        word = 0b11111 << 27  # opcode 31 is undefined
        with pytest.raises(EncodingError, match="unknown opcode"):
            decode_instruction(word)

    def test_immediate_out_of_range_on_encode(self):
        instruction = Instruction(Opcode.MOV, rd=Register.R0, imm=5000)
        with pytest.raises(EncodingError, match="immediate"):
            encode_instruction(instruction)


class TestSignatures:
    def test_every_opcode_has_signature(self):
        for opcode in Opcode:
            assert opcode in OPERAND_SIGNATURES

    def test_unused_fields_decode_to_none(self):
        word = encode_instruction(Instruction(Opcode.NOP))
        decoded = decode_instruction(word)
        assert decoded.rd is None and decoded.rn is None and decoded.rm is None
