"""Tests for the ``repro lint`` subcommand."""

from __future__ import annotations

import json

from repro.cli import main

FAST = ["--eval-instructions", "20000", "--profile-instructions", "8000"]


def _bad_config(tmp_path, **overrides):
    data = {
        "cache": {"size_kb": 3, "ways": 3},
        "wpa_kb": 1,
        "page_kb": 2,
    }
    data.update(overrides)
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(data))
    return str(path)


def _good_config(tmp_path):
    path = tmp_path / "good.json"
    path.write_text(json.dumps({"cache": {"size_kb": 32, "ways": 32}}))
    return str(path)


def test_lint_clean_benchmark_text(capsys):
    assert main(["lint", "crc", *FAST]) == 0
    out = capsys.readouterr().out
    assert "no problems found" in out


def test_lint_clean_benchmark_json(capsys):
    assert main(["lint", "crc", "--format", "json", *FAST]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["diagnostics"] == []
    assert payload["summary"]["total"] == 0


def test_lint_bad_config_exits_nonzero(tmp_path, capsys):
    assert main(["lint", _bad_config(tmp_path), *FAST]) == 2
    out = capsys.readouterr().out
    assert "C003" in out  # non-power-of-two geometry
    assert "L004" in out  # WPA not a page multiple


def test_lint_good_config_exits_zero(tmp_path, capsys):
    assert main(["lint", _good_config(tmp_path), *FAST]) == 0
    assert "no problems found" in capsys.readouterr().out


def test_lint_ignore_downgrades_exit_code(tmp_path, capsys):
    path = _bad_config(tmp_path)
    # V006 independently flags the unaligned WPA and unsound geometry, so
    # it must be ignored alongside the lint rules to reach a clean exit.
    assert main(["lint", path, "--ignore", "C003,L004,V006", *FAST]) == 0
    out = capsys.readouterr().out
    assert "C003" not in out and "L004" not in out and "V006" not in out


def test_lint_select_restricts_rules(tmp_path, capsys):
    path = _bad_config(tmp_path)
    assert main(["lint", path, "--select", "L", *FAST]) == 2
    out = capsys.readouterr().out
    assert "L004" in out and "C003" not in out


def test_lint_json_output_is_deterministic(tmp_path, capsys):
    path = _bad_config(tmp_path)
    outputs = []
    for _ in range(2):
        main(["lint", path, "--format", "json", *FAST])
        outputs.append(capsys.readouterr().out)
    assert outputs[0] == outputs[1]
    records = json.loads(outputs[0])["diagnostics"]
    keys = [(r["rule"], r["location"]["detail"]) for r in records]
    assert keys == sorted(keys)


def test_lint_unknown_target_errors(capsys):
    assert main(["lint", "no-such-benchmark", *FAST]) == 1
    assert "unknown lint target" in capsys.readouterr().err


def test_lint_unreadable_config_errors(tmp_path, capsys):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    assert main(["lint", str(path), *FAST]) == 1
    assert "cannot read config file" in capsys.readouterr().err


def test_lint_unknown_selector_errors(capsys):
    assert main(["lint", "crc", "--select", "Z", *FAST]) == 1
    assert "matches no rule" in capsys.readouterr().err


def test_lint_all_benchmarks_default(capsys):
    assert main(["lint", *FAST]) == 0
    assert "no problems found" in capsys.readouterr().out
