"""Tests for the figure harness (on a reduced benchmark subset for speed)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.figures import figure4, figure5, figure6
from repro.experiments.runner import ExperimentRunner

SUBSET = ["crc", "sha", "susan_c"]


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(eval_instructions=40_000, profile_instructions=15_000)


class TestFigure4:
    def test_structure(self, runner):
        result = figure4(runner, benchmarks=SUBSET)
        assert result.benchmarks == tuple(SUBSET)
        assert set(result.memoization) == set(SUBSET)
        assert set(result.placement) == set(SUBSET)

    def test_placement_beats_memoization(self, runner):
        result = figure4(runner, benchmarks=SUBSET)
        assert result.mean_placement_energy < result.mean_memoization_energy
        assert result.mean_placement_ed <= result.mean_memoization_ed + 1e-9

    def test_render_contains_benchmarks_and_average(self, runner):
        text = figure4(runner, benchmarks=SUBSET).render()
        assert "Figure 4(a)" in text and "Figure 4(b)" in text
        for bench in SUBSET:
            assert bench in text
        assert "average" in text

    def test_empty_suite_rejected(self, runner):
        with pytest.raises(ExperimentError):
            figure4(runner, benchmarks=[])


class TestFigure5:
    def test_monotone_degradation(self, runner):
        sizes = [32 * 1024, 8 * 1024, 1 * 1024]
        result = figure5(runner, wpa_sizes=sizes, benchmarks=SUBSET)
        energies = [result.placement_energy[s] for s in sizes]
        # smaller WPA never *helps* I-cache energy
        assert energies[0] <= energies[1] + 0.01 <= energies[2] + 0.02

    def test_always_beats_memoization(self, runner):
        result = figure5(
            runner, wpa_sizes=[32 * 1024, 1 * 1024], benchmarks=SUBSET
        )
        for energy in result.placement_energy.values():
            assert energy < result.memoization_energy

    def test_render(self, runner):
        text = figure5(
            runner, wpa_sizes=[32 * 1024, 1024], benchmarks=SUBSET
        ).render()
        assert "32KB" in text and "1KB" in text and "way-memo" in text


class TestFigure6:
    @pytest.fixture(scope="class")
    def result(self, runner):
        return figure6(
            runner,
            cache_sizes=[16 * 1024, 32 * 1024],
            ways_list=[8, 32],
            wpa_sizes=[8 * 1024],
            benchmarks=SUBSET,
        )

    def test_grid_complete(self, result):
        assert set(result.cells) == {
            (16 * 1024, 8),
            (16 * 1024, 32),
            (32 * 1024, 8),
            (32 * 1024, 32),
        }

    def test_savings_grow_with_associativity(self, result):
        for size in (16 * 1024, 32 * 1024):
            low = result.cell(size, 8).placement_energy[8 * 1024]
            high = result.cell(size, 32).placement_energy[8 * 1024]
            assert high < low

    def test_memoization_hurts_at_low_associativity(self, result):
        assert result.cell(16 * 1024, 8).memoization_energy > 1.0

    def test_best_ed_found(self, result):
        (size, ways), wpa, value = result.best_ed()
        assert (size, ways) in result.cells
        assert value == result.cell(size, ways).placement_ed[wpa]

    def test_missing_cell_raises(self, result):
        with pytest.raises(ExperimentError):
            result.cell(64 * 1024, 32)

    def test_render(self, result):
        text = result.render()
        assert "Figure 6(a)" in text and "Figure 6(b)" in text
