"""Unit tests for the way-hint bit."""

from repro.cache.wayhint import WayHintBit


class TestPrediction:
    def test_initially_false(self):
        assert WayHintBit().predict() is False

    def test_tracks_last_value(self):
        hint = WayHintBit()
        hint.predict()
        hint.update(True)
        assert hint.predict() is True
        hint.update(False)
        assert hint.predict() is False

    def test_false_positive_counted(self):
        hint = WayHintBit(initial=True)
        hint.predict()
        hint.update(False)
        assert hint.false_positives == 1
        assert hint.false_negatives == 0

    def test_false_negative_counted(self):
        hint = WayHintBit()
        hint.predict()
        hint.update(True)
        assert hint.false_negatives == 1
        assert hint.false_positives == 0

    def test_accuracy(self):
        hint = WayHintBit()
        sequence = [True, True, True, False, False, True]
        for actual in sequence:
            hint.predict()
            hint.update(actual)
        # mispredictions happen at each value change plus the first True
        wrong = hint.false_positives + hint.false_negatives
        assert wrong == 3
        assert hint.accuracy == 1 - 3 / len(sequence)

    def test_accuracy_with_no_predictions(self):
        assert WayHintBit().accuracy == 1.0

    def test_long_runs_are_accurate(self):
        # the paper's argument: the stream rarely switches between WPA and
        # non-WPA code, so a last-value predictor is nearly perfect
        hint = WayHintBit()
        stream = [True] * 500 + [False] * 500 + [True] * 500
        for actual in stream:
            hint.predict()
            hint.update(actual)
        assert hint.accuracy >= 0.99
