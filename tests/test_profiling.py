"""Unit tests for profiling."""

import pytest

from repro.errors import ProfileError
from repro.profiling import (
    ProfileData,
    dynamic_memory_fraction,
    profile_block_trace,
    profile_program,
)
from repro.trace.executor import CfgWalker


class TestProfileProgram:
    def test_counts_sum_to_block_executions(self, toy_program, toy_models):
        profile = profile_program(toy_program, toy_models, 600, "train")
        trace = CfgWalker(toy_program, toy_models, seed=0).walk(600)
        assert sum(profile.block_counts.values()) == trace.num_block_executions

    def test_loop_blocks_hotter_than_entry(self, toy_program, toy_models):
        profile = profile_program(toy_program, toy_models, 2000)
        latch = toy_program.uid_of_label("main", "latch")
        entry = toy_program.uid_of_label("main", "entry")
        assert profile.count_of(latch) > profile.count_of(entry)

    def test_edge_counts_consistent(self, toy_program, toy_models):
        profile = profile_program(toy_program, toy_models, 600)
        # every edge endpoint must be a known block, and traversal counts
        # cannot exceed the source block's execution count
        for (src, dst), count in profile.edge_counts.items():
            assert count <= profile.count_of(src)

    def test_hottest_blocks_sorted(self, toy_program, toy_models):
        profile = profile_program(toy_program, toy_models, 2000)
        hottest = profile.hottest_blocks(5)
        counts = [c for _, c in hottest]
        assert counts == sorted(counts, reverse=True)

    def test_coverage(self, toy_program, toy_models):
        profile = profile_program(toy_program, toy_models, 2000)
        assert 0.5 < profile.coverage <= 1.0


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path, toy_program, toy_models):
        profile = profile_program(toy_program, toy_models, 600, "train")
        path = tmp_path / "profile.json"
        profile.save(path)
        loaded = ProfileData.load(path)
        assert loaded.block_counts == profile.block_counts
        assert loaded.edge_counts == profile.edge_counts
        assert loaded.num_instructions == profile.num_instructions
        assert loaded.program_name == profile.program_name

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ProfileError):
            ProfileData.load(tmp_path / "nope.json")

    def test_load_malformed(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{\"program\": \"x\"}")
        with pytest.raises(ProfileError):
            ProfileData.load(path)


class TestMemoryFraction:
    def test_fraction_in_unit_interval(self, toy_program, toy_models):
        trace = CfgWalker(toy_program, toy_models, seed=0).walk(600)
        fraction = dynamic_memory_fraction(toy_program, trace)
        assert 0.0 <= fraction <= 1.0

    def test_fraction_matches_hand_count(self, toy_program, toy_models):
        trace = CfgWalker(toy_program, toy_models, seed=0).walk(600)
        counts = trace.block_counts(toy_program.num_blocks)
        expected_mem = sum(
            int(counts[b.uid]) * sum(1 for i in b.instructions if i.is_memory_access)
            for b in toy_program.blocks()
        )
        fraction = dynamic_memory_fraction(toy_program, trace)
        assert fraction == pytest.approx(expected_mem / trace.num_instructions)
