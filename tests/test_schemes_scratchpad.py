"""Unit tests for the scratchpad scheme and its content selection."""

import pytest

from repro.errors import SchemeError
from repro.layout import original_layout, way_placement_layout
from repro.profiling import profile_program
from repro.schemes.scratchpad import ScratchpadScheme, select_spm_contents
from tests.scheme_helpers import TINY_GEOMETRY, events_from


class TestScheme:
    def test_spm_fetches_skip_the_cache(self):
        scheme = ScratchpadScheme(
            TINY_GEOMETRY, spm_lines={0x00, 0x10}, page_size=16
        )
        counters = scheme.run(events_from([(0x00, 4), (0x10, 4), (0x40, 2)]))
        assert counters.spm_accesses == 8
        assert counters.fetches == 10
        # only the non-SPM line touched the cache
        assert counters.hits + counters.misses == 1
        assert counters.ways_precharged == 4  # one full search

    def test_empty_spm_behaves_like_skipping_baseline(self):
        scheme = ScratchpadScheme(TINY_GEOMETRY, spm_lines=set(), page_size=16)
        counters = scheme.run(events_from([(0x00, 4), (0x10, 4)]))
        assert counters.spm_accesses == 0
        assert counters.full_searches == 2
        assert counters.same_line_fetches == 6

    def test_spm_access_energy_priced(self):
        from repro.energy.cache_model import CacheEnergyModel
        from repro.energy.params import EnergyParams

        scheme = ScratchpadScheme(TINY_GEOMETRY, spm_lines={0x00}, page_size=16)
        counters = scheme.run(events_from([(0x00, 10)]))
        params = EnergyParams()
        breakdown = CacheEnergyModel(TINY_GEOMETRY, params).energy(counters)
        assert breakdown.spm_pj == pytest.approx(10 * params.spm_read_pj)
        assert breakdown.data_pj == 0.0  # nothing read the cache data array


class TestSelection:
    def test_selection_respects_budget(self, toy_program, toy_models):
        profile = profile_program(toy_program, toy_models, 2000)
        layout = original_layout(toy_program)
        lines = select_spm_contents(
            toy_program, layout, profile.block_counts, spm_size=64, line_size=32
        )
        # 64 bytes = at most a couple of 32B lines (chains are the unit)
        assert len(lines) * 32 <= 64 + 32  # boundary lines may straddle

    def test_selection_prefers_hot_chains(self, toy_program, toy_models):
        profile = profile_program(toy_program, toy_models, 2000)
        layout = original_layout(toy_program)
        lines = select_spm_contents(
            toy_program, layout, profile.block_counts, spm_size=128, line_size=32
        )
        hot_uid = toy_program.uid_of_label("helper", "h0")
        hot_line = layout.address_of(hot_uid) & ~31
        assert hot_line in lines

    def test_zero_budget_selects_nothing(self, toy_program, toy_models):
        profile = profile_program(toy_program, toy_models, 2000)
        layout = original_layout(toy_program)
        assert (
            select_spm_contents(
                toy_program, layout, profile.block_counts, spm_size=0
            )
            == set()
        )

    def test_negative_budget_rejected(self, toy_program, toy_models):
        profile = profile_program(toy_program, toy_models, 2000)
        layout = original_layout(toy_program)
        with pytest.raises(SchemeError):
            select_spm_contents(
                toy_program, layout, profile.block_counts, spm_size=-1
            )

    def test_selected_coverage_reduces_cache_traffic(self, toy_program, toy_models):
        """End to end: an SPM sized for the hot loop absorbs most fetches."""
        from repro.trace.executor import CfgWalker
        from repro.trace.fetch import line_events_from_block_trace
        from repro.cache.geometry import CacheGeometry

        profile = profile_program(toy_program, toy_models, 2000)
        layout = way_placement_layout(toy_program, profile.block_counts)
        lines = select_spm_contents(
            toy_program, layout, profile.block_counts, spm_size=256, line_size=32
        )
        trace = CfgWalker(toy_program, toy_models, seed=1).walk(3000)
        events = line_events_from_block_trace(trace, toy_program, layout, 32)
        geometry = CacheGeometry(32 * 1024, 32, 32)
        scheme = ScratchpadScheme(geometry, spm_lines=lines)
        counters = scheme.run(events)
        assert counters.spm_accesses / counters.fetches > 0.5
