"""Unit tests for repro.utils.stats."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils.stats import arithmetic_mean, geometric_mean, weighted_mean


class TestArithmeticMean:
    def test_basic(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_accepts_generator(self):
        assert arithmetic_mean(x for x in (2.0, 4.0)) == pytest.approx(3.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            arithmetic_mean([])


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -2.0])

    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=20))
    def test_never_exceeds_arithmetic(self, values):
        # AM-GM inequality: a classic invariant for a property test.
        assert geometric_mean(values) <= arithmetic_mean(values) * (1 + 1e-9)

    @given(st.floats(min_value=0.01, max_value=10.0), st.integers(1, 10))
    def test_constant_sequence(self, value, n):
        assert geometric_mean([value] * n) == pytest.approx(value)


class TestWeightedMean:
    def test_basic(self):
        assert weighted_mean([1.0, 3.0], [1.0, 3.0]) == pytest.approx(2.5)

    def test_zero_weight_ignores_value(self):
        assert weighted_mean([1.0, 100.0], [1.0, 0.0]) == pytest.approx(1.0)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [1.0, 2.0])

    def test_all_zero_weights(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0, 2.0], [0.0, 0.0])

    def test_negative_weight(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [-1.0])

    def test_empty(self):
        with pytest.raises(ValueError):
            weighted_mean([], [])
