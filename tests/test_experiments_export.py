"""Tests for figure-data export and the reproduction report."""

import csv
import io
import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.export import (
    figure4_records,
    figure5_records,
    figure6_records,
    records_to_csv,
    records_to_json,
)
from repro.experiments.figures import figure4, figure5, figure6
from repro.experiments.report import paper_checklist, reproduction_report
from repro.experiments.runner import ExperimentRunner

SUBSET = ["crc", "sha"]


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(eval_instructions=40_000, profile_instructions=15_000)


@pytest.fixture(scope="module")
def fig4(runner):
    return figure4(runner, benchmarks=SUBSET)


@pytest.fixture(scope="module")
def fig5(runner):
    return figure5(runner, wpa_sizes=[32 * 1024, 1024], benchmarks=SUBSET)


@pytest.fixture(scope="module")
def fig6(runner):
    return figure6(
        runner,
        cache_sizes=[16 * 1024, 32 * 1024],
        ways_list=[8, 32],
        wpa_sizes=[8 * 1024],
        benchmarks=SUBSET,
    )


class TestRecords:
    def test_figure4_one_record_per_bar(self, fig4):
        records = figure4_records(fig4)
        assert len(records) == 2 * len(SUBSET)
        schemes = {r["scheme"] for r in records}
        assert schemes == {"way-memoization", "way-placement"}

    def test_figure5_records_cover_sizes(self, fig5):
        records = figure5_records(fig5)
        wpa_values = [r["wpa_kb"] for r in records if r["scheme"] == "way-placement"]
        assert wpa_values == [32, 1]
        assert records[-1]["scheme"] == "way-memoization"

    def test_figure6_records_cover_grid(self, fig6):
        records = figure6_records(fig6)
        # 4 cells x (1 memo + 1 wpa) records
        assert len(records) == 4 * 2
        assert {r["cache_kb"] for r in records} == {16, 32}

    def test_energy_values_match_result(self, fig4):
        records = figure4_records(fig4)
        for record in records:
            if record["scheme"] == "way-placement":
                expected = fig4.placement[record["benchmark"]].icache_energy
                assert record["icache_energy"] == pytest.approx(expected, abs=1e-5)


class TestSerialisation:
    def test_csv_parses_back(self, fig4):
        text = records_to_csv(figure4_records(fig4))
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2 * len(SUBSET)
        assert float(rows[0]["icache_energy"]) > 0

    def test_json_parses_back(self, fig5):
        text = records_to_json(figure5_records(fig5))
        data = json.loads(text)
        assert isinstance(data, list) and data

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            records_to_csv([])
        with pytest.raises(ExperimentError):
            records_to_json([])


class TestReport:
    def test_checklist_structure(self, fig4, fig5, fig6):
        items = paper_checklist(fig4, fig5, fig6)
        assert len(items) >= 8
        for item in items:
            assert item.claim and item.measured
            assert isinstance(item.passed, bool)

    def test_report_renders(self, runner):
        text = reproduction_report(runner, benchmarks=SUBSET)
        assert "# Way-Placement Reproduction Report" in text
        assert "Paper checklist" in text
        assert "Figure 4" in text and "Figure 5" in text and "Figure 6" in text
        # the tiny-kernel subset reproduces the headline claims
        assert "| Figure 4: way-placement energy savings approach 50% |" in text
