"""Legacy setup shim.

The environment used for offline evaluation ships setuptools without the
``wheel`` package, so PEP 517 editable installs fail with
``invalid command 'bdist_wheel'``.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` take the legacy
``setup.py develop`` path.  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
