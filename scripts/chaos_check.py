#!/usr/bin/env python
"""Seeded chaos drill for the supervised grid runner (the CI chaos gate).

Derives a fault schedule from ``--seed`` (worker crash, worker hang, a
sanitizer trip in the vectorized kernel, probabilistic cell faults, a full
disk, and a torn cache write), runs a supervised parallel grid under it,
and fails unless the results are bit-identical to a fault-free serial run
with every injected incident recovered.

Usage::

    PYTHONPATH=src python scripts/chaos_check.py --seed 13
"""

from __future__ import annotations

import argparse
import random
import sys
import tempfile
from pathlib import Path
from typing import Tuple

from repro.engine.grid import GridCell
from repro.experiments.runner import ExperimentRunner
from repro.resilience import chaos
from repro.resilience.chaos import ChaosConfig, ChaosRule, describe_rules
from repro.resilience.policy import ResilienceConfig

KB = 1024

CELLS = [
    GridCell("crc", "baseline"),
    GridCell("crc", "way-placement", wpa_size=8 * KB),
    GridCell("sha", "baseline"),
    GridCell("sha", "way-placement", wpa_size=8 * KB),
]


def make_runner(cache_dir: str, **kwargs: object) -> ExperimentRunner:
    return ExperimentRunner(
        cache_dir=cache_dir,
        eval_instructions=8_000,
        profile_instructions=4_000,
        **kwargs,
    )


def build_rules(seed: int) -> Tuple[ChaosRule, ...]:
    """A seed-derived schedule covering every recovery rung at once."""
    rng = random.Random(seed)
    crash_bench = rng.choice(["crc", "sha"])
    hang_bench = "sha" if crash_bench == "crc" else "crc"
    return (
        ChaosRule("worker", "crash", match=f"{crash_bench}@1", times=1),
        ChaosRule("worker", "hang", match=f"{hang_bench}@1", times=1, delay_s=60.0),
        ChaosRule("kernel", "sanitizer", match="way-placement", times=1),
        ChaosRule("cell", "raise", times=-1, probability=0.2),
        ChaosRule("store.save", "enospc", times=1),
        ChaosRule("store.save", "truncate", match="events:", times=1),
    )


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0, help="chaos schedule seed")
    parser.add_argument("--jobs", type=int, default=2, help="worker processes")
    args = parser.parse_args(argv)

    want = make_runner("off").run_grid(CELLS, jobs=1)

    config = ChaosConfig(seed=args.seed, rules=build_rules(args.seed))
    print(f"chaos schedule (seed={args.seed}):")
    print(describe_rules(list(config.rules)))

    with tempfile.TemporaryDirectory() as scratch:
        runner = make_runner(
            str(Path(scratch) / "cache"),
            resilience=ResilienceConfig(retries=3, backoff_s=0.01, timeout_s=3.0),
        )
        with chaos.active(config):
            got = runner.run_grid(CELLS, jobs=args.jobs)

    print(f"\n{len(runner.last_failures)} incident(s) during the chaos run:")
    for failure in runner.last_failures:
        print(f"  {failure.describe()}")

    if got != want:
        print("FAIL: chaos run results differ from the fault-free run")
        return 1
    fatal = [failure for failure in runner.last_failures if not failure.recovered]
    if fatal:
        print(f"FAIL: {len(fatal)} incident(s) were not recovered")
        return 1
    print("OK: bit-identical to the fault-free run; every incident recovered")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
