#!/usr/bin/env python
"""Seeded chaos drill for the supervised grid runner (the CI chaos gate).

Thin compatibility shim over ``repro chaos`` (see
:mod:`repro.resilience.drill` for the schedules and the acceptance bar).
Every flag is forwarded, so the historical CI invocation keeps working::

    PYTHONPATH=src python scripts/chaos_check.py --seed 13
    PYTHONPATH=src python scripts/chaos_check.py --seed 13 --backend both
"""

from __future__ import annotations

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["chaos", *sys.argv[1:]]))
