#!/usr/bin/env python
"""Thin shim over ``repro bench compare`` (kept for CI muscle memory).

The gate itself lives in :mod:`repro.experiments.bench`; this script just
forwards its arguments so existing invocations keep working::

    python scripts/bench_compare.py bench_ci.json
    python scripts/bench_compare.py bench_ci.json --baseline BENCH_engine.json
"""

from __future__ import annotations

import sys
from pathlib import Path

if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.cli import main

    sys.exit(main(["bench", "compare", *sys.argv[1:]]))
