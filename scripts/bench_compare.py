#!/usr/bin/env python
"""Gate CI on the checked-in bench snapshot: fail on speedup regressions.

Compares a freshly generated snapshot (``scripts/bench_snapshot.py
--output bench_ci.json``) against the committed ``BENCH_engine.json``
baseline.  The guarded metrics are the engine tiers' headline speedups —
ratios of two wall times measured in the same process, so they are far
more stable across runner hardware than the raw walls:

* ``grid.wpa_sweep_16.batch_speedup`` — batched vs per-cell replay;
* ``grid.wpa_sweep_256.differential_speedup`` — delta-driven vs batched
  replay;
* ``grid.wpa_sweep_256_pruned.pruned_fraction`` — the share of the
  256-point sweep the static pruning certificate collapses.  Not a wall
  time at all: the certificate is derived purely from the layout, so the
  fraction is deterministic and any drop means the analysis got weaker.

A guarded speedup may drift or improve freely; dropping more than
``--tolerance`` (default 20%) below the baseline fails the gate.  A metric
missing from the *current* snapshot also fails (a silently skipped bench
must not pass the gate); one missing from the *baseline* is reported and
skipped, so the gate can be introduced before the baseline carries every
metric.

Usage::

    python scripts/bench_compare.py bench_ci.json
    python scripts/bench_compare.py bench_ci.json --baseline BENCH_engine.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: (metric name, ratio field) pairs the gate guards.
GUARDED = [
    ("grid.wpa_sweep_16", "batch_speedup"),
    ("grid.wpa_sweep_256", "differential_speedup"),
    ("grid.wpa_sweep_256_pruned", "pruned_fraction"),
]


def load_metrics(path: Path) -> dict:
    try:
        snapshot = json.loads(path.read_text())
    except OSError as error:
        raise SystemExit(f"cannot read snapshot {path}: {error}")
    except ValueError as error:
        raise SystemExit(f"snapshot {path} is not valid JSON: {error}")
    metrics = snapshot.get("metrics")
    if not isinstance(metrics, dict):
        raise SystemExit(f"snapshot {path} has no 'metrics' block")
    return metrics


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly generated snapshot to check")
    parser.add_argument(
        "--baseline",
        default=str(REPO_ROOT / "BENCH_engine.json"),
        help="checked-in snapshot to compare against (default: BENCH_engine.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional speedup drop before failing (default: 0.20)",
    )
    args = parser.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")

    current = load_metrics(Path(args.current))
    baseline = load_metrics(Path(args.baseline))

    failures = []
    for metric, field in GUARDED:
        reference = baseline.get(metric, {}).get(field)
        if reference is None:
            print(f"SKIP {metric}.{field}: not in baseline {args.baseline}")
            continue
        measured = current.get(metric, {}).get(field)
        if measured is None:
            failures.append(
                f"{metric}.{field}: missing from {args.current} "
                f"(baseline has {reference})"
            )
            continue
        floor = reference * (1.0 - args.tolerance)
        verdict = "FAIL" if measured < floor else "ok"
        print(
            f"{verdict:4} {metric}.{field}: {measured:.2f}x vs baseline "
            f"{reference:.2f}x (floor {floor:.2f}x)"
        )
        if measured < floor:
            failures.append(
                f"{metric}.{field}: {measured:.2f}x is more than "
                f"{args.tolerance:.0%} below the baseline {reference:.2f}x"
            )

    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("bench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
