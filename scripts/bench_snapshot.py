#!/usr/bin/env python
"""Run the engine/throughput benches and snapshot the numbers.

Executes ``benchmarks/test_bench_engine.py`` (kernel speedup, the batched
16-point WPA sweep, warm-cache startup) with ``$REPRO_BENCH_JSON`` pointed
at a scratch file, then assembles ``BENCH_engine.json`` at the repository
root: replay events/sec per engine, grid wall time per engine, and the
batch speedup, plus enough environment metadata to compare snapshots
across machines.  The file is meant to be checked in, so the bench
trajectory of the repository is visible in history.

Usage::

    python scripts/bench_snapshot.py            # writes BENCH_engine.json
    python scripts/bench_snapshot.py --output somewhere/else.json
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILES = ["benchmarks/test_bench_engine.py"]


def run_benches(metrics_path: Path) -> int:
    env = dict(os.environ)
    env["REPRO_BENCH_JSON"] = str(metrics_path)
    env.setdefault("PYTHONPATH", str(REPO_ROOT / "src"))
    command = [
        sys.executable,
        "-m",
        "pytest",
        "-q",
        "-p",
        "no:cacheprovider",
        *BENCH_FILES,
    ]
    print("+", " ".join(command), flush=True)
    return subprocess.call(command, cwd=REPO_ROOT, env=env)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_engine.json"),
        help="where to write the snapshot (default: BENCH_engine.json)",
    )
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as scratch:
        metrics_path = Path(scratch) / "metrics.json"
        status = run_benches(metrics_path)
        if status != 0:
            print(f"benches failed (exit {status}); no snapshot written")
            return status
        try:
            metrics = json.loads(metrics_path.read_text())
        except (OSError, ValueError):
            print("benches wrote no metrics; is record_metric wired up?")
            return 1

    import numpy

    snapshot = {
        "generated": datetime.datetime.now(datetime.timezone.utc)
        .replace(microsecond=0)
        .isoformat(),
        "environment": {
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "metrics": metrics,
    }
    output = Path(args.output)
    output.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
