#!/usr/bin/env python
"""Run the engine/throughput benches and snapshot the numbers.

Executes ``benchmarks/test_bench_engine.py`` (kernel speedup, the batched
16-point WPA sweep, the differential 256-point sweep, warm-cache startup)
with ``$REPRO_BENCH_JSON`` pointed at a scratch file, then assembles
``BENCH_engine.json`` at the repository root: replay events/sec per
engine, grid wall time per engine, and the batch/differential speedups,
plus enough environment metadata to compare snapshots across machines.
Wall times are best-of-N (``--repeats``, default 3) so the checked-in
speedup claims aren't single-run noise; N is recorded in the snapshot's
``environment`` block.  The file is meant to be checked in, so the bench
trajectory of the repository is visible in history — and
``scripts/bench_compare.py`` gates CI on it.

Usage::

    python scripts/bench_snapshot.py            # writes BENCH_engine.json
    python scripts/bench_snapshot.py --output somewhere/else.json --repeats 5
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILES = ["benchmarks/test_bench_engine.py"]


def run_benches(metrics_path: Path, repeats: int) -> int:
    env = dict(os.environ)
    env["REPRO_BENCH_JSON"] = str(metrics_path)
    env["REPRO_BENCH_REPEATS"] = str(repeats)
    env.setdefault("PYTHONPATH", str(REPO_ROOT / "src"))
    command = [
        sys.executable,
        "-m",
        "pytest",
        "-q",
        "-p",
        "no:cacheprovider",
        *BENCH_FILES,
    ]
    print("+", " ".join(command), flush=True)
    return subprocess.call(command, cwd=REPO_ROOT, env=env)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_engine.json"),
        help="where to write the snapshot (default: BENCH_engine.json)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="best-of-N wall times per metric (default: 3; recorded in the "
        "snapshot's environment block)",
    )
    args = parser.parse_args()
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    with tempfile.TemporaryDirectory() as scratch:
        metrics_path = Path(scratch) / "metrics.json"
        status = run_benches(metrics_path, args.repeats)
        if status != 0:
            print(f"benches failed (exit {status}); no snapshot written")
            return status
        try:
            metrics = json.loads(metrics_path.read_text())
        except (OSError, ValueError):
            print("benches wrote no metrics; is record_metric wired up?")
            return 1

    import numpy

    snapshot = {
        "generated": datetime.datetime.now(datetime.timezone.utc)
        .replace(microsecond=0)
        .isoformat(),
        "environment": {
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "machine": platform.machine(),
            "system": platform.system(),
            "bench_repeats": args.repeats,
        },
        "metrics": metrics,
    }
    output = Path(args.output)
    output.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
