"""Fetch-scheme interface and factory."""

from __future__ import annotations

from typing import Callable, Dict

from repro.cache.access import FetchCounters
from repro.cache.geometry import CacheGeometry
from repro.errors import SchemeError
from repro.trace.events import LineEventTrace

__all__ = ["FetchScheme", "make_scheme", "SCHEME_NAMES"]


class FetchScheme:
    """A fetch pipeline front end driving one instruction cache.

    Two driving styles:

    * :meth:`run` — one-shot over a whole trace (the experiment harness);
      a scheme may only ``run`` once, keeping experiment runs independent.
    * :meth:`feed` — incremental: segments of a trace may be fed one after
      another, with cache/predictor state (and counters) carried across
      segments.  This is what the adaptive-WPA controller uses to change
      configuration *between* segments, modelling an OS intervening during
      execution.
    """

    #: Short machine-readable scheme name; subclasses override.
    name = "abstract"

    def __init__(self, geometry: CacheGeometry):
        self.geometry = geometry
        self.counters = FetchCounters()
        self._ran = False

    def feed(self, events: LineEventTrace) -> FetchCounters:
        """Process one trace segment, accumulating into ``counters``."""
        if events.line_size != self.geometry.line_size:
            raise SchemeError(
                f"trace line size {events.line_size} does not match cache "
                f"line size {self.geometry.line_size}"
            )
        self._process(events)
        return self.counters

    def run(self, events: LineEventTrace) -> FetchCounters:
        """Process the whole trace and return the validated counters."""
        if self._ran:
            raise SchemeError(
                f"scheme {self.name!r} already ran; construct a fresh instance"
            )
        self._ran = True
        self.feed(events)
        self.counters.validate()
        return self.counters

    def _process(self, events: LineEventTrace) -> None:
        raise NotImplementedError


_REGISTRY: Dict[str, Callable[..., FetchScheme]] = {}


def register_scheme(name: str):
    """Class decorator registering a scheme under ``name``."""

    def decorate(cls):
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorate


def make_scheme(name: str, geometry: CacheGeometry, **options) -> FetchScheme:
    """Instantiate a registered scheme by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise SchemeError(
            f"unknown scheme {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(geometry, **options)


def SCHEME_NAMES():
    """Names of all registered schemes."""
    return sorted(_REGISTRY)
