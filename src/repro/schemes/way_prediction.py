"""MRU way prediction (Inoue et al., ISLPED'99) — related-work baseline.

Each set remembers its most-recently-used way.  A fetch first probes only
that way; on a mispredict a second, all-ways access runs with a one-cycle
penalty.  Unlike way-placement the first probe is a *guess*, so both the
misprediction energy and the recovery cycle show up on hot code too.
Included for the related-work ablation bench (the paper discusses but does
not plot this scheme).
"""

from __future__ import annotations

from repro.cache.cam_cache import CamCache
from repro.cache.geometry import CacheGeometry
from repro.cache.itlb import InstructionTlb
from repro.schemes.base import FetchScheme, register_scheme
from repro.trace.events import LineEventTrace

__all__ = ["WayPredictionScheme"]


@register_scheme("way-prediction")
class WayPredictionScheme(FetchScheme):
    """Predict-first-probe fetch with per-set MRU way prediction."""

    def __init__(
        self,
        geometry: CacheGeometry,
        itlb_entries: int = 32,
        page_size: int = 1024,
        same_line_skip: bool = True,
    ):
        super().__init__(geometry)
        self.cache = CamCache(geometry)
        self.itlb = InstructionTlb(itlb_entries, page_size)
        self.same_line_skip = same_line_skip
        self._mru = [0] * geometry.num_sets

    def _process(self, events: LineEventTrace) -> None:
        geometry = self.geometry
        cache = self.cache
        itlb = self.itlb
        counters = self.counters
        itlb_seen = itlb.hits + itlb.misses
        itlb_miss_seen = itlb.misses
        mru = self._mru

        ways = geometry.ways
        offset_bits = geometry.offset_bits
        set_mask = geometry.num_sets - 1
        tag_shift = offset_bits + geometry.set_bits
        skip = self.same_line_skip

        fetches = line_events = 0
        full_searches = single_way = ways_precharged = 0
        hits = misses = fills = evictions = 0
        second_accesses = extra_cycles = same_line = 0

        find = cache.find
        probe_way = cache.probe_way
        fill = cache.fill
        tlb_access = itlb.access

        for addr, count in zip(events.line_addrs.tolist(), events.counts.tolist()):
            line_events += 1
            fetches += count
            tlb_access(addr)

            set_index = (addr >> offset_bits) & set_mask
            tag = addr >> tag_shift

            predicted = mru[set_index]
            single_way += 1
            ways_precharged += 1
            if probe_way(set_index, predicted, tag):
                hits += 1
                way = predicted
            else:
                # Mispredict: second access searches every way (+1 cycle).
                second_accesses += 1
                extra_cycles += 1
                full_searches += 1
                ways_precharged += ways
                way = find(set_index, tag)
                if way >= 0:
                    hits += 1
                else:
                    misses += 1
                    way, evicted = fill(set_index, tag)
                    fills += 1
                    if evicted:
                        evictions += 1
            mru[set_index] = way

            if skip:
                same_line += count - 1
            else:
                single_way += count - 1
                ways_precharged += count - 1

        counters.fetches += fetches
        counters.line_events += line_events
        counters.same_line_fetches += same_line
        counters.full_searches += full_searches
        counters.single_way_searches += single_way
        counters.ways_precharged += ways_precharged
        counters.hits += hits
        counters.misses += misses
        counters.fills += fills
        counters.evictions += evictions
        counters.second_accesses += second_accesses
        counters.extra_access_cycles += extra_cycles
        counters.itlb_accesses += itlb.hits + itlb.misses - itlb_seen
        counters.itlb_misses += itlb.misses - itlb_miss_seen
