"""Instruction-fetch schemes: the designs compared in the paper.

Every scheme consumes a :class:`~repro.trace.events.LineEventTrace` and
produces :class:`~repro.cache.access.FetchCounters` describing its physical
activity.  Available schemes:

* ``baseline``        — conventional CAM cache, full search every fetch.
* ``way-placement``   — the paper's proposal (Sections 3-4).
* ``way-memoization`` — Ma et al.'s hardware links (the paper's comparator).
* ``way-prediction``  — Inoue et al.'s MRU predictor (related work).
* ``filter-cache``    — Kin et al.'s L0 buffer (related work).
* ``scratchpad``      — Ravindran et al.'s compiler-managed SPM (related work).
"""

from repro.schemes.base import FetchScheme, make_scheme, SCHEME_NAMES
from repro.schemes.baseline import BaselineScheme
from repro.schemes.way_placement import WayPlacementScheme
from repro.schemes.way_memoization import WayMemoizationScheme
from repro.schemes.way_prediction import WayPredictionScheme
from repro.schemes.filter_cache import FilterCacheScheme
from repro.schemes.scratchpad import ScratchpadScheme, select_spm_contents
from repro.schemes.adaptive import AdaptiveWpaController, AdaptiveRun

__all__ = [
    "FetchScheme",
    "make_scheme",
    "SCHEME_NAMES",
    "BaselineScheme",
    "WayPlacementScheme",
    "WayMemoizationScheme",
    "WayPredictionScheme",
    "FilterCacheScheme",
    "ScratchpadScheme",
    "select_spm_contents",
    "AdaptiveWpaController",
    "AdaptiveRun",
]
