"""Adaptive way-placement-area sizing during execution.

The paper (Section 4.1): the operating system can pick the way-placement
area "either on a static or per-program basis, even adjusting it during
program execution".  This module implements the *during execution* part:
an OS-level controller that feeds the fetch stream to a way-placement
scheme in windows, measures each candidate area size during a short trial
phase, then locks in the best — and keeps monitoring, re-trialling if the
observed cost drifts (a program phase change).

Resizing the area means rewriting per-page way-placement bits.  Lines
filled under the *old* mapping may then sit in ways the *new* mapping does
not expect, which would break the single-tag-check guarantee, so the
controller flushes the instruction cache on every resize — exactly what an
OS would do when repartitioning, and the cost (refill misses) is charged
through the ordinary counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cache.access import FetchCounters
from repro.cache.geometry import CacheGeometry
from repro.errors import SchemeError
from repro.schemes.way_placement import WayPlacementScheme
from repro.trace.events import LineEventTrace

__all__ = ["AdaptiveWpaController", "AdaptiveRun", "WindowRecord"]


@dataclass(frozen=True)
class WindowRecord:
    """What the controller saw during one window."""

    wpa_size: int
    fetches: int
    score: float  # estimated tag-path cost per fetch (lower is better)
    phase: str  # 'trial' or 'locked'


@dataclass(frozen=True)
class AdaptiveRun:
    """Outcome of an adaptive run."""

    counters: FetchCounters
    chosen_wpa: int
    history: Tuple[WindowRecord, ...]
    resizes: int

    @property
    def trial_windows(self) -> int:
        return sum(1 for record in self.history if record.phase == "trial")


class AdaptiveWpaController:
    """Trial-then-lock controller over a way-placement scheme."""

    def __init__(
        self,
        geometry: CacheGeometry,
        candidate_sizes: Sequence[int],
        page_size: int = 1024,
        itlb_entries: int = 32,
        window_events: int = 2048,
        trial_window_events: Optional[int] = None,
        miss_weight: Optional[float] = None,
        retrial_threshold: float = 2.5,
        retrial_patience: int = 3,
        trial_rounds: int = 2,
    ):
        """``trial_window_events`` (default: an eighth of ``window_events``)
        keeps the measurement phase short — a bad candidate only has to be
        endured long enough to score it.  ``trial_rounds`` visits each
        candidate that many times round-robin, averaging out window noise
        before committing."""
        candidates = sorted(set(candidate_sizes))
        if not candidates:
            raise SchemeError("adaptive controller needs candidate WPA sizes")
        for candidate in candidates:
            if candidate < 0 or candidate % page_size:
                raise SchemeError(
                    f"candidate {candidate} is not a non-negative page multiple"
                )
        if window_events < 1:
            raise SchemeError("window_events must be positive")
        self.geometry = geometry
        self.candidates = candidates
        self.window_events = window_events
        self.trial_window_events = (
            trial_window_events
            if trial_window_events is not None
            else max(128, window_events // 8)
        )
        if self.trial_window_events < 1:
            raise SchemeError("trial_window_events must be positive")
        if trial_rounds < 1:
            raise SchemeError("trial_rounds must be at least one")
        self.trial_rounds = trial_rounds
        # a miss costs roughly a refill search plus the fill; weigh it like
        # one full search unless told otherwise
        self.miss_weight = float(geometry.ways if miss_weight is None else miss_weight)
        self.retrial_threshold = retrial_threshold
        if retrial_patience < 1:
            raise SchemeError("retrial_patience must be at least one window")
        self.retrial_patience = retrial_patience
        self.scheme = WayPlacementScheme(
            geometry,
            wpa_size=candidates[0],
            page_size=page_size,
            itlb_entries=itlb_entries,
        )

    # ------------------------------------------------------------------
    def _resize(self, wpa_size: int) -> None:
        self.scheme.itlb.set_wpa_size(wpa_size)
        self.scheme.wpa_size = wpa_size
        # Repartitioning invalidates the mapping of already-resident lines.
        self.scheme.cache.invalidate_all()

    def _score(self, before: FetchCounters, after: FetchCounters) -> float:
        fetches = after.fetches - before.fetches
        if fetches == 0:
            return 0.0
        precharged = after.ways_precharged - before.ways_precharged
        misses = after.misses - before.misses
        return (precharged + self.miss_weight * misses) / fetches


    def run(self, events: LineEventTrace) -> AdaptiveRun:
        """Process the whole trace, adapting the WPA size between windows."""
        import copy

        scheme = self.scheme
        history: List[WindowRecord] = []
        resizes = 0

        num_events = events.num_events
        window = self.window_events
        candidates = self.candidates

        trial_scores = {}
        trial_queue = list(candidates) * self.trial_rounds
        locked_size: Optional[int] = None
        locked_score: Optional[float] = None
        bad_windows = 0

        position = 0
        current = candidates[0]
        self._resize(current)
        resizes += 1

        while position < num_events:
            current_window = (
                self.trial_window_events if locked_size is None else window
            )
            segment = events.segment(
                position, min(position + current_window, num_events)
            )
            position += segment.num_events
            before = copy.copy(scheme.counters)
            scheme.feed(segment)
            score = self._score(before, scheme.counters)

            if locked_size is None:
                trial_scores[current] = trial_scores.get(current, 0.0) + score
                history.append(
                    WindowRecord(current, scheme.counters.fetches, score, "trial")
                )
                trial_queue.pop(0)
                if trial_queue:
                    if trial_queue[0] != current:
                        current = trial_queue[0]
                        self._resize(current)
                        resizes += 1
                else:
                    locked_size = min(trial_scores, key=trial_scores.get)
                    locked_score = trial_scores[locked_size] / self.trial_rounds
                    if locked_size != current:
                        current = locked_size
                        self._resize(current)
                        resizes += 1
            else:
                history.append(
                    WindowRecord(current, scheme.counters.fetches, score, "locked")
                )
                # Track the typical locked-phase cost with an exponential
                # moving average; trial windows include cold-refill noise,
                # so the EMA settles well below the trial score.
                locked_score = (
                    score
                    if locked_score is None
                    else 0.7 * locked_score + 0.3 * score
                )
                # phase change: the locked size stopped working — only
                # re-trial after several consecutive bad windows, since a
                # re-trial flushes the cache and is itself expensive
                if locked_score > 0 and score > self.retrial_threshold * locked_score:
                    bad_windows += 1
                else:
                    bad_windows = 0
                if bad_windows >= self.retrial_patience:
                    locked_size = None
                    locked_score = None
                    bad_windows = 0
                    trial_scores = {}
                    trial_queue = list(candidates)
                    current = trial_queue[0]
                    self._resize(current)
                    resizes += 1

        scheme.counters.validate()
        return AdaptiveRun(
            counters=scheme.counters,
            chosen_wpa=locked_size if locked_size is not None else current,
            history=tuple(history),
            resizes=resizes,
        )
