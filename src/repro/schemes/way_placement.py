"""The paper's way-placement fetch scheme (Sections 3-4).

Accesses inside the way-placement area (the first ``wpa_size`` bytes of the
binary) check a single, address-mandated way; everything else performs the
normal full CAM search.  Because the I-TLB (which holds the per-page
way-placement bit) is read in parallel with the cache, a single *way-hint
bit* — "was the previous access in the WPA?" — predicts which access type to
start; mispredictions are handled exactly as the paper describes:

* hint said non-WPA but the access was WPA: full search anyway; we only
  lose the energy saving.
* hint said WPA but the access was not: the one-way probe is useless, so a
  second all-ways access runs with a one-cycle penalty; both accesses'
  energy is charged.

Invariant maintained by construction: a WPA line is only ever resident in
its mandated way (WPA fills are forced there), so the single-way check is
*correct*, never just a guess.  Fetches to the same line as the previous
fetch skip tag checks entirely (the Section 4.2 optimisation).
"""

from __future__ import annotations

from repro.cache.cam_cache import CamCache
from repro.cache.geometry import CacheGeometry
from repro.cache.itlb import InstructionTlb
from repro.cache.wayhint import WayHintBit
from repro.errors import SchemeError
from repro.schemes.base import FetchScheme, register_scheme
from repro.trace.events import LineEventTrace
from repro.utils.bitops import mask

__all__ = ["WayPlacementScheme"]


@register_scheme("way-placement")
class WayPlacementScheme(FetchScheme):
    """Compiler-controlled explicit way placement."""

    def __init__(
        self,
        geometry: CacheGeometry,
        wpa_size: int = 0,
        itlb_entries: int = 32,
        page_size: int = 1024,
        same_line_skip: bool = True,
        wpa_base: int = 0,
        hint_initial: bool = False,
    ):
        super().__init__(geometry)
        if wpa_size < 0:
            raise SchemeError(f"way-placement area size must be >= 0, got {wpa_size}")
        if wpa_base != 0:
            raise SchemeError(
                "the way-placement area must start at the beginning of the "
                "binary (address 0 in this model)"
            )
        self.cache = CamCache(geometry)
        self.itlb = InstructionTlb(itlb_entries, page_size, wpa_size=wpa_size)
        self.hint = WayHintBit(initial=hint_initial)
        self.wpa_size = wpa_size
        self.same_line_skip = same_line_skip

    def _process(self, events: LineEventTrace) -> None:
        geometry = self.geometry
        cache = self.cache
        itlb = self.itlb
        hint = self.hint
        counters = self.counters
        itlb_seen = itlb.hits + itlb.misses
        itlb_miss_seen = itlb.misses
        fp_seen = hint.false_positives
        fn_seen = hint.false_negatives

        ways = geometry.ways
        offset_bits = geometry.offset_bits
        set_mask = geometry.num_sets - 1
        tag_shift = offset_bits + geometry.set_bits
        way_mask = mask(geometry.way_bits)
        skip = self.same_line_skip

        fetches = line_events = 0
        full_searches = single_way = ways_precharged = 0
        hits = misses = fills = wp_fills = evictions = 0
        second_accesses = extra_cycles = same_line = 0

        find = cache.find
        probe_way = cache.probe_way
        fill = cache.fill
        tlb_access = itlb.access
        predict = hint.predict
        update = hint.update

        for addr, count in zip(events.line_addrs.tolist(), events.counts.tolist()):
            line_events += 1
            fetches += count

            actual_wpa = tlb_access(addr)  # the way-placement bit (False if wpa_size == 0)
            predicted_wpa = predict()
            set_index = (addr >> offset_bits) & set_mask
            tag = addr >> tag_shift

            if predicted_wpa and actual_wpa:
                # Correct way-placement access: one way precharged.
                way = tag & way_mask
                single_way += 1
                ways_precharged += 1
                if probe_way(set_index, way, tag):
                    hits += 1
                else:
                    misses += 1
                    _, evicted = fill(set_index, tag, way=way)
                    fills += 1
                    wp_fills += 1
                    if evicted:
                        evictions += 1
            elif predicted_wpa and not actual_wpa:
                # False positive: wasted one-way probe, then a second
                # corrective full access (+1 cycle).
                single_way += 1
                ways_precharged += 1
                second_accesses += 1
                extra_cycles += 1
                full_searches += 1
                ways_precharged += ways
                way = find(set_index, tag)
                if way >= 0:
                    hits += 1
                else:
                    misses += 1
                    _, evicted = fill(set_index, tag)
                    fills += 1
                    if evicted:
                        evictions += 1
            else:
                # Hint says (or truth is) non-WPA: full search.  When the
                # access *was* WPA (false negative) the line, if resident,
                # is still found — just without the energy saving — and a
                # miss still fills the mandated way (the way-placement bit
                # is known by then from the parallel I-TLB read).
                full_searches += 1
                ways_precharged += ways
                way = find(set_index, tag)
                if way >= 0:
                    hits += 1
                else:
                    misses += 1
                    if actual_wpa:
                        _, evicted = fill(set_index, tag, way=tag & way_mask)
                        wp_fills += 1
                    else:
                        _, evicted = fill(set_index, tag)
                    fills += 1
                    if evicted:
                        evictions += 1

            update(actual_wpa)

            if skip:
                same_line += count - 1
            elif actual_wpa:
                # Without the same-line skip, fetches that stay inside a
                # way-placed line still know their way exactly: each is a
                # single-way access, not a full search.
                single_way += count - 1
                ways_precharged += count - 1
            else:
                full_searches += count - 1
                ways_precharged += ways * (count - 1)

        counters.fetches += fetches
        counters.line_events += line_events
        counters.same_line_fetches += same_line
        counters.full_searches += full_searches
        counters.single_way_searches += single_way
        counters.ways_precharged += ways_precharged
        counters.hits += hits
        counters.misses += misses
        counters.fills += fills
        counters.wp_fills += wp_fills
        counters.evictions += evictions
        counters.second_accesses += second_accesses
        counters.hint_false_positives += hint.false_positives - fp_seen
        counters.hint_false_negatives += hint.false_negatives - fn_seen
        counters.extra_access_cycles += extra_cycles
        counters.itlb_accesses += itlb.hits + itlb.misses - itlb_seen
        counters.itlb_misses += itlb.misses - itlb_miss_seen
