"""Way-memoization (Ma et al., WCED'01) — the paper's hardware comparator.

Each cache line is augmented with *links*: one per instruction slot (the way
of that slot's taken-branch target line) plus one sequential link (the way
of the next sequential line) — 9 links of 6 bits for a 32-byte line in a
32-way cache, a 21% overhead on the data array that the energy model prices
on every fill and read.

When the fetch stream crosses into a new line, the link belonging to the
crossing (source line, source slot) is consulted: if valid, the target line
is accessed directly with *no* tag search; otherwise a full search runs and
the link is written for next time.

Link validity is tracked exactly via line generations: a link is valid iff
neither endpoint line has been replaced since the link was written *and* the
memoized target is the line the stream actually wants.  For direct branches
and sequential flow the target of a given (line, slot) is unique, so the
last condition only bites for return instructions (whose targets vary by
call site) — real hardware does not link those, and this model naturally
degrades to full searches when call sites alternate.  Accesses within the
same line as the previous fetch skip tag checks, as in the original scheme.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.cache.cam_cache import CamCache
from repro.cache.geometry import CacheGeometry
from repro.cache.itlb import InstructionTlb
from repro.errors import SchemeError
from repro.schemes.base import FetchScheme, register_scheme
from repro.trace.events import LineEventTrace, SEQUENTIAL_SLOT

__all__ = ["WayMemoizationScheme", "LINK_BITS"]

#: Bits per link: way index (5 for 32 ways) + valid bit, per the paper's
#: "each link is 6 bits" on the 32KB 32-way cache.  The energy model derives
#: the actual width from the geometry; this is the reference constant.
LINK_BITS = 6


@register_scheme("way-memoization")
class WayMemoizationScheme(FetchScheme):
    """Tag-check elision through per-line next-way links."""

    def __init__(
        self,
        geometry: CacheGeometry,
        itlb_entries: int = 32,
        page_size: int = 1024,
        same_line_skip: bool = True,
        invalidation: str = "exact",
    ):
        """``invalidation`` selects the link-staleness policy:

        * ``"exact"`` (default) — links go stale only when an endpoint line
          is actually replaced; the optimistic rendering (it requires
          reverse pointers real hardware would not have).
        * ``"flash"`` — any fill clears *every* link; the cheapest
          implementable hardware policy, pessimistic under miss traffic.
        """
        super().__init__(geometry)
        if invalidation not in ("exact", "flash"):
            raise SchemeError(
                f"invalidation must be 'exact' or 'flash', got {invalidation!r}"
            )
        self.cache = CamCache(geometry)
        self.itlb = InstructionTlb(itlb_entries, page_size)
        self.same_line_skip = same_line_skip
        self.invalidation = invalidation
        #: (src_set, src_way, slot_code) ->
        #:     (src_gen, dst_set, dst_way, dst_gen, dst_tag)
        self._links: Dict[Tuple[int, int, int], Tuple[int, int, int, int, int]] = {}
        # Identity of the line the stream is currently fetching from;
        # persists across feed() segments.
        self._prev_set = -1
        self._prev_way = -1
        self._prev_gen = -1

    @property
    def links_per_line(self) -> int:
        """Instruction slots plus the sequential link (9 for 32B lines)."""
        return self.geometry.instructions_per_line + 1

    def _process(self, events: LineEventTrace) -> None:
        geometry = self.geometry
        cache = self.cache
        itlb = self.itlb
        counters = self.counters
        itlb_seen = itlb.hits + itlb.misses
        itlb_miss_seen = itlb.misses
        links = self._links

        ways = geometry.ways
        offset_bits = geometry.offset_bits
        set_mask = geometry.num_sets - 1
        tag_shift = offset_bits + geometry.set_bits
        seq_code = geometry.instructions_per_line  # slot codes 0..ipl-1 are branches
        skip = self.same_line_skip
        flash = self.invalidation == "flash"

        fetches = line_events = 0
        full_searches = link_followed = ways_precharged = 0
        hits = misses = fills = evictions = link_writes = same_line = 0

        find = cache.find
        fill = cache.fill
        generation = cache.generation
        tlb_access = itlb.access

        prev_set = self._prev_set
        prev_way = self._prev_way
        prev_gen = self._prev_gen

        for addr, count, slot in zip(
            events.line_addrs.tolist(),
            events.counts.tolist(),
            events.slots.tolist(),
        ):
            line_events += 1
            fetches += count
            tlb_access(addr)

            set_index = (addr >> offset_bits) & set_mask
            tag = addr >> tag_shift
            slot_code = seq_code if slot == SEQUENTIAL_SLOT else slot

            way = -1
            linked = False
            key = None
            if prev_set >= 0:
                key = (prev_set, prev_way, slot_code)
                entry = links.get(key)
                if entry is not None:
                    src_gen, dst_set, dst_way, dst_gen, dst_tag = entry
                    if (
                        src_gen == prev_gen
                        and dst_set == set_index
                        and dst_tag == tag
                        and generation(dst_set, dst_way) == dst_gen
                    ):
                        way = dst_way
                        linked = True

            if linked:
                link_followed += 1
                hits += 1
            else:
                full_searches += 1
                ways_precharged += ways
                way = find(set_index, tag)
                if way >= 0:
                    hits += 1
                else:
                    misses += 1
                    way, evicted = fill(set_index, tag)
                    fills += 1
                    if evicted:
                        evictions += 1
                    if flash:
                        links.clear()  # the fill wipes every link
                if key is not None:
                    links[key] = (prev_gen, set_index, way, generation(set_index, way), tag)
                    link_writes += 1

            if skip:
                same_line += count - 1
            else:
                full_searches += count - 1
                ways_precharged += ways * (count - 1)

            prev_set = set_index
            prev_way = way
            prev_gen = generation(set_index, way)

        self._prev_set = prev_set
        self._prev_way = prev_way
        self._prev_gen = prev_gen

        counters.fetches += fetches
        counters.line_events += line_events
        counters.same_line_fetches += same_line
        counters.full_searches += full_searches
        counters.link_followed += link_followed
        counters.ways_precharged += ways_precharged
        counters.hits += hits
        counters.misses += misses
        counters.fills += fills
        counters.evictions += evictions
        counters.link_writes += link_writes
        counters.itlb_accesses += itlb.hits + itlb.misses - itlb_seen
        counters.itlb_misses += itlb.misses - itlb_miss_seen
