"""Compiler-managed scratchpad code memory (Ravindran et al., CGO'05).

The related-work alternative the paper calls out: instead of steering cache
accesses, copy the hottest code into a small scratchpad memory (SPM) whose
accesses need no tag check at all.  The compiler selects the contents from
the profile; everything else goes through the normal CAM instruction cache.

This is the *static* variant (contents chosen once per program).  The
dynamic-reconfiguration machinery of the original — copying code in and out
at run time — is exactly the overhead the paper's criticism points at
("requires a scratchpad memory to be provided in the processor and would
generally only apply to loops"), so the static model is the generous
rendering of the competing idea.

Selection (:func:`select_spm_contents`) is a greedy knapsack over the
layout's chains by executed-instruction density, the standard SPM
allocation heuristic.
"""

from __future__ import annotations

from typing import List, Mapping, Set, Tuple

from repro.cache.cam_cache import CamCache
from repro.cache.geometry import CacheGeometry
from repro.cache.itlb import InstructionTlb
from repro.errors import SchemeError
from repro.layout.chains import build_chains
from repro.layout.layouts import Layout
from repro.program.program import Program
from repro.schemes.base import FetchScheme, register_scheme
from repro.trace.events import LineEventTrace

__all__ = ["ScratchpadScheme", "select_spm_contents"]


def select_spm_contents(
    program: Program,
    layout: Layout,
    block_counts: Mapping[int, int],
    spm_size: int,
    line_size: int = 32,
) -> Set[int]:
    """Choose the SPM-resident *line addresses* (greedy density knapsack).

    Chains are the allocation unit (a chain's internal fall-throughs must
    stay intact when copied); chains are ranked by executed instructions
    per byte and packed until the scratchpad is full.
    """
    if spm_size < 0:
        raise SchemeError(f"scratchpad size must be >= 0, got {spm_size}")
    chains = build_chains(program)
    weights = {
        block.uid: block_counts.get(block.uid, 0) * block.num_instructions
        for block in program.blocks()
    }
    sizes = {block.uid: block.size_bytes for block in program.blocks()}

    def density(chain) -> float:
        size = sum(sizes[uid] for uid in chain.uids)
        return chain.weight(weights) / size if size else 0.0

    ranked = sorted(enumerate(chains), key=lambda ic: (-density(ic[1]), ic[0]))
    selected_lines: Set[int] = set()
    budget = spm_size
    line_mask = ~(line_size - 1)
    for _, chain in ranked:
        chain_size = sum(sizes[uid] for uid in chain.uids)
        if chain_size > budget:
            continue
        budget -= chain_size
        for uid in chain.uids:
            start = layout.address_of(uid)
            for offset in range(0, sizes[uid], 4):
                selected_lines.add((start + offset) & line_mask)
    return selected_lines


@register_scheme("scratchpad")
class ScratchpadScheme(FetchScheme):
    """Hot code in a tagless scratchpad, the rest in the CAM cache."""

    def __init__(
        self,
        geometry: CacheGeometry,
        spm_lines: Set[int] = frozenset(),
        itlb_entries: int = 32,
        page_size: int = 1024,
        same_line_skip: bool = True,
    ):
        super().__init__(geometry)
        self.cache = CamCache(geometry)
        self.itlb = InstructionTlb(itlb_entries, page_size)
        self.spm_lines = frozenset(spm_lines)
        self.same_line_skip = same_line_skip

    def _process(self, events: LineEventTrace) -> None:
        geometry = self.geometry
        cache = self.cache
        itlb = self.itlb
        counters = self.counters
        itlb_seen = itlb.hits + itlb.misses
        itlb_miss_seen = itlb.misses
        spm_lines = self.spm_lines

        ways = geometry.ways
        offset_bits = geometry.offset_bits
        set_mask = geometry.num_sets - 1
        tag_shift = offset_bits + geometry.set_bits
        skip = self.same_line_skip

        fetches = line_events = 0
        full_searches = ways_precharged = 0
        hits = misses = fills = evictions = 0
        spm_accesses = same_line = 0

        find = cache.find
        fill = cache.fill
        tlb_access = itlb.access

        for addr, count in zip(events.line_addrs.tolist(), events.counts.tolist()):
            line_events += 1
            fetches += count
            tlb_access(addr)

            if addr in spm_lines:
                spm_accesses += count  # tagless fetches, no cache involved
                continue

            set_index = (addr >> offset_bits) & set_mask
            tag = addr >> tag_shift
            way = find(set_index, tag)
            if way >= 0:
                hits += 1
            else:
                misses += 1
                _, evicted = fill(set_index, tag)
                fills += 1
                if evicted:
                    evictions += 1
            if skip:
                full_searches += 1
                ways_precharged += ways
                same_line += count - 1
            else:
                full_searches += count
                ways_precharged += ways * count

        counters.fetches += fetches
        counters.line_events += line_events
        counters.same_line_fetches += same_line
        counters.full_searches += full_searches
        counters.ways_precharged += ways_precharged
        counters.hits += hits
        counters.misses += misses
        counters.fills += fills
        counters.evictions += evictions
        counters.spm_accesses += spm_accesses
        counters.itlb_accesses += itlb.hits + itlb.misses - itlb_seen
        counters.itlb_misses += itlb.misses - itlb_miss_seen
