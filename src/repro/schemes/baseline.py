"""The unmodified baseline: full CAM search on every instruction fetch.

This is the paper's comparison point ("a baseline with no instruction cache
modification"): each fetch precharges and searches all ways of its set.  The
same-line skip belongs to the *proposed* schemes, not the baseline, but an
option exposes it for the stronger-baseline ablation bench.
"""

from __future__ import annotations

from repro.cache.cam_cache import CamCache
from repro.cache.geometry import CacheGeometry
from repro.cache.itlb import InstructionTlb
from repro.schemes.base import FetchScheme, register_scheme
from repro.trace.events import LineEventTrace

__all__ = ["BaselineScheme"]


@register_scheme("baseline")
class BaselineScheme(FetchScheme):
    """Conventional set-associative CAM instruction cache."""

    def __init__(
        self,
        geometry: CacheGeometry,
        itlb_entries: int = 32,
        page_size: int = 1024,
        same_line_skip: bool = False,
    ):
        super().__init__(geometry)
        self.cache = CamCache(geometry)
        self.itlb = InstructionTlb(itlb_entries, page_size)
        self.same_line_skip = same_line_skip

    def _process(self, events: LineEventTrace) -> None:
        geometry = self.geometry
        cache = self.cache
        itlb = self.itlb
        counters = self.counters
        itlb_seen = itlb.hits + itlb.misses
        itlb_miss_seen = itlb.misses
        ways = geometry.ways
        offset_bits = geometry.offset_bits
        set_mask = geometry.num_sets - 1
        tag_shift = offset_bits + geometry.set_bits
        skip = self.same_line_skip

        fetches = line_events = full_searches = ways_precharged = 0
        hits = misses = fills = evictions = same_line = 0

        find = cache.find
        fill = cache.fill
        tlb_access = itlb.access

        for addr, count in zip(events.line_addrs.tolist(), events.counts.tolist()):
            line_events += 1
            fetches += count
            tlb_access(addr)

            set_index = (addr >> offset_bits) & set_mask
            tag = addr >> tag_shift
            way = find(set_index, tag)
            if way >= 0:
                hits += 1
            else:
                misses += 1
                _, evicted = fill(set_index, tag)
                fills += 1
                if evicted:
                    evictions += 1
            if skip:
                # Only the transition fetch searches; the rest ride the line.
                full_searches += 1
                ways_precharged += ways
                same_line += count - 1
            else:
                full_searches += count
                ways_precharged += ways * count

        counters.fetches += fetches
        counters.line_events += line_events
        counters.same_line_fetches += same_line
        counters.full_searches += full_searches
        counters.ways_precharged += ways_precharged
        counters.hits += hits
        counters.misses += misses
        counters.fills += fills
        counters.evictions += evictions
        counters.itlb_accesses += itlb.hits + itlb.misses - itlb_seen
        counters.itlb_misses += itlb.misses - itlb_miss_seen
