"""Filter cache (Kin et al., MICRO'97) — related-work baseline.

A tiny direct-mapped L0 cache sits between the fetch unit and the L1
instruction cache.  Fetches that hit in the L0 never touch the L1 (cheap,
small-structure energy); L0 misses pay a one-cycle penalty plus a normal
full-search L1 access and refill the L0 line.  This is the "additional
buffer between CPU and instruction cache" family the paper's related-work
section contrasts against.
"""

from __future__ import annotations

from repro.cache.cam_cache import CamCache
from repro.cache.geometry import CacheGeometry
from repro.cache.itlb import InstructionTlb
from repro.errors import SchemeError
from repro.schemes.base import FetchScheme, register_scheme
from repro.trace.events import LineEventTrace
from repro.utils.bitops import is_power_of_two

__all__ = ["FilterCacheScheme"]


@register_scheme("filter-cache")
class FilterCacheScheme(FetchScheme):
    """Direct-mapped L0 filter cache in front of the CAM L1."""

    def __init__(
        self,
        geometry: CacheGeometry,
        l0_size: int = 512,
        itlb_entries: int = 32,
        page_size: int = 1024,
    ):
        super().__init__(geometry)
        if not is_power_of_two(l0_size) or l0_size < geometry.line_size:
            raise SchemeError(
                f"L0 size must be a power of two >= one line, got {l0_size}"
            )
        self.cache = CamCache(geometry)
        self.itlb = InstructionTlb(itlb_entries, page_size)
        self.l0_size = l0_size
        self._l0_lines = l0_size // geometry.line_size
        self._l0_tags = [-1] * self._l0_lines

    def _process(self, events: LineEventTrace) -> None:
        geometry = self.geometry
        cache = self.cache
        itlb = self.itlb
        counters = self.counters
        itlb_seen = itlb.hits + itlb.misses
        itlb_miss_seen = itlb.misses
        l0_tags = self._l0_tags
        l0_mask = self._l0_lines - 1

        ways = geometry.ways
        offset_bits = geometry.offset_bits
        set_mask = geometry.num_sets - 1
        tag_shift = offset_bits + geometry.set_bits

        fetches = line_events = 0
        full_searches = ways_precharged = 0
        hits = misses = fills = evictions = 0
        l0_accesses = l0_hits = l0_misses = extra_cycles = 0

        find = cache.find
        fill = cache.fill
        tlb_access = itlb.access

        for addr, count in zip(events.line_addrs.tolist(), events.counts.tolist()):
            line_events += 1
            fetches += count
            l0_accesses += count  # every fetch reads the L0
            tlb_access(addr)

            line_number = addr >> offset_bits
            l0_index = line_number & l0_mask
            if l0_tags[l0_index] == line_number:
                l0_hits += 1
                continue

            # L0 miss: one cycle penalty, full L1 access, refill the L0 line.
            l0_misses += 1
            extra_cycles += 1
            full_searches += 1
            ways_precharged += ways

            set_index = (addr >> offset_bits) & set_mask
            tag = addr >> tag_shift
            way = find(set_index, tag)
            if way >= 0:
                hits += 1
            else:
                misses += 1
                _, evicted = fill(set_index, tag)
                fills += 1
                if evicted:
                    evictions += 1
            l0_tags[l0_index] = line_number

        counters.fetches += fetches
        counters.line_events += line_events
        counters.full_searches += full_searches
        counters.ways_precharged += ways_precharged
        counters.hits += hits
        counters.misses += misses
        counters.fills += fills
        counters.evictions += evictions
        counters.l0_accesses += l0_accesses
        counters.l0_hits += l0_hits
        counters.l0_misses += l0_misses
        counters.extra_access_cycles += extra_cycles
        counters.itlb_accesses += itlb.hits + itlb.misses - itlb_seen
        counters.itlb_misses += itlb.misses - itlb_miss_seen
