"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list-benchmarks``
    The 23-benchmark suite with per-benchmark shape parameters.
``table1``
    Print the paper's Table 1 machine configuration.
``figure4`` / ``figure5`` / ``figure6``
    Regenerate a figure (optionally on a benchmark subset).
``simulate``
    Run one (benchmark, scheme, geometry, WPA) combination and print the
    normalised result plus the activity counters behind it.
``inspect``
    Show the compiler pass's work on one benchmark: chains, weights,
    prefix coverage.
``choose-wpa``
    Run the OS's way-placement-area selection policy.
``cache``
    Inspect or clear the persistent trace cache (see docs/performance.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.experiments.figures import figure4, figure5, figure6
from repro.experiments.formatting import render_table
from repro.experiments.runner import ExperimentRunner
from repro.layout.placement import LayoutPolicy
from repro.layout.wpa_select import choose_wpa_size
from repro.sim.machine import XSCALE_BASELINE, table1_rows
from repro.workloads.mibench import MIBENCH_BENCHMARKS, benchmark_names

KB = 1024

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Instruction Cache Energy Saving Through "
            "Compiler Way-Placement' (DATE 2008)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-benchmarks", help="list the benchmark suite")
    sub.add_parser("table1", help="print the Table 1 machine configuration")

    for name, description in (
        ("figure4", "per-benchmark energy and ED (32KB/32-way, 32KB WPA)"),
        ("figure5", "way-placement area size sweep"),
        ("figure6", "cache size x associativity grid"),
    ):
        figure = sub.add_parser(name, help=description)
        figure.add_argument(
            "--benchmarks",
            nargs="+",
            metavar="NAME",
            help="restrict to these benchmarks (default: full suite)",
        )
        _add_budget_arguments(figure)
        _add_jobs_argument(figure)

    simulate = sub.add_parser("simulate", help="run one configuration")
    simulate.add_argument("--benchmark", required=True, choices=benchmark_names())
    simulate.add_argument(
        "--scheme",
        default="way-placement",
        choices=[
            "baseline",
            "way-placement",
            "way-memoization",
            "way-prediction",
            "filter-cache",
        ],
    )
    simulate.add_argument("--wpa-kb", type=int, default=32, help="WPA size in KB")
    simulate.add_argument("--cache-kb", type=int, default=32)
    simulate.add_argument("--ways", type=int, default=32)
    simulate.add_argument("--line-bytes", type=int, default=32)
    simulate.add_argument(
        "--layout",
        default=None,
        choices=[policy.value for policy in LayoutPolicy],
        help="override the scheme's default layout pairing",
    )
    _add_budget_arguments(simulate)

    inspect = sub.add_parser("inspect", help="show the compiler pass's work")
    inspect.add_argument("--benchmark", required=True, choices=benchmark_names())
    _add_budget_arguments(inspect)

    choose = sub.add_parser("choose-wpa", help="run the OS's WPA size policy")
    choose.add_argument("--benchmark", required=True, choices=benchmark_names())
    choose.add_argument("--page-kb", type=int, default=1)
    _add_budget_arguments(choose)

    report = sub.add_parser(
        "report", help="full reproduction report (all figures + checklist)"
    )
    report.add_argument("--output", help="write the markdown report to this file")
    report.add_argument("--benchmarks", nargs="+", metavar="NAME")
    _add_budget_arguments(report)
    _add_jobs_argument(report)

    export = sub.add_parser("export", help="figure data as CSV or JSON")
    export.add_argument("--figure", required=True, choices=["4", "5", "6"])
    export.add_argument("--format", default="csv", choices=["csv", "json"])
    export.add_argument("--output", help="write to this file instead of stdout")
    export.add_argument("--benchmarks", nargs="+", metavar="NAME")
    _add_budget_arguments(export)
    _add_jobs_argument(export)

    cache = sub.add_parser(
        "cache", help="manage the persistent trace cache ($REPRO_CACHE_DIR)"
    )
    cache.add_argument("action", choices=["stats", "clear"])
    cache.add_argument(
        "--dir",
        default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or .repro_cache)",
    )

    return parser


def _add_budget_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--eval-instructions",
        type=int,
        default=None,
        help="evaluation trace length (default 400000 or $REPRO_EVAL_INSTRUCTIONS)",
    )
    parser.add_argument(
        "--profile-instructions",
        type=int,
        default=None,
        help="profiling trace length (default 100000 or $REPRO_PROFILE_INSTRUCTIONS)",
    )
    parser.add_argument(
        "--engine",
        default=None,
        choices=["auto", "vector", "reference"],
        help="replay engine (default auto or $REPRO_ENGINE; see docs/performance.md)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "trace cache directory, or 'off' to disable "
            "(default: $REPRO_CACHE_DIR or .repro_cache)"
        ),
    )


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the experiment grid (default 1: in-process)",
    )


def _make_runner(args: argparse.Namespace) -> ExperimentRunner:
    return ExperimentRunner(
        eval_instructions=getattr(args, "eval_instructions", None),
        profile_instructions=getattr(args, "profile_instructions", None),
        engine=getattr(args, "engine", None),
        cache_dir=getattr(args, "cache_dir", None),
    )


def _cmd_list_benchmarks() -> int:
    rows = [
        [
            name,
            f"{spec.code_kb:.1f}",
            str(spec.num_functions),
            str(spec.kernel_functions),
            f"{spec.mem_density:.2f}",
        ]
        for name, spec in MIBENCH_BENCHMARKS.items()
    ]
    print(
        render_table(
            "Benchmark suite (synthetic MiBench stand-ins)",
            ["name", "code KB", "functions", "kernels", "mem density"],
            rows,
        )
    )
    return 0


def _cmd_table1() -> int:
    print(
        render_table(
            "Table 1: Baseline system configuration",
            ["Parameter", "Configuration"],
            [list(row) for row in table1_rows()],
        )
    )
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    benchmarks = args.benchmarks
    if benchmarks:
        unknown = set(benchmarks) - set(benchmark_names())
        if unknown:
            raise ReproError(f"unknown benchmarks: {sorted(unknown)}")
    if args.command == "figure4":
        print(figure4(runner, benchmarks=benchmarks, jobs=args.jobs).render())
    elif args.command == "figure5":
        print(figure5(runner, benchmarks=benchmarks, jobs=args.jobs).render())
    else:
        print(figure6(runner, benchmarks=benchmarks, jobs=args.jobs).render())
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    machine = XSCALE_BASELINE.with_icache(
        args.cache_kb * KB, args.ways, args.line_bytes
    )
    wpa_size = args.wpa_kb * KB if args.scheme == "way-placement" else 0
    layout_policy = LayoutPolicy(args.layout) if args.layout else None
    result = runner.normalised(
        args.benchmark,
        args.scheme,
        machine,
        wpa_size=wpa_size,
        layout_policy=layout_policy,
    )
    report = runner.report(
        args.benchmark,
        args.scheme,
        machine,
        wpa_size=wpa_size,
        layout_policy=layout_policy,
    )
    counters = report.counters
    print(f"benchmark : {args.benchmark}")
    print(f"scheme    : {args.scheme} on {machine.icache.describe()}")
    if wpa_size:
        print(f"WPA       : {args.wpa_kb}KB")
    print(f"layout    : {report.layout_description}")
    print()
    print(f"normalised I-cache energy : {result.icache_energy_pct:6.1f}%")
    print(f"normalised delay          : {result.delay:8.3f}")
    print(f"ED product                : {result.ed_product:8.3f}")
    print()
    print(
        render_table(
            "activity counters",
            ["counter", "value"],
            [
                ["fetches", f"{counters.fetches:,}"],
                ["line transitions", f"{counters.line_events:,}"],
                ["full searches", f"{counters.full_searches:,}"],
                ["single-way checks", f"{counters.single_way_searches:,}"],
                ["links followed", f"{counters.link_followed:,}"],
                ["match lines precharged", f"{counters.ways_precharged:,}"],
                ["misses", f"{counters.misses:,}"],
                ["hint false +/-", f"{counters.hint_false_positives}/{counters.hint_false_negatives}"],
                ["I-TLB misses", f"{counters.itlb_misses:,}"],
                ["cycles", f"{report.cycles:,}"],
            ],
        )
    )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.layout.chains import build_chains

    runner = _make_runner(args)
    program = runner.workload(args.benchmark).program
    profile = runner.profile(args.benchmark)
    layout = runner.layout(args.benchmark, LayoutPolicy.WAY_PLACEMENT)
    weights = {
        block.uid: profile.count_of(block.uid) * block.num_instructions
        for block in program.blocks()
    }
    chains = sorted(build_chains(program), key=lambda c: -c.weight(weights))
    print(
        f"{args.benchmark}: {len(program.functions)} functions, "
        f"{program.num_blocks} blocks, {program.size_bytes / KB:.1f}KB, "
        f"{len(chains)} chains"
    )
    rows = []
    for rank, chain in enumerate(chains[:12], start=1):
        head = program.block_by_uid(chain.head)
        size = sum(program.block_by_uid(u).size_bytes for u in chain.uids)
        rows.append(
            [
                str(rank),
                f"{head.function}:{head.label}",
                str(len(chain)),
                str(size),
                f"{chain.weight(weights):,}",
                f"{layout.address_of(chain.head):#x}",
            ]
        )
    print(
        render_table(
            "heaviest chains (way-placement order)",
            ["rank", "head", "blocks", "bytes", "instrs executed", "placed at"],
            rows,
        )
    )
    return 0


def _cmd_choose_wpa(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    program = runner.workload(args.benchmark).program
    profile = runner.profile(args.benchmark)
    layout = runner.layout(args.benchmark, LayoutPolicy.WAY_PLACEMENT)
    choice = choose_wpa_size(
        program,
        layout,
        profile.block_counts,
        XSCALE_BASELINE.icache,
        page_size=args.page_kb * KB,
        edge_counts=profile.edge_counts,
    )
    print(f"benchmark          : {args.benchmark}")
    print(f"chosen WPA size    : {choice.wpa_size // KB}KB")
    print(f"profiled coverage  : {100 * choice.coverage:.1f}%")
    print(f"boundary crossings : {choice.crossing_rate:.6f} per instruction")
    print()
    print(
        render_table(
            "candidate ranking (estimated tag energy, lower is better)",
            ["WPA", "estimate"],
            [
                [f"{size // KB}KB", f"{estimate:.4f}"]
                for size, estimate in choice.ranking
            ],
        )
    )
    return 0


def _validate_benchmarks(names) -> None:
    if names:
        unknown = set(names) - set(benchmark_names())
        if unknown:
            raise ReproError(f"unknown benchmarks: {sorted(unknown)}")


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import reproduction_report

    _validate_benchmarks(args.benchmarks)
    text = reproduction_report(
        _make_runner(args), benchmarks=args.benchmarks, jobs=args.jobs
    )
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.experiments.export import (
        figure4_records,
        figure5_records,
        figure6_records,
        records_to_csv,
        records_to_json,
    )

    _validate_benchmarks(args.benchmarks)
    runner = _make_runner(args)
    if args.figure == "4":
        records = figure4_records(
            figure4(runner, benchmarks=args.benchmarks, jobs=args.jobs)
        )
    elif args.figure == "5":
        records = figure5_records(
            figure5(runner, benchmarks=args.benchmarks, jobs=args.jobs)
        )
    else:
        records = figure6_records(
            figure6(runner, benchmarks=args.benchmarks, jobs=args.jobs)
        )
    text = records_to_csv(records) if args.format == "csv" else records_to_json(records)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"figure {args.figure} data written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.engine.store import TraceStore

    store = TraceStore.resolve(args.dir)
    if store is None:
        print("trace cache is disabled")
        return 0
    if args.action == "stats":
        stats = store.stats()
        counts = stats["entries"]
        print(f"cache directory : {stats['dir']}")
        print(f"entries         : {sum(counts.values())}")
        print(f"size            : {stats['total_bytes'] / KB:.1f}KB")
        for kind, count in sorted(counts.items()):
            print(f"  {kind:<8}: {count}")
    else:
        removed = store.clear()
        print(f"removed {removed} entries from {store.root}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list-benchmarks":
            return _cmd_list_benchmarks()
        if args.command == "table1":
            return _cmd_table1()
        if args.command in ("figure4", "figure5", "figure6"):
            return _cmd_figure(args)
        if args.command == "simulate":
            return _cmd_simulate(args)
        if args.command == "inspect":
            return _cmd_inspect(args)
        if args.command == "choose-wpa":
            return _cmd_choose_wpa(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "export":
            return _cmd_export(args)
        if args.command == "cache":
            return _cmd_cache(args)
        parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
