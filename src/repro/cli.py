"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list-benchmarks``
    The 23-benchmark suite with per-benchmark shape parameters.
``table1``
    Print the paper's Table 1 machine configuration.
``figure4`` / ``figure5`` / ``figure6``
    Regenerate a figure (optionally on a benchmark subset).  Grid commands
    accept supervision flags — ``--retries``, ``--timeout``, ``--resume``,
    ``--fallback-policy``, ``--backend``, ``--shards``,
    ``--lease-timeout`` — described in docs/robustness.md.
``simulate``
    Run one (benchmark, scheme, geometry, WPA) combination and print the
    normalised result plus the activity counters behind it.
``inspect``
    Show the compiler pass's work on one benchmark: chains, weights,
    prefix coverage.
``choose-wpa``
    Run the OS's way-placement-area selection policy.
``cache``
    Inspect or clear the persistent trace cache (see docs/performance.md).
``lint``
    Static diagnostics over programs, layouts, and experiment configs
    (see docs/analysis.md).  Targets are benchmark names or JSON config
    files; ``--format json`` emits a stable machine-readable report.
``verify``
    Full workload certification (see docs/verification.md): every lint
    and dataflow-verifier rule, the symbolic WPA placement proof, and a
    sanitized kernel replay.  Exit 2 when any workload fails.
``analyze``
    Abstract-interpretation certification (see docs/static_analysis.md):
    the must/may cache fixpoint, static counter/energy bounds checked
    against the engine's measured counters, and the ``A`` rule layer.
    Exit 2 when any measured counter escapes its static bounds.  With
    ``--interference``, emit interference certificates instead: the
    static conflict graph, per-set pressure, certified conflict-free
    sets, and a per-set conflict replay cross-check.
``bench compare``
    Gate on the checked-in bench snapshot (``BENCH_engine.json``):
    fail when a guarded engine speedup drops more than the tolerance.
``chaos``
    Seeded chaos drill (see docs/robustness.md): inject a deterministic
    fault schedule — per backend: worker/shard crashes and hangs, lease
    heartbeat loss, duplicate grants, transport failure, disk faults —
    into a supervised grid across a seed matrix, and fail unless every
    run is bit-identical to a fault-free run with all incidents
    recovered.  ``--json`` emits the summary for machines.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from typing import Any, Dict, List, Optional, cast

from repro.errors import ReproError
from repro.experiments.figures import figure4, figure5, figure6
from repro.experiments.formatting import render_table
from repro.experiments.runner import ExperimentRunner
from repro.layout.placement import LayoutPolicy
from repro.layout.wpa_select import choose_wpa_size
from repro.resilience.policy import (
    BACKEND_CHOICES,
    DEFAULT_RESILIENCE,
    FallbackPolicy,
    ResilienceConfig,
)
from repro.sim.machine import XSCALE_BASELINE, table1_rows
from repro.workloads.mibench import MIBENCH_BENCHMARKS, benchmark_names

KB = 1024

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Instruction Cache Energy Saving Through "
            "Compiler Way-Placement' (DATE 2008)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-benchmarks", help="list the benchmark suite")
    sub.add_parser("table1", help="print the Table 1 machine configuration")

    for name, description in (
        ("figure4", "per-benchmark energy and ED (32KB/32-way, 32KB WPA)"),
        ("figure5", "way-placement area size sweep"),
        ("figure6", "cache size x associativity grid"),
    ):
        figure = sub.add_parser(name, help=description)
        figure.add_argument(
            "--benchmarks",
            nargs="+",
            metavar="NAME",
            help="restrict to these benchmarks (default: full suite)",
        )
        figure.add_argument(
            "--layout",
            default=None,
            choices=[policy.value for policy in LayoutPolicy],
            help=(
                "layout policy for the way-placement runs (default: the "
                "scheme's pairing; e.g. conflict-aware for the trace-free "
                "optimizer)"
            ),
        )
        _add_budget_arguments(figure)
        _add_jobs_argument(figure)

    simulate = sub.add_parser("simulate", help="run one configuration")
    simulate.add_argument("--benchmark", required=True, choices=benchmark_names())
    simulate.add_argument(
        "--scheme",
        default="way-placement",
        choices=[
            "baseline",
            "way-placement",
            "way-memoization",
            "way-prediction",
            "filter-cache",
        ],
    )
    simulate.add_argument("--wpa-kb", type=int, default=32, help="WPA size in KB")
    simulate.add_argument("--cache-kb", type=int, default=32)
    simulate.add_argument("--ways", type=int, default=32)
    simulate.add_argument("--line-bytes", type=int, default=32)
    simulate.add_argument(
        "--layout",
        default=None,
        choices=[policy.value for policy in LayoutPolicy],
        help="override the scheme's default layout pairing",
    )
    _add_budget_arguments(simulate)

    inspect = sub.add_parser("inspect", help="show the compiler pass's work")
    inspect.add_argument("--benchmark", required=True, choices=benchmark_names())
    _add_budget_arguments(inspect)

    choose = sub.add_parser("choose-wpa", help="run the OS's WPA size policy")
    choose.add_argument("--benchmark", required=True, choices=benchmark_names())
    choose.add_argument("--page-kb", type=int, default=1)
    _add_budget_arguments(choose)

    report = sub.add_parser(
        "report", help="full reproduction report (all figures + checklist)"
    )
    report.add_argument("--output", help="write the markdown report to this file")
    report.add_argument("--benchmarks", nargs="+", metavar="NAME")
    _add_budget_arguments(report)
    _add_jobs_argument(report)

    export = sub.add_parser("export", help="figure data as CSV or JSON")
    export.add_argument("--figure", required=True, choices=["4", "5", "6"])
    export.add_argument("--format", default="csv", choices=["csv", "json"])
    export.add_argument("--output", help="write to this file instead of stdout")
    export.add_argument("--benchmarks", nargs="+", metavar="NAME")
    _add_budget_arguments(export)
    _add_jobs_argument(export)

    cache = sub.add_parser(
        "cache", help="manage the persistent trace cache ($REPRO_CACHE_DIR)"
    )
    cache.add_argument("action", choices=["stats", "clear", "migrate"])
    cache.add_argument(
        "--dir",
        default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or .repro_cache)",
    )

    lint = sub.add_parser(
        "lint", help="static diagnostics for programs, layouts, and configs"
    )
    lint.add_argument(
        "targets",
        nargs="*",
        metavar="TARGET",
        help=(
            "benchmark names or JSON config files "
            "(default: every built-in benchmark)"
        ),
    )
    lint.add_argument("--format", default="text", choices=["text", "json"])
    lint.add_argument(
        "--select",
        action="append",
        metavar="RULES",
        help="comma-separated rule ids or prefixes to run (e.g. P,L004)",
    )
    lint.add_argument(
        "--ignore",
        action="append",
        metavar="RULES",
        help="comma-separated rule ids or prefixes to skip (e.g. L003)",
    )
    lint.add_argument(
        "--layout",
        default=LayoutPolicy.WAY_PLACEMENT.value,
        choices=[policy.value for policy in LayoutPolicy],
        help="layout policy to lint benchmarks under (default: way-placement)",
    )
    lint.add_argument(
        "--wpa-kb",
        type=int,
        default=None,
        help="WPA size to lint against (default: fitted to the binary)",
    )
    lint.add_argument("--page-kb", type=int, default=1)
    _add_budget_arguments(lint)

    verify = sub.add_parser(
        "verify", help="certify workloads: dataflow verifier + WPA proof + sanitizer"
    )
    verify.add_argument(
        "targets",
        nargs="*",
        metavar="BENCHMARK",
        help="benchmarks to certify (default: every built-in benchmark)",
    )
    verify.add_argument(
        "--all-workloads",
        action="store_true",
        help="certify the full benchmark suite (explicit form of the default)",
    )
    verify.add_argument("--format", default="text", choices=["text", "json"])
    verify.add_argument(
        "--select",
        action="append",
        metavar="RULES",
        help="comma-separated rule ids or prefixes to run (e.g. V,P)",
    )
    verify.add_argument(
        "--ignore",
        action="append",
        metavar="RULES",
        help="comma-separated rule ids or prefixes to skip (e.g. C003)",
    )
    verify.add_argument(
        "--layout",
        default=LayoutPolicy.WAY_PLACEMENT.value,
        choices=[policy.value for policy in LayoutPolicy],
        help="layout policy to certify under (default: way-placement)",
    )
    verify.add_argument(
        "--wpa-kb",
        type=int,
        default=None,
        help="WPA size to certify against (default: fitted to the binary)",
    )
    verify.add_argument("--page-kb", type=int, default=1)
    _add_budget_arguments(verify)

    analyze = sub.add_parser(
        "analyze",
        help="abstract-interpretation certificates: cache fixpoint + "
        "static counter/energy bounds + A rules",
    )
    analyze.add_argument(
        "targets",
        nargs="*",
        metavar="BENCHMARK",
        help="benchmarks to analyze (default: every built-in benchmark)",
    )
    analyze.add_argument(
        "--all-workloads",
        action="store_true",
        help="analyze the full benchmark suite (explicit form of the default)",
    )
    analyze.add_argument("--format", default="text", choices=["text", "json"])
    analyze.add_argument(
        "--interference",
        action="store_true",
        help="emit interference certificates instead: static conflict "
        "graph, per-set pressure, certified conflict-free sets, and a "
        "per-set conflict replay cross-check (exit 2 on any violation)",
    )
    _add_budget_arguments(analyze)

    bench = sub.add_parser("bench", help="benchmark snapshot utilities")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    compare = bench_sub.add_parser(
        "compare",
        help="gate on the checked-in bench snapshot (speedup regressions)",
    )
    compare.add_argument("current", help="freshly generated snapshot to check")
    compare.add_argument(
        "--baseline",
        default=None,
        help="checked-in snapshot to compare against (default: BENCH_engine.json)",
    )
    compare.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed fractional speedup drop before failing (default: 0.20)",
    )

    chaos_drill = sub.add_parser(
        "chaos",
        help=(
            "seeded chaos drill: inject a deterministic fault schedule "
            "into a supervised grid and require bit-identical recovery"
        ),
    )
    chaos_drill.add_argument(
        "--seed",
        type=int,
        default=None,
        help="single chaos schedule seed (shorthand for --seeds SEED)",
    )
    chaos_drill.add_argument(
        "--seeds",
        default=None,
        metavar="N,N,...",
        help="comma-separated seed matrix (default: 0)",
    )
    chaos_drill.add_argument(
        "--backend",
        default="local",
        choices=sorted(BACKEND_CHOICES) + ["both"],
        help=(
            "execution backend(s) to drill: the local pool, the sharded "
            "lease/heartbeat/steal backend, or both (default local)"
        ),
    )
    chaos_drill.add_argument(
        "--jobs", type=int, default=2, help="worker processes (default 2)"
    )
    chaos_drill.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        dest="json_path",
        help="write the deterministic summary JSON to PATH ('-' for stdout)",
    )

    return parser


def _add_budget_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--eval-instructions",
        type=int,
        default=None,
        help="evaluation trace length (default 400000 or $REPRO_EVAL_INSTRUCTIONS)",
    )
    parser.add_argument(
        "--profile-instructions",
        type=int,
        default=None,
        help="profiling trace length (default 100000 or $REPRO_PROFILE_INSTRUCTIONS)",
    )
    parser.add_argument(
        "--engine",
        default=None,
        choices=["auto", "vector", "reference", "batch", "differential"],
        help="replay engine (default auto or $REPRO_ENGINE; 'batch' replays "
        "trace-sharing grid cells in one traversal, 'differential' also "
        "shares state between adjacent sweep configs; see "
        "docs/performance.md)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "trace cache directory, or 'off' to disable "
            "(default: $REPRO_CACHE_DIR or .repro_cache)"
        ),
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="lint every program+layout+config before simulating "
        "(refuses to run on error-severity diagnostics)",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="check sanitizer invariants on every simulation "
        "(see docs/verification.md; fails loudly on any violation)",
    )


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the experiment grid (default 1: in-process)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "extra attempts per failing grid cell / worker chunk "
            f"(default {DEFAULT_RESILIENCE.retries}; see docs/robustness.md)"
        ),
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per worker chunk attempt (default: no timeout)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume an interrupted identical grid from its checkpoint "
            "journal, re-executing only the missing cells"
        ),
    )
    parser.add_argument(
        "--fallback-policy",
        default=None,
        choices=[policy.value for policy in FallbackPolicy],
        help=(
            "engine degradation on kernel/sanitizer failure: 'reference' "
            "re-runs the cell on the bit-identical reference schemes, "
            "'none' disables the fallback (default "
            f"{DEFAULT_RESILIENCE.fallback.value})"
        ),
    )
    parser.add_argument(
        "--prune-static",
        action="store_true",
        help=(
            "collapse sweep cells the static analysis proves "
            "outcome-equivalent to one representative replay, "
            "reconstructing the rest bit-identically under a certificate "
            "(see docs/static_analysis.md); a failed certificate falls "
            "back to unpruned execution"
        ),
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=sorted(BACKEND_CHOICES),
        help=(
            "execution backend for parallel grids: 'local' chunks by "
            "benchmark across a worker pool, 'sharded' shards by the "
            "planner key with lease/heartbeat/work-stealing fault "
            "tolerance (default local; see docs/robustness.md)"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help=(
            "target shard count for --backend sharded (default: one shard "
            "per planner family key; shards never mix keys)"
        ),
    )
    parser.add_argument(
        "--lease-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "seconds a shard lease survives without a heartbeat before "
            "the coordinator reassigns the shard (default "
            f"{DEFAULT_RESILIENCE.lease_timeout_s})"
        ),
    )


def _resilience_from_args(args: argparse.Namespace) -> Optional[ResilienceConfig]:
    """A ResilienceConfig when any supervision flag was given, else None."""
    retries = getattr(args, "retries", None)
    timeout = getattr(args, "timeout", None)
    resume = getattr(args, "resume", False)
    fallback = getattr(args, "fallback_policy", None)
    backend = getattr(args, "backend", None)
    shards = getattr(args, "shards", None)
    lease_timeout = getattr(args, "lease_timeout", None)
    if (
        retries is None
        and timeout is None
        and not resume
        and fallback is None
        and backend is None
        and shards is None
        and lease_timeout is None
    ):
        return None
    config = DEFAULT_RESILIENCE
    if retries is not None:
        config = dataclasses.replace(config, retries=retries)
    if timeout is not None:
        config = dataclasses.replace(config, timeout_s=timeout)
    if resume:
        config = dataclasses.replace(config, resume=True)
    if fallback is not None:
        config = config.with_fallback(fallback)
    if backend is not None:
        config = dataclasses.replace(config, backend=backend)
    if shards is not None:
        config = dataclasses.replace(config, shards=shards)
    if lease_timeout is not None:
        config = dataclasses.replace(config, lease_timeout_s=lease_timeout)
    return config.validate()


def _make_runner(args: argparse.Namespace) -> ExperimentRunner:
    return ExperimentRunner(
        eval_instructions=getattr(args, "eval_instructions", None),
        profile_instructions=getattr(args, "profile_instructions", None),
        engine=getattr(args, "engine", None),
        cache_dir=getattr(args, "cache_dir", None),
        strict=getattr(args, "strict", False),
        sanitize=getattr(args, "sanitize", False),
        resilience=_resilience_from_args(args),
        prune=getattr(args, "prune_static", False),
    )


def _print_grid_summary(runner: ExperimentRunner) -> None:
    """Planner decisions of the last grid, to stderr (stdout stays data)."""
    summary = runner.last_grid
    if summary is None or not summary.families:
        return
    line = (
        f"grid planner: {summary.families} family(ies) covering "
        f"{summary.family_cells} of {summary.total} cell(s)"
    )
    if summary.pruned:
        line += f"; {summary.pruned} cell(s) statically pruned"
    print(line, file=sys.stderr)
    for certificate in summary.prune_certificates:
        print(f"  certificate {certificate}", file=sys.stderr)


def _cmd_list_benchmarks() -> int:
    rows = [
        [
            name,
            f"{spec.code_kb:.1f}",
            str(spec.num_functions),
            str(spec.kernel_functions),
            f"{spec.mem_density:.2f}",
        ]
        for name, spec in MIBENCH_BENCHMARKS.items()
    ]
    print(
        render_table(
            "Benchmark suite (synthetic MiBench stand-ins)",
            ["name", "code KB", "functions", "kernels", "mem density"],
            rows,
        )
    )
    return 0


def _cmd_table1() -> int:
    print(
        render_table(
            "Table 1: Baseline system configuration",
            ["Parameter", "Configuration"],
            [list(row) for row in table1_rows()],
        )
    )
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    benchmarks = args.benchmarks
    if benchmarks:
        unknown = set(benchmarks) - set(benchmark_names())
        if unknown:
            raise ReproError(f"unknown benchmarks: {sorted(unknown)}")
    layout_policy = LayoutPolicy(args.layout) if args.layout else None
    if args.command == "figure4":
        print(
            figure4(
                runner,
                benchmarks=benchmarks,
                jobs=args.jobs,
                layout_policy=layout_policy,
            ).render()
        )
    elif args.command == "figure5":
        print(
            figure5(
                runner,
                benchmarks=benchmarks,
                jobs=args.jobs,
                layout_policy=layout_policy,
            ).render()
        )
    else:
        print(
            figure6(
                runner,
                benchmarks=benchmarks,
                jobs=args.jobs,
                layout_policy=layout_policy,
            ).render()
        )
    _print_grid_summary(runner)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    machine = XSCALE_BASELINE.with_icache(
        args.cache_kb * KB, args.ways, args.line_bytes
    )
    wpa_size = args.wpa_kb * KB if args.scheme == "way-placement" else 0
    layout_policy = LayoutPolicy(args.layout) if args.layout else None
    result = runner.normalised(
        args.benchmark,
        args.scheme,
        machine,
        wpa_size=wpa_size,
        layout_policy=layout_policy,
    )
    report = runner.report(
        args.benchmark,
        args.scheme,
        machine,
        wpa_size=wpa_size,
        layout_policy=layout_policy,
    )
    counters = report.counters
    print(f"benchmark : {args.benchmark}")
    print(f"scheme    : {args.scheme} on {machine.icache.describe()}")
    if wpa_size:
        print(f"WPA       : {args.wpa_kb}KB")
    print(f"layout    : {report.layout_description}")
    print()
    print(f"normalised I-cache energy : {result.icache_energy_pct:6.1f}%")
    print(f"normalised delay          : {result.delay:8.3f}")
    print(f"ED product                : {result.ed_product:8.3f}")
    print()
    print(
        render_table(
            "activity counters",
            ["counter", "value"],
            [
                ["fetches", f"{counters.fetches:,}"],
                ["line transitions", f"{counters.line_events:,}"],
                ["full searches", f"{counters.full_searches:,}"],
                ["single-way checks", f"{counters.single_way_searches:,}"],
                ["links followed", f"{counters.link_followed:,}"],
                ["match lines precharged", f"{counters.ways_precharged:,}"],
                ["misses", f"{counters.misses:,}"],
                ["hint false +/-", f"{counters.hint_false_positives}/{counters.hint_false_negatives}"],
                ["I-TLB misses", f"{counters.itlb_misses:,}"],
                ["cycles", f"{report.cycles:,}"],
            ],
        )
    )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.layout.chains import build_chains

    runner = _make_runner(args)
    program = runner.workload(args.benchmark).program
    profile = runner.profile(args.benchmark)
    layout = runner.layout(args.benchmark, LayoutPolicy.WAY_PLACEMENT)
    weights = {
        block.uid: profile.count_of(block.uid) * block.num_instructions
        for block in program.blocks()
    }
    chains = sorted(build_chains(program), key=lambda c: -c.weight(weights))
    print(
        f"{args.benchmark}: {len(program.functions)} functions, "
        f"{program.num_blocks} blocks, {program.size_bytes / KB:.1f}KB, "
        f"{len(chains)} chains"
    )
    rows = []
    for rank, chain in enumerate(chains[:12], start=1):
        head = program.block_by_uid(chain.head)
        size = sum(program.block_by_uid(u).size_bytes for u in chain.uids)
        rows.append(
            [
                str(rank),
                f"{head.function}:{head.label}",
                str(len(chain)),
                str(size),
                f"{chain.weight(weights):,}",
                f"{layout.address_of(chain.head):#x}",
            ]
        )
    print(
        render_table(
            "heaviest chains (way-placement order)",
            ["rank", "head", "blocks", "bytes", "instrs executed", "placed at"],
            rows,
        )
    )
    return 0


def _cmd_choose_wpa(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    program = runner.workload(args.benchmark).program
    profile = runner.profile(args.benchmark)
    layout = runner.layout(args.benchmark, LayoutPolicy.WAY_PLACEMENT)
    choice = choose_wpa_size(
        program,
        layout,
        profile.block_counts,
        XSCALE_BASELINE.icache,
        page_size=args.page_kb * KB,
        edge_counts=profile.edge_counts,
    )
    print(f"benchmark          : {args.benchmark}")
    print(f"chosen WPA size    : {choice.wpa_size // KB}KB")
    print(f"profiled coverage  : {100 * choice.coverage:.1f}%")
    print(f"boundary crossings : {choice.crossing_rate:.6f} per instruction")
    print()
    print(
        render_table(
            "candidate ranking (estimated tag energy, lower is better)",
            ["WPA", "estimate"],
            [
                [f"{size // KB}KB", f"{estimate:.4f}"]
                for size, estimate in choice.ranking
            ],
        )
    )
    return 0


def _validate_benchmarks(names) -> None:
    if names:
        unknown = set(names) - set(benchmark_names())
        if unknown:
            raise ReproError(f"unknown benchmarks: {sorted(unknown)}")


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import reproduction_report

    _validate_benchmarks(args.benchmarks)
    runner = _make_runner(args)
    text = reproduction_report(runner, benchmarks=args.benchmarks, jobs=args.jobs)
    _print_grid_summary(runner)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.experiments.export import (
        figure4_records,
        figure5_records,
        figure6_records,
        records_to_csv,
        records_to_json,
    )

    _validate_benchmarks(args.benchmarks)
    runner = _make_runner(args)
    if args.figure == "4":
        records = figure4_records(
            figure4(runner, benchmarks=args.benchmarks, jobs=args.jobs)
        )
    elif args.figure == "5":
        records = figure5_records(
            figure5(runner, benchmarks=args.benchmarks, jobs=args.jobs)
        )
    else:
        records = figure6_records(
            figure6(runner, benchmarks=args.benchmarks, jobs=args.jobs)
        )
    _print_grid_summary(runner)
    text = records_to_csv(records) if args.format == "csv" else records_to_json(records)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"figure {args.figure} data written to {args.output}")
    else:
        print(text)
    return 0


def _split_selectors(values: Optional[List[str]]) -> Optional[List[str]]:
    """Flatten repeated/comma-separated ``--select``/``--ignore`` values."""
    if not values:
        return None
    selectors: List[str] = []
    for value in values:
        selectors.extend(part.strip() for part in value.split(",") if part.strip())
    return selectors or None


def _config_lint_context(path: str):
    """Analysis context for a JSON experiment-config file.

    Recognised keys: ``cache`` ({size_kb, ways, line_bytes, address_bits}),
    ``energy`` (EnergyParams field overrides), ``wpa_kb``, ``page_kb``,
    ``resilience`` ({retries, timeout_s, backoff_s, fallback} — the
    supervised-grid settings, linted by rule C005), all optional; missing
    pieces fall back to the paper's baseline.
    """
    from repro.analysis import AnalysisContext, GeometrySpec
    from repro.analysis.context import _energy_mapping

    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise ReproError(f"cannot read config file {path!r}: {error}")
    if not isinstance(data, dict):
        raise ReproError(f"config file {path!r} must hold a JSON object")

    cache_cfg: Dict[str, Any] = dict(data.get("cache") or {})
    baseline = XSCALE_BASELINE.icache
    geometry = GeometrySpec(
        size_bytes=int(cache_cfg.get("size_kb", baseline.size_bytes // KB) * KB),
        ways=int(cache_cfg.get("ways", baseline.ways)),
        line_size=int(cache_cfg.get("line_bytes", baseline.line_size)),
        address_bits=int(cache_cfg.get("address_bits", baseline.address_bits)),
    )
    wpa_kb = data.get("wpa_kb")
    page_kb = data.get("page_kb", XSCALE_BASELINE.page_size // KB)
    resilience = data.get("resilience")
    if resilience is not None and not isinstance(resilience, dict):
        raise ReproError(
            f"config file {path!r}: 'resilience' must be a JSON object"
        )
    return AnalysisContext(
        subject=os.path.basename(path),
        geometry=geometry,
        energy=_energy_mapping(dict(data.get("energy") or {})),
        wpa_size=int(wpa_kb * KB) if wpa_kb is not None else None,
        page_size=int(page_kb * KB),
        resilience=resilience,
    )


def _benchmark_lint_context(
    runner: ExperimentRunner,
    benchmark: str,
    policy: LayoutPolicy,
    wpa_kb: Optional[int],
    page_kb: int,
):
    """Analysis context for one built-in benchmark under ``policy``."""
    from repro.analysis import AnalysisContext
    from repro.utils.bitops import align_up

    machine = XSCALE_BASELINE
    layout = runner.layout(benchmark, policy)
    page_size = page_kb * KB
    if wpa_kb is None:
        wpa_size = min(
            machine.icache.size_bytes, align_up(layout.end_address, page_size)
        )
    else:
        wpa_size = wpa_kb * KB
    profile = runner.profile(benchmark)
    return AnalysisContext.for_experiment(
        program=runner.workload(benchmark).program,
        layout=layout,
        block_counts=profile.block_counts,
        edge_counts=profile.edge_counts,
        geometry=machine.icache,
        wpa_size=wpa_size,
        page_size=page_size,
        energy=runner.energy_params,
        subject=benchmark,
    )


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import Analyzer, Severity, max_severity, render_json, render_text

    analyzer = Analyzer(
        select=_split_selectors(args.select), ignore=_split_selectors(args.ignore)
    )
    runner = _make_runner(args)
    policy = LayoutPolicy(args.layout)
    targets = args.targets or list(benchmark_names())
    contexts = []
    for target in targets:
        if target in benchmark_names():
            contexts.append(
                _benchmark_lint_context(
                    runner, target, policy, args.wpa_kb, args.page_kb
                )
            )
        elif target.endswith(".json") or os.path.exists(target):
            contexts.append(_config_lint_context(target))
        else:
            raise ReproError(
                f"unknown lint target {target!r}: neither a benchmark name "
                f"nor a config file"
            )
    diagnostics = analyzer.run_all(contexts)
    if args.format == "json":
        print(render_json(diagnostics))
    else:
        print(render_text(diagnostics))
    return 2 if max_severity(diagnostics) is Severity.ERROR else 0


def _cmd_verify(args: argparse.Namespace) -> int:
    import time

    from repro.analysis import Analyzer
    from repro.verify.certify import (
        certify_workload,
        render_certificates_json,
        render_certificates_text,
    )

    if args.all_workloads and args.targets:
        raise ReproError("--all-workloads cannot be combined with explicit targets")
    targets = args.targets or list(benchmark_names())
    _validate_benchmarks(targets)
    analyzer = Analyzer(
        select=_split_selectors(args.select), ignore=_split_selectors(args.ignore)
    )
    runner = _make_runner(args)
    policy = LayoutPolicy(args.layout)
    started = time.perf_counter()
    certificates = [
        certify_workload(
            runner,
            benchmark,
            policy=policy,
            wpa_size=args.wpa_kb * KB if args.wpa_kb is not None else None,
            page_size=args.page_kb * KB,
            analyzer=analyzer,
        )
        for benchmark in targets
    ]
    elapsed = time.perf_counter() - started
    if args.format == "json":
        print(render_certificates_json(certificates))
    else:
        print(render_certificates_text(certificates))
    # Wall time goes to stderr so stdout stays byte-for-byte deterministic.
    print(
        f"verified {len(certificates)} workload(s) in {elapsed:.2f}s",
        file=sys.stderr,
    )
    return 0 if all(certificate.ok for certificate in certificates) else 2


def _cmd_analyze(args: argparse.Namespace) -> int:
    import time

    if args.all_workloads and args.targets:
        raise ReproError("--all-workloads cannot be combined with explicit targets")
    targets = args.targets or list(benchmark_names())
    _validate_benchmarks(targets)
    runner = _make_runner(args)
    started = time.perf_counter()
    if args.interference:
        from repro.analysis.interference import (
            interference_workload,
            render_interference_json,
            render_interference_text,
        )

        certificates = [
            interference_workload(runner, benchmark) for benchmark in targets
        ]
        render_json, render_text_ = (
            render_interference_json,
            render_interference_text,
        )
    else:
        from repro.analysis.absint import (
            analyze_workload,
            render_analysis_json,
            render_analysis_text,
        )

        certificates = [analyze_workload(runner, benchmark) for benchmark in targets]
        render_json, render_text_ = render_analysis_json, render_analysis_text
    elapsed = time.perf_counter() - started
    if args.format == "json":
        print(render_json(certificates))
    else:
        print(render_text_(certificates))
    # Wall time goes to stderr so stdout stays byte-for-byte deterministic.
    print(
        f"analyzed {len(certificates)} workload(s) in {elapsed:.2f}s",
        file=sys.stderr,
    )
    return 0 if all(certificate.ok for certificate in certificates) else 2


def _cmd_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments.bench import (
        DEFAULT_BASELINE,
        DEFAULT_TOLERANCE,
        compare_snapshots,
        load_metrics,
    )

    # Only 'compare' exists today; argparse rejects anything else.
    current = load_metrics(Path(args.current))
    baseline_path = Path(args.baseline) if args.baseline else DEFAULT_BASELINE
    baseline = load_metrics(baseline_path)
    tolerance = args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
    comparison = compare_snapshots(current, baseline, tolerance)
    print(comparison.render())
    return 0 if comparison.ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.resilience.drill import run_matrix

    if args.seed is not None and args.seeds is not None:
        print("error: give --seed or --seeds, not both", file=sys.stderr)
        return 2
    if args.seeds is not None:
        try:
            seeds = [int(part) for part in args.seeds.split(",") if part.strip()]
        except ValueError:
            print(f"error: bad --seeds value {args.seeds!r}", file=sys.stderr)
            return 2
    else:
        seeds = [args.seed if args.seed is not None else 0]
    backends = ["local", "sharded"] if args.backend == "both" else [args.backend]

    summary = run_matrix(seeds, backends=backends, jobs=args.jobs)
    for run in summary["runs"]:
        print(f"chaos drill seed={run['seed']} backend={run['backend']}:")
        for line in run["schedule"]:
            print(f"  {line}")
        for incident in run["incidents"]:
            print(f"  {incident}")
        verdict = "OK" if run["ok"] else "FAIL"
        print(
            f"  {verdict}: identical={run['identical']} "
            f"recovered={run['recovered']} "
            f"({len(run['incidents'])} incident(s), "
            f"{run['duplicate_results']} duplicate result(s) dropped)"
        )

    if args.json_path is not None:
        payload = json.dumps(summary, indent=2, sort_keys=True)
        if args.json_path == "-":
            print(payload)
        else:
            from pathlib import Path

            Path(args.json_path).write_text(payload + "\n")
    if summary["ok"]:
        print(
            f"OK: {len(summary['runs'])} drill(s) bit-identical to the "
            f"fault-free run; every incident recovered"
        )
        return 0
    failed = sum(1 for run in summary["runs"] if not run["ok"])
    print(f"FAIL: {failed} of {len(summary['runs'])} drill(s) failed")
    return 1


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.engine.store import TraceStore

    store = TraceStore.resolve(args.dir)
    if store is None:
        print("trace cache is disabled")
        return 0
    if args.action == "stats":
        stats = store.stats()
        counts = cast(Dict[str, int], stats["entries"])
        kind_bytes = cast(Dict[str, int], stats["kind_bytes"])
        total_bytes = cast(int, stats["total_bytes"])
        format_entries = cast(Dict[str, int], stats["format_entries"])
        quarantined = cast(int, stats["quarantined"])
        print(f"cache directory : {stats['dir']}")
        print(f"entries         : {sum(counts.values())}")
        print(f"size            : {total_bytes / KB:.1f}KB")
        for kind, count in sorted(counts.items()):
            print(f"  {kind:<8}: {count} entries, {kind_bytes[kind] / KB:.1f}KB")
        print(
            f"trace formats   : "
            f"{format_entries['v2']} v2 (mmap), {format_entries['v1']} v1 (npz)"
        )
        if quarantined:
            quarantine_bytes = cast(int, stats["quarantine_bytes"])
            print(
                f"quarantine      : {quarantined} entries, "
                f"{quarantine_bytes / KB:.1f}KB (undeletable corrupt entries; "
                f"'repro cache clear' removes them)"
            )
        print(f"session hits    : {stats['session_hits']}")
        print(f"session misses  : {stats['session_misses']}")
        if stats["writes_disabled"]:
            print("writes          : DISABLED (earlier write failure)")
    elif args.action == "migrate":
        outcome = store.migrate()
        print(
            f"migrated {outcome['migrated']} legacy entries to format "
            f"v{store.FORMAT_VERSION} in {store.root} "
            f"({outcome['skipped']} already current or kept, "
            f"{outcome['discarded']} corrupt discarded)"
        )
    else:
        removed = store.clear()
        print(f"removed {removed} entries from {store.root}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list-benchmarks":
            return _cmd_list_benchmarks()
        if args.command == "table1":
            return _cmd_table1()
        if args.command in ("figure4", "figure5", "figure6"):
            return _cmd_figure(args)
        if args.command == "simulate":
            return _cmd_simulate(args)
        if args.command == "inspect":
            return _cmd_inspect(args)
        if args.command == "choose-wpa":
            return _cmd_choose_wpa(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "export":
            return _cmd_export(args)
        if args.command == "cache":
            return _cmd_cache(args)
        if args.command == "lint":
            return _cmd_lint(args)
        if args.command == "verify":
            return _cmd_verify(args)
        if args.command == "analyze":
            return _cmd_analyze(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "chaos":
            return _cmd_chaos(args)
        parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
