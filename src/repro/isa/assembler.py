"""A small two-pass assembler for the ARM-like ISA.

Accepted syntax, one statement per line::

    loop:                   ; label (';' and '@' start comments)
        add   r1, r2, r3
        addlt r1, r2, r3    ; condition suffix on any ALU/branch mnemonic
        mov   r0, #42
        lsl   r0, r1, #2
        ldr   r4, [r5, #8]
        str   r4, [r5]
        cmp   r1, r2
        bne   loop
        bl    helper
        ret

:func:`assemble` returns the instruction list with *symbolic* branch targets
plus the label table (label -> instruction index), which is exactly what the
program builder needs to carve the stream into basic blocks.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import AssemblerError
from repro.isa.encoding import OPERAND_SIGNATURES
from repro.isa.instructions import Condition, Instruction, Opcode
from repro.isa.registers import REGISTER_NAMES

__all__ = ["assemble", "AssemblyUnit"]

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_.$]*):\s*(.*)$")
_MEM_RE = re.compile(
    r"^\[\s*([A-Za-z][A-Za-z0-9]*)\s*(?:,\s*#(-?\d+)\s*)?\]$"
)

_CONDITION_SUFFIXES = {c.suffix: c for c in Condition if c is not Condition.AL}


@dataclass(frozen=True)
class AssemblyUnit:
    """Result of assembling one source text."""

    instructions: Tuple[Instruction, ...]
    labels: Dict[str, int]  # label name -> index into ``instructions``


def _split_mnemonic(token: str) -> Tuple[Opcode, Condition]:
    """Resolve a mnemonic with optional condition suffix into (opcode, cond)."""
    token = token.lower()
    # Longest-match the bare opcode first so 'ble' parses as B+LE, not BL+E.
    candidates = []
    for opcode in Opcode:
        base = opcode.name.lower()
        if token == base:
            candidates.append((opcode, Condition.AL))
        elif token.startswith(base) and token[len(base):] in _CONDITION_SUFFIXES:
            candidates.append((opcode, _CONDITION_SUFFIXES[token[len(base):]]))
    if not candidates:
        raise AssemblerError(f"unknown mnemonic {token!r}")
    # Prefer the candidate with the longest base opcode name (bl over b).
    candidates.sort(key=lambda pair: len(pair[0].name), reverse=True)
    exact = [c for c in candidates if c[1] is Condition.AL]
    return exact[0] if exact else candidates[0]


def _parse_operand_list(text: str) -> List[str]:
    """Split an operand string on commas, respecting [] memory brackets."""
    operands: List[str] = []
    depth = 0
    current = []
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            operands.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        operands.append(tail)
    if depth != 0:
        raise AssemblerError(f"unbalanced brackets in operands {text!r}")
    return operands


def _parse_register(token: str, line_no: int) -> "Register":
    name = token.strip().lower()
    if name not in REGISTER_NAMES:
        raise AssemblerError(f"line {line_no}: expected register, got {token!r}")
    return REGISTER_NAMES[name]


def _parse_immediate(token: str, line_no: int) -> int:
    token = token.strip()
    if not token.startswith("#"):
        raise AssemblerError(f"line {line_no}: expected immediate '#n', got {token!r}")
    try:
        return int(token[1:], 0)
    except ValueError:
        raise AssemblerError(f"line {line_no}: bad immediate {token!r}") from None


def _assemble_statement(mnemonic: str, operand_text: str, line_no: int) -> Instruction:
    opcode, condition = _split_mnemonic(mnemonic)
    operands = _parse_operand_list(operand_text) if operand_text else []

    if opcode in (Opcode.B, Opcode.BL):
        if len(operands) != 1:
            raise AssemblerError(f"line {line_no}: {mnemonic} takes one target label")
        return Instruction(opcode, condition=condition, target=operands[0])

    if opcode in (Opcode.RET, Opcode.NOP):
        if operands:
            raise AssemblerError(f"line {line_no}: {mnemonic} takes no operands")
        return Instruction(opcode, condition=condition)

    if opcode in (Opcode.LDR, Opcode.STR, Opcode.LDRB, Opcode.STRB):
        if len(operands) != 2:
            raise AssemblerError(
                f"line {line_no}: {mnemonic} needs 'rd, [rn(, #imm)]'"
            )
        rd = _parse_register(operands[0], line_no)
        match = _MEM_RE.match(operands[1])
        if not match:
            raise AssemblerError(
                f"line {line_no}: bad memory operand {operands[1]!r}"
            )
        rn = _parse_register(match.group(1), line_no)
        imm = int(match.group(2)) if match.group(2) else 0
        return Instruction(opcode, rd=rd, rn=rn, imm=imm, condition=condition)

    signature = OPERAND_SIGNATURES[opcode]
    if len(operands) != len(signature):
        raise AssemblerError(
            f"line {line_no}: {mnemonic} expects {len(signature)} operands, "
            f"got {len(operands)}"
        )
    fields = {"rd": None, "rn": None, "rm": None, "imm": 0}
    for slot, token in zip(signature, operands):
        if slot == "i":
            fields["imm"] = _parse_immediate(token, line_no)
        else:
            fields["r" + slot] = _parse_register(token, line_no)
    return Instruction(opcode, condition=condition, **fields)


def assemble(source: str) -> AssemblyUnit:
    """Assemble ``source`` text into instructions and a label table."""
    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}
    for line_no, raw in enumerate(source.splitlines(), start=1):
        # ';' and '@' start comments ('#' always introduces an immediate).
        text = raw.split(";")[0].split("@")[0].strip()
        while text:
            match = _LABEL_RE.match(text)
            if match:
                label, text = match.group(1), match.group(2).strip()
                if label in labels:
                    raise AssemblerError(f"line {line_no}: duplicate label {label!r}")
                labels[label] = len(instructions)
                continue
            parts = text.split(None, 1)
            mnemonic = parts[0]
            operand_text = parts[1] if len(parts) > 1 else ""
            instructions.append(_assemble_statement(mnemonic, operand_text, line_no))
            text = ""
    for label, index in labels.items():
        if index > len(instructions):
            raise AssemblerError(f"label {label!r} points past end of program")
    return AssemblyUnit(tuple(instructions), labels)
