"""Register file definition for the ARM-like ISA.

Sixteen general-purpose registers.  As on ARM, three of them have
conventional roles that the assembler accepts as aliases: ``sp`` (r13),
``lr`` (r14) and ``pc`` (r15).
"""

from __future__ import annotations

import enum

__all__ = ["Register", "REGISTER_NAMES", "register_by_name"]


class Register(enum.IntEnum):
    """General-purpose register numbers."""

    R0 = 0
    R1 = 1
    R2 = 2
    R3 = 3
    R4 = 4
    R5 = 5
    R6 = 6
    R7 = 7
    R8 = 8
    R9 = 9
    R10 = 10
    R11 = 11
    R12 = 12
    SP = 13
    LR = 14
    PC = 15

    @property
    def canonical_name(self) -> str:
        """The name the disassembler prints (``r0`` ... ``r12``, ``sp``...)."""
        if self is Register.SP:
            return "sp"
        if self is Register.LR:
            return "lr"
        if self is Register.PC:
            return "pc"
        return f"r{int(self)}"


#: Mapping of every accepted register spelling to its Register value.
REGISTER_NAMES = {f"r{i}": Register(i) for i in range(16)}
REGISTER_NAMES.update({"sp": Register.SP, "lr": Register.LR, "pc": Register.PC})


def register_by_name(name: str) -> Register:
    """Look up a register by its textual name (case-insensitive)."""
    try:
        return REGISTER_NAMES[name.strip().lower()]
    except KeyError:
        raise KeyError(f"unknown register name {name!r}") from None
