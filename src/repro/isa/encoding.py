"""Binary encoding of instructions into 32-bit words.

Word layout (bit 31 is the most significant):

* ``[31:27]`` opcode (5 bits)
* ``[26:24]`` condition code (3 bits)

For register-form instructions:

* ``[23:20]`` rd, ``[19:16]`` rn, ``[15:12]`` rm
* ``[11:0]``  signed 12-bit immediate

For branches (``b``, ``bl``): ``[23:0]`` is a signed 24-bit PC-relative word
offset, as on ARM.  Symbolic targets must be resolved to an offset before
encoding, which is why :func:`encode_instruction` takes the instruction's own
address and a symbol table.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.errors import EncodingError
from repro.isa.instructions import Condition, Instruction, Opcode, INSTRUCTION_SIZE
from repro.isa.registers import Register
from repro.utils.bitops import bit_field, mask

__all__ = ["encode_instruction", "decode_instruction", "OPERAND_SIGNATURES"]

_IMM_BITS = 12
_BRANCH_BITS = 24

#: Which operand fields each opcode uses, as a string over {d, n, m, i}.
OPERAND_SIGNATURES: Mapping[Opcode, str] = {
    Opcode.ADD: "dnm",
    Opcode.SUB: "dnm",
    Opcode.AND: "dnm",
    Opcode.ORR: "dnm",
    Opcode.EOR: "dnm",
    Opcode.LSL: "dni",
    Opcode.LSR: "dni",
    Opcode.MOV: "di",
    Opcode.MVN: "dm",
    Opcode.CMP: "nm",
    Opcode.MUL: "dnm",
    Opcode.MLA: "dnm",
    Opcode.LDR: "dni",
    Opcode.STR: "dni",
    Opcode.LDRB: "dni",
    Opcode.STRB: "dni",
    Opcode.B: "",
    Opcode.BL: "",
    Opcode.RET: "",
    Opcode.NOP: "",
}


def _signed_to_field(value: int, nbits: int, what: str) -> int:
    lo = -(1 << (nbits - 1))
    hi = (1 << (nbits - 1)) - 1
    if not lo <= value <= hi:
        raise EncodingError(f"{what} {value} out of signed {nbits}-bit range [{lo}, {hi}]")
    return value & mask(nbits)


def _field_to_signed(value: int, nbits: int) -> int:
    sign_bit = 1 << (nbits - 1)
    return (value & mask(nbits)) - ((value & sign_bit) << 1)


def _reg_field(reg: Optional[Register]) -> int:
    return 0 if reg is None else int(reg)


def encode_instruction(
    instruction: Instruction,
    address: int = 0,
    symbols: Optional[Mapping[str, int]] = None,
) -> int:
    """Encode ``instruction`` (placed at ``address``) into a 32-bit word.

    ``symbols`` maps label names to byte addresses and is consulted to
    resolve the symbolic target of a branch or call.  A branch may instead
    carry a pre-resolved word offset in ``imm`` (with ``target`` None).
    """
    word = (int(instruction.opcode) & mask(5)) << 27
    word |= (int(instruction.condition) & mask(3)) << 24

    if instruction.opcode in (Opcode.B, Opcode.BL):
        if instruction.target is not None:
            if symbols is None or instruction.target not in symbols:
                raise EncodingError(
                    f"cannot encode branch to unresolved target {instruction.target!r}"
                )
            delta = symbols[instruction.target] - address
            if delta % INSTRUCTION_SIZE:
                raise EncodingError(
                    f"branch target {instruction.target!r} not instruction-aligned"
                )
            offset_words = delta // INSTRUCTION_SIZE
        else:
            offset_words = instruction.imm
        word |= _signed_to_field(offset_words, _BRANCH_BITS, "branch offset")
        return word

    word |= _reg_field(instruction.rd) << 20
    word |= _reg_field(instruction.rn) << 16
    word |= _reg_field(instruction.rm) << 12
    word |= _signed_to_field(instruction.imm, _IMM_BITS, "immediate")
    return word


def decode_instruction(word: int) -> Instruction:
    """Decode a 32-bit word back into an :class:`Instruction`.

    Branch targets come back as resolved word offsets in ``imm`` (the
    symbolic label is not recoverable from machine code).
    """
    if not 0 <= word <= mask(32):
        raise EncodingError(f"instruction word {word:#x} does not fit in 32 bits")
    try:
        opcode = Opcode(bit_field(word, 27, 5))
    except ValueError:
        raise EncodingError(f"unknown opcode in word {word:#010x}") from None
    try:
        condition = Condition(bit_field(word, 24, 3))
    except ValueError:
        raise EncodingError(f"unknown condition in word {word:#010x}") from None

    if opcode in (Opcode.B, Opcode.BL):
        offset = _field_to_signed(bit_field(word, 0, _BRANCH_BITS), _BRANCH_BITS)
        return Instruction(opcode, condition=condition, imm=offset)

    signature = OPERAND_SIGNATURES[opcode]
    rd = Register(bit_field(word, 20, 4)) if "d" in signature else None
    rn = Register(bit_field(word, 16, 4)) if "n" in signature else None
    rm = Register(bit_field(word, 12, 4)) if "m" in signature else None
    imm = _field_to_signed(bit_field(word, 0, _IMM_BITS), _IMM_BITS) if "i" in signature else 0
    return Instruction(opcode, rd=rd, rn=rn, rm=rm, imm=imm, condition=condition)
