"""Textual rendering of instructions — the inverse of the assembler."""

from __future__ import annotations

from typing import Iterable, List

from repro.isa.encoding import OPERAND_SIGNATURES
from repro.isa.instructions import Instruction, Opcode

__all__ = ["format_instruction", "disassemble"]


def format_instruction(instruction: Instruction) -> str:
    """Render one instruction in assembler syntax."""
    mnemonic = instruction.mnemonic
    opcode = instruction.opcode

    if opcode in (Opcode.B, Opcode.BL):
        if instruction.target is not None:
            return f"{mnemonic} {instruction.target}"
        return f"{mnemonic} .{instruction.imm:+d}"

    if opcode in (Opcode.RET, Opcode.NOP):
        return mnemonic

    if instruction.is_memory_access:
        base = instruction.rn.canonical_name
        if instruction.imm:
            return f"{mnemonic} {instruction.rd.canonical_name}, [{base}, #{instruction.imm}]"
        return f"{mnemonic} {instruction.rd.canonical_name}, [{base}]"

    operands: List[str] = []
    for slot in OPERAND_SIGNATURES[opcode]:
        if slot == "d":
            operands.append(instruction.rd.canonical_name)
        elif slot == "n":
            operands.append(instruction.rn.canonical_name)
        elif slot == "m":
            operands.append(instruction.rm.canonical_name)
        else:
            operands.append(f"#{instruction.imm}")
    if operands:
        return f"{mnemonic} {', '.join(operands)}"
    return mnemonic


def disassemble(instructions: Iterable[Instruction], base_address: int = 0) -> str:
    """Render a sequence of instructions with addresses, one per line."""
    lines = []
    address = base_address
    for instruction in instructions:
        lines.append(f"{address:#010x}:  {format_instruction(instruction)}")
        address += instruction.size
    return "\n".join(lines)
