"""A small ARM-like 32-bit RISC ISA.

This is the substrate the layout engine rearranges: fixed-width 4-byte
instructions, sixteen general-purpose registers, and a compact set of ALU,
multiply-accumulate, memory, and control-flow operations matching the
functional units of the XScale-like machine in Table 1 of the paper.

The ISA is deliberately simple — the way-placement technique needs only the
*addresses* and *control flow* of instructions — but it is fully encodable:
every instruction round-trips through a 32-bit word, and a tiny assembler /
disassembler make examples and tests readable.
"""

from repro.isa.registers import Register, REGISTER_NAMES, register_by_name
from repro.isa.instructions import (
    Opcode,
    Condition,
    Instruction,
    INSTRUCTION_SIZE,
)
from repro.isa.encoding import encode_instruction, decode_instruction
from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble, format_instruction

__all__ = [
    "Register",
    "REGISTER_NAMES",
    "register_by_name",
    "Opcode",
    "Condition",
    "Instruction",
    "INSTRUCTION_SIZE",
    "encode_instruction",
    "decode_instruction",
    "assemble",
    "disassemble",
    "format_instruction",
]
