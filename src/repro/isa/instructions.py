"""Instruction definitions for the ARM-like ISA.

An :class:`Instruction` is an immutable record of an opcode, up to three
register operands, an immediate, an optional condition code, and — for
control-flow instructions — a symbolic target label.  Targets stay symbolic
until the layout engine assigns block addresses, mirroring how a link-time
rewriter like DIABLO works.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.isa.registers import Register

__all__ = ["Opcode", "Condition", "Instruction", "INSTRUCTION_SIZE"]

#: Every instruction occupies four bytes, as on ARM (no Thumb).
INSTRUCTION_SIZE = 4


class Opcode(enum.IntEnum):
    """Operation codes, grouped by the functional unit that executes them."""

    # ALU
    ADD = 0
    SUB = 1
    AND = 2
    ORR = 3
    EOR = 4
    LSL = 5
    LSR = 6
    MOV = 7
    MVN = 8
    CMP = 9
    # Multiply-accumulate unit
    MUL = 10
    MLA = 11
    # Load/store unit
    LDR = 12
    STR = 13
    LDRB = 14
    STRB = 15
    # Control flow
    B = 16
    BL = 17
    RET = 18
    # Misc
    NOP = 19

    @property
    def is_control_flow(self) -> bool:
        return self in (Opcode.B, Opcode.BL, Opcode.RET)


class Condition(enum.IntEnum):
    """Condition codes for predicated branches (subset of ARM's)."""

    AL = 0  # always
    EQ = 1
    NE = 2
    LT = 3
    GE = 4
    GT = 5
    LE = 6

    @property
    def suffix(self) -> str:
        """Mnemonic suffix (empty for AL)."""
        return "" if self is Condition.AL else self.name.lower()


@dataclass(frozen=True)
class Instruction:
    """One machine instruction.

    ``target`` carries the symbolic destination of a branch or call; it is
    resolved to a PC-relative offset only when the instruction is encoded at
    a concrete address.
    """

    opcode: Opcode
    rd: Optional[Register] = None
    rn: Optional[Register] = None
    rm: Optional[Register] = None
    imm: int = 0
    condition: Condition = Condition.AL
    target: Optional[str] = field(default=None, compare=True)

    @property
    def size(self) -> int:
        return INSTRUCTION_SIZE

    @property
    def is_branch(self) -> bool:
        """True for any instruction that may redirect the fetch stream."""
        return self.opcode.is_control_flow

    @property
    def is_call(self) -> bool:
        return self.opcode is Opcode.BL

    @property
    def is_return(self) -> bool:
        return self.opcode is Opcode.RET

    @property
    def is_conditional(self) -> bool:
        """True when execution of the operation depends on the flags."""
        return self.condition is not Condition.AL

    @property
    def is_memory_access(self) -> bool:
        return self.opcode in (Opcode.LDR, Opcode.STR, Opcode.LDRB, Opcode.STRB)

    @property
    def mnemonic(self) -> str:
        return self.opcode.name.lower() + self.condition.suffix

    def __str__(self) -> str:  # pragma: no cover - convenience only
        from repro.isa.disassembler import format_instruction

        return format_instruction(self)
