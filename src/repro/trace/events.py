"""Compressed line-event traces: the input format of every fetch scheme.

One event = the fetch stream entering a(nother) instruction cache line:

* ``line_addrs[i]`` — byte address of the line (aligned to the line size);
* ``counts[i]``     — how many consecutive instruction fetches hit this line
  before the stream moves on (>= 1);
* ``slots[i]``      — how the line was *entered*: :data:`SEQUENTIAL_SLOT`
  when the previous fetch was at the immediately preceding address (falling
  off the previous line or straight-line code), otherwise the slot index
  (instruction position within its line) of the branch instruction that
  jumped here.  Way-memoization keys its per-line links on exactly this
  distinction (8 branch-slot links + 1 sequential link per 32-byte line).

Consecutive events always have different line addresses; re-entering the
same line after visiting another produces a fresh event.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError

__all__ = ["LineEventTrace", "SEQUENTIAL_SLOT"]

#: Slot value marking a sequential (fall-off-the-end) line entry.
SEQUENTIAL_SLOT = -1


@dataclass(frozen=True)
class LineEventTrace:
    """Immutable compressed fetch trace (see module docstring)."""

    line_size: int
    line_addrs: np.ndarray  # int64
    counts: np.ndarray  # int32
    slots: np.ndarray  # int16

    def __post_init__(self) -> None:
        n = self.line_addrs.shape[0]
        if self.counts.shape[0] != n or self.slots.shape[0] != n:
            raise TraceError("line-event arrays must have equal length")
        if n and int(self.counts.min()) < 1:
            raise TraceError("every line event must cover at least one fetch")

    @property
    def num_events(self) -> int:
        return int(self.line_addrs.shape[0])

    @property
    def num_fetches(self) -> int:
        return int(self.counts.sum()) if self.num_events else 0

    @property
    def compression_ratio(self) -> float:
        """Fetches per event — how much the line encoding compressed."""
        if self.num_events == 0:
            return 0.0
        return self.num_fetches / self.num_events

    def touched_lines(self) -> np.ndarray:
        """Sorted unique line addresses in the trace (the code footprint)."""
        return np.unique(self.line_addrs)

    def segment(self, start: int, end: int) -> "LineEventTrace":
        """Events ``[start, end)`` as a new trace (views, not copies).

        Used by the adaptive-WPA controller to feed a scheme window by
        window; note the first event of a segment keeps its original entry
        slot, so segmented replay is exactly equivalent to whole-trace
        replay for every scheme.
        """
        if not 0 <= start <= end <= self.num_events:
            raise TraceError(
                f"segment [{start}, {end}) outside trace of {self.num_events} events"
            )
        return LineEventTrace(
            line_size=self.line_size,
            line_addrs=self.line_addrs[start:end],
            counts=self.counts[start:end],
            slots=self.slots[start:end],
        )
