"""Persistence of traces: generate once, replay everywhere.

Block traces and line-event traces are the expensive artefacts of the
pipeline; saving them as compressed ``.npz`` files lets a user (or a CI
job) split trace generation from cache simulation, or feed externally
generated traces into the schemes — the format is just arrays plus a small
metadata record.

Archives may additionally carry a *cache key*: an opaque string recording
what the trace was derived from.  The persistent artifact cache
(:class:`repro.engine.store.TraceStore`) stamps every entry with its full
content key and passes ``expected_key`` on load, so a stale or colliding
entry raises :class:`~repro.errors.TraceError` instead of silently feeding
a wrong trace into an experiment.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.errors import TraceError
from repro.trace.events import LineEventTrace
from repro.trace.executor import BlockTrace

__all__ = ["save_events", "load_events", "save_block_trace", "load_block_trace"]

_EVENTS_KIND = "repro-line-events-v1"
_BLOCKS_KIND = "repro-block-trace-v1"


def _check_key(archive, path, expected_key: Optional[str]) -> None:
    if expected_key is None:
        return
    stored = str(archive["cache_key"]) if "cache_key" in archive else ""
    if stored != expected_key:
        raise TraceError(
            f"{path} was derived under a different key (stale cache entry)"
        )


def save_events(
    events: LineEventTrace, path: Union[str, Path], key: str = ""
) -> None:
    """Write a line-event trace as a compressed ``.npz`` archive."""
    np.savez_compressed(
        Path(path),
        kind=np.array(_EVENTS_KIND),
        cache_key=np.array(key),
        line_size=np.array(events.line_size, dtype=np.int64),
        line_addrs=events.line_addrs,
        counts=events.counts,
        slots=events.slots,
    )


def load_events(
    path: Union[str, Path], expected_key: Optional[str] = None
) -> LineEventTrace:
    """Read a line-event trace written by :func:`save_events`.

    ``expected_key`` (when given) must match the key the archive was saved
    with; a mismatch raises :class:`TraceError` so cache consumers re-derive.
    """
    try:
        archive = np.load(Path(path), allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise TraceError(f"cannot load events from {path}: {exc}") from exc
    with archive:
        if "kind" not in archive or str(archive["kind"]) != _EVENTS_KIND:
            raise TraceError(f"{path} is not a line-event trace archive")
        _check_key(archive, path, expected_key)
        return LineEventTrace(
            line_size=int(archive["line_size"]),
            line_addrs=archive["line_addrs"].astype(np.int64),
            counts=archive["counts"].astype(np.int32),
            slots=archive["slots"].astype(np.int16),
        )


def save_block_trace(
    trace: BlockTrace, path: Union[str, Path], key: str = ""
) -> None:
    """Write a block trace as a compressed ``.npz`` archive."""
    np.savez_compressed(
        Path(path),
        kind=np.array(_BLOCKS_KIND),
        cache_key=np.array(key),
        program_name=np.array(trace.program_name),
        uids=trace.uids,
        num_instructions=np.array(trace.num_instructions, dtype=np.int64),
        num_program_runs=np.array(trace.num_program_runs, dtype=np.int64),
    )


def load_block_trace(
    path: Union[str, Path], expected_key: Optional[str] = None
) -> BlockTrace:
    """Read a block trace written by :func:`save_block_trace`.

    ``expected_key`` behaves as in :func:`load_events`.
    """
    try:
        archive = np.load(Path(path), allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise TraceError(f"cannot load block trace from {path}: {exc}") from exc
    with archive:
        if "kind" not in archive or str(archive["kind"]) != _BLOCKS_KIND:
            raise TraceError(f"{path} is not a block-trace archive")
        _check_key(archive, path, expected_key)
        return BlockTrace(
            program_name=str(archive["program_name"]),
            uids=archive["uids"].astype(np.int32),
            num_instructions=int(archive["num_instructions"]),
            num_program_runs=int(archive["num_program_runs"]),
        )
