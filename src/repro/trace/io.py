"""Persistence of traces: generate once, replay everywhere.

Block traces and line-event traces are the expensive artefacts of the
pipeline.  Two on-disk formats live here:

* **v1** — one compressed ``.npz`` archive per trace.  Compact and
  self-contained, but every load decompresses the whole archive into
  fresh heap copies.
* **v2** — one *entry directory* per trace: a ``meta.json`` record plus
  one raw ``.npy`` file per array, saved in the canonical replay dtypes.
  Loads open the members with ``mmap_mode="r"`` and return **read-only
  views backed by the page cache** — no decompression, no copies, and
  every process mapping the same entry shares the same physical pages.

Either format may carry a *cache key*: an opaque string recording what
the trace was derived from.  The persistent artifact cache
(:class:`repro.engine.store.TraceStore`) stamps every entry with its full
content key and passes ``expected_key`` on load, so a stale or colliding
entry raises :class:`~repro.errors.TraceError` instead of silently feeding
a wrong trace into an experiment.  Loads of both formats return traces
whose arrays are marked non-writeable: trace arrays are shared inputs
(mmap'd files, shared-memory segments), and no engine tier may mutate
them.
"""

from __future__ import annotations

import json
import mmap
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.errors import TraceError
from repro.trace.events import LineEventTrace
from repro.trace.executor import BlockTrace

__all__ = [
    "save_events",
    "load_events",
    "save_events_v2",
    "load_events_v2",
    "save_block_trace",
    "load_block_trace",
    "save_block_trace_v2",
    "load_block_trace_v2",
    "read_cache_key",
]

_EVENTS_KIND = "repro-line-events-v1"
_BLOCKS_KIND = "repro-block-trace-v1"
_EVENTS_KIND_V2 = "repro-line-events-v2"
_BLOCKS_KIND_V2 = "repro-block-trace-v2"

#: Canonical member dtypes of a v2 entry.  Saving normalises to these, so
#: loads hand the replay kernels mmap'd views directly — no ``.astype``
#: copies on the hot path.
_EVENT_MEMBERS: Tuple[Tuple[str, type], ...] = (
    ("line_addrs", np.int64),
    ("counts", np.int32),
    ("slots", np.int16),
)
_BLOCK_MEMBERS: Tuple[Tuple[str, type], ...] = (("uids", np.int32),)


def _read_only(array: np.ndarray) -> np.ndarray:
    if array.flags.writeable:
        array.setflags(write=False)
    return array


def _check_key(archive, path, expected_key: Optional[str]) -> None:
    if expected_key is None:
        return
    stored = str(archive["cache_key"]) if "cache_key" in archive else ""
    if stored != expected_key:
        raise TraceError(
            f"{path} was derived under a different key (stale cache entry)"
        )


def save_events(
    events: LineEventTrace, path: Union[str, Path], key: str = ""
) -> None:
    """Write a line-event trace as a compressed ``.npz`` archive."""
    np.savez_compressed(
        Path(path),
        kind=np.array(_EVENTS_KIND),
        cache_key=np.array(key),
        line_size=np.array(events.line_size, dtype=np.int64),
        line_addrs=events.line_addrs,
        counts=events.counts,
        slots=events.slots,
    )


def load_events(
    path: Union[str, Path], expected_key: Optional[str] = None
) -> LineEventTrace:
    """Read a line-event trace written by :func:`save_events`.

    ``expected_key`` (when given) must match the key the archive was saved
    with; a mismatch raises :class:`TraceError` so cache consumers re-derive.
    """
    try:
        archive = np.load(Path(path), allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise TraceError(f"cannot load events from {path}: {exc}") from exc
    with archive:
        if "kind" not in archive or str(archive["kind"]) != _EVENTS_KIND:
            raise TraceError(f"{path} is not a line-event trace archive")
        _check_key(archive, path, expected_key)
        return LineEventTrace(
            line_size=int(archive["line_size"]),
            line_addrs=_read_only(archive["line_addrs"].astype(np.int64)),
            counts=_read_only(archive["counts"].astype(np.int32)),
            slots=_read_only(archive["slots"].astype(np.int16)),
        )


def save_block_trace(
    trace: BlockTrace, path: Union[str, Path], key: str = ""
) -> None:
    """Write a block trace as a compressed ``.npz`` archive."""
    np.savez_compressed(
        Path(path),
        kind=np.array(_BLOCKS_KIND),
        cache_key=np.array(key),
        program_name=np.array(trace.program_name),
        uids=trace.uids,
        num_instructions=np.array(trace.num_instructions, dtype=np.int64),
        num_program_runs=np.array(trace.num_program_runs, dtype=np.int64),
    )


def load_block_trace(
    path: Union[str, Path], expected_key: Optional[str] = None
) -> BlockTrace:
    """Read a block trace written by :func:`save_block_trace`.

    ``expected_key`` behaves as in :func:`load_events`.
    """
    try:
        archive = np.load(Path(path), allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise TraceError(f"cannot load block trace from {path}: {exc}") from exc
    with archive:
        if "kind" not in archive or str(archive["kind"]) != _BLOCKS_KIND:
            raise TraceError(f"{path} is not a block-trace archive")
        _check_key(archive, path, expected_key)
        return BlockTrace(
            program_name=str(archive["program_name"]),
            uids=_read_only(archive["uids"].astype(np.int32)),
            num_instructions=int(archive["num_instructions"]),
            num_program_runs=int(archive["num_program_runs"]),
        )


def read_cache_key(path: Union[str, Path]) -> Optional[str]:
    """The cache key embedded in a v1 archive (``None`` when absent/empty).

    Used by bulk migration, which has only the entry on disk and must
    recover the key it was derived under.  Raises like :func:`np.load`
    on unreadable archives.
    """
    with np.load(Path(path), allow_pickle=False) as archive:
        if "cache_key" not in archive:
            return None
        return str(archive["cache_key"]) or None


# ---------------------------------------------------------------------------
# Format v2: mmap-able entry directories
# ---------------------------------------------------------------------------


def _save_entry_v2(
    entry: Path,
    kind: str,
    key: str,
    scalars: Dict[str, Any],
    members: Dict[str, np.ndarray],
) -> None:
    entry = Path(entry)
    entry.mkdir(parents=True, exist_ok=True)
    for name, array in members.items():
        np.save(entry / f"{name}.npy", array)
    meta = {"kind": kind, "cache_key": key, **scalars}
    (entry / "meta.json").write_text(json.dumps(meta, sort_keys=True))


def _load_meta_v2(
    entry: Path, expected_kind: str, expected_key: Optional[str]
) -> Dict[str, Any]:
    try:
        meta = json.loads((entry / "meta.json").read_text())
    except (FileNotFoundError, NotADirectoryError) as exc:
        raise TraceError(f"{entry} is missing its meta record") from exc
    except ValueError as exc:
        raise TraceError(f"{entry} has a corrupt meta record: {exc}") from exc
    if not isinstance(meta, dict) or meta.get("kind") != expected_kind:
        raise TraceError(f"{entry} is not a {expected_kind} entry")
    if expected_key is not None and meta.get("cache_key", "") != expected_key:
        raise TraceError(
            f"{entry} was derived under a different key (stale cache entry)"
        )
    return meta


def _mmap_member(member: Path) -> Optional[np.ndarray]:
    """Map a 1-d ``.npy`` file read-only; ``None`` when the fast path can't.

    ``np.load(mmap_mode=...)`` constructs an ``np.memmap`` — ~90us of
    Python per member, which dominates a warm v2 load.  Parsing the
    header and wrapping an ``mmap.mmap`` in ``np.frombuffer`` maps the
    same pages in a fraction of that, keeping warm loads a near-constant
    few file opens.  Raises ``FileNotFoundError``/``OSError`` like
    ``open``; returns ``None`` on format surprises (exotic ``.npy``
    version, object dtype, not 1-d) so the caller can fall back.
    """
    from numpy.lib import format as npy_format

    with open(member, "rb") as stream:
        version = npy_format.read_magic(stream)
        if version == (1, 0):
            shape, fortran, dtype = npy_format.read_array_header_1_0(stream)
        elif version == (2, 0):
            shape, fortran, dtype = npy_format.read_array_header_2_0(stream)
        else:
            return None
        if dtype.hasobject or len(shape) != 1:
            return None
        offset = stream.tell()
        buffer = mmap.mmap(stream.fileno(), 0, access=mmap.ACCESS_READ)
    return np.frombuffer(buffer, dtype=dtype, count=shape[0], offset=offset)


def _load_member_v2(entry: Path, name: str, dtype: type) -> np.ndarray:
    member = entry / f"{name}.npy"
    try:
        array = _mmap_member(member)
    except FileNotFoundError as exc:
        raise TraceError(f"{entry} is missing member {name}") from exc
    except ValueError:
        # Torn header, or a platform that cannot map this file.
        array = None
    if array is None:
        # Fall back to a plain load, which re-raises on genuinely corrupt
        # members; transient OSErrors keep propagating to the caller.
        try:
            array = np.load(member, allow_pickle=False)
        except ValueError as exc:
            raise TraceError(f"{entry} member {name} is corrupt: {exc}") from exc
    if array.dtype != np.dtype(dtype) or array.ndim != 1:
        raise TraceError(
            f"{entry} member {name} has dtype {array.dtype}/{array.ndim}d, "
            f"expected 1-d {np.dtype(dtype)}"
        )
    return _read_only(array)


def save_events_v2(
    events: LineEventTrace, path: Union[str, Path], key: str = ""
) -> None:
    """Write a line-event trace as a v2 mmap-able entry directory."""
    _save_entry_v2(
        Path(path),
        _EVENTS_KIND_V2,
        key,
        {"line_size": int(events.line_size)},
        {
            name: np.ascontiguousarray(getattr(events, name), dtype=dtype)
            for name, dtype in _EVENT_MEMBERS
        },
    )


def load_events_v2(
    path: Union[str, Path], expected_key: Optional[str] = None
) -> LineEventTrace:
    """Read a v2 line-event entry as read-only mmap'd views.

    Corrupt or foreign entries raise :class:`TraceError`; transient
    filesystem errors (e.g. permissions) propagate as :class:`OSError` so
    callers can keep the entry.
    """
    entry = Path(path)
    meta = _load_meta_v2(entry, _EVENTS_KIND_V2, expected_key)
    try:
        line_size = int(meta["line_size"])
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceError(f"{entry} has a corrupt line_size record") from exc
    arrays = {
        name: _load_member_v2(entry, name, dtype) for name, dtype in _EVENT_MEMBERS
    }
    return LineEventTrace(line_size=line_size, **arrays)


def save_block_trace_v2(
    trace: BlockTrace, path: Union[str, Path], key: str = ""
) -> None:
    """Write a block trace as a v2 mmap-able entry directory."""
    _save_entry_v2(
        Path(path),
        _BLOCKS_KIND_V2,
        key,
        {
            "program_name": str(trace.program_name),
            "num_instructions": int(trace.num_instructions),
            "num_program_runs": int(trace.num_program_runs),
        },
        {
            name: np.ascontiguousarray(getattr(trace, name), dtype=dtype)
            for name, dtype in _BLOCK_MEMBERS
        },
    )


def load_block_trace_v2(
    path: Union[str, Path], expected_key: Optional[str] = None
) -> BlockTrace:
    """Read a v2 block-trace entry as read-only mmap'd views.

    Error behaviour matches :func:`load_events_v2`.
    """
    entry = Path(path)
    meta = _load_meta_v2(entry, _BLOCKS_KIND_V2, expected_key)
    try:
        program_name = str(meta["program_name"])
        num_instructions = int(meta["num_instructions"])
        num_program_runs = int(meta["num_program_runs"])
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceError(f"{entry} has a corrupt scalar record") from exc
    return BlockTrace(
        program_name=program_name,
        uids=_load_member_v2(entry, "uids", np.int32),
        num_instructions=num_instructions,
        num_program_runs=num_program_runs,
    )
