"""The CFG walker: turns a program plus branch behaviour into a block trace.

The walker is the reproduction's stand-in for executing a real binary on
XTREM.  It follows the ICFG block by block, resolving conditional branches
through a :class:`~repro.trace.branch_model.BranchModelMap` and calls/returns
through an explicit call stack.  When the entry function returns, the walk
restarts from the program entry (modelling repeated invocations of the
workload) until the instruction budget is reached.

The result, a :class:`BlockTrace`, is *layout independent*: it can be turned
into fetch streams under any number of code layouts without re-walking.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import TraceError
from repro.program.basic_block import BlockKind
from repro.program.program import Program
from repro.trace.branch_model import BranchModelMap

__all__ = ["BlockTrace", "CfgWalker"]

_MAX_CALL_DEPTH = 512


@dataclass(frozen=True)
class BlockTrace:
    """A walked execution: block uids in execution order plus summary data."""

    program_name: str
    uids: np.ndarray  # int32, one entry per basic-block execution
    num_instructions: int
    num_program_runs: int  # how many times the entry function completed

    @property
    def num_block_executions(self) -> int:
        return int(self.uids.shape[0])

    def block_counts(self, num_uids: int) -> np.ndarray:
        """Execution count per block uid (length ``num_uids``)."""
        return np.bincount(self.uids, minlength=num_uids)


class CfgWalker:
    """Walks a program's ICFG generating block traces.

    Parameters
    ----------
    program:
        The program to execute.
    branch_models:
        Behaviour of each conditional branch; cloned per walk via ``fresh()``.
    seed:
        Seed for branch-resolution randomness, making walks reproducible.
    """

    def __init__(self, program: Program, branch_models: BranchModelMap, seed: int = 0):
        self._program = program
        self._branch_models = branch_models
        self._seed = seed
        # Pre-resolve every block's successor structure into flat arrays so
        # the hot loop below never touches Program or string labels.
        cfg = program.cfg
        max_uid = max(block.uid for block in program.blocks())
        self._kind: List[Optional[BlockKind]] = [None] * (max_uid + 1)
        self._size: List[int] = [0] * (max_uid + 1)
        self._taken: List[int] = [-1] * (max_uid + 1)
        self._fall: List[int] = [-1] * (max_uid + 1)
        self._callee_entry: List[int] = [-1] * (max_uid + 1)
        for block in program.blocks():
            uid = block.uid
            self._kind[uid] = block.kind
            self._size[uid] = block.num_instructions
            if block.kind is BlockKind.JUMP:
                self._taken[uid] = program.uid_of_label(
                    *_split(block.function, block.taken_label)
                )
            elif block.kind is BlockKind.CONDJUMP:
                self._taken[uid] = program.uid_of_label(
                    *_split(block.function, block.taken_label)
                )
                self._fall[uid] = program.uid_of_label(
                    *_split(block.function, block.fall_label)
                )
            elif block.kind is BlockKind.CALL:
                self._callee_entry[uid] = program.entry_uid_of(block.callee)
                self._fall[uid] = program.uid_of_label(
                    *_split(block.function, block.fall_label)
                )
            elif block.kind is BlockKind.FALLTHROUGH:
                self._fall[uid] = program.uid_of_label(
                    *_split(block.function, block.fall_label)
                )
        del cfg

    def walk(self, max_instructions: int, max_block_executions: int = 0) -> BlockTrace:
        """Generate a trace of at least ``max_instructions`` fetches.

        The walk stops at the first block *boundary* at or past the budget,
        so the trace always contains whole blocks.  ``max_block_executions``
        is a secondary safety valve (0 = derived from the budget).
        """
        if max_instructions <= 0:
            raise TraceError(f"instruction budget must be positive, got {max_instructions}")
        if max_block_executions <= 0:
            max_block_executions = 4 * max_instructions  # every block >= 1 instr

        rng = random.Random(self._seed)
        models = self._branch_models.fresh()
        model_for = models.model_for

        kind = self._kind
        size = self._size
        taken = self._taken
        fall = self._fall
        callee_entry = self._callee_entry
        cond = BlockKind.CONDJUMP
        jump = BlockKind.JUMP
        call = BlockKind.CALL
        ret = BlockKind.RETURN

        entry_uid = self._program.entry_block.uid
        trace: List[int] = []
        append = trace.append
        stack: List[int] = []
        instructions = 0
        runs = 0
        current = entry_uid

        while instructions < max_instructions:
            if len(trace) >= max_block_executions:
                raise TraceError(
                    f"block-execution bound {max_block_executions} hit before the "
                    f"instruction budget; the walk is likely stuck in a zero-progress loop"
                )
            append(current)
            instructions += size[current]
            block_kind = kind[current]
            if block_kind is cond:
                if model_for(current).take(rng):
                    current = taken[current]
                else:
                    current = fall[current]
            elif block_kind is jump:
                current = taken[current]
            elif block_kind is call:
                if len(stack) >= _MAX_CALL_DEPTH:
                    raise TraceError(
                        f"call depth exceeded {_MAX_CALL_DEPTH}; "
                        f"unbounded recursion in program {self._program.name!r}"
                    )
                stack.append(fall[current])
                current = callee_entry[current]
            elif block_kind is ret:
                if stack:
                    current = stack.pop()
                else:
                    runs += 1  # entry function finished; restart the workload
                    current = entry_uid
            else:  # FALLTHROUGH
                current = fall[current]

        return BlockTrace(
            program_name=self._program.name,
            uids=np.asarray(trace, dtype=np.int32),
            num_instructions=instructions,
            num_program_runs=runs,
        )


def _split(function: str, label: str):
    """Labels may be ``func:label`` qualified or local to ``function``."""
    if ":" in label:
        func, _, local = label.partition(":")
        return func, local
    return function, label
