"""Branch behaviour models: how conditional branches resolve at run time.

A program's CFG says *where* a branch may go; an input determines *how
often*.  Each conditional-branch block is bound to a model:

* :class:`BernoulliBranch` — taken with fixed probability (data-dependent
  forward branches).
* :class:`LoopBranch` — a backward loop branch: on first arrival a trip
  count is drawn, the branch is then taken ``trips - 1`` times and falls
  through once, matching the classic loop pattern.
* :class:`TakenBranch` — always taken (used in tests and for unconditional
  idioms expressed as conditional branches).

Models are stateful per walk; :meth:`BranchModelMap.fresh` clones the map so
separate trace generations don't share loop counters.
"""

from __future__ import annotations

import random
from typing import Dict, Mapping

from repro.errors import TraceError

__all__ = ["BranchModel", "BernoulliBranch", "LoopBranch", "TakenBranch", "BranchModelMap"]


class BranchModel:
    """Interface: decide whether a conditional branch is taken this time."""

    def take(self, rng: random.Random) -> bool:
        raise NotImplementedError

    def clone(self) -> "BranchModel":
        raise NotImplementedError


class BernoulliBranch(BranchModel):
    """Taken with independent probability ``p_taken`` on each execution."""

    __slots__ = ("p_taken",)

    def __init__(self, p_taken: float):
        if not 0.0 <= p_taken <= 1.0:
            raise TraceError(f"p_taken must be in [0, 1], got {p_taken}")
        self.p_taken = p_taken

    def take(self, rng: random.Random) -> bool:
        return rng.random() < self.p_taken

    def clone(self) -> "BernoulliBranch":
        return BernoulliBranch(self.p_taken)

    def __repr__(self) -> str:
        return f"BernoulliBranch(p_taken={self.p_taken})"


class TakenBranch(BranchModel):
    """Always taken."""

    def take(self, rng: random.Random) -> bool:
        return True

    def clone(self) -> "TakenBranch":
        return TakenBranch()

    def __repr__(self) -> str:
        return "TakenBranch()"


class LoopBranch(BranchModel):
    """A backward branch closing a loop.

    On the first execution after loop exit a trip count is drawn uniformly
    from ``[min_trips, max_trips]``; the branch is taken while iterations
    remain.  ``take`` is called once per loop-latch execution, so a drawn
    trip count of ``t`` yields ``t - 1`` taken branches and one fall-through.
    """

    __slots__ = ("min_trips", "max_trips", "_remaining")

    def __init__(self, min_trips: int, max_trips: int):
        if min_trips < 1 or max_trips < min_trips:
            raise TraceError(
                f"need 1 <= min_trips <= max_trips, got [{min_trips}, {max_trips}]"
            )
        self.min_trips = min_trips
        self.max_trips = max_trips
        self._remaining = 0

    def take(self, rng: random.Random) -> bool:
        if self._remaining == 0:
            self._remaining = rng.randint(self.min_trips, self.max_trips)
        self._remaining -= 1
        if self._remaining == 0:
            return False  # loop exits; next arrival draws a fresh trip count
        return True

    def clone(self) -> "LoopBranch":
        return LoopBranch(self.min_trips, self.max_trips)

    def __repr__(self) -> str:
        return f"LoopBranch(min_trips={self.min_trips}, max_trips={self.max_trips})"


class BranchModelMap:
    """Binds conditional-branch block uids to their behaviour models."""

    def __init__(self, models: Mapping[int, BranchModel], default: BranchModel = None):
        self._models: Dict[int, BranchModel] = dict(models)
        self._default = default if default is not None else BernoulliBranch(0.5)

    def model_for(self, uid: int) -> BranchModel:
        return self._models.get(uid, self._default)

    def fresh(self) -> "BranchModelMap":
        """Deep-copy so a new walk starts with pristine loop state."""
        return BranchModelMap(
            {uid: model.clone() for uid, model in self._models.items()},
            self._default.clone(),
        )

    def __len__(self) -> int:
        return len(self._models)
