"""Expansion of block traces into line-event traces under a code layout.

This is where a *layout* becomes a *fetch stream*: each executed block emits
fetches at its assigned addresses, split into cache-line segments, and
adjacent accesses to the same line are merged into single events.  The same
block trace expands differently under the baseline layout and the
way-placement layout — that difference is the entire effect of the paper's
compiler pass.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import LayoutError
from repro.isa.instructions import INSTRUCTION_SIZE
from repro.layout.layouts import Layout
from repro.program.program import Program
from repro.trace.events import LineEventTrace, SEQUENTIAL_SLOT
from repro.trace.executor import BlockTrace
from repro.utils.bitops import log2_exact

__all__ = ["line_events_from_block_trace", "block_line_segments"]


def block_line_segments(
    start_address: int, num_instructions: int, line_size: int
) -> List[Tuple[int, int]]:
    """Split a block at ``start_address`` into ``(line_addr, fetches)`` runs."""
    if num_instructions <= 0:
        raise LayoutError("block must contain at least one instruction")
    segments: List[Tuple[int, int]] = []
    line_mask = ~(line_size - 1)
    remaining = num_instructions
    address = start_address
    while remaining > 0:
        line_addr = address & line_mask
        slots_left = (line_addr + line_size - address) // INSTRUCTION_SIZE
        run = min(remaining, slots_left)
        segments.append((line_addr, run))
        address += run * INSTRUCTION_SIZE
        remaining -= run
    return segments


def line_events_from_block_trace(
    block_trace: BlockTrace,
    program: Program,
    layout: Layout,
    line_size: int,
) -> LineEventTrace:
    """Expand ``block_trace`` into a :class:`LineEventTrace` under ``layout``."""
    log2_exact(line_size, "line size")
    if line_size < INSTRUCTION_SIZE:
        raise LayoutError(f"line size {line_size} smaller than one instruction")

    # Precompute, per block uid, its line segments and last-fetch address.
    # Uid-indexed flat lists (mirroring CfgWalker's pre-resolution) keep the
    # hot loop below free of dict hashing.
    max_uid = max(block.uid for block in program.blocks())
    segments_of: List[List[Tuple[int, int]]] = [[] for _ in range(max_uid + 1)]
    start_of: List[int] = [0] * (max_uid + 1)
    last_addr_of: List[int] = [0] * (max_uid + 1)
    for block in program.blocks():
        start = layout.address_of(block.uid)
        segments_of[block.uid] = block_line_segments(
            start, block.num_instructions, line_size
        )
        start_of[block.uid] = start
        last_addr_of[block.uid] = start + (block.num_instructions - 1) * INSTRUCTION_SIZE

    line_mask = ~(line_size - 1)
    offset_mask = line_size - 1

    out_lines: List[int] = []
    out_counts: List[int] = []
    out_slots: List[int] = []
    append_line = out_lines.append
    append_count = out_counts.append
    append_slot = out_slots.append

    cur_line = -1
    cur_count = 0
    cur_slot = 0  # slot of the event being accumulated
    prev_addr = -8  # sentinel: first block is a non-sequential entry at slot 0

    for uid in block_trace.uids.tolist():
        start = start_of[uid]
        sequential_entry = prev_addr + INSTRUCTION_SIZE == start
        entry_slot = (
            SEQUENTIAL_SLOT
            if sequential_entry
            else (prev_addr & offset_mask) // INSTRUCTION_SIZE if prev_addr >= 0 else 0
        )
        first = True
        for line_addr, run in segments_of[uid]:
            if line_addr == cur_line:
                cur_count += run
            else:
                if cur_line >= 0:
                    append_line(cur_line)
                    append_count(cur_count)
                    append_slot(cur_slot)
                cur_line = line_addr
                cur_count = run
                cur_slot = entry_slot if first else SEQUENTIAL_SLOT
            first = False
        prev_addr = last_addr_of[uid]

    if cur_line >= 0:
        append_line(cur_line)
        append_count(cur_count)
        append_slot(cur_slot)

    return LineEventTrace(
        line_size=line_size,
        line_addrs=np.asarray(out_lines, dtype=np.int64),
        counts=np.asarray(out_counts, dtype=np.int32),
        slots=np.asarray(out_slots, dtype=np.int16),
    )
