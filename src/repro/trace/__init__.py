"""Execution tracing: the XTREM-substitute that drives every experiment.

The trace pipeline has two levels (DESIGN.md §7.1):

1. :mod:`repro.trace.executor` walks a program's ICFG under a
   :class:`~repro.trace.branch_model.BranchModelMap`, producing a
   layout-independent *block trace* (numpy array of block uids).
2. :mod:`repro.trace.fetch` combines a block trace with a concrete code
   layout into a compressed *line-event trace*: one event per instruction
   cache line transition, annotated with the fetch count inside the line and
   how the line was entered (sequentially or from which branch slot).

Fetch schemes consume line-event traces; they never see individual
instructions, which keeps simulation fast while remaining exact for tag,
data, fill, and timing accounting.
"""

from repro.trace.branch_model import (
    BernoulliBranch,
    LoopBranch,
    TakenBranch,
    BranchModelMap,
)
from repro.trace.executor import BlockTrace, CfgWalker
from repro.trace.events import LineEventTrace, SEQUENTIAL_SLOT
from repro.trace.fetch import line_events_from_block_trace
from repro.trace.io import (
    load_block_trace,
    load_events,
    save_block_trace,
    save_events,
)

__all__ = [
    "BernoulliBranch",
    "LoopBranch",
    "TakenBranch",
    "BranchModelMap",
    "BlockTrace",
    "CfgWalker",
    "LineEventTrace",
    "SEQUENTIAL_SLOT",
    "line_events_from_block_trace",
    "load_block_trace",
    "load_events",
    "save_block_trace",
    "save_events",
]
