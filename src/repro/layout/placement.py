"""Profile-guided way-placement layout — the paper's compiler pass.

The algorithm (Section 3 of the paper):

1. Build the ICFG and annotate blocks with profiled execution counts.
2. Link blocks with predefined orderings (fall-through edges, call/return
   continuations) into chains; every other block is a chain by itself.
3. Weight each chain by the total number of instructions executed in it.
4. Order chains heaviest-first and concatenate them into one chain — the
   final binary.  The hottest code therefore starts at address 0, inside
   whatever way-placement area the OS later selects.

Alternative policies (original order, random chain order, coldest-first)
exist for the layout ablation benches.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Mapping, Optional

from repro.errors import LayoutError
from repro.layout.chains import Chain, build_chains
from repro.layout.conflict_aware import conflict_aware_layout
from repro.layout.layouts import Layout
from repro.layout.linker import link_blocks
from repro.layout.pettis_hansen import pettis_hansen_layout
from repro.profiling.profile_data import ProfileData
from repro.program.program import Program
from repro.utils.rng import make_rng

__all__ = [
    "LayoutPolicy",
    "make_layout",
    "way_placement_layout",
    "original_layout",
    "random_layout",
]


class LayoutPolicy(enum.Enum):
    """Block-ordering policies available to experiments."""

    ORIGINAL = "original"  # textual order as produced by the builder
    WAY_PLACEMENT = "way-placement"  # heaviest chain first (the paper)
    RANDOM_CHAINS = "random-chains"  # chains shuffled (locality strawman)
    COLDEST_FIRST = "coldest-first"  # lightest chain first (adversarial)
    PETTIS_HANSEN = "pettis-hansen"  # function-affinity ordering (PH'90)
    CONFLICT_AWARE = "conflict-aware"  # static interference-graph coloring


def _instruction_counts(
    program: Program, block_counts: Mapping[int, int]
) -> Dict[int, int]:
    """Executed-instruction count per block: executions x block length."""
    return {
        block.uid: block_counts.get(block.uid, 0) * block.num_instructions
        for block in program.blocks()
    }


def _concatenate(chains: List[Chain]) -> List[int]:
    order: List[int] = []
    for chain in chains:
        order.extend(chain.uids)
    return order


def original_layout(program: Program, base_address: int = 0) -> Layout:
    """The baseline layout: blocks in their original textual order."""
    order = [block.uid for block in program.blocks()]
    return link_blocks(program, order, base_address, description="original order")


def way_placement_layout(
    program: Program,
    block_counts: Mapping[int, int],
    base_address: int = 0,
) -> Layout:
    """The paper's layout: chains sorted by profiled weight, heaviest first.

    Ties are broken by original chain order so the result is deterministic.
    ``block_counts`` maps block uid -> execution count (a profile).
    """
    chains = build_chains(program)
    weights = _instruction_counts(program, block_counts)
    indexed = list(enumerate(chains))
    indexed.sort(key=lambda pair: (-pair[1].weight(weights), pair[0]))
    order = _concatenate([chain for _, chain in indexed])
    return link_blocks(
        program, order, base_address, description="way-placement (heaviest chain first)"
    )


def random_layout(program: Program, seed: int = 0, base_address: int = 0) -> Layout:
    """Chains in uniformly random order (fall-through constraints intact)."""
    chains = build_chains(program)
    rng = make_rng("random-layout", program.name, seed)
    rng.shuffle(chains)
    return link_blocks(
        program, _concatenate(chains), base_address, description=f"random chains (seed {seed})"
    )


def coldest_first_layout(
    program: Program,
    block_counts: Mapping[int, int],
    base_address: int = 0,
) -> Layout:
    """Adversarial layout: lightest chains first (hot code at the end)."""
    chains = build_chains(program)
    weights = _instruction_counts(program, block_counts)
    indexed = list(enumerate(chains))
    indexed.sort(key=lambda pair: (pair[1].weight(weights), pair[0]))
    order = _concatenate([chain for _, chain in indexed])
    return link_blocks(program, order, base_address, description="coldest chain first")


def make_layout(
    program: Program,
    policy: LayoutPolicy,
    block_counts: Optional[Mapping[int, int]] = None,
    seed: int = 0,
    base_address: int = 0,
    profile: Optional[ProfileData] = None,
) -> Layout:
    """Dispatch on ``policy``.

    Profile-driven policies require ``block_counts`` (way-placement,
    coldest-first) or a full ``profile`` with edge counts (Pettis-Hansen);
    the original, random-chains, and conflict-aware policies are
    profile-free (the last one reads the static interference analysis).
    """
    if policy is LayoutPolicy.ORIGINAL:
        return original_layout(program, base_address)
    if policy is LayoutPolicy.RANDOM_CHAINS:
        return random_layout(program, seed, base_address)
    if policy is LayoutPolicy.CONFLICT_AWARE:
        return conflict_aware_layout(program, base_address=base_address)
    if policy is LayoutPolicy.PETTIS_HANSEN:
        if profile is None:
            raise LayoutError(
                f"layout policy {policy.value!r} needs a profile with edge counts"
            )
        return pettis_hansen_layout(program, profile, base_address)
    if block_counts is None:
        raise LayoutError(f"layout policy {policy.value!r} needs profile block counts")
    if policy is LayoutPolicy.WAY_PLACEMENT:
        return way_placement_layout(program, block_counts, base_address)
    if policy is LayoutPolicy.COLDEST_FIRST:
        return coldest_first_layout(program, block_counts, base_address)
    raise LayoutError(f"unhandled layout policy {policy!r}")  # pragma: no cover
