"""Conflict-aware layout: placements scored by the static interference graph.

The first *consumer* of :mod:`repro.analysis.interference`: instead of
ordering chains by profiled weight (the paper's pass) this optimizer
picks the chain order that minimizes the *predicted weighted conflicts*
of the resulting line assignment — no profile required.

It builds a small portfolio of candidate orderings, scores each with the
exact graph metric
(:func:`repro.analysis.interference.graph.predicted_conflict_weight`),
and links the argmin:

1. **Greedy coloring** — chains are considered hottest-first by the
   static loop-nest frequency estimate ``BASE ** depth``; at each step
   the next ``beam`` candidates are scored by the interference their
   lines would accrue at the current cursor address against everything
   already placed, and the cheapest is committed.  Scoring folds the
   graph's pair-weight model (``BASE ** level`` per shared loop component
   of a same-set pair) into per-``(set, component)`` placed-site counts,
   so each candidate line costs ``O(depth)``:

       ``cost(line) = sum_l M_l * BASE ** l``

   where ``M_l`` counts placed same-set line sites in the line's
   level-``l`` loop component.  When a ``wpa_size`` is given, placed WPA
   lines whose mandated way differs from a WPA candidate's are excluded
   (pinned fills cannot evict each other across ways).  Candidates are
   all scored at the *same* cursor, so the comparison is exact for the
   committed placement; a zero-cost candidate commits immediately
   (nothing later in the window scores below zero and earlier positions
   are hotter), so cold straight-line chains cost nothing to process.
   A second, wider-beam pass joins the portfolio when the whole program
   fits in the cache — where hole-filling choices matter most.

2. **Static affinity** — the Pettis-Hansen closest-is-best procedure
   merge (:mod:`repro.layout.pettis_hansen`) driven by a *synthetic*
   profile read off the ICFG: block counts ``BASE ** depth`` and edge
   counts ``BASE ** min(depth(src), depth(dst))``.  Function-granular
   locality is hard for the myopic greedy to reproduce on programs much
   larger than the cache, and this candidate recovers it trace-free.

Fall-through adjacency is preserved throughout (every candidate is a
chain permutation), and every step is deterministic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.isa.instructions import INSTRUCTION_SIZE
from repro.layout.chains import Chain, build_chains
from repro.layout.layouts import Layout
from repro.layout.linker import link_blocks
from repro.layout.pettis_hansen import pettis_hansen_layout
from repro.profiling.profile_data import ProfileData
from repro.program.program import Program

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.analysis.context import GeometrySpec

__all__ = ["conflict_aware_layout", "DEFAULT_BEAM", "WIDE_BEAM"]

#: Candidates scored per greedy step; small because chains are pre-sorted
#: hottest-first and the tail rarely beats the head.
DEFAULT_BEAM = 8

#: Beam for the second greedy pass on programs that fit in the cache.
WIDE_BEAM = 32


def _greedy_order(
    chains: List[Chain],
    paths: Dict[int, Tuple[int, ...]],
    sizes: Dict[int, int],
    geometry: "GeometrySpec",
    wpa_size: int,
    base_address: int,
    beam: int,
    base: int,
) -> List[int]:
    """One greedy coloring pass (see module docstring, candidate 1)."""
    line_size = geometry.line_size
    offset_bits = geometry.offset_bits
    set_mask = (1 << geometry.set_bits) - 1
    way_mask = (1 << geometry.way_bits) - 1
    tag_shift = offset_bits + geometry.set_bits
    max_depth = max((len(path) for path in paths.values()), default=0)
    powers = [base**level for level in range(max_depth + 2)]

    def chain_heat(chain: Chain) -> int:
        return sum(
            (sizes[uid] // INSTRUCTION_SIZE) * powers[len(paths.get(uid, ()))]
            for uid in chain.uids
        )

    remaining = sorted(
        enumerate(chains), key=lambda pair: (-chain_heat(pair[1]), pair[0])
    )
    loopy = {
        index: any(paths.get(uid) for uid in chain.uids)
        for index, chain in remaining
    }

    # Placed-site counts per (set, loop component[, mandated-way group]).
    # Group -1 collects non-WPA sites; WPA sites land in their
    # mandated-way group and only interfere within it or with non-WPA
    # sites, mirroring the interference graph's WPA pair exclusion.
    total_sites: Dict[Tuple[int, int], int] = {}
    wpa_sites: Dict[Tuple[int, int], int] = {}
    way_sites: Dict[Tuple[int, int, int], int] = {}

    def chain_lines(chain: Chain, cursor: int) -> List[Tuple[int, Tuple[int, ...]]]:
        """(line address, loop path) per line per block at this cursor."""
        pairs: List[Tuple[int, Tuple[int, ...]]] = []
        address = cursor
        for uid in chain.uids:
            size = sizes[uid]
            path = paths.get(uid, ())
            if path:
                first = address - (address % line_size)
                last = address + size - 1
                last -= last % line_size
                for line in range(first, last + 1, line_size):
                    pairs.append((line, path))
            address += size
        return pairs

    def score(chain: Chain, cursor: int) -> int:
        cost = 0
        staged_total: Dict[Tuple[int, int], int] = {}
        staged_wpa: Dict[Tuple[int, int], int] = {}
        staged_way: Dict[Tuple[int, int, int], int] = {}
        for line, path in chain_lines(chain, cursor):
            set_index = (line >> offset_bits) & set_mask
            is_wpa = wpa_size > 0 and line < wpa_size
            group = ((line >> tag_shift) & way_mask) if is_wpa else -1
            for level, component in enumerate(path, start=1):
                key = (set_index, component)
                visible = total_sites.get(key, 0) + staged_total.get(key, 0)
                if group >= 0:
                    way_key = (set_index, component, group)
                    visible -= wpa_sites.get(key, 0) + staged_wpa.get(key, 0)
                    visible += way_sites.get(way_key, 0) + staged_way.get(way_key, 0)
                cost += visible * powers[level]
                staged_total[key] = staged_total.get(key, 0) + 1
                if is_wpa:
                    staged_wpa[key] = staged_wpa.get(key, 0) + 1
                    way_key = (set_index, component, group)
                    staged_way[way_key] = staged_way.get(way_key, 0) + 1
        return cost

    def commit(chain: Chain, cursor: int) -> None:
        for line, path in chain_lines(chain, cursor):
            set_index = (line >> offset_bits) & set_mask
            is_wpa = wpa_size > 0 and line < wpa_size
            group = ((line >> tag_shift) & way_mask) if is_wpa else -1
            for component in path:
                key = (set_index, component)
                total_sites[key] = total_sites.get(key, 0) + 1
                if is_wpa:
                    wpa_sites[key] = wpa_sites.get(key, 0) + 1
                    way_sites[(set_index, component, group)] = (
                        way_sites.get((set_index, component, group), 0) + 1
                    )

    order: List[int] = []
    cursor = base_address
    while remaining:
        best_position = 0
        best_cost: Optional[int] = None
        for position in range(min(max(1, beam), len(remaining))):
            index, chain = remaining[position]
            cost = score(chain, cursor) if loopy[index] else 0
            if cost == 0:
                best_position = position
                best_cost = 0
                break
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_position = position
        _, chosen = remaining.pop(best_position)
        commit(chosen, cursor)
        order.extend(chosen.uids)
        cursor += sum(sizes[uid] for uid in chosen.uids)
    return order


def conflict_aware_layout(
    program: Program,
    geometry: Optional["GeometrySpec"] = None,
    wpa_size: int = 0,
    base_address: int = 0,
    beam: int = DEFAULT_BEAM,
) -> Layout:
    """Pick the candidate chain order with the lowest predicted conflicts.

    Trace-free: frequency comes from the static loop nest, not a profile.
    The default geometry is the paper's baseline (32KB, 32-way, 32B
    lines) so layouts stay machine-independent and cacheable per
    ``(benchmark, policy)`` — the grid still replays them on any machine.
    """
    # Imported lazily: repro.analysis imports repro.layout at package
    # init, so a module-level import here would form a cycle.
    from repro.analysis.absint.analysis import absint_flow_graph
    from repro.analysis.context import GeometrySpec, LayoutView, ProgramView
    from repro.analysis.interference.graph import (
        BASE,
        loop_nest_for,
        predicted_conflict_weight,
    )

    if geometry is None:
        geometry = GeometrySpec(32 * 1024, 32, 32)
    view = ProgramView.from_program(program)
    nest = loop_nest_for(view)
    paths: Dict[int, Tuple[int, ...]] = dict(nest.paths) if nest is not None else {}
    sizes = {
        block.uid: block.num_instructions * INSTRUCTION_SIZE
        for block in program.blocks()
    }
    chains = build_chains(program)

    candidates: List[Tuple[str, List[int]]] = [
        (
            f"beam-{beam} greedy",
            _greedy_order(
                chains, paths, sizes, geometry, wpa_size, base_address, beam, BASE
            ),
        )
    ]
    fits_cache = sum(sizes.values()) <= geometry.size_bytes
    if fits_cache and WIDE_BEAM != beam:
        candidates.append(
            (
                f"beam-{WIDE_BEAM} greedy",
                _greedy_order(
                    chains,
                    paths,
                    sizes,
                    geometry,
                    wpa_size,
                    base_address,
                    WIDE_BEAM,
                    BASE,
                ),
            )
        )
    graph = absint_flow_graph(view)
    if graph is not None:
        depth_of = {uid: len(path) for uid, path in paths.items()}
        synthetic = ProfileData(
            program_name=program.name,
            input_name="static-loop-nest",
            block_counts={
                block.uid: BASE ** depth_of.get(block.uid, 0)
                for block in program.blocks()
            },
            edge_counts={
                (src, dst): BASE ** min(depth_of.get(src, 0), depth_of.get(dst, 0))
                for src, successors in graph.successors.items()
                for dst in successors
            },
        )
        if synthetic.edge_counts:
            affinity = pettis_hansen_layout(program, synthetic, base_address)
            candidates.append(("static affinity", list(affinity.block_order)))

    best_name = ""
    best_weight: Optional[int] = None
    best_order: List[int] = []
    for name, order in candidates:
        layout = link_blocks(program, order, base_address, description=name)
        weight = predicted_conflict_weight(
            view, LayoutView.from_layout(layout), geometry, wpa_size
        )
        if best_weight is None or weight < best_weight:
            best_name, best_weight, best_order = name, weight, order

    return link_blocks(
        program,
        best_order,
        base_address,
        description=f"conflict-aware ({best_name})",
    )
