"""Code layout: address assignment and the way-placement compiler pass.

The paper's contribution (its Section 3) lives here:

* :mod:`repro.layout.chains` builds chains of basic blocks that must keep
  their relative order (fall-through edges and call/continuation pairs);
* :mod:`repro.layout.placement` orders the chains by profiled execution
  weight, heaviest first, so the hottest code lands at the start of the
  binary — the region the hardware maps to explicit cache ways;
* :mod:`repro.layout.linker` turns any block order into a concrete
  :class:`~repro.layout.layouts.Layout` (block uid -> byte address);
* :mod:`repro.layout.conflict_aware` orders chains by greedy coloring of
  the static interference graph (:mod:`repro.analysis.interference`) —
  the profile-free competitor used for the layout-agnosticism check.
"""

from repro.layout.layouts import Layout
from repro.layout.linker import link_blocks
from repro.layout.chains import Chain, build_chains
from repro.layout.conflict_aware import conflict_aware_layout
from repro.layout.pettis_hansen import pettis_hansen_layout
from repro.layout.wpa_select import WpaChoice, choose_wpa_size, estimate_wpa_energy
from repro.layout.placement import (
    LayoutPolicy,
    make_layout,
    way_placement_layout,
    original_layout,
    random_layout,
    coldest_first_layout,
)

__all__ = [
    "Layout",
    "link_blocks",
    "Chain",
    "build_chains",
    "LayoutPolicy",
    "make_layout",
    "way_placement_layout",
    "original_layout",
    "random_layout",
    "coldest_first_layout",
    "conflict_aware_layout",
    "pettis_hansen_layout",
    "WpaChoice",
    "choose_wpa_size",
    "estimate_wpa_energy",
]
