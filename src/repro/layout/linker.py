"""Address assignment: the final linking step of the layout pipeline."""

from __future__ import annotations

from typing import Sequence

from repro.errors import LayoutError
from repro.layout.layouts import Layout
from repro.program.program import Program

__all__ = ["link_blocks"]


def link_blocks(
    program: Program,
    order: Sequence[int],
    base_address: int = 0,
    description: str = "",
) -> Layout:
    """Produce a :class:`Layout` placing blocks contiguously in ``order``.

    Validates that ``order`` is a permutation of the program's blocks and
    that every fall-through predecessor is immediately followed by its
    successor — the invariant the paper's hardware relies on (a block that
    falls through must physically precede its fall-through target).
    """
    order = list(order)
    expected = {block.uid for block in program.blocks()}
    if set(order) != expected or len(order) != len(expected):
        raise LayoutError(
            f"block order is not a permutation of program {program.name!r}'s blocks"
        )

    position = {uid: index for index, uid in enumerate(order)}
    for block in program.blocks():
        if block.fall_label is None:
            continue
        function, _, label = (
            block.fall_label.partition(":")
            if ":" in block.fall_label
            else (block.function, None, block.fall_label)
        )
        fall_uid = program.uid_of_label(function, label)
        if position[fall_uid] != position[block.uid] + 1:
            raise LayoutError(
                f"layout breaks fall-through adjacency: block "
                f"{block.function}:{block.label} (uid {block.uid}) must be "
                f"immediately followed by uid {fall_uid}"
            )

    return Layout.from_order(program, order, base_address, description)
