"""Concrete code layouts: block uid -> byte address."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

from repro.errors import LayoutError
from repro.isa.instructions import INSTRUCTION_SIZE
from repro.program.program import Program

__all__ = ["Layout"]


class Layout:
    """An assignment of every basic block to a start address.

    A layout is valid when blocks are instruction-aligned, non-overlapping,
    and cover every block of the program exactly once.  The constructor
    verifies all three so downstream consumers can trust it blindly.
    """

    def __init__(
        self,
        program_name: str,
        addresses: Mapping[int, int],
        sizes: Mapping[int, int],
        description: str = "",
    ):
        if set(addresses) != set(sizes):
            raise LayoutError("layout addresses and sizes cover different blocks")
        spans: List[Tuple[int, int, int]] = []  # (start, end, uid)
        for uid, address in addresses.items():
            if address < 0 or address % INSTRUCTION_SIZE:
                raise LayoutError(
                    f"block uid {uid} at unaligned or negative address {address:#x}"
                )
            size = sizes[uid]
            if size <= 0:
                raise LayoutError(f"block uid {uid} has non-positive size {size}")
            spans.append((address, address + size, uid))
        spans.sort()
        for (s0, e0, u0), (s1, e1, u1) in zip(spans, spans[1:]):
            if s1 < e0:
                raise LayoutError(
                    f"blocks uid {u0} [{s0:#x},{e0:#x}) and uid {u1} "
                    f"[{s1:#x},{e1:#x}) overlap"
                )
        self._program_name = program_name
        self._addresses: Dict[int, int] = dict(addresses)
        self._sizes: Dict[int, int] = dict(sizes)
        self._order: Tuple[int, ...] = tuple(uid for _, _, uid in spans)
        self._end = spans[-1][1] if spans else 0
        self.description = description or "unnamed layout"

    @classmethod
    def from_order(
        cls,
        program: Program,
        order: Iterable[int],
        base_address: int = 0,
        description: str = "",
    ) -> "Layout":
        """Lay blocks out contiguously in ``order`` starting at ``base_address``."""
        addresses: Dict[int, int] = {}
        sizes: Dict[int, int] = {}
        cursor = base_address
        for uid in order:
            block = program.block_by_uid(uid)
            addresses[uid] = cursor
            sizes[uid] = block.size_bytes
            cursor += block.size_bytes
        if len(addresses) != program.num_blocks:
            raise LayoutError(
                f"layout order covers {len(addresses)} blocks but program "
                f"{program.name!r} has {program.num_blocks}"
            )
        return cls(program.name, addresses, sizes, description)

    # ------------------------------------------------------------------
    @property
    def program_name(self) -> str:
        return self._program_name

    @property
    def block_order(self) -> Tuple[int, ...]:
        """Block uids in increasing address order."""
        return self._order

    @property
    def end_address(self) -> int:
        """One past the last byte of code."""
        return self._end

    def address_of(self, uid: int) -> int:
        try:
            return self._addresses[uid]
        except KeyError:
            raise LayoutError(f"layout does not place block uid {uid}") from None

    def size_of(self, uid: int) -> int:
        try:
            return self._sizes[uid]
        except KeyError:
            raise LayoutError(f"layout does not place block uid {uid}") from None

    def blocks_within(self, start: int, end: int) -> List[int]:
        """Uids of blocks whose first byte lies in ``[start, end)``."""
        return [uid for uid in self._order if start <= self._addresses[uid] < end]

    def symbol_table(self, program: Program) -> Dict[str, int]:
        """Label -> address map, usable by the instruction encoder."""
        table: Dict[str, int] = {}
        for block in program.blocks():
            table[f"{block.function}:{block.label}"] = self._addresses[block.uid]
        return table

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return (
            f"<layout for {self._program_name!r}: {len(self._addresses)} blocks, "
            f"{self._end} bytes — {self.description}>"
        )
