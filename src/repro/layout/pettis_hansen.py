"""Pettis-Hansen procedure ordering — the classic layout comparator.

Pettis & Hansen's 1990 "closest is best" algorithm orders *whole functions*
by call-affinity: build a function-level graph weighted by profiled
call-edge traversals, then greedily merge function chains along the
heaviest edges, orienting each merge so the two connected functions end up
as close as possible.

The paper's own pass works at basic-block (chain) granularity instead;
the layout ablation bench uses this module to show why that matters for
way-placement: function-granular ordering drags each hot loop's whole
function into the way-placement area, so small areas cover less hot code.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro.errors import LayoutError
from repro.layout.layouts import Layout
from repro.layout.linker import link_blocks
from repro.profiling.profile_data import ProfileData
from repro.program.program import Program

__all__ = ["pettis_hansen_layout", "function_affinities"]


def function_affinities(
    program: Program, edge_counts: Mapping[Tuple[int, int], int]
) -> Dict[Tuple[str, str], int]:
    """Call-affinity weights between function pairs from block-edge counts.

    Every profiled transition whose endpoints lie in different functions
    (calls, returns) contributes to the unordered pair's weight.
    """
    function_of = {
        block.uid: block.function for block in program.blocks()
    }
    weights: Dict[Tuple[str, str], int] = {}
    for (src, dst), count in edge_counts.items():
        f_src = function_of.get(src)
        f_dst = function_of.get(dst)
        if f_src is None or f_dst is None or f_src == f_dst:
            continue
        pair = (f_src, f_dst) if f_src <= f_dst else (f_dst, f_src)
        weights[pair] = weights.get(pair, 0) + count
    return weights


def _merge_orientation(
    left: List[str], right: List[str], a: str, b: str
) -> List[str]:
    """Concatenate two chains, choosing the orientation that puts the two
    affine functions ``a`` (in ``left``) and ``b`` (in ``right``) closest —
    Pettis & Hansen's 'closest is best' rule over the four concatenations."""
    candidates = []
    for first in (left, list(reversed(left))):
        for second in (right, list(reversed(right))):
            merged = first + second
            distance = abs(merged.index(a) - merged.index(b))
            candidates.append((distance, merged))
    candidates.sort(key=lambda item: item[0])
    return candidates[0][1]


def pettis_hansen_layout(
    program: Program, profile: ProfileData, base_address: int = 0
) -> Layout:
    """Function-granularity profile layout (Pettis & Hansen, PLDI'90).

    Within each function, blocks keep their original order (P-H's intra-
    procedural basic-block ordering is a separate pass; using the original
    order isolates the *procedure placement* effect for the ablation).
    """
    if not profile.edge_counts:
        raise LayoutError(
            "Pettis-Hansen ordering needs edge counts; profile has none"
        )
    weights = function_affinities(program, profile.edge_counts)
    names = list(program.functions)
    chain_of: Dict[str, int] = {name: i for i, name in enumerate(names)}
    chains: Dict[int, List[str]] = {i: [name] for i, name in enumerate(names)}

    ranked = sorted(weights.items(), key=lambda kv: (-kv[1], kv[0]))
    for (a, b), _ in ranked:
        chain_a, chain_b = chain_of[a], chain_of[b]
        if chain_a == chain_b:
            continue
        merged = _merge_orientation(chains[chain_a], chains[chain_b], a, b)
        chains[chain_a] = merged
        for name in chains[chain_b]:
            chain_of[name] = chain_a
        del chains[chain_b]

    # Heaviest chain first, where a chain's weight is the profiled
    # instruction mass of its functions (so the hot cluster leads).
    block_weight = {
        block.uid: profile.count_of(block.uid) * block.num_instructions
        for block in program.blocks()
    }

    def chain_weight(function_names: List[str]) -> int:
        return sum(
            block_weight[block.uid]
            for name in function_names
            for block in program.functions[name].blocks
        )

    ordered_chains = sorted(
        chains.values(), key=lambda c: (-chain_weight(c), c[0])
    )
    order = [
        block.uid
        for chain in ordered_chains
        for name in chain
        for block in program.functions[name].blocks
    ]
    return link_blocks(
        program,
        order,
        base_address,
        description="pettis-hansen (function affinity)",
    )
