"""Chain construction — step one of the paper's Section 3 algorithm.

Blocks that have a *predefined ordering we must respect* are linked into
chains: a block with a fall-through edge (plain fall-through, the not-taken
path of a conditional branch, or the continuation of a call site) must be
immediately followed by its successor in memory.  All remaining blocks are
chains by themselves.

Chains are the atomic units the placement pass reorders; the blocks inside a
chain never change relative position.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import LayoutError
from repro.program.program import Program

__all__ = ["Chain", "build_chains"]


@dataclass(frozen=True)
class Chain:
    """An ordered run of block uids that must stay contiguous."""

    uids: Tuple[int, ...]

    @property
    def head(self) -> int:
        return self.uids[0]

    def __len__(self) -> int:
        return len(self.uids)

    def weight(self, instruction_counts: Mapping[int, int]) -> int:
        """Chain weight = total instructions executed inside the chain.

        This is exactly the paper's metric: "a weight ... equal to the sum
        of the instruction counts in that chain".
        """
        return sum(instruction_counts.get(uid, 0) for uid in self.uids)


def _fall_successor_map(program: Program) -> Dict[int, int]:
    """uid -> uid it must be immediately followed by, for all fall edges."""
    successors: Dict[int, int] = {}
    predecessor_of: Dict[int, int] = {}
    for block in program.blocks():
        if block.fall_label is None:
            continue
        if ":" in block.fall_label:
            function, _, label = block.fall_label.partition(":")
        else:
            function, label = block.function, block.fall_label
        fall_uid = program.uid_of_label(function, label)
        if fall_uid in predecessor_of:
            other = predecessor_of[fall_uid]
            raise LayoutError(
                f"block uid {fall_uid} is the fall-through target of both uid "
                f"{other} and uid {block.uid}; a block can physically follow "
                f"only one predecessor (insert an explicit jump)"
            )
        if fall_uid == block.uid:
            raise LayoutError(f"block uid {block.uid} falls through to itself")
        predecessor_of[fall_uid] = block.uid
        successors[block.uid] = fall_uid
    return successors


def build_chains(program: Program) -> List[Chain]:
    """Partition the program's blocks into fall-through chains.

    The returned chains appear in *original program order* of their head
    blocks, which makes downstream sorts deterministic.
    """
    successors = _fall_successor_map(program)
    has_predecessor = set(successors.values())

    original_order = [block.uid for block in program.blocks()]
    chains: List[Chain] = []
    placed = set()
    for uid in original_order:
        if uid in has_predecessor or uid in placed:
            continue
        run: List[int] = []
        cursor: Optional[int] = uid
        while cursor is not None:
            if cursor in placed:
                raise LayoutError(
                    f"fall-through edges form a cycle through block uid {cursor}"
                )
            run.append(cursor)
            placed.add(cursor)
            cursor = successors.get(cursor)
        chains.append(Chain(tuple(run)))

    if len(placed) != program.num_blocks:
        missing = [uid for uid in original_order if uid not in placed]
        raise LayoutError(
            f"fall-through edges form a cycle; blocks {missing} have no chain head"
        )
    return chains
