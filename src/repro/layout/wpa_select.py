"""Choosing the way-placement area size — the operating system's job.

The paper (Section 4.1): the compiler always puts the best candidates at
the start of the binary, "enabl[ing] the operating system to choose the
best sized way-placement area either on a static or per-program basis".
This module implements that policy concretely: given the profile and the
layout, estimate each candidate size's fetch energy and pick the minimum.

The estimator mirrors the energy model's structure without running a
simulation:

* *coverage(W)* — profiled fraction of executed instructions placed below
  ``W``; these fetch with one tag check instead of ``ways``;
* *boundary crossings(W)* — profiled control-flow transfers across the
  area boundary; each flips the way-hint bit, costing one misprediction
  (an extra all-ways access on the way in);
* sizes beyond one cache-coverage pay a *self-conflict* penalty: two hot
  lines a cache-size apart share a mandated (set, way).

Estimates use only information the OS actually has (the profile annotations
a compiler would embed), so the bench `test_bench_ablation_wpa_select`
checks the choice against exhaustive simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cache.geometry import CacheGeometry
from repro.errors import LayoutError
from repro.layout.layouts import Layout
from repro.program.program import Program
from repro.utils.bitops import align_up

__all__ = ["WpaChoice", "choose_wpa_size", "estimate_wpa_energy"]


@dataclass(frozen=True)
class WpaChoice:
    """The selected way-placement area and the estimates that ranked it."""

    wpa_size: int
    coverage: float  # profiled instruction coverage of the area
    crossing_rate: float  # boundary transfers per executed instruction
    estimated_tag_energy: float  # model units; comparable across candidates
    ranking: Tuple[Tuple[int, float], ...]  # (size, estimate), best first


def _instruction_weights(
    program: Program, block_counts: Mapping[int, int]
) -> Dict[int, int]:
    return {
        block.uid: block_counts.get(block.uid, 0) * block.num_instructions
        for block in program.blocks()
    }


def estimate_wpa_energy(
    program: Program,
    layout: Layout,
    block_counts: Mapping[int, int],
    geometry: CacheGeometry,
    wpa_size: int,
    edge_counts: Optional[Mapping[Tuple[int, int], int]] = None,
    mean_fetches_per_check: float = 6.0,
) -> Tuple[float, float, float]:
    """Estimated relative tag energy for one candidate size.

    Returns ``(estimate, coverage, crossing_rate)``.  The estimate is in
    "way-searches per fetch" units — meaningless absolutely, monotone
    across candidates, which is all a ranking needs.
    """
    weights = _instruction_weights(program, block_counts)
    total = sum(weights.values())
    if total == 0:
        raise LayoutError("profile has no executed instructions")

    covered = sum(
        weight
        for uid, weight in weights.items()
        if layout.address_of(uid) < wpa_size
    )
    coverage = covered / total

    crossings = 0
    if edge_counts:
        for (src, dst), count in edge_counts.items():
            src_in = layout.address_of(src) < wpa_size
            dst_in = layout.address_of(dst) < wpa_size
            if src_in != dst_in:
                crossings += count
    crossing_rate = crossings / total

    ways = geometry.ways
    # tag checks happen once per mean_fetches_per_check fetches
    per_check = coverage * 1.0 + (1.0 - coverage) * ways
    estimate = per_check / mean_fetches_per_check
    # each inbound boundary crossing mispredicts the way-hint bit: one
    # wasted single-way probe plus a corrective full search
    estimate += crossing_rate * (1.0 + ways) / 2.0
    # self-conflict penalty for areas larger than one cache coverage:
    # covered fetches beyond the first cache-size of the binary collide
    # with the front of the area
    if wpa_size > geometry.size_bytes:
        overflow = sum(
            weight
            for uid, weight in weights.items()
            if geometry.size_bytes <= layout.address_of(uid) < wpa_size
        )
        estimate += (overflow / total) * ways * 0.5
    return estimate, coverage, crossing_rate


def choose_wpa_size(
    program: Program,
    layout: Layout,
    block_counts: Mapping[int, int],
    geometry: CacheGeometry,
    page_size: int,
    candidates: Optional[Sequence[int]] = None,
    edge_counts: Optional[Mapping[Tuple[int, int], int]] = None,
) -> WpaChoice:
    """Pick the candidate way-placement area with the best estimate.

    ``candidates`` defaults to the powers of two from one page up to the
    binary size (rounded up to a page), capped at one cache coverage —
    matching the paper's evaluated range.
    """
    if candidates is None:
        limit = min(
            align_up(layout.end_address, page_size), geometry.size_bytes
        )
        candidates = []
        size = page_size
        while size < limit:
            candidates.append(size)
            size *= 2
        candidates.append(limit)
    candidates = sorted(set(candidates))
    if not candidates:
        raise LayoutError("no candidate way-placement area sizes")
    for candidate in candidates:
        if candidate <= 0 or candidate % page_size:
            raise LayoutError(
                f"candidate {candidate} is not a positive page multiple"
            )

    scored: List[Tuple[int, float, float, float]] = []
    for candidate in candidates:
        estimate, coverage, crossing_rate = estimate_wpa_energy(
            program, layout, block_counts, geometry, candidate, edge_counts
        )
        scored.append((candidate, estimate, coverage, crossing_rate))
    # best estimate wins; prefer the smaller area on ties (cheaper I-TLB
    # bits to maintain, more head-room for other programs)
    scored.sort(key=lambda item: (item[1], item[0]))
    best = scored[0]
    return WpaChoice(
        wpa_size=best[0],
        coverage=best[2],
        crossing_rate=best[3],
        estimated_tag_energy=best[1],
        ranking=tuple((size, estimate) for size, estimate, _, _ in scored),
    )
