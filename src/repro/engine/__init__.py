"""The fast simulation engine: vectorized kernels, artifact cache, grid runner.

Three layers, each usable on its own:

* :mod:`repro.engine.kernels` — NumPy fast paths replaying a
  :class:`~repro.trace.events.LineEventTrace` with counters bit-identical to
  the reference schemes (``baseline`` and ``way-placement``);
* :mod:`repro.engine.batch` — the batched replay kernel: one traversal of a
  trace emitting bit-identical counters for a whole family of
  configurations at once (the ``batch`` engine's grid planner lives in
  :mod:`repro.engine.grid`);
* :mod:`repro.engine.differential` — the delta-driven family tier: sweep
  families replay with adjacent configs sharing per-set state snapshots,
  paying per-config work only inside divergence windows (the
  ``differential`` engine);
* :mod:`repro.engine.store` — a content-hash-keyed on-disk cache for block
  traces, profiles, and line-event traces (``REPRO_CACHE_DIR``, default
  ``.repro_cache/``), so fresh processes stop re-walking CFGs;
* :mod:`repro.engine.grid` — a supervised process-parallel experiment grid
  runner, chunked by benchmark so each worker derives or loads every trace
  at most once; retries, worker crash isolation, engine fallback, and
  checkpoint–resume come from :mod:`repro.resilience`.

See ``docs/performance.md`` for the architecture and how to choose between
the reference and vectorized paths, and ``docs/robustness.md`` for the
supervision and fault-injection story.
"""

from repro.engine.arrays import (
    geometry_arrays,
    geometry_lists,
    itlb_misses,
    page_numbers,
    sweep_aggregates,
    way_hints,
    wpa_flags,
)
from repro.engine.batch import BatchMember, batch_counters, batchable
from repro.engine.differential import differential_counters
from repro.engine.grid import BatchFamily, GridCell, plan_families, run_grid
from repro.engine.kernels import (
    FAST_SCHEMES,
    baseline_counters,
    fast_counters,
    way_placement_counters,
)
from repro.engine.store import TraceStore, layout_digest, program_digest

__all__ = [
    "FAST_SCHEMES",
    "BatchFamily",
    "BatchMember",
    "GridCell",
    "TraceStore",
    "baseline_counters",
    "batch_counters",
    "batchable",
    "differential_counters",
    "fast_counters",
    "geometry_arrays",
    "geometry_lists",
    "itlb_misses",
    "layout_digest",
    "page_numbers",
    "plan_families",
    "program_digest",
    "run_grid",
    "sweep_aggregates",
    "way_hints",
    "way_placement_counters",
    "wpa_flags",
]
