"""Vectorized replay kernels, counter-for-counter identical to the schemes.

The reference implementations in :mod:`repro.schemes` are the oracle: they
model every component as an object and pay Python dispatch on every event.
These kernels compute everything that does *not* depend on cache contents —
fetch totals, search/precharge counts, way-hint outcomes, same-line
bookkeeping — as NumPy reductions over the precomputed per-trace arrays
(:mod:`repro.engine.arrays`), leaving one tight loop for the sequential
cache state (tag residency and round-robin pointers), driven by flat Python
lists and per-set dictionaries instead of method calls.

Two properties are load-bearing and enforced by the equivalence suite:

* **Bit-identical counters.**  Every :class:`FetchCounters` field matches
  the reference scheme exactly, so energy reports are identical whichever
  path ran.
* **Exact I-TLB modelling.**  Consecutive events on the same page are
  guaranteed TLB hits, so the round-robin TLB is simulated only at page
  *changes* — far fewer than events — with the same miss count as probing
  every event.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cache.access import FetchCounters
from repro.cache.geometry import CacheGeometry
from repro.errors import CacheConfigError, SchemeError
from repro.engine.arrays import (
    geometry_lists,
    itlb_misses,
    way_hints,
    wpa_flag_list,
    wpa_flags,
)
from repro.trace.events import LineEventTrace
from repro.utils.bitops import log2_exact, mask

__all__ = [
    "FAST_SCHEMES",
    "baseline_counters",
    "fast_counters",
    "way_placement_counters",
]

#: Schemes with a vectorized fast path.
FAST_SCHEMES = frozenset({"baseline", "way-placement"})

_BASELINE_OPTIONS = frozenset({"itlb_entries", "page_size", "same_line_skip"})
_WAY_PLACEMENT_OPTIONS = frozenset(
    {"wpa_size", "itlb_entries", "page_size", "same_line_skip", "wpa_base", "hint_initial"}
)


def _check_stream(events: LineEventTrace, geometry: CacheGeometry) -> None:
    if events.line_size != geometry.line_size:
        raise SchemeError(
            f"trace line size {events.line_size} does not match cache "
            f"line size {geometry.line_size}"
        )


def _check_tlb(itlb_entries: int, page_size: int, wpa_size: int) -> None:
    if itlb_entries < 1:
        raise CacheConfigError(f"TLB needs at least one entry, got {itlb_entries}")
    log2_exact(page_size, "page size")
    if wpa_size < 0 or wpa_size % page_size:
        raise CacheConfigError(
            f"way-placement area size {wpa_size} is not a non-negative "
            f"multiple of the {page_size}-byte page size"
        )


# Backwards-compatible alias: the TLB state machine now lives (memoised per
# trace) in repro.engine.arrays so every cell of a sweep shares the count.
_itlb_misses = itlb_misses


def baseline_counters(
    events: LineEventTrace,
    geometry: CacheGeometry,
    itlb_entries: int = 32,
    page_size: int = 1024,
    same_line_skip: bool = False,
) -> FetchCounters:
    """Vectorized :class:`~repro.schemes.baseline.BaselineScheme` replay."""
    _check_stream(events, geometry)
    _check_tlb(itlb_entries, page_size, 0)

    counters = FetchCounters()
    n = events.num_events
    ways = geometry.ways
    fetches = events.num_fetches
    counters.fetches = fetches
    counters.line_events = n
    if same_line_skip:
        counters.same_line_fetches = fetches - n
        counters.full_searches = n
        counters.ways_precharged = ways * n
    else:
        counters.full_searches = fetches
        counters.ways_precharged = ways * fetches
    counters.itlb_accesses = n
    counters.itlb_misses = itlb_misses(events, page_size, itlb_entries)

    set_indices, tags, _ = geometry_lists(events, geometry)
    way_of = [dict() for _ in range(geometry.num_sets)]
    tag_at = [[-1] * ways for _ in range(geometry.num_sets)]
    pointer = [0] * geometry.num_sets
    hits = misses = evictions = 0
    for s, t in zip(set_indices, tags):
        resident = way_of[s]
        if t in resident:
            hits += 1
        else:
            misses += 1
            p = pointer[s]
            pointer[s] = p + 1 if p + 1 < ways else 0
            row = tag_at[s]
            old = row[p]
            if old != -1:
                del resident[old]
                evictions += 1
            row[p] = t
            resident[t] = p
    counters.hits = hits
    counters.misses = misses
    counters.fills = misses
    counters.evictions = evictions
    counters.validate()
    return counters


def way_placement_counters(
    events: LineEventTrace,
    geometry: CacheGeometry,
    wpa_size: int = 0,
    itlb_entries: int = 32,
    page_size: int = 1024,
    same_line_skip: bool = True,
    wpa_base: int = 0,
    hint_initial: bool = False,
) -> FetchCounters:
    """Vectorized :class:`~repro.schemes.way_placement.WayPlacementScheme` replay."""
    _check_stream(events, geometry)
    if wpa_size < 0:
        raise SchemeError(f"way-placement area size must be >= 0, got {wpa_size}")
    if wpa_base != 0:
        raise SchemeError(
            "the way-placement area must start at the beginning of the "
            "binary (address 0 in this model)"
        )
    _check_tlb(itlb_entries, page_size, wpa_size)

    counters = FetchCounters()
    n = events.num_events
    ways = geometry.ways
    fetches = events.num_fetches
    counters.fetches = fetches
    counters.line_events = n
    counters.itlb_accesses = n
    counters.itlb_misses = itlb_misses(events, page_size, itlb_entries)

    flags = wpa_flags(events, wpa_size)
    hints = way_hints(events, wpa_size, hint_initial)
    predicted = int(np.count_nonzero(hints))
    false_positives = int(np.count_nonzero(hints & ~flags))
    false_negatives = int(np.count_nonzero(flags & ~hints))

    # Transition accesses: one per event, plus the corrective full access
    # after each false positive.
    full_searches = (n - predicted) + false_positives
    single_way = predicted
    ways_precharged = predicted + ways * full_searches
    counters.second_accesses = false_positives
    counters.extra_access_cycles = false_positives
    counters.hint_false_positives = false_positives
    counters.hint_false_negatives = false_negatives

    # Intra-line fetches after the transition.
    if same_line_skip:
        counters.same_line_fetches = fetches - n
    elif n:
        extra = (events.counts - 1).astype(np.int64)
        wpa_extra = int(extra[flags].sum())
        other_extra = (fetches - n) - wpa_extra
        single_way += wpa_extra
        ways_precharged += wpa_extra
        full_searches += other_extra
        ways_precharged += ways * other_extra
    counters.full_searches = full_searches
    counters.single_way_searches = single_way
    counters.ways_precharged = ways_precharged

    # Sequential cache state.  The way-placement invariant (a WPA line is
    # only ever resident in its mandated way) makes the single-way probe of
    # a correctly predicted access equivalent to a membership test, so one
    # loop covers all three prediction branches of the reference scheme.
    set_indices, tags, _ = geometry_lists(events, geometry)
    way_mask = mask(geometry.way_bits)
    way_of = [dict() for _ in range(geometry.num_sets)]
    tag_at = [[-1] * ways for _ in range(geometry.num_sets)]
    pointer = [0] * geometry.num_sets
    hits = misses = wp_fills = evictions = 0
    for s, t, in_wpa in zip(set_indices, tags, wpa_flag_list(events, wpa_size)):
        resident = way_of[s]
        if t in resident:
            hits += 1
        else:
            misses += 1
            if in_wpa:
                p = t & way_mask
                wp_fills += 1
            else:
                p = pointer[s]
                pointer[s] = p + 1 if p + 1 < ways else 0
            row = tag_at[s]
            old = row[p]
            if old != -1:
                del resident[old]
                evictions += 1
            row[p] = t
            resident[t] = p
    counters.hits = hits
    counters.misses = misses
    counters.fills = misses
    counters.wp_fills = wp_fills
    counters.evictions = evictions
    counters.validate()
    return counters


def fast_counters(
    scheme: str,
    events: LineEventTrace,
    geometry: CacheGeometry,
    **options,
) -> Optional[FetchCounters]:
    """Replay ``events`` on the fast path, or ``None`` if there is none.

    Returns ``None`` (rather than raising) when the scheme has no vectorized
    kernel or the options include something the kernel does not model, so
    callers can always fall back to the reference implementation.
    """
    if scheme == "baseline":
        if not set(options) <= _BASELINE_OPTIONS:
            return None
        return baseline_counters(events, geometry, **options)
    if scheme == "way-placement":
        if not set(options) <= _WAY_PLACEMENT_OPTIONS:
            return None
        return way_placement_counters(events, geometry, **options)
    return None
