"""Shared-memory trace plane: publish derived arrays once, attach everywhere.

A parallel grid forks one worker per chunk/shard, and each worker used to
load (or re-derive) its benchmark's trace arrays privately — per process,
per attempt.  The :class:`TraceArena` turns the supervisor into a
publisher: each benchmark's block-trace and line-event arrays are packed
**once** into :mod:`multiprocessing.shared_memory` segments keyed by the
store content key, and every worker attaches zero-copy read-only views
instead of making its own copies.

Lifecycle contract:

* the **supervisor owns every segment**: it publishes before launching
  workers and unlinks all segments in a ``finally`` (plus an ``atexit``
  backstop), so no run can leak ``/dev/shm`` space;
* **workers never close or unlink**: they detach implicitly at process
  exit, and they unregister their attachment from Python's
  ``resource_tracker`` (which would otherwise "helpfully" unlink the
  supervisor's segment when the first worker exits);
* publication is **best effort and warm-only**: only artifacts already
  resident in the parent (in-process memo or a persistent-store hit) are
  published — a cold benchmark is left to the workers, which derive and
  persist it exactly as before, so the parent never serialises cold
  derivation;
* attachment is **fallible by design**: the ``plane.attach`` chaos site
  sits on the attach path, and any failure (injected or real — segment
  gone, exotic platform, no ``/dev/shm``) degrades that artifact to the
  per-worker store/derive path with bit-identical results.

``REPRO_PLANE=off`` (or ``0``/``none``/empty) disables the arena.
"""

from __future__ import annotations

import atexit
import os
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.resilience.chaos import chaos_point
from repro.trace.events import LineEventTrace
from repro.trace.executor import BlockTrace

__all__ = ["PlaneClient", "TraceArena", "plane_enabled"]

_DISABLED_VALUES = frozenset({"", "0", "off", "none", "disabled"})

#: Handles are plain picklable dicts so they cross the worker ``spawn``
#: boundary untouched: segment name, artifact kind, scalar metadata, and
#: the (field, dtype, length, offset) layout of each packed array.
Handle = Dict[str, Any]

_ALIGN = 64


def plane_enabled() -> bool:
    """Whether the shared-memory plane is enabled (``REPRO_PLANE``)."""
    value = os.environ.get("REPRO_PLANE", "on").strip().lower()
    return value not in _DISABLED_VALUES


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _unregister(shm: shared_memory.SharedMemory) -> None:
    # Attaching registers the segment with this process's resource
    # tracker, which unlinks it at process exit — yanking the mapping out
    # from under every sibling.  The supervisor owns the lifecycle.
    try:
        resource_tracker.unregister(getattr(shm, "_name", shm.name), "shared_memory")
    except Exception:
        pass


def _reregister(shm: shared_memory.SharedMemory) -> None:
    # Forked workers share the supervisor's tracker process, so a worker's
    # unregister above removed the supervisor's registration too.  Restore
    # it (a set add — idempotent) right before unlink, whose own internal
    # unregister would otherwise trip a KeyError inside the tracker.
    try:
        resource_tracker.register(getattr(shm, "_name", shm.name), "shared_memory")
    except Exception:
        pass


class TraceArena:
    """Supervisor-side owner of the published shared-memory segments."""

    def __init__(self) -> None:
        self._segments: List[shared_memory.SharedMemory] = []
        self._handles: Dict[str, Handle] = {}
        self._closed = False
        atexit.register(self.close)

    def __len__(self) -> int:
        return len(self._handles)

    def handles(self) -> Dict[str, Handle]:
        """Picklable attachment handles, keyed by store content key."""
        return dict(self._handles)

    def _publish(
        self,
        key: str,
        kind: str,
        scalars: Mapping[str, Any],
        fields: Sequence[Tuple[str, np.ndarray]],
    ) -> int:
        if self._closed or key in self._handles:
            return 0
        layout: List[Tuple[str, str, int, int]] = []
        offset = 0
        for name, array in fields:
            offset = _aligned(offset)
            layout.append((name, str(array.dtype), int(array.shape[0]), offset))
            offset += int(array.nbytes)
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        try:
            for (name, dtype, length, start), (_, array) in zip(layout, fields):
                view: np.ndarray = np.ndarray(
                    (length,), dtype=np.dtype(dtype), buffer=shm.buf, offset=start
                )
                view[:] = array
                del view  # drop the buffer export before any close()
        except BaseException:
            try:
                shm.unlink()
            except OSError:
                pass
            raise
        self._segments.append(shm)
        self._handles[key] = {
            "segment": shm.name,
            "kind": kind,
            "key": key,
            "scalars": dict(scalars),
            "arrays": layout,
        }
        return 1

    def publish_events(self, key: str, events: LineEventTrace) -> int:
        """Publish a line-event trace; returns 1 if a segment was created."""
        return self._publish(
            key,
            "events",
            {"line_size": int(events.line_size)},
            [
                ("line_addrs", np.ascontiguousarray(events.line_addrs)),
                ("counts", np.ascontiguousarray(events.counts)),
                ("slots", np.ascontiguousarray(events.slots)),
            ],
        )

    def publish_block_trace(self, key: str, trace: BlockTrace) -> int:
        """Publish a block trace; returns 1 if a segment was created."""
        return self._publish(
            key,
            "blocks",
            {
                "program_name": str(trace.program_name),
                "num_instructions": int(trace.num_instructions),
                "num_program_runs": int(trace.num_program_runs),
            },
            [("uids", np.ascontiguousarray(trace.uids))],
        )

    def close(self) -> None:
        """Unlink every segment (idempotent; also the ``atexit`` backstop)."""
        if self._closed:
            return
        self._closed = True
        for shm in self._segments:
            try:
                shm.close()
            except Exception:
                pass
            _reregister(shm)
            try:
                shm.unlink()
            except Exception:
                pass
        self._segments = []
        self._handles = {}


class PlaneClient:
    """Worker-side zero-copy attachment to a published arena.

    Every accessor returns ``None`` on any failure — unknown key, injected
    ``plane.attach`` fault, vanished segment — so callers always have the
    store/derive path as a bit-identical fallback.  ``attached``/
    ``degraded`` count outcomes for the grid summary.
    """

    def __init__(self, handles: Mapping[str, Handle]):
        self._handles: Dict[str, Handle] = dict(handles)
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self.attached = 0
        self.degraded = 0

    def _segment(self, name: str) -> shared_memory.SharedMemory:
        shm = self._segments.get(name)
        if shm is None:
            shm = shared_memory.SharedMemory(name=name)
            _unregister(shm)
            # Keep the mapping open for the life of the process: the views
            # handed out below alias its buffer.
            self._segments[name] = shm
        return shm

    def _arrays(self, handle: Handle) -> Dict[str, np.ndarray]:
        shm = self._segment(str(handle["segment"]))
        out: Dict[str, np.ndarray] = {}
        for name, dtype, length, offset in handle["arrays"]:
            view: np.ndarray = np.ndarray(
                (int(length),),
                dtype=np.dtype(str(dtype)),
                buffer=shm.buf,
                offset=int(offset),
            )
            view.setflags(write=False)
            out[str(name)] = view
        return out

    def events(self, key: str) -> Optional[LineEventTrace]:
        handle = self._handles.get(key)
        if handle is None or handle.get("kind") != "events":
            return None
        try:
            chaos_point("plane.attach", f"events:{key}")
            arrays = self._arrays(handle)
            trace = LineEventTrace(
                line_size=int(handle["scalars"]["line_size"]),
                line_addrs=arrays["line_addrs"],
                counts=arrays["counts"],
                slots=arrays["slots"],
            )
        except Exception:
            self.degraded += 1
            return None
        self.attached += 1
        return trace

    def block_trace(self, key: str) -> Optional[BlockTrace]:
        handle = self._handles.get(key)
        if handle is None or handle.get("kind") != "blocks":
            return None
        try:
            chaos_point("plane.attach", f"blocks:{key}")
            arrays = self._arrays(handle)
            scalars = handle["scalars"]
            trace = BlockTrace(
                program_name=str(scalars["program_name"]),
                uids=arrays["uids"],
                num_instructions=int(scalars["num_instructions"]),
                num_program_runs=int(scalars["num_program_runs"]),
            )
        except Exception:
            self.degraded += 1
            return None
        self.attached += 1
        return trace
