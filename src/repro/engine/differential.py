"""Incremental differential replay: delta-driven state evolution for sweeps.

The ``batch`` tier (:mod:`repro.engine.batch`) already traverses a trace
once per family, but its sequential pass still pays **per config** on every
miss: a 256-point WPA sweep whose members each take ~2k cold misses runs
the victim-choice arithmetic half a million times.  This module exploits
what those sweep points have in common instead: *adjacent configurations
share almost all of their state evolution*.

Sort the family by effective WPA threshold (a baseline member is the
degenerate threshold 0).  Two neighbouring configs ``k`` and ``k + 1``
apply **identical** fill rules to every event except those whose line
address falls in the threshold gap ``[t_k, t_{k+1})`` — config ``k + 1``
mandates the way, config ``k`` round-robins.  So, starting from one shared
baseline state evolution, per-set cache states can only *diverge* at a
gap-straddling miss, and the divergence persists exactly until the
eviction cascade it seeds dies out and the states reconverge.

The implementation makes that sharing literal:

* Each cache set holds an ordered list of **runs** — maximal intervals of
  the (threshold-sorted) config axis whose members currently have
  bit-identical set state.  A run owns one state snapshot (``tags`` per
  way, the round-robin pointer, a residency dict), memoised for every
  config in the interval at once: the whole family starts as a single run
  per set, which *is* the baseline state evolution computed once.
* A hit touches no state, so the overwhelmingly common event — the line is
  resident in *every* run — costs one probe of a per-set ``tag ->
  containing-run count`` dict for the whole family, like the batch tier's
  ``full_mask`` test, however many runs the set has diverged into.
* A miss is processed **per run, not per config**: counters are range
  updates on difference arrays over the config axis (O(1) per run), and
  the fill mutates the one shared snapshot.  Only when the event's
  threshold position ``p`` falls strictly inside a run — the delta event
  subset — does the run split in two (clone the snapshot; round-robin fill
  below ``p``, mandated fill at and above), which is the only place the
  family ever pays more than O(runs) work.
* After any miss the set's dirty run list is swept for **reconvergence**:
  adjacent runs whose snapshots became equal again merge back into one, so
  a divergence costs only its own cascade, never the rest of the trace.

Duplicate thresholds can never be split apart (no position falls strictly
between equal thresholds), so repeated sweep points are free, and a sweep
whose tail thresholds all exceed the binary's extent collapses those
configs into one permanently-shared run.  The cost of a family is thus
``O(events + Σ_sets misses × live runs)`` — for realistic sweeps the live
run count hovers near 1, which is where the ≥5x over the batch tier on
256-point sweeps comes from (``BENCH_engine.json``).

The event-independent reductions get the same adjacency treatment: every
per-member sweep count (predicted hints, false positives/negatives, extra
in-WPA fetches) is a monotone step function of the threshold, so instead
of the batch tier's ``(members, events)`` boolean broadcast the family
does O(log events) ``searchsorted`` lookups into per-trace sorted
aggregates (:func:`repro.engine.arrays.sweep_aggregates`) — sorted once
per trace, shared by every family over it.

Bit-identity is inherited, not re-proven: option resolution, threshold
sorting, and the per-member counter formulas are the *same code* as the
batch tier (:func:`repro.engine.batch._family_counters`); the sequential
pass performs the per-config kernels' integer arithmetic on
interval-shared state, and the reduction lookups count the same integer
sets via exact pair-counting identities.
``tests/test_engine_differential.py`` pins differential ≡ batch ≡
per-cell per :class:`FetchCounters` field, and the engine-agreement suite
extends the check across all bundled workloads.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.cache.access import FetchCounters
from repro.cache.geometry import CacheGeometry
from repro.engine.arrays import geometry_lists, sweep_aggregates
from repro.engine.batch import BatchMember, _family_counters, _Member
from repro.trace.events import LineEventTrace

__all__ = ["differential_counters"]


def _delta_reductions(
    events: LineEventTrace,
    resolved: List[_Member],
    wp_indices: List[int],
) -> Tuple[dict, dict, dict, dict]:
    """Event-independent counts as threshold lookups, not event scans.

    The batch tier's dense reductions broadcast the address array against
    every sweep point — O(members x events), which dominates a 256-point
    sweep.  Every one of those counts is a monotone function of the
    threshold, so the differential tier looks each member up in the
    per-trace sorted aggregates (:func:`repro.engine.arrays.sweep_aggregates`)
    instead: O(log events) per member after a once-per-trace sort, with the
    event-0 hint seeding handled as an explicit boundary term.  Integer
    arithmetic throughout — bit-identical to ``_dense_reductions`` by the
    pair-counting identities documented on ``sweep_aggregates``.
    """
    prefix_sorted, up_a, up_b, dn_a, dn_b, addr_sorted, extra_cumsum = (
        sweep_aggregates(events)
    )
    first_addr = int(events.line_addrs[0])
    thresholds = np.asarray(
        [resolved[i].wpa_size for i in wp_indices], dtype=np.int64
    )
    predicted_rows = np.searchsorted(prefix_sorted, thresholds, side="left")
    false_pos_rows = np.searchsorted(up_a, thresholds, side="left") - np.searchsorted(
        up_b, thresholds, side="left"
    )
    false_neg_rows = np.searchsorted(dn_b, thresholds, side="left") - np.searchsorted(
        dn_a, thresholds, side="left"
    )
    wpa_extra_rows = extra_cumsum[np.searchsorted(addr_sorted, thresholds, side="left")]
    predicted = {}
    false_pos = {}
    false_neg = {}
    wpa_extra = {}
    for slot, index in enumerate(wp_indices):
        hint_initial = resolved[index].hint_initial
        first_in_wpa = first_addr < resolved[index].wpa_size
        predicted[index] = int(predicted_rows[slot]) + int(hint_initial)
        false_pos[index] = int(false_pos_rows[slot]) + int(hint_initial and not first_in_wpa)
        false_neg[index] = int(false_neg_rows[slot]) + int(first_in_wpa and not hint_initial)
        wpa_extra[index] = int(wpa_extra_rows[slot])
    return predicted, false_pos, false_neg, wpa_extra


def _replay_runs(
    events: LineEventTrace,
    geometry: CacheGeometry,
    thresholds: List[int],
) -> Tuple[List[int], List[int], List[int]]:
    """The delta-driven pass: per-config ``(misses, evictions, wp_fills)``.

    ``thresholds`` must be ascending (the shared assembly sorts them).  A
    run is a plain list ``[start, tags, pointer, resident]`` — the config
    interval starts at ``start`` and ends where the next run begins;
    ``tags``/``pointer``/``resident`` are the shared per-set snapshot in
    exactly the per-config kernel's representation.  Counters are
    difference arrays over the config axis, prefix-summed at the end.
    """
    num_configs = len(thresholds)
    ways = geometry.ways
    num_sets = geometry.num_sets

    # Threshold position per event: configs >= position hold the address in
    # their WPA (one searchsorted against the shared address array).
    positions = np.searchsorted(
        np.asarray(thresholds, dtype=np.int64), events.line_addrs, side="right"
    )

    set_indices, tags, mandated = geometry_lists(events, geometry)
    runs_by_set: List[List[list]] = [
        [[0, [-1] * ways, 0, {}]] for _ in range(num_sets)
    ]
    # Per-set aggregate residency: tag -> number of runs whose snapshot
    # holds the tag.  ``res_count[t] == len(runs)`` means every config
    # hits, whatever the current divergence — the O(1) fast path that keeps
    # transparent events from paying O(runs) probes.
    res_count_by_set: List[dict] = [dict() for _ in range(num_sets)]
    misses_diff = [0] * (num_configs + 1)
    evictions_diff = [0] * (num_configs + 1)
    wp_fills_diff = [0] * (num_configs + 1)

    for s, t, m, p in zip(set_indices, tags, mandated, positions.tolist()):
        runs = runs_by_set[s]
        res_count = res_count_by_set[s]
        if res_count.get(t, 0) == len(runs):
            continue  # resident in every run's snapshot: everyone hits
        i = 0
        while i < len(runs):
            run = runs[i]
            if t in run[3]:
                i += 1
                continue
            start = run[0]
            end = runs[i + 1][0] if i + 1 < len(runs) else num_configs
            if start < p < end:
                # The delta case: the threshold gap straddles this run, so
                # its halves fill differently from here on.  Clone the
                # snapshot for [p, end); this iteration fills [start, p).
                clone_resident = dict(run[3])
                runs.insert(i + 1, [p, run[1][:], run[2], clone_resident])
                for tag in clone_resident:
                    res_count[tag] += 1
                end = p
            if p <= start:
                way = m  # whole run inside the WPA: mandated-way fill
                wp_fills_diff[start] += 1
                wp_fills_diff[end] -= 1
            else:
                way = run[2]  # whole run outside: shared round-robin fill
                run[2] = way + 1 if way + 1 < ways else 0
            row = run[1]
            resident = run[3]
            old = row[way]
            if old != -1:
                evictions_diff[start] += 1
                evictions_diff[end] -= 1
                del resident[old]
                remaining = res_count[old] - 1
                if remaining:
                    res_count[old] = remaining
                else:
                    del res_count[old]
            row[way] = t
            resident[t] = way
            res_count[t] = res_count.get(t, 0) + 1
            misses_diff[start] += 1
            misses_diff[end] -= 1
            i += 1
        if len(runs) > 1:
            # Reconvergence sweep: only misses mutate snapshots, so this is
            # the one place adjacent runs can have become equal again.
            j = len(runs) - 1
            while j:
                left, right = runs[j - 1], runs[j]
                if left[2] == right[2] and left[1] == right[1]:
                    for tag in right[3]:
                        remaining = res_count[tag] - 1
                        if remaining:
                            res_count[tag] = remaining
                        else:
                            del res_count[tag]
                    del runs[j]
                j -= 1

    misses = [0] * num_configs
    evictions = [0] * num_configs
    wp_fills = [0] * num_configs
    acc_m = acc_e = acc_w = 0
    for c in range(num_configs):
        acc_m += misses_diff[c]
        acc_e += evictions_diff[c]
        acc_w += wp_fills_diff[c]
        misses[c] = acc_m
        evictions[c] = acc_e
        wp_fills[c] = acc_w
    return misses, evictions, wp_fills


def differential_counters(
    events: LineEventTrace,
    geometry: CacheGeometry,
    members: Sequence[BatchMember],
) -> List[FetchCounters]:
    """Replay ``events`` once for the family, sharing adjacent-config state.

    Drop-in replacement for :func:`~repro.engine.batch.batch_counters`:
    same membership rules (every member must be
    :func:`~repro.engine.batch.batchable`), same input-order results, and
    bit-identical :class:`FetchCounters` field by field — only the
    sequential pass and the sweep reductions differ: interval-shared state
    snapshots instead of per-config residency bitmasks, and sorted-
    aggregate lookups instead of ``(members, events)`` broadcasts.
    """
    return _family_counters(events, geometry, members, _replay_runs, _delta_reductions)
