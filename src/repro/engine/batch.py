"""Batched single-pass replay: one trace traversal for a family of configs.

The paper's sweeps (Figures 4-6, the sensitivity study) replay the *same*
:class:`~repro.trace.events.LineEventTrace` under many WPA sizes, schemes,
and option combinations.  The per-config kernels in
:mod:`repro.engine.kernels` traverse the event stream once per cell; this
module traverses it **once per family** and emits bit-identical
:class:`~repro.cache.access.FetchCounters` for every member simultaneously.

Two observations make that possible:

* **Event-independent reductions batch trivially.**  WPA membership for
  all sweep points is one broadcast against the shared address array
  (``addrs < thresholds[:, None]``), way hints are a shift of that matrix,
  and the misprediction/search/precharge counts are row-wise reductions —
  2-D NumPy over a ``(configs, events)`` axis.  The I-TLB miss count only
  depends on ``(page_size, itlb_entries)`` and is memoised per trace.

* **The sequential cache state is shared almost everywhere.**  All members
  of a family see the same set index and tag per event (the geometry is
  part of the family key), and their cache contents only diverge where
  fill decisions diverge.  Residency is therefore tracked as one
  ``{tag: config-bitmask}`` dict per set: the common case — the line is
  resident in *every* config — is a single dict probe, and only configs
  that actually miss pay per-config work (victim choice from a
  struct-of-arrays ``tag_at[config][set][way]`` / ``pointer[config][set]``
  residency, exactly the per-config kernel's round-robin or mandated-way
  rule).  The Python-level loop runs once per event instead of once per
  event per cell.

The per-config kernels remain the oracle: every counter here is computed
with the same integer arithmetic, so the equivalence suite can assert
bit-identity field by field (``tests/test_engine_batch.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.cache.access import FetchCounters
from repro.cache.geometry import CacheGeometry
from repro.errors import SchemeError
from repro.engine.arrays import geometry_lists, itlb_misses
from repro.engine.kernels import (
    _BASELINE_OPTIONS,
    _WAY_PLACEMENT_OPTIONS,
    _check_stream,
    _check_tlb,
    FAST_SCHEMES,
)
from repro.trace.events import LineEventTrace

__all__ = ["BatchMember", "batch_counters", "batchable"]

#: Signature of a sequential family replay: ascending effective thresholds in,
#: per-config ``(misses, evictions, wp_fills)`` out.  ``_replay_states`` below
#: is the bitmask implementation; :mod:`repro.engine.differential` plugs in a
#: delta-driven one.  Both feed the same assembly (:func:`_family_counters`),
#: so everything outside the sequential pass is shared by construction.
FamilyReplay = Callable[
    [LineEventTrace, CacheGeometry, List[int]],
    Tuple[List[int], List[int], List[int]],
]

#: Signature of the event-independent sweep reductions: given the resolved
#: members and the indices of the way-placement ones, return per-index dicts
#: ``(predicted, false_pos, false_neg, wpa_extra)``.  ``_dense_reductions``
#: below is the 2-D ``(configs, events)`` implementation; the differential
#: tier substitutes threshold-indexed lookups into per-trace sorted
#: aggregates (:func:`repro.engine.arrays.sweep_aggregates`).
FamilyReductions = Callable[
    [LineEventTrace, List["_Member"], List[int]],
    Tuple[Dict[int, int], Dict[int, int], Dict[int, int], Dict[int, int]],
]


@dataclass(frozen=True)
class BatchMember:
    """One configuration of a batch family: a scheme plus its options.

    ``options`` takes exactly the keyword arguments of the corresponding
    per-config kernel (:func:`~repro.engine.kernels.baseline_counters` /
    :func:`~repro.engine.kernels.way_placement_counters`); unknown options
    make the member non-batchable, mirroring ``fast_counters``.
    """

    scheme: str
    options: Mapping = field(default_factory=dict)


def batchable(scheme: str, options: Mapping) -> bool:
    """Can this (scheme, options) cell join a batch family?

    Mirrors the gate of :func:`~repro.engine.kernels.fast_counters`: only
    schemes with a vectorized kernel, and only options that kernel models.
    """
    if scheme == "baseline":
        return set(options) <= _BASELINE_OPTIONS
    if scheme == "way-placement":
        return set(options) <= _WAY_PLACEMENT_OPTIONS
    return False


@dataclass
class _Member:
    """A member with defaults resolved, plus its loop bookkeeping slot."""

    scheme: str
    wpa_size: int
    itlb_entries: int
    page_size: int
    same_line_skip: bool
    hint_initial: bool

    @property
    def threshold(self) -> int:
        """Effective WPA threshold for the fill rule (baseline has none)."""
        return self.wpa_size if self.scheme == "way-placement" else 0


def _resolve(member: BatchMember) -> _Member:
    scheme, options = member.scheme, dict(member.options)
    if scheme not in FAST_SCHEMES or not batchable(scheme, options):
        raise SchemeError(
            f"scheme {scheme!r} with options {sorted(options)} is not "
            "batchable; run it on the per-config engines instead"
        )
    if scheme == "baseline":
        return _Member(
            scheme=scheme,
            wpa_size=0,
            itlb_entries=options.get("itlb_entries", 32),
            page_size=options.get("page_size", 1024),
            same_line_skip=bool(options.get("same_line_skip", False)),
            hint_initial=False,
        )
    wpa_size = options.get("wpa_size", 0)
    if wpa_size < 0:
        raise SchemeError(f"way-placement area size must be >= 0, got {wpa_size}")
    if options.get("wpa_base", 0) != 0:
        raise SchemeError(
            "the way-placement area must start at the beginning of the "
            "binary (address 0 in this model)"
        )
    return _Member(
        scheme=scheme,
        wpa_size=wpa_size,
        itlb_entries=options.get("itlb_entries", 32),
        page_size=options.get("page_size", 1024),
        same_line_skip=bool(options.get("same_line_skip", True)),
        hint_initial=bool(options.get("hint_initial", False)),
    )


def _replay_states(
    events: LineEventTrace,
    geometry: CacheGeometry,
    thresholds: List[int],
) -> Tuple[List[int], List[int], List[int]]:
    """The one pass: per-config ``(misses, evictions, wp_fills)``.

    ``thresholds`` must be ascending; config ``c`` fills addresses below
    ``thresholds[c]`` into their mandated way and everything else round-
    robin — exactly the per-config kernel's rule (a threshold of 0 is the
    baseline).  Residency is a ``{tag: bitmask-of-configs}`` dict per set;
    an event whose tag is resident everywhere (the overwhelmingly common
    case) costs one dict probe for the whole family.
    """
    num_configs = len(thresholds)
    ways = geometry.ways
    num_sets = geometry.num_sets
    full_mask = (1 << num_configs) - 1

    # Per-event *position* of the address among the ascending thresholds:
    # configs ``>= position`` contain the address in their WPA, so the flag
    # column is the suffix mask ``suffix_masks[position]``.  The mask itself
    # is looked up lazily on the miss path — materializing one
    # arbitrary-precision int per trace event (as earlier revisions did)
    # costs O(events * configs/64) memory for no speedup, since resident-
    # everywhere events (the common case) never consult it.
    positions = np.searchsorted(
        np.asarray(thresholds, dtype=np.int64), events.line_addrs, side="right"
    )
    suffix_masks = [(full_mask >> k) << k for k in range(num_configs + 1)]

    set_indices, tags, mandated = geometry_lists(events, geometry)
    resident: List[Dict[int, int]] = [dict() for _ in range(num_sets)]
    # Residency as struct-of-arrays: one preallocated (configs, sets, ways)
    # NumPy block instead of nested Python lists (a 256-config sweep over a
    # 1024-set cache would otherwise allocate millions of boxed ints).
    tag_at = np.full((num_configs, num_sets, ways), -1, dtype=np.int64)
    pointer = [[0] * num_sets for _ in range(num_configs)]
    misses = [0] * num_configs
    evictions = [0] * num_configs
    wp_fills = [0] * num_configs

    for s, t, m, position in zip(set_indices, tags, mandated, positions.tolist()):
        res = resident[s]
        have = res.get(t, 0)
        if have == full_mask:
            continue  # resident in every config: the whole family hits
        wpa_mask = suffix_masks[position]
        missing = full_mask & ~have
        while missing:
            low = missing & -missing
            missing ^= low
            c = low.bit_length() - 1
            if low & wpa_mask:
                way = m
                wp_fills[c] += 1
            else:
                row_pointer = pointer[c]
                way = row_pointer[s]
                row_pointer[s] = way + 1 if way + 1 < ways else 0
            row = tag_at[c, s]
            old = int(row[way])
            if old != -1:
                evictions[c] += 1
                old_mask = res[old] & ~low
                if old_mask:
                    res[old] = old_mask
                else:
                    del res[old]
            row[way] = t
            misses[c] += 1
            have |= low
        res[t] = have
    return misses, evictions, wp_fills


def _dense_reductions(
    events: LineEventTrace,
    resolved: List[_Member],
    wp_indices: List[int],
) -> Tuple[Dict[int, int], Dict[int, int], Dict[int, int], Dict[int, int]]:
    """Event-independent reductions as 2-D NumPy over ``(members, events)``.

    One broadcast of the shared address array against every way-placement
    threshold; hints are the flag matrix shifted one event right.  Linear in
    ``members x events`` — ideal for the handful-of-points sweeps the batch
    tier serves, and the oracle the differential tier's O(log events)
    per-member lookups must match bit for bit.
    """
    thresholds = np.asarray(
        [[resolved[i].wpa_size] for i in wp_indices], dtype=np.int64
    )
    flags = events.line_addrs[None, :] < thresholds  # (members, events)
    hints = np.empty_like(flags)
    hints[:, 0] = [resolved[i].hint_initial for i in wp_indices]
    hints[:, 1:] = flags[:, :-1]
    predicted_rows = np.count_nonzero(hints, axis=1)
    false_pos_rows = np.count_nonzero(hints & ~flags, axis=1)
    false_neg_rows = np.count_nonzero(flags & ~hints, axis=1)
    extra = (events.counts - 1).astype(np.int64)
    wpa_extra_rows = flags @ extra
    predicted = {}
    false_pos = {}
    false_neg = {}
    wpa_extra = {}
    for slot, index in enumerate(wp_indices):
        predicted[index] = int(predicted_rows[slot])
        false_pos[index] = int(false_pos_rows[slot])
        false_neg[index] = int(false_neg_rows[slot])
        wpa_extra[index] = int(wpa_extra_rows[slot])
    return predicted, false_pos, false_neg, wpa_extra


def _family_counters(
    events: LineEventTrace,
    geometry: CacheGeometry,
    members: Sequence[BatchMember],
    replay: FamilyReplay,
    reductions: FamilyReductions = _dense_reductions,
) -> List[FetchCounters]:
    """Shared family assembly around pluggable pass and reduction stages.

    Everything else is identical for every family engine: option
    resolution, the threshold sort, and the per-member counter formulas.
    ``replay`` supplies the per-config ``(misses, evictions, wp_fills)``
    for the ascending threshold list; ``reductions`` supplies the
    event-independent per-member counts — the two parts the ``batch`` and
    ``differential`` tiers implement differently.
    """
    _check_stream(events, geometry)
    resolved = [_resolve(member) for member in members]
    for member in resolved:
        _check_tlb(member.itlb_entries, member.page_size, member.wpa_size)
    if not resolved:
        return []

    n = events.num_events
    ways = geometry.ways
    fetches = events.num_fetches

    # -- the one sequential pass, configs sorted by effective threshold ----
    order = sorted(range(len(resolved)), key=lambda i: resolved[i].threshold)
    misses_s, evictions_s, wp_fills_s = replay(
        events, geometry, [resolved[i].threshold for i in order]
    )
    misses = [0] * len(resolved)
    evictions = [0] * len(resolved)
    wp_fills = [0] * len(resolved)
    for slot, index in enumerate(order):
        misses[index] = misses_s[slot]
        evictions[index] = evictions_s[slot]
        wp_fills[index] = wp_fills_s[slot]

    # -- event-independent reductions across way-placement members ---------
    wp_indices = [i for i, member in enumerate(resolved) if member.scheme == "way-placement"]
    predicted = {}
    false_pos = {}
    false_neg = {}
    wpa_extra = {}
    if wp_indices and n:
        predicted, false_pos, false_neg, wpa_extra = reductions(
            events, resolved, wp_indices
        )

    # -- assemble per-member counters with the per-config formulas ---------
    results: List[FetchCounters] = []
    for index, member in enumerate(resolved):
        counters = FetchCounters()
        counters.fetches = fetches
        counters.line_events = n
        counters.itlb_accesses = n
        counters.itlb_misses = itlb_misses(events, member.page_size, member.itlb_entries)
        counters.hits = n - misses[index]
        counters.misses = misses[index]
        counters.fills = misses[index]
        counters.evictions = evictions[index]
        if member.scheme == "baseline":
            if member.same_line_skip:
                counters.same_line_fetches = fetches - n
                counters.full_searches = n
                counters.ways_precharged = ways * n
            else:
                counters.full_searches = fetches
                counters.ways_precharged = ways * fetches
        else:
            hinted = predicted.get(index, 0)
            fp = false_pos.get(index, 0)
            full_searches = (n - hinted) + fp
            single_way = hinted
            ways_precharged = hinted + ways * full_searches
            counters.second_accesses = fp
            counters.extra_access_cycles = fp
            counters.hint_false_positives = fp
            counters.hint_false_negatives = false_neg.get(index, 0)
            if member.same_line_skip:
                counters.same_line_fetches = fetches - n
            elif n:
                in_wpa_extra = wpa_extra.get(index, 0)
                other_extra = (fetches - n) - in_wpa_extra
                single_way += in_wpa_extra
                ways_precharged += in_wpa_extra
                full_searches += other_extra
                ways_precharged += ways * other_extra
            counters.full_searches = full_searches
            counters.single_way_searches = single_way
            counters.ways_precharged = ways_precharged
            counters.wp_fills = wp_fills[index]
        counters.validate()
        results.append(counters)
    return results


def batch_counters(
    events: LineEventTrace,
    geometry: CacheGeometry,
    members: Sequence[BatchMember],
) -> List[FetchCounters]:
    """Replay ``events`` once for every member; counters in input order.

    Every member must be :func:`batchable` (the planner guarantees this;
    direct callers get a :class:`~repro.errors.SchemeError` otherwise), and
    every returned :class:`FetchCounters` is bit-identical — field by
    field — to the member's per-config kernel and reference scheme.
    """
    return _family_counters(events, geometry, members, _replay_states)
