"""Per-trace derived arrays, computed once and shared across schemes.

Every fetch scheme re-derives the same quantities from a
:class:`~repro.trace.events.LineEventTrace`: the set index and tag of each
event, the mandated way of each address, whether the address lies in the
way-placement area, and the way-hint vector (which is just the WPA flag
shifted by one event).  This module computes them vectorized with NumPy and
memoises them per trace object, keyed by the geometry/WPA parameters they
depend on — replaying the same trace under nine cache configurations or six
WPA sizes recomputes only what actually changed.

The memo holds weak references to the traces, so arrays die with the trace
they describe.
"""

from __future__ import annotations

import weakref
from typing import Dict, Tuple

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.trace.events import LineEventTrace
from repro.utils.bitops import mask

__all__ = ["geometry_arrays", "page_numbers", "way_hints", "wpa_flags"]

# id(trace) -> (weakref keeping the id honest, {cache key: arrays}).  A plain
# WeakKeyDictionary would be simpler but LineEventTrace is an eq=True frozen
# dataclass holding ndarrays, hence unhashable.
_PER_TRACE: Dict[int, Tuple[weakref.ref, dict]] = {}


def _memo(events: LineEventTrace) -> dict:
    key = id(events)
    entry = _PER_TRACE.get(key)
    if entry is not None and entry[0]() is events:
        return entry[1]
    store: dict = {}
    ref = weakref.ref(events, lambda _ref, _key=key: _PER_TRACE.pop(_key, None))
    _PER_TRACE[key] = (ref, store)
    return store


def geometry_arrays(
    events: LineEventTrace, geometry: CacheGeometry
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-event ``(set_indices, tags, mandated_ways)`` under ``geometry``.

    Only the address-slicing bit widths matter, so geometries differing in
    ways but equal in sets x line size share the set/tag arrays' cache slot.
    """
    key = ("geom", geometry.offset_bits, geometry.set_bits, geometry.way_bits)
    store = _memo(events)
    if key not in store:
        addrs = events.line_addrs
        set_indices = (addrs >> geometry.offset_bits) & mask(geometry.set_bits)
        tags = addrs >> (geometry.offset_bits + geometry.set_bits)
        mandated = tags & mask(geometry.way_bits)
        store[key] = (set_indices, tags, mandated)
    return store[key]


def wpa_flags(events: LineEventTrace, wpa_size: int) -> np.ndarray:
    """Boolean per-event array: does the line lie in ``[0, wpa_size)``?"""
    key = ("wpa", wpa_size)
    store = _memo(events)
    if key not in store:
        store[key] = events.line_addrs < wpa_size
    return store[key]


def way_hints(
    events: LineEventTrace, wpa_size: int, hint_initial: bool = False
) -> np.ndarray:
    """The way-hint vector: the WPA flag of the *previous* event.

    ``hint_initial`` seeds element 0, exactly like
    :class:`~repro.cache.wayhint.WayHintBit` (a last-value predictor).
    """
    key = ("hint", wpa_size, bool(hint_initial))
    store = _memo(events)
    if key not in store:
        flags = wpa_flags(events, wpa_size)
        hints = np.empty_like(flags)
        if hints.shape[0]:
            hints[0] = hint_initial
            hints[1:] = flags[:-1]
        store[key] = hints
    return store[key]


def page_numbers(events: LineEventTrace, page_bits: int) -> np.ndarray:
    """Per-event virtual page number (for I-TLB modelling)."""
    key = ("pages", page_bits)
    store = _memo(events)
    if key not in store:
        store[key] = events.line_addrs >> page_bits
    return store[key]
