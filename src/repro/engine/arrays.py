"""Per-trace derived arrays, computed once and shared across schemes.

Every fetch scheme re-derives the same quantities from a
:class:`~repro.trace.events.LineEventTrace`: the set index and tag of each
event, the mandated way of each address, whether the address lies in the
way-placement area, and the way-hint vector (which is just the WPA flag
shifted by one event).  This module computes them vectorized with NumPy and
memoises them per trace object, keyed by the geometry/WPA parameters they
depend on — replaying the same trace under nine cache configurations or six
WPA sizes recomputes only what actually changed.

Beyond the arrays themselves, two *products* of the arrays are memoised
because repeated cells on the same trace kept re-deriving them:

* :func:`geometry_lists` — the ``.tolist()`` decomposition of
  :func:`geometry_arrays` that the sequential kernel loops iterate (the
  conversion costs about as much as a fifth of the loop itself);
* :func:`itlb_misses` — the round-robin I-TLB miss count, which depends
  only on ``(page_size, entries)`` and is therefore identical for every
  cell of a WPA sweep.

The memo holds weak references to the traces, so arrays die with the trace
they describe.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Tuple

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.trace.events import LineEventTrace
from repro.utils.bitops import log2_exact, mask

__all__ = [
    "geometry_arrays",
    "geometry_lists",
    "itlb_misses",
    "line_census",
    "page_numbers",
    "sweep_aggregates",
    "way_hints",
    "wpa_flag_list",
    "wpa_flags",
]

# id(trace) -> (weakref keeping the id honest, {cache key: arrays}).  A plain
# WeakKeyDictionary would be simpler but LineEventTrace is an eq=True frozen
# dataclass holding ndarrays, hence unhashable.
_PER_TRACE: Dict[int, Tuple[weakref.ref, dict]] = {}


def _memo(events: LineEventTrace) -> dict:
    key = id(events)
    entry = _PER_TRACE.get(key)
    if entry is not None and entry[0]() is events:
        return entry[1]
    store: dict = {}
    ref = weakref.ref(events, lambda _ref, _key=key: _PER_TRACE.pop(_key, None))
    _PER_TRACE[key] = (ref, store)
    return store


def geometry_arrays(
    events: LineEventTrace, geometry: CacheGeometry
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-event ``(set_indices, tags, mandated_ways)`` under ``geometry``.

    Only the address-slicing bit widths matter, so geometries differing in
    ways but equal in sets x line size share the set/tag arrays' cache slot.
    """
    key = ("geom", geometry.offset_bits, geometry.set_bits, geometry.way_bits)
    store = _memo(events)
    if key not in store:
        addrs = events.line_addrs
        set_indices = (addrs >> geometry.offset_bits) & mask(geometry.set_bits)
        tags = addrs >> (geometry.offset_bits + geometry.set_bits)
        mandated = tags & mask(geometry.way_bits)
        store[key] = (set_indices, tags, mandated)
    return store[key]


def geometry_lists(
    events: LineEventTrace, geometry: CacheGeometry
) -> Tuple[List[int], List[int], List[int]]:
    """:func:`geometry_arrays` decomposed to plain lists, memoised.

    The sequential kernel loops iterate Python ints; converting the arrays
    costs ~1ms per 60k events, which a WPA sweep used to pay once per cell.
    Shares the geometry key of :func:`geometry_arrays` (way count does not
    matter for set/tag slicing, and the mandated way only depends on
    ``way_bits``).
    """
    key = ("geomlists", geometry.offset_bits, geometry.set_bits, geometry.way_bits)
    store = _memo(events)
    if key not in store:
        set_indices, tags, mandated = geometry_arrays(events, geometry)
        store[key] = (set_indices.tolist(), tags.tolist(), mandated.tolist())
    return store[key]


def itlb_misses(events: LineEventTrace, page_size: int, entries: int) -> int:
    """Round-robin fully-associative TLB misses over the event stream.

    Bit-identical to :class:`~repro.cache.itlb.InstructionTlb`: only events
    whose page differs from the previous event's can miss, so the TLB state
    machine runs over that (much shorter) subsequence.  Memoised per
    ``(page_size, entries)`` — every cell of a sweep shares the count.
    """
    key = ("itlb", page_size, entries)
    store = _memo(events)
    if key in store:
        return store[key]
    n = events.num_events
    if n == 0:
        store[key] = 0
        return 0
    pages = page_numbers(events, log2_exact(page_size, "page size"))
    changed = np.empty(n, dtype=bool)
    changed[0] = True
    np.not_equal(pages[1:], pages[:-1], out=changed[1:])
    slots = [-1] * entries
    resident = set()
    pointer = 0
    misses = 0
    for page in pages[changed].tolist():
        if page in resident:
            continue
        misses += 1
        old = slots[pointer]
        if old != -1:
            resident.discard(old)
        slots[pointer] = page
        resident.add(page)
        pointer += 1
        if pointer == entries:
            pointer = 0
    store[key] = misses
    return misses


def wpa_flags(events: LineEventTrace, wpa_size: int) -> np.ndarray:
    """Boolean per-event array: does the line lie in ``[0, wpa_size)``?"""
    key = ("wpa", wpa_size)
    store = _memo(events)
    if key not in store:
        store[key] = events.line_addrs < wpa_size
    return store[key]


def way_hints(
    events: LineEventTrace, wpa_size: int, hint_initial: bool = False
) -> np.ndarray:
    """The way-hint vector: the WPA flag of the *previous* event.

    ``hint_initial`` seeds element 0, exactly like
    :class:`~repro.cache.wayhint.WayHintBit` (a last-value predictor).
    """
    key = ("hint", wpa_size, bool(hint_initial))
    store = _memo(events)
    if key not in store:
        flags = wpa_flags(events, wpa_size)
        hints = np.empty_like(flags)
        if hints.shape[0]:
            hints[0] = hint_initial
            hints[1:] = flags[:-1]
        store[key] = hints
    return store[key]


def wpa_flag_list(events: LineEventTrace, wpa_size: int) -> List[bool]:
    """:func:`wpa_flags` as a plain list, memoised (see :func:`geometry_lists`)."""
    key = ("wpalist", wpa_size)
    store = _memo(events)
    if key not in store:
        store[key] = wpa_flags(events, wpa_size).tolist()
    return store[key]


def sweep_aggregates(
    events: LineEventTrace,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Sorted per-trace aggregates that turn WPA-sweep reductions into lookups.

    Every event-independent way-placement count is a monotone function of
    the threshold ``w`` counting events or consecutive-event pairs with an
    address below ``w``:

    * ``prefix_sorted`` — ``sort(addrs[:-1])``: hints past event 0 are the
      previous event's WPA flag, so the predicted count is
      ``searchsorted(prefix_sorted, w)`` (+1 for an initial hint);
    * ``up_a / up_b`` — the ascending consecutive pairs ``a < b``, each
      endpoint sorted: a hint false positive at ``j >= 1`` is
      ``a < w <= b``, and counts as ``#(a < w) - #(b < w)``;
    * ``dn_a / dn_b`` — the descending pairs ``a > b`` likewise: a false
      negative is ``b < w <= a``, i.e. ``#(b < w) - #(a < w)``;
    * ``addr_sorted / extra_cumsum`` — addresses sorted with the zero-
      prefixed running sum of ``counts - 1`` in the same order: repeat
      fetches inside the WPA are ``extra_cumsum[#(addr < w)]``.

    All integer-exact, so the derived counts are bit-identical to the 2-D
    boolean reductions.  Computed once per trace — O(events log events) —
    and shared by every sweep family over it, turning the per-member cost
    into a handful of ``searchsorted`` probes.
    """
    key = ("sweep",)
    store = _memo(events)
    if key not in store:
        addrs = events.line_addrs.astype(np.int64, copy=False)
        a, b = addrs[:-1], addrs[1:]
        up = a < b
        down = a > b
        order = np.argsort(addrs, kind="stable")
        extra_cumsum = np.zeros(addrs.shape[0] + 1, dtype=np.int64)
        np.cumsum((events.counts.astype(np.int64) - 1)[order], out=extra_cumsum[1:])
        store[key] = (
            np.sort(a),
            np.sort(a[up]),
            np.sort(b[up]),
            np.sort(a[down]),
            np.sort(b[down]),
            addrs[order],
            extra_cumsum,
        )
    return store[key]


def line_census(
    events: LineEventTrace, geometry: CacheGeometry
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Distinct-line footprint of the trace under ``geometry``.

    Returns ``(lines, occurrences, set_indices, mandated_ways)``: the
    sorted distinct line addresses, how many events touch each, and each
    line's set index and mandated way.  This is the input to the static
    counter bounds (``repro.analysis.absint.bounds``), which the S008
    sanitizer invariant recomputes on every sanitized run — hence the
    same per-trace memo the kernels use.
    """
    key = ("census", geometry.offset_bits, geometry.set_bits, geometry.way_bits)
    store = _memo(events)
    if key not in store:
        lines, occurrences = np.unique(events.line_addrs, return_counts=True)
        set_indices = (lines >> geometry.offset_bits) & mask(geometry.set_bits)
        mandated = (lines >> (geometry.offset_bits + geometry.set_bits)) & mask(
            geometry.way_bits
        )
        store[key] = (lines, occurrences, set_indices, mandated)
    return store[key]


def page_numbers(events: LineEventTrace, page_bits: int) -> np.ndarray:
    """Per-event virtual page number (for I-TLB modelling)."""
    key = ("pages", page_bits)
    store = _memo(events)
    if key not in store:
        store[key] = events.line_addrs >> page_bits
    return store[key]
