"""Parallel experiment grids: fan simulation cells across worker processes.

A *cell* is one ``(benchmark, scheme, machine, wpa, options)`` simulation —
exactly the argument tuple of :meth:`ExperimentRunner.report`.  The figure
and sensitivity grids are hundreds of cells that share traces per
benchmark, so the fan-out is **chunked by benchmark**: each worker process
receives every cell of one benchmark, derives (or loads from the persistent
:class:`~repro.engine.store.TraceStore`) that benchmark's traces once, and
ships the finished :class:`~repro.sim.report.SimulationReport` objects
back.  The parent adopts them into its memo, so subsequent ``report()`` /
``normalised()`` calls are cache hits.

Execution is **supervised** (see :mod:`repro.resilience.supervisor`):
failing cells are retried with backoff, kernel/sanitizer failures degrade
to the bit-identical reference engine, crashed or hung workers are killed
and their remaining cells re-run on fresh workers (then in-process), and
completed cells are checkpointed to a resume journal.  Every completed
report is adopted into the runner's memo *before* any failure surfaces —
a partial grid keeps all of its finished work, and a
:class:`~repro.errors.CellFailure` carries structured
:class:`~repro.resilience.policy.FailureReport` records for the rest.

``jobs <= 1`` runs everything in-process with no workers — identical
results, no pickling, the right default for tests and single-benchmark
work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.layout.placement import LayoutPolicy
from repro.resilience.policy import ResilienceConfig
from repro.resilience.supervisor import supervise_grid
from repro.sim.machine import MachineConfig, XSCALE_BASELINE
from repro.sim.report import SimulationReport

__all__ = ["GridCell", "run_grid"]


@dataclass(frozen=True)
class GridCell:
    """One simulation of an experiment grid (picklable by construction)."""

    benchmark: str
    scheme: str
    machine: MachineConfig = XSCALE_BASELINE
    wpa_size: int = 0
    layout_policy: Optional[LayoutPolicy] = None
    same_line_skip: Optional[bool] = None
    l0_size: int = 512

    def report_kwargs(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "scheme": self.scheme,
            "machine": self.machine,
            "wpa_size": self.wpa_size,
            "layout_policy": self.layout_policy,
            "same_line_skip": self.same_line_skip,
            "l0_size": self.l0_size,
        }


def run_grid(
    runner,
    cells: Sequence[GridCell],
    jobs: int = 1,
    resilience: Optional[ResilienceConfig] = None,
) -> List[SimulationReport]:
    """Simulate ``cells`` under supervision; returns reports in input order.

    ``runner`` is an :class:`~repro.experiments.runner.ExperimentRunner`;
    every result is also adopted into its report memo (even on partial
    failure, before :class:`~repro.errors.CellFailure` is raised).  The
    retry/timeout/fallback/resume behaviour comes from ``resilience``,
    defaulting to the runner's own config
    (:data:`~repro.resilience.policy.DEFAULT_RESILIENCE` otherwise); the
    structured outcome lands on ``runner.last_grid`` and
    ``runner.last_failures``.
    """
    if resilience is None:
        resilience = getattr(runner, "resilience", None)
    return supervise_grid(runner, cells, jobs=jobs, config=resilience)
