"""Parallel experiment grids: fan simulation cells across worker processes.

A *cell* is one ``(benchmark, scheme, machine, wpa, options)`` simulation —
exactly the argument tuple of :meth:`ExperimentRunner.report`.  The figure
and sensitivity grids are hundreds of cells that share traces per
benchmark, so the fan-out is **chunked by benchmark**: each worker process
receives every cell of one benchmark, derives (or loads from the persistent
:class:`~repro.engine.store.TraceStore`) that benchmark's traces once, and
ships the finished :class:`~repro.sim.report.SimulationReport` objects
back.  The parent adopts them into its memo, so subsequent ``report()`` /
``normalised()`` calls are cache hits.

``jobs <= 1`` runs everything in-process with no executor — identical
results, no pickling, the right default for tests and single-benchmark
work.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.layout.placement import LayoutPolicy
from repro.sim.machine import MachineConfig, XSCALE_BASELINE
from repro.sim.report import SimulationReport

__all__ = ["GridCell", "run_grid"]


@dataclass(frozen=True)
class GridCell:
    """One simulation of an experiment grid (picklable by construction)."""

    benchmark: str
    scheme: str
    machine: MachineConfig = XSCALE_BASELINE
    wpa_size: int = 0
    layout_policy: Optional[LayoutPolicy] = None
    same_line_skip: Optional[bool] = None
    l0_size: int = 512

    def report_kwargs(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "scheme": self.scheme,
            "machine": self.machine,
            "wpa_size": self.wpa_size,
            "layout_policy": self.layout_policy,
            "same_line_skip": self.same_line_skip,
            "l0_size": self.l0_size,
        }


def _run_benchmark_cells(
    spec: dict, cells: Tuple[GridCell, ...]
) -> List[SimulationReport]:
    """Worker entry point: simulate one benchmark's cells in a fresh runner."""
    from repro.experiments.runner import ExperimentRunner

    runner = ExperimentRunner(**spec)
    return [runner.report(**cell.report_kwargs()) for cell in cells]


def run_grid(
    runner, cells: Sequence[GridCell], jobs: int = 1
) -> List[SimulationReport]:
    """Simulate ``cells`` (possibly in parallel); returns reports in order.

    ``runner`` is an :class:`~repro.experiments.runner.ExperimentRunner`;
    every result is also adopted into its report memo.
    """
    cells = list(cells)
    jobs = max(1, int(jobs))
    groups: Dict[str, List[GridCell]] = {}
    for cell in cells:
        groups.setdefault(cell.benchmark, []).append(cell)

    # Workers only help across benchmarks (cells of one benchmark share
    # sequential trace derivation), and cells the parent already simulated
    # are free — don't ship those out again.
    pending = {
        benchmark: [cell for cell in group if not runner.has_report(cell)]
        for benchmark, group in groups.items()
    }
    pending = {b: g for b, g in pending.items() if g}
    if jobs > 1 and len(pending) > 1:
        spec = runner.spawn_spec()
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {
                benchmark: pool.submit(_run_benchmark_cells, spec, tuple(group))
                for benchmark, group in pending.items()
            }
            for benchmark, future in futures.items():
                for cell, report in zip(pending[benchmark], future.result()):
                    runner.adopt_report(cell, report)
    return [runner.report(**cell.report_kwargs()) for cell in cells]
