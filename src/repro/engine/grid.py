"""Parallel experiment grids: fan simulation cells across worker processes.

A *cell* is one ``(benchmark, scheme, machine, wpa, options)`` simulation —
exactly the argument tuple of :meth:`ExperimentRunner.report`.  The figure
and sensitivity grids are hundreds of cells that share traces per
benchmark, so the fan-out is **chunked by benchmark**: each worker process
receives every cell of one benchmark, derives (or loads from the persistent
:class:`~repro.engine.store.TraceStore`) that benchmark's traces once, and
ships the finished :class:`~repro.sim.report.SimulationReport` objects
back.  The parent adopts them into its memo, so subsequent ``report()`` /
``normalised()`` calls are cache hits.

Execution is **supervised** (see :mod:`repro.resilience.supervisor`):
failing cells are retried with backoff, kernel/sanitizer failures degrade
to the bit-identical reference engine, crashed or hung workers are killed
and their remaining cells re-run on fresh workers (then in-process), and
completed cells are checkpointed to a resume journal.  Every completed
report is adopted into the runner's memo *before* any failure surfaces —
a partial grid keeps all of its finished work, and a
:class:`~repro.errors.CellFailure` carries structured
:class:`~repro.resilience.policy.FailureReport` records for the rest.

``jobs <= 1`` runs everything in-process with no workers — identical
results, no pickling, the right default for tests and single-benchmark
work.

Under the ``batch`` engine a second coalescing layer kicks in: the
**planner** (:func:`plan_families`) groups the cells of a chunk into *batch
families* — cells replaying the same line-event trace under the same cache
geometry — and each family runs as **one** traversal of the trace via
:func:`repro.engine.batch.batch_counters`, fanning the per-config counters
back to the original cells in input order.  Cells the batched kernel cannot
model (schemes without a kernel, exotic options) stay on the per-cell
engines, and a family that fails for any reason degrades to the per-cell
supervision ladder, so supervision semantics are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.cache.geometry import CacheGeometry
from repro.engine.batch import batchable
from repro.errors import SchemeError
from repro.layout.placement import LayoutPolicy
from repro.resilience.policy import ResilienceConfig
from repro.resilience.supervisor import supervise_grid
from repro.sim.machine import MachineConfig, XSCALE_BASELINE
from repro.sim.report import SimulationReport

__all__ = ["BatchFamily", "GridCell", "plan_families", "run_grid"]


@dataclass(frozen=True)
class GridCell:
    """One simulation of an experiment grid (picklable by construction)."""

    benchmark: str
    scheme: str
    machine: MachineConfig = XSCALE_BASELINE
    wpa_size: int = 0
    layout_policy: Optional[LayoutPolicy] = None
    same_line_skip: Optional[bool] = None
    l0_size: int = 512

    def report_kwargs(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "scheme": self.scheme,
            "machine": self.machine,
            "wpa_size": self.wpa_size,
            "layout_policy": self.layout_policy,
            "same_line_skip": self.same_line_skip,
            "l0_size": self.l0_size,
        }


@dataclass(frozen=True)
class BatchFamily:
    """Cells that can replay with one traversal of one line-event trace.

    Membership is keyed by everything the *trace* and the *sequential cache
    state* depend on: the benchmark and resolved layout policy select the
    line-event trace (the trace signature — the persistent store's content
    key is a function of exactly these), and the geometry fixes the set/tag
    decomposition shared by every member.  Everything else a cell varies —
    WPA size, ``same_line_skip``, page size, I-TLB entries — is a per-member
    option of the batched kernel.

    ``engine`` names the family tier the planner picked: ``"batch"`` (one
    bitmask traversal, :func:`repro.engine.batch.batch_counters`) or
    ``"differential"`` (delta-driven adjacent-config state sharing,
    :func:`repro.engine.differential.differential_counters`) — the latter
    only when the runner asked for it and the family actually sweeps a
    threshold axis.
    """

    benchmark: str
    layout_policy: LayoutPolicy
    geometry: CacheGeometry
    indices: Tuple[int, ...]
    engine: str = "batch"


PolicyResolver = Callable[[str, Optional[LayoutPolicy]], LayoutPolicy]


def plan_families(
    cells: Sequence[GridCell],
    resolve_policy: PolicyResolver,
    engine: Optional[str] = None,
) -> Tuple[List[BatchFamily], List[int]]:
    """Coalesce grid cells into batch families.

    Returns ``(families, singles)``: families of two or more batchable cells
    (indices into ``cells`` in input order), and the indices of every other
    cell — non-batchable schemes/options, invalid combinations (left for the
    per-cell path to diagnose), and one-member groups, for which a batched
    traversal would only add overhead.  ``resolve_policy`` maps a cell's
    ``(scheme, layout_policy)`` to the layout actually simulated (the
    runner's scheme/layout pairing).

    ``engine`` is the runner's requested family tier.  Under
    ``"differential"``, a family whose members form an adjacency chain —
    two or more *distinct* effective WPA thresholds (a baseline member is
    threshold 0) — is marked for delta-driven replay; a family with a
    single effective threshold has no adjacent configs to share state
    between, so it stays on the batch tier.
    """
    # Imported lazily: repro.sim.simulator itself imports the engine
    # package, so a module-level import here would be circular.
    from repro.sim.simulator import scheme_options

    groups: dict = {}
    singles: List[int] = []
    for index, cell in enumerate(cells):
        try:
            options = scheme_options(
                cell.machine,
                cell.scheme,
                wpa_size=cell.wpa_size,
                same_line_skip=cell.same_line_skip,
                l0_size=cell.l0_size,
            )
        except SchemeError:
            singles.append(index)
            continue
        if not batchable(cell.scheme, options):
            singles.append(index)
            continue
        key = (
            cell.benchmark,
            resolve_policy(cell.scheme, cell.layout_policy),
            cell.machine.icache,
        )
        threshold = cell.wpa_size if cell.scheme == "way-placement" else 0
        groups.setdefault(key, []).append((index, threshold))

    families: List[BatchFamily] = []
    for (benchmark, policy, geometry), entries in groups.items():
        if len(entries) < 2:
            singles.extend(index for index, _ in entries)
            continue
        adjacency_chain = len({threshold for _, threshold in entries}) >= 2
        families.append(
            BatchFamily(
                benchmark=benchmark,
                layout_policy=policy,
                geometry=geometry,
                indices=tuple(index for index, _ in entries),
                engine=(
                    "differential"
                    if engine == "differential" and adjacency_chain
                    else "batch"
                ),
            )
        )
    singles.sort()
    return families, singles


def run_grid(
    runner,
    cells: Sequence[GridCell],
    jobs: int = 1,
    resilience: Optional[ResilienceConfig] = None,
) -> List[SimulationReport]:
    """Simulate ``cells`` under supervision; returns reports in input order.

    ``runner`` is an :class:`~repro.experiments.runner.ExperimentRunner`;
    every result is also adopted into its report memo (even on partial
    failure, before :class:`~repro.errors.CellFailure` is raised).  The
    retry/timeout/fallback/resume behaviour comes from ``resilience``,
    defaulting to the runner's own config
    (:data:`~repro.resilience.policy.DEFAULT_RESILIENCE` otherwise); the
    structured outcome lands on ``runner.last_grid`` and
    ``runner.last_failures``.
    """
    if resilience is None:
        resilience = getattr(runner, "resilience", None)
    return supervise_grid(runner, cells, jobs=jobs, config=resilience)
