"""Content-hash-keyed on-disk cache for expensive pipeline artifacts.

Walking a 400k-instruction evaluation trace dominates cold-start time for
every process that touches a benchmark — pytest, the benches, and each CLI
invocation all re-derived identical traces.  The :class:`TraceStore` keys
each artifact by a *content key* — a string encoding everything the
artifact depends on (format version, a digest of the program structure,
input name, walker seed, instruction budget, layout digest, line size) —
and stores it under ``REPRO_CACHE_DIR`` (default ``.repro_cache/``).

Safety properties:

* the full key is stored inside each entry and verified on load, so a hash
  collision or a stale file silently re-derives instead of corrupting a run;
* a bumped :data:`TraceStore.FORMAT_VERSION` invalidates every old entry;
* corrupted or truncated files are deleted and treated as misses; an entry
  that cannot even be deleted (read-only cache) is quarantined to
  ``<cache>/quarantine/`` so it can never be loaded again;
* writes go through a temp file plus ``os.replace``, so concurrent workers
  (the parallel grid runner) never observe partial entries;
* an environment write failure (``ENOSPC``, ``EACCES``, a read-only
  mount) never kills a run: the store emits a one-time warning and
  degrades to cache-off for the rest of the process — every artifact is
  simply re-derived.

Setting ``REPRO_CACHE_DIR`` to ``off`` (or ``0``/``none``/empty) disables
persistence entirely.

The load/save/discard paths are instrumented with
:func:`repro.resilience.chaos.chaos_point` sites (``store.load``,
``store.save``, ``store.discard``) so the fault-injection tests exercise
exactly these code paths instead of monkeypatching globals.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from pathlib import Path
from typing import Dict, Optional, Union

from repro.layout.layouts import Layout
from repro.profiling.profile_data import ProfileData
from repro.program.program import Program
from repro.resilience.chaos import chaos_point, corrupt_file
from repro.trace import io as trace_io
from repro.trace.events import LineEventTrace
from repro.trace.executor import BlockTrace

__all__ = [
    "TraceStore",
    "layout_digest",
    "program_digest",
    "suppress_write_warnings",
    "warn_write_failure",
]

_DEFAULT_DIR = ".repro_cache"
_DISABLED_VALUES = frozenset({"", "0", "off", "none", "disabled"})
_PROFILE_KIND = "repro-profile-cache-v1"

_warned_write_failure = False


def _warn_write_failure(root: Union[str, Path], error: object) -> None:
    """One warning per process: the cache went read-only, work continues."""
    global _warned_write_failure
    if _warned_write_failure:
        return
    _warned_write_failure = True
    warnings.warn(
        f"trace cache write to {root} failed ({error}); continuing without "
        f"persistence — artifacts will be re-derived",
        RuntimeWarning,
        stacklevel=4,
    )


def suppress_write_warnings() -> None:
    """Silence this process's cache-degrade warning.

    Grid worker processes call this at their entry point: a forked
    16-worker pool hitting a full disk would otherwise print the same
    degrade warning 16 times, once per process.  Workers instead report
    ``TraceStore.writes_disabled`` back through their result stats and the
    supervisor relays **one** warning in the parent (via
    :func:`warn_write_failure`, which dedups against the parent's own).
    """
    global _warned_write_failure
    _warned_write_failure = True


def warn_write_failure(root: Union[str, Path], error: object) -> None:
    """Emit the one-per-process cache-degrade warning on a store's behalf.

    Used by the grid supervisor to surface a *worker's* write failure in
    the parent process exactly once (see :func:`suppress_write_warnings`).
    """
    _warn_write_failure(root, error)


def program_digest(program: Program) -> str:
    """Stable digest of a program's block/CFG structure.

    Covers everything the CFG walker and the layout pass read: block
    identity, size, kind, and successor labels.  Any change to the workload
    generator that alters the program therefore changes every derived key.
    """
    digest = hashlib.sha256()
    for block in program.blocks():
        digest.update(
            f"{block.uid}|{block.function}|{block.label}|{block.kind.value}|"
            f"{block.num_instructions}|{block.taken_label}|{block.fall_label}|"
            f"{block.callee}\n".encode()
        )
    digest.update(f"entry={program.entry_block.uid}".encode())
    return digest.hexdigest()[:16]


def layout_digest(layout: Layout) -> str:
    """Stable digest of a layout's uid -> address assignment."""
    digest = hashlib.sha256()
    for uid in layout.block_order:
        digest.update(f"{uid}@{layout.address_of(uid)}\n".encode())
    return digest.hexdigest()[:16]


class TraceStore:
    """Filesystem-backed artifact cache (see module docstring)."""

    #: Bump to invalidate every existing cache entry after a format or
    #: semantic change in how artifacts are derived.
    FORMAT_VERSION = 1

    _KINDS = ("blocks", "events", "profile")

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        #: Session hit/miss counters per artifact kind (aggregated above).
        self.kind_hits = {kind: 0 for kind in self._KINDS}
        self.kind_misses = {kind: 0 for kind in self._KINDS}
        #: Set after an environment write failure: the store keeps serving
        #: reads but stops persisting (degrade to cache-off for writes).
        self.writes_disabled = False

    @classmethod
    def resolve(
        cls, cache_dir: Optional[Union[str, Path]] = None
    ) -> Optional["TraceStore"]:
        """The store for an explicit directory, the environment, or ``None``.

        ``cache_dir=None`` consults ``REPRO_CACHE_DIR`` and falls back to
        ``.repro_cache/``; the values ``off``/``none``/``0``/empty (in either
        the argument or the environment) disable caching.
        """
        if cache_dir is None:
            cache_dir = os.environ.get("REPRO_CACHE_DIR", _DEFAULT_DIR)
        if str(cache_dir).strip().lower() in _DISABLED_VALUES:
            return None
        return cls(cache_dir)

    # ------------------------------------------------------------------
    # Paths and housekeeping
    # ------------------------------------------------------------------
    def path_for(self, kind: str, key: str) -> Path:
        suffix = ".json" if kind == "profile" else ".npz"
        name = hashlib.sha256(key.encode()).hexdigest()[:24]
        return self.root / f"{kind}-{name}{suffix}"

    def _discard(self, path: Path) -> None:
        """Remove a corrupt/stale entry; quarantine it when removal fails.

        A cache on a read-only mount cannot delete the bad entry, but it
        must still never be loaded again — move it aside to
        ``<cache>/quarantine/`` (whose entries no loader ever resolves).
        """
        try:
            chaos_point("store.discard", path.name)
            path.unlink()
        except OSError:
            self._quarantine(path)

    def _quarantine(self, path: Path) -> None:
        try:
            quarantine = self.root / "quarantine"
            quarantine.mkdir(parents=True, exist_ok=True)
            os.replace(path, quarantine / path.name)
        except OSError:
            pass

    def _replace(self, tmp: Path, path: Path) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        os.replace(tmp, path)

    def _tmp_for(self, path: Path) -> Path:
        # Same suffix as the target so np.savez does not append another one.
        return path.with_name(f"{path.stem}.{os.getpid()}.tmp{path.suffix}")

    def _disable_writes(self, error: OSError) -> None:
        self.writes_disabled = True
        _warn_write_failure(self.root, error)

    def _hit(self, kind: str) -> None:
        self.hits += 1
        self.kind_hits[kind] += 1

    def _miss(self, kind: str) -> None:
        self.misses += 1
        self.kind_misses[kind] += 1

    @staticmethod
    def _cleanup(tmp: Path) -> None:
        try:
            tmp.unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Block traces and line-event traces (.npz, via repro.trace.io)
    # ------------------------------------------------------------------
    def load_block_trace(self, key: str) -> Optional[BlockTrace]:
        path = self.path_for("blocks", key)
        if not path.exists():
            self._miss("blocks")
            return None
        try:
            chaos_point("store.load", f"blocks:{key}")
            trace = trace_io.load_block_trace(path, expected_key=key)
        except OSError:
            # Transient environment fault: miss, but keep the entry.
            self._miss("blocks")
            return None
        except Exception:
            # Corrupt/truncated/stale entry (TraceError, BadZipFile, ...).
            self._discard(path)
            self._miss("blocks")
            return None
        self._hit("blocks")
        return trace

    def save_block_trace(self, key: str, trace: BlockTrace) -> Optional[Path]:
        if self.writes_disabled:
            return None
        path = self.path_for("blocks", key)
        tmp = self._tmp_for(path)
        try:
            chaos_point("store.save", f"blocks:{key}")
            self.root.mkdir(parents=True, exist_ok=True)
            trace_io.save_block_trace(trace, tmp, key=key)
            corrupt_file("store.save", f"blocks:{key}", tmp)
            self._replace(tmp, path)
        except OSError as error:
            self._cleanup(tmp)
            self._disable_writes(error)
            return None
        return path

    def load_events(self, key: str) -> Optional[LineEventTrace]:
        path = self.path_for("events", key)
        if not path.exists():
            self._miss("events")
            return None
        try:
            chaos_point("store.load", f"events:{key}")
            events = trace_io.load_events(path, expected_key=key)
        except OSError:
            self._miss("events")
            return None
        except Exception:
            self._discard(path)
            self._miss("events")
            return None
        self._hit("events")
        return events

    def save_events(self, key: str, events: LineEventTrace) -> Optional[Path]:
        if self.writes_disabled:
            return None
        path = self.path_for("events", key)
        tmp = self._tmp_for(path)
        try:
            chaos_point("store.save", f"events:{key}")
            self.root.mkdir(parents=True, exist_ok=True)
            trace_io.save_events(events, tmp, key=key)
            corrupt_file("store.save", f"events:{key}", tmp)
            self._replace(tmp, path)
        except OSError as error:
            self._cleanup(tmp)
            self._disable_writes(error)
            return None
        return path

    # ------------------------------------------------------------------
    # Profiles (.json, reusing ProfileData's own persistence format)
    # ------------------------------------------------------------------
    def load_profile(self, key: str) -> Optional[ProfileData]:
        path = self.path_for("profile", key)
        if not path.exists():
            self._miss("profile")
            return None
        try:
            chaos_point("store.load", f"profile:{key}")
            payload = json.loads(path.read_text())
            if (
                payload.get("cache_kind") != _PROFILE_KIND
                or payload.get("cache_key") != key
            ):
                raise ValueError("stale or foreign profile cache entry")
            profile = ProfileData.load(path)
        except Exception:
            self._discard(path)
            self._miss("profile")
            return None
        self._hit("profile")
        return profile

    def save_profile(self, key: str, profile: ProfileData) -> Optional[Path]:
        if self.writes_disabled:
            return None
        path = self.path_for("profile", key)
        tmp = self._tmp_for(path)
        try:
            chaos_point("store.save", f"profile:{key}")
            self.root.mkdir(parents=True, exist_ok=True)
            profile.save(tmp)
            payload = json.loads(tmp.read_text())
            payload["cache_kind"] = _PROFILE_KIND
            payload["cache_key"] = key
            tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
            corrupt_file("store.save", f"profile:{key}", tmp)
            self._replace(tmp, path)
        except OSError as error:
            self._cleanup(tmp)
            self._disable_writes(error)
            return None
        return path

    # ------------------------------------------------------------------
    # Introspection and management (the ``repro cache`` CLI)
    # ------------------------------------------------------------------
    def entries(self) -> Dict[str, int]:
        """Entry count per artifact kind."""
        counts = {"blocks": 0, "events": 0, "profile": 0}
        if not self.root.is_dir():
            return counts
        for path in self.root.iterdir():
            kind = path.name.split("-", 1)[0]
            if kind in counts and not path.name.endswith(".tmp" + path.suffix):
                counts[kind] += 1
        return counts

    def stats(self) -> Dict[str, object]:
        """Directory, per-kind counts/bytes, and this session's hit rates."""
        counts = self.entries()
        kind_bytes = {kind: 0 for kind in self._KINDS}
        if self.root.is_dir():
            for path in self.root.iterdir():
                kind = path.name.split("-", 1)[0]
                if kind in counts:
                    try:
                        kind_bytes[kind] += path.stat().st_size
                    except OSError:
                        pass
        return {
            "dir": str(self.root),
            "entries": counts,
            "kind_bytes": kind_bytes,
            "total_bytes": sum(kind_bytes.values()),
            "session_hits": self.hits,
            "session_misses": self.misses,
            "session_kind_hits": dict(self.kind_hits),
            "session_kind_misses": dict(self.kind_misses),
            "writes_disabled": self.writes_disabled,
        }

    def clear(self) -> int:
        """Delete every cache entry this store recognises; returns the count."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.iterdir():
            kind = path.name.split("-", 1)[0]
            if kind in ("blocks", "events", "profile"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
