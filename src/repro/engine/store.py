"""Content-hash-keyed on-disk cache for expensive pipeline artifacts.

Walking a 400k-instruction evaluation trace dominates cold-start time for
every process that touches a benchmark — pytest, the benches, and each CLI
invocation all re-derived identical traces.  The :class:`TraceStore` keys
each artifact by a *content key* — a string encoding everything the
artifact depends on (format version, a digest of the program structure,
input name, walker seed, instruction budget, layout digest, line size) —
and stores it under ``REPRO_CACHE_DIR`` (default ``.repro_cache/``).

Entry format v2 (the current :data:`TraceStore.FORMAT_VERSION`) stores
block/event traces as mmap-able ``.npy``-per-array entry *directories*
(``blocks-<hash>.v2/``) instead of compressed ``.npz`` archives: loads
return read-only page-cache-backed views instead of decompressed heap
copies, so every process replaying the same trace shares the same
physical pages.  Legacy v1 ``.npz`` entries are migrated transparently on
first read (and in bulk via ``repro cache migrate``); setting
``REPRO_STORE_FORMAT=1`` keeps writing the v1 format (rollback knob, also
used by the benches for an honest copy-loading baseline).

Safety properties:

* the full key is stored inside each entry and verified on load, so a hash
  collision or a stale file silently re-derives instead of corrupting a run;
* a bumped :data:`TraceStore.FORMAT_VERSION` re-keys every artifact; old
  v1 entries remain readable through read-through migration and are
  republished under the current format (the legacy entry is deleted only
  after the new one is safely in place);
* corrupted or truncated entries are deleted and treated as misses; an
  entry that cannot even be deleted (read-only cache) is quarantined to
  ``<cache>/quarantine/`` so it can never be loaded again (``stats()``
  reports the quarantine, ``clear()`` empties it);
* writes go through a uniquely named temp file/directory plus
  ``os.replace``, so concurrent workers (the parallel grid runner) never
  observe partial entries;
* an environment write failure (``ENOSPC``, ``EACCES``, a read-only
  mount) never kills a run: the store emits a one-time warning and
  degrades to cache-off for the rest of the process — every artifact is
  simply re-derived.

Setting ``REPRO_CACHE_DIR`` to ``off`` (or ``0``/``none``/empty) disables
persistence entirely.

The load/save/discard paths are instrumented with
:func:`repro.resilience.chaos.chaos_point` sites (``store.load``,
``store.save``, ``store.discard``) so the fault-injection tests exercise
exactly these code paths instead of monkeypatching globals.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import shutil
import warnings
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.layout.layouts import Layout
from repro.profiling.profile_data import ProfileData
from repro.program.program import Program
from repro.resilience.chaos import chaos_point, corrupt_file
from repro.trace import io as trace_io
from repro.trace.events import LineEventTrace
from repro.trace.executor import BlockTrace

__all__ = [
    "TraceStore",
    "layout_digest",
    "program_digest",
    "suppress_write_warnings",
    "warn_write_failure",
]

_DEFAULT_DIR = ".repro_cache"
_DISABLED_VALUES = frozenset({"", "0", "off", "none", "disabled"})
_PROFILE_KIND = "repro-profile-cache-v1"

#: Process-wide staging-name counter: combined with the pid and a random
#: nonce, two threads saving the same key can never collide on a temp name.
_TMP_COUNTER = itertools.count()

_warned_write_failure = False


def _warn_write_failure(root: Union[str, Path], error: object) -> None:
    """One warning per process: the cache went read-only, work continues."""
    global _warned_write_failure
    if _warned_write_failure:
        return
    _warned_write_failure = True
    warnings.warn(
        f"trace cache write to {root} failed ({error}); continuing without "
        f"persistence — artifacts will be re-derived",
        RuntimeWarning,
        stacklevel=4,
    )


def suppress_write_warnings() -> None:
    """Silence this process's cache-degrade warning.

    Grid worker processes call this at their entry point: a forked
    16-worker pool hitting a full disk would otherwise print the same
    degrade warning 16 times, once per process.  Workers instead report
    ``TraceStore.writes_disabled`` back through their result stats and the
    supervisor relays **one** warning in the parent (via
    :func:`warn_write_failure`, which dedups against the parent's own).
    """
    global _warned_write_failure
    _warned_write_failure = True


def warn_write_failure(root: Union[str, Path], error: object) -> None:
    """Emit the one-per-process cache-degrade warning on a store's behalf.

    Used by the grid supervisor to surface a *worker's* write failure in
    the parent process exactly once (see :func:`suppress_write_warnings`).
    """
    _warn_write_failure(root, error)


def program_digest(program: Program) -> str:
    """Stable digest of a program's block/CFG structure.

    Covers everything the CFG walker and the layout pass read: block
    identity, size, kind, and successor labels.  Any change to the workload
    generator that alters the program therefore changes every derived key.
    """
    digest = hashlib.sha256()
    for block in program.blocks():
        digest.update(
            f"{block.uid}|{block.function}|{block.label}|{block.kind.value}|"
            f"{block.num_instructions}|{block.taken_label}|{block.fall_label}|"
            f"{block.callee}\n".encode()
        )
    digest.update(f"entry={program.entry_block.uid}".encode())
    return digest.hexdigest()[:16]


def layout_digest(layout: Layout) -> str:
    """Stable digest of a layout's uid -> address assignment."""
    digest = hashlib.sha256()
    for uid in layout.block_order:
        digest.update(f"{uid}@{layout.address_of(uid)}\n".encode())
    return digest.hexdigest()[:16]


class TraceStore:
    """Filesystem-backed artifact cache (see module docstring)."""

    #: Bump after a format or semantic change in how artifacts are
    #: derived.  Version 2 = mmap-able entry directories; v1 ``.npz``
    #: entries are not invalidated but migrated on first read.
    FORMAT_VERSION = 2

    _KINDS = ("blocks", "events", "profile")
    _V2_SUFFIX = ".v2"

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        #: Session hit/miss counters per artifact kind (aggregated above).
        self.kind_hits = {kind: 0 for kind in self._KINDS}
        self.kind_misses = {kind: 0 for kind in self._KINDS}
        #: Legacy entries republished under the current format this session.
        self.migrated = 0
        #: Set after an environment write failure: the store keeps serving
        #: reads but stops persisting (degrade to cache-off for writes).
        self.writes_disabled = False
        #: Entry format for new trace writes: 2 (mmap-able entry
        #: directories, the default) or 1 (compressed ``.npz`` archives)
        #: when ``REPRO_STORE_FORMAT=1`` — a rollback knob that also gives
        #: the benches an honest copy-loading baseline.
        env_format = os.environ.get("REPRO_STORE_FORMAT", "").strip()
        self.write_format = 1 if env_format == "1" else 2

    @classmethod
    def resolve(
        cls, cache_dir: Optional[Union[str, Path]] = None
    ) -> Optional["TraceStore"]:
        """The store for an explicit directory, the environment, or ``None``.

        ``cache_dir=None`` consults ``REPRO_CACHE_DIR`` and falls back to
        ``.repro_cache/``; the values ``off``/``none``/``0``/empty (in either
        the argument or the environment) disable caching.
        """
        if cache_dir is None:
            cache_dir = os.environ.get("REPRO_CACHE_DIR", _DEFAULT_DIR)
        if str(cache_dir).strip().lower() in _DISABLED_VALUES:
            return None
        return cls(cache_dir)

    # ------------------------------------------------------------------
    # Paths and housekeeping
    # ------------------------------------------------------------------
    def path_for(self, kind: str, key: str) -> Path:
        name = hashlib.sha256(key.encode()).hexdigest()[:24]
        if kind == "profile":
            return self.root / f"profile-{name}.json"
        if self.write_format == 1:
            return self.root / f"{kind}-{name}.npz"
        return self.root / f"{kind}-{name}{self._V2_SUFFIX}"

    def legacy_path_for(self, kind: str, key: str) -> Path:
        """Where the v1-era store would have put this artifact.

        Runner keys embed the format version, so the v1 entry lives under
        the hash of the ``v1|``-prefixed key; unversioned keys hash to the
        same name in both eras.
        """
        suffix = ".json" if kind == "profile" else ".npz"
        name = hashlib.sha256(self._legacy_key(key).encode()).hexdigest()[:24]
        return self.root / f"{kind}-{name}{suffix}"

    @classmethod
    def _legacy_key(cls, key: str) -> str:
        prefix = f"v{cls.FORMAT_VERSION}|"
        if key.startswith(prefix):
            return "v1|" + key[len(prefix):]
        return key

    @classmethod
    def _current_key(cls, key: str) -> str:
        if key.startswith("v1|"):
            return f"v{cls.FORMAT_VERSION}|" + key[len("v1|"):]
        return key

    def _legacy_candidates(self, kind: str, key: str) -> List[Tuple[Path, str]]:
        """(path, stored key) pairs a pre-v2 store may have written for ``key``.

        Two generations exist: entries keyed under the old ``v1|`` prefix,
        and same-key ``.npz`` entries from a ``REPRO_STORE_FORMAT=1`` store.
        """
        suffix = ".json" if kind == "profile" else ".npz"
        candidates: List[Tuple[Path, str]] = []
        primary = self.path_for(kind, key)
        for candidate_key in dict.fromkeys((self._legacy_key(key), key)):
            name = hashlib.sha256(candidate_key.encode()).hexdigest()[:24]
            path = self.root / f"{kind}-{name}{suffix}"
            if path != primary:
                candidates.append((path, candidate_key))
        return candidates

    def _discard(self, path: Path) -> None:
        """Remove a corrupt/stale entry; quarantine it when removal fails.

        A cache on a read-only mount cannot delete the bad entry, but it
        must still never be loaded again — move it aside to
        ``<cache>/quarantine/`` (whose entries no loader ever resolves).
        """
        try:
            chaos_point("store.discard", path.name)
            if path.is_dir():
                shutil.rmtree(path)
            else:
                path.unlink()
        except OSError:
            self._quarantine(path)

    def _quarantine(self, path: Path) -> None:
        try:
            quarantine = self.root / "quarantine"
            quarantine.mkdir(parents=True, exist_ok=True)
            os.replace(path, quarantine / path.name)
        except OSError:
            pass

    def _replace(self, tmp: Path, path: Path) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        try:
            os.replace(tmp, path)
        except OSError:
            # Unlike files, a directory cannot atomically replace an
            # existing non-empty directory: a concurrent writer of the same
            # key already published an identical entry, so ours is redundant.
            if tmp.is_dir() and path.is_dir():
                shutil.rmtree(tmp, ignore_errors=True)
                return
            raise

    def _tmp_for(self, path: Path) -> Path:
        # Same suffix as the target so np.savez does not append another one.
        nonce = f"{os.getpid()}-{next(_TMP_COUNTER)}-{os.urandom(4).hex()}"
        return path.with_name(f"{path.stem}.{nonce}.tmp{path.suffix}")

    def _disable_writes(self, error: OSError) -> None:
        self.writes_disabled = True
        _warn_write_failure(self.root, error)

    def _hit(self, kind: str) -> None:
        self.hits += 1
        self.kind_hits[kind] += 1

    def _miss(self, kind: str) -> None:
        self.misses += 1
        self.kind_misses[kind] += 1

    @staticmethod
    def _cleanup(tmp: Path) -> None:
        try:
            if tmp.is_dir():
                shutil.rmtree(tmp)
            else:
                tmp.unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Block traces and line-event traces (via repro.trace.io)
    # ------------------------------------------------------------------
    def _load_trace(
        self,
        kind: str,
        key: str,
        load_v1: Callable[..., object],
        load_v2: Callable[..., object],
        save: Callable[[str, object], Optional[Path]],
    ) -> Optional[object]:
        path = self.path_for(kind, key)
        if path.exists():
            try:
                chaos_point("store.load", f"{kind}:{key}")
                loader = load_v2 if path.suffix == self._V2_SUFFIX else load_v1
                artifact = loader(path, expected_key=key)
            except OSError:
                # Transient environment fault: miss, but keep the entry.
                self._miss(kind)
                return None
            except Exception:
                # Corrupt/truncated/stale entry (TraceError, BadZipFile, ...)
                self._discard(path)
                self._miss(kind)
                return None
            self._hit(kind)
            return artifact
        # Read-through migration: serve a legacy v1 entry and republish it
        # under the current format.  The legacy file is removed only after
        # the new entry is safely in place (a degraded store keeps it).
        for legacy, legacy_key in self._legacy_candidates(kind, key):
            if not legacy.exists():
                continue
            try:
                chaos_point("store.load", f"{kind}:{key}")
                artifact = load_v1(legacy, expected_key=legacy_key)
            except OSError:
                self._miss(kind)
                return None
            except Exception:
                self._discard(legacy)
                continue
            if self.write_format == 2 and save(key, artifact) is not None:
                self._discard(legacy)
                self.migrated += 1
            self._hit(kind)
            return artifact
        self._miss(kind)
        return None

    def _save_trace(
        self,
        kind: str,
        key: str,
        artifact: object,
        save_v1: Callable[..., None],
        save_v2: Callable[..., None],
        corrupt_member: str,
    ) -> Optional[Path]:
        if self.writes_disabled:
            return None
        path = self.path_for(kind, key)
        tmp = self._tmp_for(path)
        try:
            chaos_point("store.save", f"{kind}:{key}")
            self.root.mkdir(parents=True, exist_ok=True)
            if path.suffix == self._V2_SUFFIX:
                save_v2(artifact, tmp, key=key)
                # Fault injection tears real payload bytes, not the
                # directory inode: aim it at the biggest member.
                corrupt_file("store.save", f"{kind}:{key}", tmp / corrupt_member)
            else:
                save_v1(artifact, tmp, key=key)
                corrupt_file("store.save", f"{kind}:{key}", tmp)
            self._replace(tmp, path)
        except OSError as error:
            self._cleanup(tmp)
            self._disable_writes(error)
            return None
        return path

    def load_block_trace(self, key: str) -> Optional[BlockTrace]:
        trace = self._load_trace(
            "blocks",
            key,
            trace_io.load_block_trace,
            trace_io.load_block_trace_v2,
            lambda k, t: self.save_block_trace(k, t),  # type: ignore[arg-type]
        )
        return trace  # type: ignore[return-value]

    def save_block_trace(self, key: str, trace: BlockTrace) -> Optional[Path]:
        return self._save_trace(
            "blocks",
            key,
            trace,
            trace_io.save_block_trace,
            trace_io.save_block_trace_v2,
            "uids.npy",
        )

    def load_events(self, key: str) -> Optional[LineEventTrace]:
        events = self._load_trace(
            "events",
            key,
            trace_io.load_events,
            trace_io.load_events_v2,
            lambda k, e: self.save_events(k, e),  # type: ignore[arg-type]
        )
        return events  # type: ignore[return-value]

    def save_events(self, key: str, events: LineEventTrace) -> Optional[Path]:
        return self._save_trace(
            "events",
            key,
            events,
            trace_io.save_events,
            trace_io.save_events_v2,
            "line_addrs.npy",
        )

    # ------------------------------------------------------------------
    # Profiles (.json, reusing ProfileData's own persistence format)
    # ------------------------------------------------------------------
    def load_profile(self, key: str) -> Optional[ProfileData]:
        path = self.path_for("profile", key)
        if path.exists():
            profile = self._read_profile(path, key)
            if profile is None:
                self._miss("profile")
                return None
            self._hit("profile")
            return profile
        # Read-through migration of a profile persisted under the v1 key.
        for legacy, legacy_key in self._legacy_candidates("profile", key):
            if not legacy.exists():
                continue
            profile = self._read_profile(legacy, legacy_key)
            if profile is None:
                continue
            if self.save_profile(key, profile) is not None:
                self._discard(legacy)
                self.migrated += 1
            self._hit("profile")
            return profile
        self._miss("profile")
        return None

    def _read_profile(self, path: Path, key: str) -> Optional[ProfileData]:
        try:
            chaos_point("store.load", f"profile:{key}")
            payload = json.loads(path.read_text())
            if (
                payload.get("cache_kind") != _PROFILE_KIND
                or payload.get("cache_key") != key
            ):
                raise ValueError("stale or foreign profile cache entry")
            return ProfileData.load(path)
        except Exception:
            self._discard(path)
            return None

    def save_profile(self, key: str, profile: ProfileData) -> Optional[Path]:
        if self.writes_disabled:
            return None
        path = self.path_for("profile", key)
        tmp = self._tmp_for(path)
        try:
            chaos_point("store.save", f"profile:{key}")
            self.root.mkdir(parents=True, exist_ok=True)
            profile.save(tmp)
            payload = json.loads(tmp.read_text())
            payload["cache_kind"] = _PROFILE_KIND
            payload["cache_key"] = key
            tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
            corrupt_file("store.save", f"profile:{key}", tmp)
            self._replace(tmp, path)
        except OSError as error:
            self._cleanup(tmp)
            self._disable_writes(error)
            return None
        return path

    # ------------------------------------------------------------------
    # Introspection and management (the ``repro cache`` CLI)
    # ------------------------------------------------------------------
    def _iter_entries(self) -> Iterator[Tuple[Path, str]]:
        """Recognised (entry path, kind) pairs, staging files excluded."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.iterdir()):
            kind = path.name.split("-", 1)[0]
            if kind in self._KINDS and not path.name.endswith(
                ".tmp" + path.suffix
            ):
                yield path, kind

    @staticmethod
    def _entry_bytes(path: Path) -> int:
        try:
            if path.is_dir():
                return sum(member.stat().st_size for member in path.iterdir())
            return path.stat().st_size
        except OSError:
            return 0

    @staticmethod
    def _remove_entry(path: Path) -> bool:
        try:
            if path.is_dir():
                shutil.rmtree(path)
            else:
                path.unlink()
        except OSError:
            return False
        return True

    def entries(self) -> Dict[str, int]:
        """Entry count per artifact kind."""
        counts = {"blocks": 0, "events": 0, "profile": 0}
        for _path, kind in self._iter_entries():
            counts[kind] += 1
        return counts

    def stats(self) -> Dict[str, object]:
        """Directory, per-kind/per-format counts/bytes, quarantine, hit rates."""
        counts = {kind: 0 for kind in self._KINDS}
        kind_bytes = {kind: 0 for kind in self._KINDS}
        format_entries = {"v1": 0, "v2": 0}
        for path, kind in self._iter_entries():
            counts[kind] += 1
            kind_bytes[kind] += self._entry_bytes(path)
            if kind != "profile":  # profiles are format-neutral JSON
                version = "v2" if path.suffix == self._V2_SUFFIX else "v1"
                format_entries[version] += 1
        quarantine = self.root / "quarantine"
        quarantined = 0
        quarantine_bytes = 0
        if quarantine.is_dir():
            for path in quarantine.iterdir():
                quarantined += 1
                quarantine_bytes += self._entry_bytes(path)
        return {
            "dir": str(self.root),
            "entries": counts,
            "kind_bytes": kind_bytes,
            "total_bytes": sum(kind_bytes.values()),
            "format_entries": format_entries,
            "quarantined": quarantined,
            "quarantine_bytes": quarantine_bytes,
            "session_hits": self.hits,
            "session_misses": self.misses,
            "session_kind_hits": dict(self.kind_hits),
            "session_kind_misses": dict(self.kind_misses),
            "session_migrated": self.migrated,
            "writes_disabled": self.writes_disabled,
        }

    def clear(self) -> int:
        """Delete every cache entry this store recognises; returns the count.

        Also empties ``quarantine/`` (counting its entries) and sweeps
        stale staging files left behind by killed writers (not counted —
        they were never entries).
        """
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in sorted(self.root.iterdir()):
            kind = path.name.split("-", 1)[0]
            if kind not in self._KINDS:
                continue
            if self._remove_entry(path) and not path.name.endswith(
                ".tmp" + path.suffix
            ):
                removed += 1
        quarantine = self.root / "quarantine"
        if quarantine.is_dir():
            for path in sorted(quarantine.iterdir()):
                if self._remove_entry(path):
                    removed += 1
            try:
                quarantine.rmdir()
            except OSError:
                pass
        return removed

    def migrate(self) -> Dict[str, int]:
        """Republish every legacy v1 trace entry under the current format.

        Returns counts: ``migrated`` (legacy entries rewritten and
        removed), ``discarded`` (corrupt or keyless legacy entries
        deleted), ``skipped`` (already-current entries, plus legacy
        entries kept because their replacement could not be written).
        """
        out = {"migrated": 0, "discarded": 0, "skipped": 0}
        for path, kind in list(self._iter_entries()):
            if kind == "profile":
                self._migrate_profile(path, out)
            elif path.suffix == self._V2_SUFFIX:
                out["skipped"] += 1
            else:
                self._migrate_trace(kind, path, out)
        return out

    def _migrate_trace(self, kind: str, path: Path, out: Dict[str, int]) -> None:
        load = (
            trace_io.load_block_trace if kind == "blocks" else trace_io.load_events
        )
        save = self.save_block_trace if kind == "blocks" else self.save_events
        try:
            stored_key = trace_io.read_cache_key(path)
            if stored_key is None:
                raise ValueError(f"{path} carries no cache key")
            artifact = load(path, expected_key=stored_key)
        except Exception:
            self._discard(path)
            out["discarded"] += 1
            return
        new_key = self._current_key(stored_key)
        target = self.path_for(kind, new_key)
        if target == path:
            out["skipped"] += 1
            return
        if target.exists():
            # Already migrated by an earlier read-through; drop the leftover.
            self._discard(path)
            out["skipped"] += 1
            return
        if save(new_key, artifact) is None:  # type: ignore[arg-type]
            out["skipped"] += 1  # degraded store: keep the legacy entry
            return
        self._discard(path)
        out["migrated"] += 1

    def _migrate_profile(self, path: Path, out: Dict[str, int]) -> None:
        try:
            payload = json.loads(path.read_text())
            if payload.get("cache_kind") != _PROFILE_KIND:
                raise ValueError("foreign profile entry")
            stored_key = payload.get("cache_key")
            if not stored_key:
                raise ValueError("profile entry carries no cache key")
            profile = ProfileData.load(path)
        except Exception:
            self._discard(path)
            out["discarded"] += 1
            return
        new_key = self._current_key(str(stored_key))
        target = self.path_for("profile", new_key)
        if target == path:
            out["skipped"] += 1
            return
        if target.exists():
            self._discard(path)
            out["skipped"] += 1
            return
        if self.save_profile(new_key, profile) is None:
            out["skipped"] += 1
            return
        self._discard(path)
        out["migrated"] += 1
