"""The symbolic way-placement proof.

The paper's energy argument rests on one structural property: every line
of the way-placement area (WPA, the prefix ``[0, wpa_size)`` of the
binary) has exactly one home ``(set, way)``, so a predicted access may
precharge that single way and still be a complete membership test.

For a sound power-of-two geometry the home of address ``a`` is

* ``set(a) = (a >> offset_bits) & (num_sets - 1)``
* ``way(a) = tag(a) & (ways - 1)``  with  ``tag(a) = a >> (offset_bits + set_bits)``

which equals the arithmetic mapping ``line = a / line_size``,
``set = line mod num_sets``, ``way = (line / num_sets) mod ways``:
consecutive lines sweep every set, then every way, covering each
``(set, way)`` exactly once per cache capacity.  The proof here does not
*assume* that equivalence — it enumerates the WPA line by line,
extracts the home through the bit-sliced path (what the cache hardware
model does), cross-checks it against the arithmetic derivation and the
``(tag, set) -> address`` reconstruction, and certifies:

1. **injectivity** — no two WPA lines share a home,
2. **extraction consistency** — bit slicing agrees with arithmetic,
3. **I-TLB representability** — the WPA boundary falls on a page
   boundary, so the per-page way-placement bit can represent it.

Soundly-shaped WPAs larger than one cache capacity wrap with period
``size_bytes``; the proof enumerates one capacity and counts the
wrapped conflicts arithmetically instead of looping over them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.context import GeometrySpec

__all__ = ["WpaProof", "prove_wpa_placement"]

#: How many concrete witnesses to keep per failure class.
_MAX_EXAMPLES = 4


@dataclass(frozen=True)
class WpaProof:
    """Outcome of symbolically enumerating a way-placement area."""

    wpa_size: int
    line_size: int
    num_lines: int
    distinct_homes: int
    num_conflicts: int
    #: Up to ``_MAX_EXAMPLES`` witnesses ``(first line address, clashing line address)``.
    conflicts: Tuple[Tuple[int, int], ...]
    #: Up to ``_MAX_EXAMPLES`` line addresses where bit slicing disagrees
    #: with the arithmetic mapping or fails the address round-trip.
    extraction_mismatches: Tuple[int, ...]
    #: The page split by the WPA boundary, or ``None`` when page-aligned.
    straddled_page: Optional[int]

    @property
    def injective(self) -> bool:
        return self.num_conflicts == 0

    @property
    def extraction_consistent(self) -> bool:
        return not self.extraction_mismatches

    @property
    def itlb_representable(self) -> bool:
        return self.straddled_page is None

    @property
    def holds(self) -> bool:
        return self.injective and self.extraction_consistent and self.itlb_representable

    def to_dict(self) -> Dict[str, Any]:
        return {
            "wpa_size": self.wpa_size,
            "line_size": self.line_size,
            "num_lines": self.num_lines,
            "distinct_homes": self.distinct_homes,
            "num_conflicts": self.num_conflicts,
            "conflicts": [list(pair) for pair in self.conflicts],
            "extraction_mismatches": list(self.extraction_mismatches),
            "straddled_page": self.straddled_page,
            "injective": self.injective,
            "extraction_consistent": self.extraction_consistent,
            "itlb_representable": self.itlb_representable,
            "holds": self.holds,
        }


def prove_wpa_placement(
    geometry: GeometrySpec,
    wpa_size: int,
    page_size: Optional[int] = None,
) -> WpaProof:
    """Enumerate ``[0, wpa_size)`` and certify the (set, way) mapping."""
    line = geometry.line_size
    ways = geometry.ways
    num_sets = geometry.size_bytes // max(ways * line, 1)

    straddled: Optional[int] = None
    if page_size and page_size > 0 and wpa_size > 0 and wpa_size % page_size:
        straddled = wpa_size // page_size

    if line < 1 or ways < 1 or num_sets < 1 or wpa_size <= 0:
        return WpaProof(wpa_size, line, 0, 0, 0, (), (), straddled)

    num_lines = (wpa_size + line - 1) // line
    capacity = geometry.size_bytes
    sound = geometry.is_sound()

    homes: Dict[Tuple[int, int], int] = {}
    conflicts: List[Tuple[int, int]] = []
    mismatches: List[int] = []
    num_conflicts = 0

    home_shift = geometry.offset_bits + geometry.set_bits
    enumerated = min(wpa_size, capacity) if sound else wpa_size
    for addr in range(0, enumerated, line):
        set_index = geometry.set_index(addr)
        way = geometry.mandated_way(addr)
        line_no = addr // line
        arith_set = line_no % num_sets
        arith_way = (line_no // num_sets) % ways
        tag = addr >> home_shift
        rebuilt = (tag << home_shift) | (set_index << geometry.offset_bits)
        if (set_index, way) != (arith_set, arith_way) or rebuilt != addr:
            if len(mismatches) < _MAX_EXAMPLES:
                mismatches.append(addr)
        first = homes.setdefault((set_index, way), addr)
        if first != addr:
            num_conflicts += 1
            if len(conflicts) < _MAX_EXAMPLES:
                conflicts.append((first, addr))

    if sound and wpa_size > capacity:
        # The mapping is periodic with period `capacity`: address a and
        # a + capacity provably share a home, so every line beyond one
        # capacity conflicts with its image one period earlier.
        for addr in range(capacity, wpa_size, line):
            num_conflicts += 1
            if len(conflicts) < _MAX_EXAMPLES:
                conflicts.append((addr - capacity, addr))

    return WpaProof(
        wpa_size,
        line,
        num_lines,
        len(homes),
        num_conflicts,
        tuple(conflicts),
        tuple(mismatches),
        straddled,
    )
