"""Workload certification: the ``repro verify`` back end.

A *certificate* for one workload bundles the three verification layers:

1. the full static rule set (``P``/``L``/``C`` lint rules plus the ``V``
   dataflow-verifier rules) over the program, profile, layout, geometry,
   and WPA behind one experiment,
2. the symbolic WPA placement proof (injectivity, bit-extraction
   consistency, I-TLB representability), and
3. a sanitized kernel replay of the workload's line-event trace
   (baseline + way-placement, differential and energy reconciliation).

A workload is **certified** when no error-severity diagnostic fired, the
proof holds, and the sanitizer saw zero violations.  The JSON rendering
is byte-for-byte deterministic for a given input, so CI can diff two
consecutive runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis import Analyzer, Diagnostic, Severity
from repro.analysis.context import AnalysisContext, GeometrySpec
from repro.experiments.runner import ExperimentRunner
from repro.layout.placement import LayoutPolicy
from repro.sim.machine import MachineConfig, XSCALE_BASELINE
from repro.utils.bitops import align_up
from repro.verify.sanitizer import SanitizerViolation, sanitize_events
from repro.verify.wpa_proof import WpaProof, prove_wpa_placement

__all__ = [
    "WorkloadCertificate",
    "certify_workload",
    "fitted_wpa_size",
    "render_certificates_json",
    "render_certificates_text",
]


def fitted_wpa_size(
    runner: ExperimentRunner,
    benchmark: str,
    policy: LayoutPolicy,
    machine: MachineConfig = XSCALE_BASELINE,
    page_size: Optional[int] = None,
) -> int:
    """The WPA that covers the whole binary, page-aligned, capped at capacity."""
    if page_size is None:
        page_size = machine.page_size
    layout = runner.layout(benchmark, policy)
    return min(machine.icache.size_bytes, align_up(layout.end_address, page_size))


@dataclass(frozen=True)
class WorkloadCertificate:
    """The verifier's verdict on one workload."""

    benchmark: str
    layout_policy: str
    wpa_size: int
    diagnostics: Tuple[Diagnostic, ...]
    proof: WpaProof
    sanitizer_violations: Tuple[SanitizerViolation, ...]
    sanitized: bool

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= Severity.ERROR]

    @property
    def ok(self) -> bool:
        return not self.errors and self.proof.holds and not self.sanitizer_violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "layout": self.layout_policy,
            "wpa_size": self.wpa_size,
            "ok": self.ok,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "wpa_proof": self.proof.to_dict(),
            "sanitized": self.sanitized,
            "sanitizer_violations": [
                {"invariant": v.invariant, "name": v.name, "message": v.message}
                for v in self.sanitizer_violations
            ],
        }


def certify_workload(
    runner: ExperimentRunner,
    benchmark: str,
    policy: LayoutPolicy = LayoutPolicy.WAY_PLACEMENT,
    machine: MachineConfig = XSCALE_BASELINE,
    wpa_size: Optional[int] = None,
    page_size: Optional[int] = None,
    analyzer: Optional[Analyzer] = None,
    sanitize: bool = True,
) -> WorkloadCertificate:
    """Build one workload's certificate (see the module docstring)."""
    if page_size is None:
        page_size = machine.page_size
    if wpa_size is None:
        wpa_size = fitted_wpa_size(runner, benchmark, policy, machine, page_size)

    profile = runner.profile(benchmark)
    context = AnalysisContext.for_experiment(
        program=runner.workload(benchmark).program,
        layout=runner.layout(benchmark, policy),
        block_counts=profile.block_counts,
        edge_counts=profile.edge_counts,
        geometry=machine.icache,
        wpa_size=wpa_size or None,
        page_size=page_size,
        energy=runner.energy_params,
        subject=benchmark,
    )
    diagnostics = (analyzer if analyzer is not None else Analyzer()).run(context)
    proof = prove_wpa_placement(
        GeometrySpec.from_geometry(machine.icache), wpa_size, page_size
    )

    violations: Tuple[SanitizerViolation, ...] = ()
    # The sanitized replay needs a TLB-representable WPA; when the WPA is
    # unaligned the static rules (L004/V006) already carry the verdict.
    sanitized = sanitize and wpa_size % machine.page_size == 0
    if sanitized:
        events = runner.events(benchmark, policy, machine.icache.line_size)
        violations = tuple(
            sanitize_events(
                events,
                machine.icache,
                wpa_size,
                itlb_entries=machine.itlb_entries,
                page_size=machine.page_size,
                energy_params=runner.energy_params,
                organisation=runner.organisation,
            )
        )

    return WorkloadCertificate(
        benchmark=benchmark,
        layout_policy=policy.value,
        wpa_size=wpa_size,
        diagnostics=tuple(diagnostics),
        proof=proof,
        sanitizer_violations=violations,
        sanitized=sanitized,
    )


def render_certificates_json(certificates: List[WorkloadCertificate]) -> str:
    """Deterministic JSON report over many certificates."""
    import json

    ordered = sorted(certificates, key=lambda c: c.benchmark)
    payload = {
        "certificates": [certificate.to_dict() for certificate in ordered],
        "summary": {
            "total": len(ordered),
            "certified": sum(1 for c in ordered if c.ok),
            "failed": sum(1 for c in ordered if not c.ok),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_certificates_text(certificates: List[WorkloadCertificate]) -> str:
    """Human-readable per-workload verdict lines."""
    lines: List[str] = []
    for certificate in sorted(certificates, key=lambda c: c.benchmark):
        status = "certified" if certificate.ok else "FAILED"
        lines.append(
            f"{certificate.benchmark:<14} {status:<9} "
            f"wpa={certificate.wpa_size // 1024}KB "
            f"proof={'holds' if certificate.proof.holds else 'FAILS'} "
            f"diagnostics={len(certificate.diagnostics)} "
            f"sanitizer={len(certificate.sanitizer_violations)}"
        )
        for diagnostic in certificate.errors:
            lines.append(f"    {diagnostic.render()}")
        for violation in certificate.sanitizer_violations:
            lines.append(f"    {violation.render()}")
    certified = sum(1 for c in certificates if c.ok)
    lines.append(f"{certified}/{len(certificates)} workload(s) certified")
    return "\n".join(lines)
