"""Dataflow verifier and simulation sanitizer (see docs/verification.md).

Two halves:

* the **static verifier** — whole-program dataflow analyses
  (:mod:`repro.verify.dataflow`), the symbolic WPA placement proof
  (:mod:`repro.verify.wpa_proof`), and the ``V###`` diagnostic rules
  (:mod:`repro.verify.rules`) that surface them through the standard
  :mod:`repro.analysis` registry and reporters;
* the **runtime sanitizer** (:mod:`repro.verify.sanitizer`) — ``S###``
  invariant checks over live schemes and vectorized kernel output.

Workload certification (:mod:`repro.verify.certify`, the ``repro
verify`` subcommand) is imported lazily by its callers because it pulls
in the experiment pipeline.
"""

from __future__ import annotations

from repro.verify import rules  # noqa: F401  (registers the V rules)
from repro.verify.dataflow import (
    BrokenFallthrough,
    FlowGraph,
    FlowImbalance,
    IllegalEdge,
    broken_fallthroughs,
    build_flow_graph,
    dominators_of,
    entry_block_uid,
    flow_imbalances,
    illegal_edges,
    immediate_dominators,
    reverse_postorder,
)
from repro.verify.sanitizer import (
    SANITIZER_INVARIANTS,
    SanitizerHook,
    SanitizerViolation,
    check_counters,
    check_differential,
    check_energy,
    check_hint_inert,
    check_scheme_state,
    check_wayhint,
    raise_if_violations,
    sanitize_counters,
    sanitize_events,
)
from repro.verify.wpa_proof import WpaProof, prove_wpa_placement

__all__ = [
    "BrokenFallthrough",
    "FlowGraph",
    "FlowImbalance",
    "IllegalEdge",
    "SANITIZER_INVARIANTS",
    "SanitizerHook",
    "SanitizerViolation",
    "WpaProof",
    "broken_fallthroughs",
    "build_flow_graph",
    "check_counters",
    "check_differential",
    "check_energy",
    "check_hint_inert",
    "check_scheme_state",
    "check_wayhint",
    "dominators_of",
    "entry_block_uid",
    "flow_imbalances",
    "illegal_edges",
    "immediate_dominators",
    "prove_wpa_placement",
    "raise_if_violations",
    "reverse_postorder",
    "sanitize_counters",
    "sanitize_events",
]
