"""Whole-program dataflow analyses over the lenient program views.

This module holds the graph machinery behind the ``V`` verification rules:

* **Flow graph construction** — the static successor relation of a
  :class:`~repro.analysis.context.ProgramView`, i.e. resolvable
  taken/fall-through edges plus call -> callee-entry edges.  Because a
  call block's fall-through label *is* its continuation, every dynamic
  execution path projects onto a path of this graph (the call/return
  excursion re-joins at the continuation edge), which is what makes
  dominator arguments about traces sound.
* **Dominators** — iterative Cooper-Harvey-Kennedy immediate dominators
  in reverse postorder.
* **Kirchhoff flow conservation** — a profiled block count must equal
  the sum of its profiled incoming edge counts.  The trace walker emits
  one unbroken block sequence that starts at the program entry and
  re-enters it on restarts, so block and edge counts derived from the
  same trace satisfy the identity *exactly*: the only allowed surplus is
  ``+1`` at the entry block of a program that executed at all.
* **Profile-edge legality** — every profiled edge must be realisable by
  the source block's kind (fall-through, jump target, call into the
  callee's entry, or return to a continuation of a call site / the
  program entry on restart).
* **Fall-through contiguity** — after placement, a block's fall-through
  successor must start at exactly ``address + size`` of its source;
  the chain builder treats fall-through chains as atomic, so a layout
  violating this was not produced by a legitimate placement pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.analysis.context import LayoutView, ProgramView
from repro.program.basic_block import BlockKind

__all__ = [
    "BrokenFallthrough",
    "FlowGraph",
    "FlowImbalance",
    "IllegalEdge",
    "broken_fallthroughs",
    "build_flow_graph",
    "dominators_of",
    "entry_block_uid",
    "flow_imbalances",
    "illegal_edges",
    "immediate_dominators",
    "reverse_postorder",
]


def entry_block_uid(view: ProgramView) -> Optional[int]:
    """Uid of the program's entry block, or ``None`` when it has none."""
    if view.entry is None or view.entry not in view.functions:
        return None
    function = view.functions[view.entry]
    if not function.blocks:
        return None
    return function.entry.uid


@dataclass(frozen=True)
class FlowGraph:
    """Static successor graph of a program view (uids as nodes)."""

    entry: int
    successors: Mapping[int, Tuple[int, ...]]
    predecessors: Mapping[int, Tuple[int, ...]]


def build_flow_graph(view: ProgramView) -> Optional[FlowGraph]:
    """The static flow graph, or ``None`` for a program without an entry."""
    entry = entry_block_uid(view)
    if entry is None:
        return None
    successors: Dict[int, Tuple[int, ...]] = {}
    for block in view.blocks():
        successors[block.uid] = tuple(dict.fromkeys(view.successor_uids(block)))
    predecessors: Dict[int, List[int]] = {uid: [] for uid in successors}
    for src in sorted(successors):
        for dst in successors[src]:
            if dst in predecessors:
                predecessors[dst].append(src)
    return FlowGraph(
        entry,
        successors,
        {uid: tuple(preds) for uid, preds in predecessors.items()},
    )


def reverse_postorder(graph: FlowGraph) -> List[int]:
    """Reverse postorder over the nodes reachable from the entry.

    Iterative (no recursion-depth limit) and deterministic: successor
    tuples are traversed in construction order.
    """
    order: List[int] = []
    visited: Set[int] = {graph.entry}
    stack: List[Tuple[int, int]] = [(graph.entry, 0)]
    while stack:
        node, index = stack[-1]
        succs = graph.successors.get(node, ())
        if index < len(succs):
            stack[-1] = (node, index + 1)
            child = succs[index]
            if child not in visited and child in graph.successors:
                visited.add(child)
                stack.append((child, 0))
        else:
            order.append(node)
            stack.pop()
    order.reverse()
    return order


def immediate_dominators(graph: FlowGraph) -> Dict[int, int]:
    """Cooper-Harvey-Kennedy immediate dominators.

    Returns ``{uid: idom(uid)}`` for every node reachable from the entry,
    with ``idom[entry] == entry``.  Unreachable nodes are absent.
    """
    rpo = reverse_postorder(graph)
    position = {uid: index for index, uid in enumerate(rpo)}
    idom: Dict[int, int] = {graph.entry: graph.entry}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while position[a] > position[b]:
                a = idom[a]
            while position[b] > position[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for uid in rpo:
            if uid == graph.entry:
                continue
            preds = [p for p in graph.predecessors.get(uid, ()) if p in idom]
            if not preds:
                continue
            candidate = preds[0]
            for pred in preds[1:]:
                candidate = intersect(candidate, pred)
            if idom.get(uid) != candidate:
                idom[uid] = candidate
                changed = True
    return idom


def dominators_of(uid: int, idom: Mapping[int, int]) -> List[int]:
    """Strict dominators of ``uid`` (itself excluded), nearest first."""
    chain: List[int] = []
    current = uid
    while current in idom and idom[current] != current:
        current = idom[current]
        chain.append(current)
    return chain


@dataclass(frozen=True)
class FlowImbalance:
    """One block whose execution count is not explained by its inflow."""

    uid: int
    count: int
    inflow: int
    expected_extra: int  # 1 at the trace's starting block, else 0

    @property
    def imbalance(self) -> int:
        return self.count - self.inflow - self.expected_extra


def flow_imbalances(
    view: ProgramView,
    block_counts: Mapping[int, int],
    edge_counts: Mapping[Tuple[int, int], int],
    tolerance: int = 0,
) -> List[FlowImbalance]:
    """Blocks violating ``count(b) == inflow(b) (+1 at the trace start)``.

    ``tolerance`` admits sampled or merged profiles where the identity
    only holds approximately; the bundled profiler derives block and edge
    counts from one trace, so the default is exact conservation.
    """
    entry = entry_block_uid(view)
    inflow: Dict[int, int] = {}
    for (_src, dst), count in edge_counts.items():
        inflow[dst] = inflow.get(dst, 0) + count
    violations: List[FlowImbalance] = []
    for uid in sorted(block.uid for block in view.blocks()):
        count = block_counts.get(uid, 0)
        extra = 1 if (uid == entry and count > 0) else 0
        if abs(count - inflow.get(uid, 0) - extra) > tolerance:
            violations.append(FlowImbalance(uid, count, inflow.get(uid, 0), extra))
    return violations


@dataclass(frozen=True)
class IllegalEdge:
    """A profiled edge the static ICFG cannot realise."""

    src: int
    dst: int
    count: int
    reason: str


def illegal_edges(
    view: ProgramView,
    edge_counts: Mapping[Tuple[int, int], int],
) -> List[IllegalEdge]:
    """Profiled edges with no static counterpart, in (src, dst) order."""
    # Legal return targets: the continuation block of every call into the
    # returning function, plus the program entry (the walker restarts
    # there when the entry function itself returns).
    continuations: Dict[str, Set[int]] = {}
    for block in view.blocks():
        if block.kind is BlockKind.CALL and block.callee is not None:
            target = view.resolve_label(block, block.fall_label)
            if target is not None:
                continuations.setdefault(block.callee, set()).add(target)
    entry = entry_block_uid(view)
    known = {block.uid for block in view.blocks()}

    violations: List[IllegalEdge] = []
    for src, dst in sorted(edge_counts):
        count = edge_counts[(src, dst)]
        if count <= 0:
            continue
        if src not in known or dst not in known:
            violations.append(
                IllegalEdge(src, dst, count, "references a block the program does not define")
            )
            continue
        block = view.block_by_uid(src)
        candidates: Set[Optional[int]] = set()
        if block.kind is BlockKind.FALLTHROUGH:
            candidates = {view.resolve_label(block, block.fall_label)}
        elif block.kind is BlockKind.JUMP:
            candidates = {view.resolve_label(block, block.taken_label)}
        elif block.kind is BlockKind.CONDJUMP:
            candidates = {
                view.resolve_label(block, block.taken_label),
                view.resolve_label(block, block.fall_label),
            }
        elif block.kind is BlockKind.CALL:
            if block.callee in view.functions and view.functions[block.callee].blocks:
                candidates = {view.functions[block.callee].entry.uid}
        elif block.kind is BlockKind.RETURN:
            candidates = set(continuations.get(block.function, set()))
            if block.function == view.entry and entry is not None:
                candidates.add(entry)
        legal = {uid for uid in candidates if uid is not None}
        if dst not in legal:
            violations.append(
                IllegalEdge(
                    src,
                    dst,
                    count,
                    f"is not a legal {block.kind.name.lower()} successor",
                )
            )
    return violations


@dataclass(frozen=True)
class BrokenFallthrough:
    """A fall-through target not placed immediately after its source."""

    src: int
    dst: int
    expected_address: int
    actual_address: int


def broken_fallthroughs(
    view: ProgramView,
    layout: LayoutView,
) -> List[BrokenFallthrough]:
    """Placed fall-through edges that are not address-contiguous.

    Dangling fall labels (P004) and blocks missing from the layout
    (L-rules) are other rules' findings; only edges whose endpoints are
    both placed are judged here.
    """
    violations: List[BrokenFallthrough] = []
    for block in sorted(view.blocks(), key=lambda b: b.uid):
        if block.fall_label is None:
            continue
        dst = view.resolve_label(block, block.fall_label)
        if dst is None:
            continue
        if block.uid not in layout.addresses or dst not in layout.addresses:
            continue
        expected = layout.addresses[block.uid] + layout.sizes.get(block.uid, 0)
        actual = layout.addresses[dst]
        if actual != expected:
            violations.append(BrokenFallthrough(block.uid, dst, expected, actual))
    return violations
