"""Runtime sanitizer: invariant checks over live schemes and kernel output.

The static verifier proves properties of the *inputs* (program, profile,
layout, geometry); this module asserts that a *simulation* respected the
model while it ran.  Nine invariants, each with a stable ``S###`` id:

==== ========================  =====================================================
id   name                      what must hold
==== ========================  =====================================================
S001 counter-consistency       counters pass cross-field validation and agree with
                               the trace's fetch/event totals
S002 tag-check-bound           ways precharged never exceed one way per single-way
                               search plus ``ways`` per full search
S003 wayhint-itlb-agreement    the scheme's hint outcomes (false positives/negatives,
                               corrective accesses, search mix) equal an independent
                               replay of the last-value predictor against the I-TLB
                               way-placement bits
S004 energy-reconciliation     every EnergyBreakdown component re-derives from the
                               counters and the per-event energies
S005 wpa-residency             a way-placed line is only ever resident in its
                               mandated way, and no set holds a duplicate tag
S006 baseline-differential     way-placement with an empty WPA produces exactly the
                               baseline's miss traffic and stays hint-inert
S007 segment-monotonicity      counters grow monotonically and account for every
                               event as segments replay
S008 static-bounds-bracketing  every counter falls inside the static lower/upper
                               bounds the abstract interpretation derives from the
                               trace footprint (``repro.analysis.absint.bounds``)
S009 conflict-certificate-     the per-set conflict replay reproduces the kernel's
     replay                    total misses, and every set the interference
                               analysis certifies conflict-free replays zero
                               conflict misses (``repro.analysis.interference``)
==== ========================  =====================================================

Two consumers: :class:`SanitizerHook` wraps a reference
:class:`~repro.schemes.base.FetchScheme` and checks invariants *during*
the run (segment by segment, with live cache-state inspection);
:func:`sanitize_counters` checks the vectorized
:mod:`repro.engine.kernels` output post hoc with array arithmetic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from repro.cache.access import FetchCounters
from repro.cache.geometry import CacheGeometry
from repro.energy.cache_model import CacheEnergyModel, EnergyBreakdown
from repro.energy.params import EnergyParams
from repro.engine.arrays import way_hints, wpa_flags
from repro.engine.kernels import baseline_counters, way_placement_counters
from repro.errors import CacheConfigError, SanitizerError, SchemeError
from repro.schemes.base import FetchScheme
from repro.trace.events import LineEventTrace

__all__ = [
    "SANITIZER_INVARIANTS",
    "SanitizerHook",
    "SanitizerViolation",
    "check_conflict_certificates",
    "check_counters",
    "check_differential",
    "check_energy",
    "check_hint_inert",
    "check_scheme_state",
    "check_static_bounds",
    "check_wayhint",
    "raise_if_violations",
    "sanitize_counters",
    "sanitize_events",
]

#: Invariant id -> short name (the sanitizer's analogue of the rule catalog).
SANITIZER_INVARIANTS: Dict[str, str] = {
    "S001": "counter-consistency",
    "S002": "tag-check-bound",
    "S003": "wayhint-itlb-agreement",
    "S004": "energy-reconciliation",
    "S005": "wpa-residency",
    "S006": "baseline-differential",
    "S007": "segment-monotonicity",
    "S008": "static-bounds-bracketing",
    "S009": "conflict-certificate-replay",
}

#: Counters a scheme without hint/WPA machinery must leave untouched.
_HINT_COUNTERS = (
    "single_way_searches",
    "second_accesses",
    "wp_fills",
    "hint_false_positives",
    "hint_false_negatives",
)

_COUNTER_FIELDS = tuple(f.name for f in fields(FetchCounters))


@dataclass(frozen=True)
class SanitizerViolation:
    """One violated invariant, ready for rendering or attachment."""

    invariant: str
    name: str
    message: str

    def render(self) -> str:
        return f"{self.invariant} {self.name}: {self.message}"


def _violation(invariant: str, message: str) -> SanitizerViolation:
    return SanitizerViolation(invariant, SANITIZER_INVARIANTS[invariant], message)


def raise_if_violations(
    violations: List[SanitizerViolation], scheme_name: str
) -> None:
    """Raise :class:`~repro.errors.SanitizerError` when any check failed."""
    if violations:
        preview = "; ".join(violation.render() for violation in violations[:3])
        raise SanitizerError(
            f"sanitizer caught {len(violations)} violation(s) in scheme "
            f"{scheme_name!r}: {preview}",
            violations,
        )


def _dedupe(violations: List[SanitizerViolation]) -> List[SanitizerViolation]:
    seen = set()
    unique: List[SanitizerViolation] = []
    for violation in violations:
        key = (violation.invariant, violation.message)
        if key not in seen:
            seen.add(key)
            unique.append(violation)
    return unique


# ---------------------------------------------------------------------------
# Individual checks
# ---------------------------------------------------------------------------
def check_counters(
    counters: FetchCounters,
    geometry: CacheGeometry,
    events: Optional[LineEventTrace] = None,
) -> List[SanitizerViolation]:
    """S001 (consistency) and S002 (tag-check bound) over final counters."""
    violations: List[SanitizerViolation] = []
    try:
        counters.validate()
    except ValueError as exc:
        violations.append(_violation("S001", f"cross-field validation failed: {exc}"))
    if events is not None:
        if counters.fetches != events.num_fetches:
            violations.append(
                _violation(
                    "S001",
                    f"scheme counted {counters.fetches} fetches but the trace "
                    f"holds {events.num_fetches}",
                )
            )
        if counters.line_events != events.num_events:
            violations.append(
                _violation(
                    "S001",
                    f"scheme counted {counters.line_events} line events but the "
                    f"trace holds {events.num_events}",
                )
            )
    bound = geometry.ways * counters.full_searches + counters.single_way_searches
    if counters.ways_precharged > bound:
        violations.append(
            _violation(
                "S002",
                f"{counters.ways_precharged} ways precharged exceeds the "
                f"associativity bound {bound} (= {geometry.ways} x "
                f"{counters.full_searches} full + {counters.single_way_searches} "
                f"single-way searches)",
            )
        )
    return violations


def check_hint_inert(counters: FetchCounters) -> List[SanitizerViolation]:
    """S001: a scheme without hint/WPA machinery must not touch its counters."""
    violations: List[SanitizerViolation] = []
    for name in _HINT_COUNTERS:
        value = getattr(counters, name)
        if value:
            violations.append(
                _violation(
                    "S001",
                    f"scheme has no way-hint machinery but recorded {name}={value}",
                )
            )
    return violations


def check_wayhint(
    events: LineEventTrace,
    counters: FetchCounters,
    wpa_size: int,
    hint_initial: bool = False,
    same_line_skip: bool = True,
) -> List[SanitizerViolation]:
    """S003: hint outcomes must match an independent predictor replay.

    The last-value predictor is replayed as array arithmetic: the hint for
    event ``i`` is the way-placement flag of event ``i - 1`` (seeded with
    ``hint_initial``), a false positive is ``hint & ~flag``, and every
    false positive must cost exactly one corrective access.  The expected
    search mix follows from the prediction stream alone.
    """
    violations: List[SanitizerViolation] = []
    flags = wpa_flags(events, wpa_size)
    hints = way_hints(events, wpa_size, hint_initial)
    fp = int(np.count_nonzero(hints & ~flags))
    fn = int(np.count_nonzero(flags & ~hints))
    predicted = int(np.count_nonzero(hints))
    n = events.num_events

    if counters.hint_false_positives != fp:
        violations.append(
            _violation(
                "S003",
                f"scheme recorded {counters.hint_false_positives} hint false "
                f"positives but the I-TLB way-placement bits give {fp}",
            )
        )
    if counters.hint_false_negatives != fn:
        violations.append(
            _violation(
                "S003",
                f"scheme recorded {counters.hint_false_negatives} hint false "
                f"negatives but the I-TLB way-placement bits give {fn}",
            )
        )
    if counters.second_accesses != fp:
        violations.append(
            _violation(
                "S003",
                f"every hint false positive must cost exactly one corrective "
                f"access: {counters.second_accesses} second accesses != {fp} "
                f"false positives",
            )
        )

    if same_line_skip:
        expected_single = predicted
        expected_full = (n - predicted) + fp
    else:
        extra = events.counts.astype(np.int64) - 1
        wpa_extra = int(extra[flags].sum())
        expected_single = predicted + wpa_extra
        expected_full = (n - predicted) + fp + (events.num_fetches - n - wpa_extra)
    if counters.single_way_searches != expected_single:
        violations.append(
            _violation(
                "S003",
                f"{counters.single_way_searches} single-way searches disagree "
                f"with the {expected_single} predicted way-placement accesses",
            )
        )
    if counters.full_searches != expected_full:
        violations.append(
            _violation(
                "S003",
                f"{counters.full_searches} full searches disagree with the "
                f"{expected_full} unpredicted or corrective accesses",
            )
        )
    return violations


def check_energy(
    counters: FetchCounters,
    breakdown: EnergyBreakdown,
    model: CacheEnergyModel,
) -> List[SanitizerViolation]:
    """S004: every breakdown component must re-derive from the counters."""
    params = model.params
    cache_fetches = counters.fetches - counters.spm_accesses
    if model.organisation == "cam":
        data_pj = cache_fetches * model.data_read_pj
    else:
        single_reads = cache_fetches + counters.second_accesses - counters.full_searches
        data_pj = (
            counters.full_searches * model.geometry.ways + single_reads
        ) * model.data_read_pj
    expected = {
        "tag_pj": counters.ways_precharged * model.tag_way_pj
        + counters.single_way_searches * params.way_mux_pj,
        "data_pj": data_pj,
        "fill_pj": counters.fills * model.line_fill_pj,
        "link_pj": counters.link_writes * params.link_write_pj,
        "l0_pj": counters.l0_accesses * params.l0_read_pj
        + counters.l0_misses * model.l0_fill_pj,
        "spm_pj": counters.spm_accesses * params.spm_read_pj,
        "hint_pj": counters.line_events * params.wayhint_pj if model.wayhint else 0.0,
        "itlb_pj": counters.itlb_accesses * params.itlb_search_pj
        + counters.itlb_misses * params.itlb_fill_pj,
        "memory_pj": counters.fills * model.memory_line_pj,
    }
    violations: List[SanitizerViolation] = []
    for component, value in expected.items():
        actual = getattr(breakdown, component)
        if not math.isclose(actual, value, rel_tol=1e-9, abs_tol=1e-9):
            violations.append(
                _violation(
                    "S004",
                    f"energy component {component} = {actual:.6g} pJ does not "
                    f"reconcile with the activity counters (expected "
                    f"{value:.6g} pJ)",
                )
            )
    return violations


def check_scheme_state(scheme: FetchScheme) -> List[SanitizerViolation]:
    """S005: live cache state must respect the way-placement invariant."""
    violations: List[SanitizerViolation] = []
    cache = getattr(scheme, "cache", None)
    if cache is None:
        return violations
    try:
        cache.assert_no_duplicate_tags()
    except CacheConfigError as exc:
        violations.append(_violation("S005", str(exc)))
    itlb = getattr(scheme, "itlb", None)
    if itlb is None:
        return violations
    geometry = scheme.geometry
    for set_index, way, tag in cache.resident_lines():
        address = geometry.reconstruct_address(tag, set_index)
        if itlb.is_way_placed(address) and way != geometry.mandated_way(address):
            violations.append(
                _violation(
                    "S005",
                    f"way-placed line {address:#x} is resident in way {way} of "
                    f"set {set_index}, not its mandated way "
                    f"{geometry.mandated_way(address)}",
                )
            )
    return violations


def check_differential(
    events: LineEventTrace,
    geometry: CacheGeometry,
    itlb_entries: int = 32,
    page_size: int = 1024,
    same_line_skip: bool = True,
    hint_initial: bool = False,
) -> List[SanitizerViolation]:
    """S006: an empty WPA must degenerate way-placement into the baseline.

    With ``wpa_size == 0`` no line is way-placed, so the way-placement
    kernel must reproduce the baseline's miss traffic exactly and its
    hint/WPA machinery must stay inert.  ``hint_initial`` mis-seeds the
    predictor on purpose (tests use it to show the invariant can fire).
    """
    wp = way_placement_counters(
        events,
        geometry,
        wpa_size=0,
        itlb_entries=itlb_entries,
        page_size=page_size,
        same_line_skip=same_line_skip,
        hint_initial=hint_initial,
    )
    base = baseline_counters(
        events,
        geometry,
        itlb_entries=itlb_entries,
        page_size=page_size,
        same_line_skip=same_line_skip,
    )
    violations: List[SanitizerViolation] = []
    for name in ("hits", "misses", "fills", "evictions", "itlb_misses"):
        if getattr(wp, name) != getattr(base, name):
            violations.append(
                _violation(
                    "S006",
                    f"miss traffic diverges at wpa_size=0: way-placement "
                    f"{name}={getattr(wp, name)} vs baseline "
                    f"{name}={getattr(base, name)}",
                )
            )
    for name in _HINT_COUNTERS:
        value = getattr(wp, name)
        if value:
            violations.append(
                _violation(
                    "S006",
                    f"an empty WPA must be inert but way-placement recorded "
                    f"{name}={value}",
                )
            )
    return violations


def check_static_bounds(
    scheme_name: str,
    events: LineEventTrace,
    geometry: CacheGeometry,
    counters: FetchCounters,
    options: Mapping[str, Any],
) -> List[SanitizerViolation]:
    """S008: counters must fall inside the static footprint bounds.

    The abstract interpretation brackets every counter of the baseline and
    way-placement replays from the trace footprint alone
    (:func:`repro.analysis.absint.bounds.footprint_bounds`); any counter
    escaping its bracket means either the engine or the static model is
    wrong.  Configurations the bounds do not model are skipped.  Imported
    lazily: the bounds live under ``repro.analysis``, which must stay
    importable without the verifier.
    """
    from repro.analysis.absint.bounds import bounds_for_options

    bounds = bounds_for_options(scheme_name, events, geometry, options)
    if bounds is None:
        return []
    return [
        _violation("S008", f"{scheme_name}: {violation.render()}")
        for violation in bounds.violations(counters)
    ]


def check_conflict_certificates(
    scheme_name: str,
    events: LineEventTrace,
    geometry: CacheGeometry,
    counters: FetchCounters,
    options: Mapping[str, Any],
) -> List[SanitizerViolation]:
    """S009: conflict replay matches, and certified sets replay clean.

    The per-set conflict replay (:mod:`repro.analysis.interference.replay`)
    models exactly the miss behaviour of the reference baseline and
    way-placement schemes (misses are independent of the way-hint
    predictor), so its total must equal the kernel's miss counter.  On top
    of that equality sits the certificate check: any set the static
    interference analysis certifies conflict-free must decompose into cold
    misses only.  Schemes the replay does not model are skipped.  Imported
    lazily for the same reason as :func:`check_static_bounds`.
    """
    if scheme_name not in ("baseline", "way-placement"):
        return []
    from repro.analysis.context import GeometrySpec
    from repro.analysis.interference.replay import (
        conflict_free_violations,
        conflict_replay,
        trace_certified_sets,
    )

    wpa_size = (
        int(options.get("wpa_size", 0)) if scheme_name == "way-placement" else 0
    )
    spec = GeometrySpec.from_geometry(geometry)
    replay = conflict_replay(events, spec, wpa_size)
    violations: List[SanitizerViolation] = []
    if replay.total_misses != counters.misses:
        violations.append(
            _violation(
                "S009",
                f"{scheme_name}: conflict replay saw {replay.total_misses} "
                f"misses but the kernel counted {counters.misses}",
            )
        )
    certified = trace_certified_sets(events, spec, wpa_size)
    for set_index, conflicts in sorted(
        conflict_free_violations(replay, certified).items()
    ):
        violations.append(
            _violation(
                "S009",
                f"{scheme_name}: set {set_index} was certified conflict-free "
                f"at wpa_size={wpa_size} yet replayed {conflicts} conflict "
                f"miss(es)",
            )
        )
    return violations


# ---------------------------------------------------------------------------
# Post-hoc entry points (kernel output)
# ---------------------------------------------------------------------------
def sanitize_counters(
    scheme_name: str,
    events: LineEventTrace,
    geometry: CacheGeometry,
    counters: FetchCounters,
    options: Optional[Mapping[str, Any]] = None,
) -> List[SanitizerViolation]:
    """All applicable post-hoc checks for one finished replay's counters."""
    opts = dict(options or {})
    violations = check_counters(counters, geometry, events=events)
    if scheme_name == "way-placement":
        same_line_skip = bool(opts.get("same_line_skip", True))
        violations += check_wayhint(
            events,
            counters,
            int(opts.get("wpa_size", 0)),
            hint_initial=bool(opts.get("hint_initial", False)),
            same_line_skip=same_line_skip,
        )
        violations += check_differential(
            events,
            geometry,
            itlb_entries=int(opts.get("itlb_entries", 32)),
            page_size=int(opts.get("page_size", 1024)),
            same_line_skip=same_line_skip,
        )
    elif scheme_name == "baseline":
        violations += check_hint_inert(counters)
    violations += check_static_bounds(scheme_name, events, geometry, counters, opts)
    violations += check_conflict_certificates(
        scheme_name, events, geometry, counters, opts
    )
    return _dedupe(violations)


def sanitize_events(
    events: LineEventTrace,
    geometry: CacheGeometry,
    wpa_size: int,
    itlb_entries: int = 32,
    page_size: int = 1024,
    same_line_skip: bool = True,
    energy_params: Optional[EnergyParams] = None,
    organisation: str = "cam",
) -> List[SanitizerViolation]:
    """Replay one trace through both kernels and run every array check.

    This is the certification path: baseline and way-placement kernels
    replay the trace, their counters are sanitized, the differential is
    checked, and (when energy parameters are given) the priced breakdown
    must reconcile.
    """
    base = baseline_counters(
        events, geometry, itlb_entries=itlb_entries, page_size=page_size
    )
    wp = way_placement_counters(
        events,
        geometry,
        wpa_size=wpa_size,
        itlb_entries=itlb_entries,
        page_size=page_size,
        same_line_skip=same_line_skip,
    )
    shared = {"itlb_entries": itlb_entries, "page_size": page_size}
    violations = check_counters(base, geometry, events=events)
    violations += check_hint_inert(base)
    # The baseline kernel above ran with its default same_line_skip=False.
    violations += check_static_bounds("baseline", events, geometry, base, shared)
    violations += check_conflict_certificates(
        "baseline", events, geometry, base, shared
    )
    violations += check_counters(wp, geometry, events=events)
    violations += check_wayhint(events, wp, wpa_size, same_line_skip=same_line_skip)
    violations += check_static_bounds(
        "way-placement",
        events,
        geometry,
        wp,
        {**shared, "wpa_size": wpa_size, "same_line_skip": same_line_skip},
    )
    violations += check_conflict_certificates(
        "way-placement", events, geometry, wp, {**shared, "wpa_size": wpa_size}
    )
    violations += check_differential(
        events,
        geometry,
        itlb_entries=itlb_entries,
        page_size=page_size,
        same_line_skip=same_line_skip,
    )
    if energy_params is not None:
        model = CacheEnergyModel(
            geometry, energy_params, organisation=organisation, wayhint=True
        )
        violations += check_energy(wp, model.energy(wp), model)
    return _dedupe(violations)


# ---------------------------------------------------------------------------
# The live hook
# ---------------------------------------------------------------------------
class SanitizerHook:
    """Wrap a reference :class:`FetchScheme` and sanitize it while it runs.

    The hook drives the wrapped scheme through :meth:`FetchScheme.feed` in
    bounded segments (segmented replay is exactly equivalent to whole-trace
    replay), asserting after every segment that the counters moved
    monotonically and accounted for each event (S007) and that the live
    cache state respects way-placement residency (S005).  After the final
    segment the full post-hoc counter checks run.  With
    ``raise_on_violation`` (the default) any violation raises
    :class:`~repro.errors.SanitizerError`; otherwise violations collect in
    :attr:`violations`.
    """

    def __init__(
        self,
        scheme: FetchScheme,
        segment_events: int = 4096,
        raise_on_violation: bool = True,
    ):
        self.scheme = scheme
        self.geometry = scheme.geometry
        self.segment_events = max(1, int(segment_events))
        self.raise_on_violation = raise_on_violation
        self.violations: List[SanitizerViolation] = []
        self.segments_checked = 0
        hint = getattr(scheme, "hint", None)
        self._hint_initial = bool(hint.bit) if hint is not None else False

    @property
    def name(self) -> str:
        return self.scheme.name

    @property
    def counters(self) -> FetchCounters:
        return self.scheme.counters

    def run(self, events: LineEventTrace) -> FetchCounters:
        """Replay ``events`` on the wrapped scheme under supervision."""
        scheme = self.scheme
        if scheme._ran:
            raise SchemeError(
                f"scheme {scheme.name!r} already ran; construct a fresh instance"
            )
        scheme._ran = True

        previous = self._snapshot()
        position = 0
        total = events.num_events
        while position < total:
            end = min(position + self.segment_events, total)
            scheme.feed(events.segment(position, end))
            current = self._snapshot()
            self.violations.extend(self._check_segment(previous, current, end - position))
            self.violations.extend(check_scheme_state(scheme))
            previous = current
            position = end
            self.segments_checked += 1

        self.violations.extend(self._final_checks(events))
        self.violations = _dedupe(self.violations)
        if self.raise_on_violation:
            raise_if_violations(self.violations, scheme.name)
        return scheme.counters

    # -- internals -----------------------------------------------------------
    def _snapshot(self) -> Dict[str, int]:
        counters = self.scheme.counters
        return {name: getattr(counters, name) for name in _COUNTER_FIELDS}

    def _check_segment(
        self,
        previous: Mapping[str, int],
        current: Mapping[str, int],
        segment_events: int,
    ) -> List[SanitizerViolation]:
        violations: List[SanitizerViolation] = []
        for name in _COUNTER_FIELDS:
            if current[name] < previous[name]:
                violations.append(
                    _violation(
                        "S007",
                        f"counter {name} decreased across a segment boundary: "
                        f"{previous[name]} -> {current[name]}",
                    )
                )
        delta_events = current["line_events"] - previous["line_events"]
        if delta_events != segment_events:
            violations.append(
                _violation(
                    "S007",
                    f"a segment of {segment_events} event(s) advanced "
                    f"line_events by {delta_events}",
                )
            )
        delta_outcomes = (
            current["hits"] - previous["hits"] + current["misses"] - previous["misses"]
        )
        if delta_outcomes > delta_events:
            violations.append(
                _violation(
                    "S007",
                    f"{delta_outcomes} lookup outcomes for {delta_events} "
                    f"event(s) in one segment",
                )
            )
        return violations

    def _final_checks(self, events: LineEventTrace) -> List[SanitizerViolation]:
        scheme = self.scheme
        violations = check_counters(scheme.counters, self.geometry, events=events)
        violations += check_scheme_state(scheme)
        if scheme.name == "way-placement":
            violations += check_wayhint(
                events,
                scheme.counters,
                getattr(scheme, "wpa_size", 0),
                hint_initial=self._hint_initial,
                same_line_skip=getattr(scheme, "same_line_skip", True),
            )
        elif scheme.name == "baseline":
            violations += check_hint_inert(scheme.counters)
        return violations
