"""The ``V`` rule pack: whole-program verification diagnostics.

Where the ``P``/``L``/``C`` lint rules check shallow per-object
properties, these rules prove the global invariants the paper's results
rest on: profile flow conservation through the CFG, dominator-consistent
execution, fall-through contiguity of the placed layout, and the
symbolic way-placement proof.  They register into the standard
:data:`~repro.analysis.registry.DEFAULT_REGISTRY`, so selectors,
severity overrides, reporters, JSON output, and exit codes all apply
unchanged — ``repro lint --select V`` runs just the verifier.

Every rule self-gates on the context fields it needs (program + block
counts + edge counts for the dataflow rules, geometry + WPA for the
proof rules), so config-only lints skip them silently.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import Location, Severity
from repro.analysis.registry import Finding, rule
from repro.verify.dataflow import (
    FlowGraph,
    broken_fallthroughs,
    build_flow_graph,
    dominators_of,
    flow_imbalances,
    illegal_edges,
    immediate_dominators,
)
from repro.verify.wpa_proof import WpaProof, prove_wpa_placement

__all__: list = []  # rules register themselves via the decorator


def _program_name(context: AnalysisContext) -> str:
    return context.program.name if context.program is not None else context.subject


def _flow_graph(context: AnalysisContext) -> Optional[FlowGraph]:
    if "verify_flow_graph" not in context._cache:
        graph = build_flow_graph(context.program) if context.program else None
        context._cache["verify_flow_graph"] = graph
    cached: Optional[FlowGraph] = context._cache["verify_flow_graph"]
    return cached


def _wpa_proof(context: AnalysisContext) -> WpaProof:
    if "verify_wpa_proof" not in context._cache:
        assert context.geometry is not None and context.wpa_size is not None
        context._cache["verify_wpa_proof"] = prove_wpa_placement(
            context.geometry, context.wpa_size, context.page_size
        )
    proof: WpaProof = context._cache["verify_wpa_proof"]
    return proof


@rule(
    "V001",
    "flow-not-conserved",
    "verify",
    Severity.ERROR,
    "A block's profiled execution count does not equal the sum of its "
    "profiled incoming edge counts (Kirchhoff flow conservation).",
)
def check_flow_conservation(context: AnalysisContext) -> Iterator[Finding]:
    view, counts, edges = context.program, context.block_counts, context.edge_counts
    if view is None or counts is None or edges is None:
        return
    violations = flow_imbalances(view, counts, edges)
    if violations:
        worst = max(violations, key=lambda v: abs(v.imbalance))
        start = " (+1 trace start)" if worst.expected_extra else ""
        yield Finding(
            Location("program", _program_name(context), f"uid {worst.uid}"),
            f"profile flow is not conserved at {len(violations)} block(s); "
            f"e.g. block uid {worst.uid} executed {worst.count} time(s) but its "
            f"incoming edges carry {worst.inflow}{start}",
            "block and edge counts must come from one trace; re-profile the program",
        )


@rule(
    "V002",
    "phantom-profile-edge",
    "verify",
    Severity.ERROR,
    "A profiled edge connects blocks the static ICFG does not connect.",
)
def check_phantom_edges(context: AnalysisContext) -> Iterator[Finding]:
    view, edges = context.program, context.edge_counts
    if view is None or edges is None:
        return
    violations = illegal_edges(view, edges)
    if violations:
        first = violations[0]
        yield Finding(
            Location(
                "program", _program_name(context), f"edge {first.src}->{first.dst}"
            ),
            f"{len(violations)} profiled edge(s) have no static counterpart; "
            f"e.g. uid {first.src} -> uid {first.dst} (traversed "
            f"{first.count} time(s)) {first.reason}",
            "the profile was not produced by this program; re-profile",
        )


@rule(
    "V003",
    "executed-without-dominator",
    "verify",
    Severity.ERROR,
    "A block executed although a static dominator of it never ran (or the "
    "block is unreachable from the entry yet has a nonzero count).",
)
def check_dominated_execution(context: AnalysisContext) -> Iterator[Finding]:
    view, counts = context.program, context.block_counts
    if view is None or counts is None:
        return
    graph = _flow_graph(context)
    if graph is None:
        return
    idom = immediate_dominators(graph)
    known = {block.uid for block in view.blocks()}
    executed = [
        uid for uid in sorted(known) if counts.get(uid, 0) > 0
    ]
    unreachable = [uid for uid in executed if uid not in idom]
    broken = []
    for uid in executed:
        if uid not in idom:
            continue
        for dom in dominators_of(uid, idom):
            if counts.get(dom, 0) <= 0:
                broken.append((uid, dom))
                break
    if unreachable:
        yield Finding(
            Location("program", _program_name(context), f"uid {unreachable[0]}"),
            f"{len(unreachable)} statically unreachable block(s) have nonzero "
            f"profile counts; e.g. block uid {unreachable[0]} executed "
            f"{counts.get(unreachable[0], 0)} time(s)",
            "the profile disagrees with the CFG; re-profile the program",
        )
    if broken:
        uid, dom = broken[0]
        yield Finding(
            Location("program", _program_name(context), f"uid {uid}"),
            f"{len(broken)} block(s) executed although a dominator never ran; "
            f"e.g. block uid {uid} ran {counts.get(uid, 0)} time(s) while its "
            f"dominator uid {dom} ran 0",
            "every path to a block passes through its dominators; the profile "
            "cannot have come from this program",
        )


@rule(
    "V004",
    "fallthrough-chain-broken",
    "verify",
    Severity.ERROR,
    "A fall-through successor is not placed immediately after its source "
    "block, so the layout breaks a fall-through chain.",
)
def check_fallthrough_contiguity(context: AnalysisContext) -> Iterator[Finding]:
    view, layout = context.program, context.layout
    if view is None or layout is None:
        return
    violations = broken_fallthroughs(view, layout)
    if violations:
        first = violations[0]
        yield Finding(
            Location("layout", layout.program_name, f"uid {first.dst}"),
            f"{len(violations)} fall-through edge(s) are not contiguous; e.g. "
            f"block uid {first.dst} must start at {first.expected_address:#x} "
            f"(immediately after uid {first.src}) but is placed at "
            f"{first.actual_address:#x}",
            "fall-through chains are atomic; re-link whole chains, never "
            "individual blocks",
        )


@rule(
    "V005",
    "wpa-mapping-not-injective",
    "verify",
    Severity.ERROR,
    "The symbolic WPA proof failed: two way-placement-area lines share a "
    "mandated (set, way) home and would evict each other.",
)
def check_wpa_injectivity(context: AnalysisContext) -> Iterator[Finding]:
    geometry, wpa = context.geometry, context.wpa_size
    if geometry is None or not wpa or not geometry.is_sound():
        return
    proof = _wpa_proof(context)
    if not proof.injective:
        first, second = proof.conflicts[0]
        yield Finding(
            Location("layout", context.subject, "wpa-proof"),
            f"the WPA (set, way) mapping is not injective: {proof.num_lines} "
            f"line(s) map onto {proof.distinct_homes} home(s), "
            f"{proof.num_conflicts} conflict(s); e.g. lines {first:#x} and "
            f"{second:#x} share a home",
            f"shrink the WPA to at most one cache capacity "
            f"({geometry.size_bytes} bytes)",
        )


@rule(
    "V006",
    "wpa-bit-extraction-mismatch",
    "verify",
    Severity.ERROR,
    "Way-placement bit extraction disagrees with the arithmetic placement "
    "mapping, or the I-TLB page bit cannot represent the WPA boundary.",
)
def check_wpa_bit_extraction(context: AnalysisContext) -> Iterator[Finding]:
    geometry, wpa = context.geometry, context.wpa_size
    if geometry is None or not wpa or geometry.line_size < 1 or geometry.ways < 1:
        return
    proof = _wpa_proof(context)
    if not proof.extraction_consistent:
        addr = proof.extraction_mismatches[0]
        yield Finding(
            Location("config", context.subject, "wpa-proof"),
            f"bit-sliced (set, way) extraction disagrees with the arithmetic "
            f"way-placement mapping; e.g. at line {addr:#x}",
            "way-placement bit extraction requires a power-of-two geometry",
        )
    if not proof.itlb_representable:
        yield Finding(
            Location("config", context.subject, "wpa-size"),
            f"the WPA boundary {proof.wpa_size:#x} splits page "
            f"{proof.straddled_page}; the per-page I-TLB way-placement bit "
            f"cannot represent it",
            "align the WPA size to a multiple of the page size",
        )
