"""Bench snapshot regression gate: fail on engine speedup drops.

Compares a freshly generated snapshot (``scripts/bench_snapshot.py
--output bench_ci.json``) against the committed ``BENCH_engine.json``
baseline.  The guarded metrics are the engine tiers' headline speedups —
ratios of two wall times measured in the same process, so they are far
more stable across runner hardware than the raw walls:

* ``grid.wpa_sweep_16.batch_speedup`` — batched vs per-cell replay;
* ``grid.wpa_sweep_256.differential_speedup`` — delta-driven vs batched
  replay;
* ``grid.wpa_sweep_256_pruned.pruned_fraction`` — the share of the
  256-point sweep the static pruning certificate collapses.  Not a wall
  time at all: the certificate is derived purely from the layout, so the
  fraction is deterministic and any drop means the analysis got weaker.

A guarded speedup may drift or improve freely; dropping more than the
tolerance (default 20%) below the baseline fails the gate.  A metric
missing from the *current* snapshot also fails (a silently skipped bench
must not pass the gate); one missing from the *baseline* is reported and
skipped, so the gate can be introduced before the baseline carries every
metric.

Exposed to the CLI as ``repro bench compare``;
``scripts/bench_compare.py`` is a thin shim over that subcommand.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import json

from repro.errors import ReproError

__all__ = [
    "DEFAULT_BASELINE",
    "DEFAULT_TOLERANCE",
    "GUARDED",
    "BenchComparison",
    "MetricVerdict",
    "compare_snapshots",
    "load_metrics",
]

#: Default checked-in baseline, at the repository root.
DEFAULT_BASELINE = Path(__file__).resolve().parents[3] / "BENCH_engine.json"

#: Allowed fractional speedup drop before the gate fails.
DEFAULT_TOLERANCE = 0.20

#: (metric name, ratio field) pairs the gate guards.
GUARDED: Tuple[Tuple[str, str], ...] = (
    ("grid.wpa_sweep_16", "batch_speedup"),
    ("grid.wpa_sweep_256", "differential_speedup"),
    ("grid.wpa_sweep_256_pruned", "pruned_fraction"),
    # Deliberately not a wall-clock ratio: the sharded backend's guarded
    # property is bit-identity under injected shard crashes (1.0 or 0.0).
    ("grid.sharded_sweep", "chaos_identical"),
    # Warm mmap (v2) vs npz-decompress (v1) store loads — same process,
    # same trace, so the ratio is hardware-stable like the tiers above.
    ("store.load_events", "warm_speedup"),
    # Boolean: arena workers must not out-consume npz-copying workers
    # (per-worker Pss growth; 1.0 or 0.0).
    ("grid.arena_rss", "arena_no_worse"),
)


def load_metrics(path: Path) -> Dict[str, Any]:
    """The ``metrics`` block of one snapshot file, strictly validated."""
    try:
        snapshot = json.loads(path.read_text())
    except OSError as error:
        raise ReproError(f"cannot read snapshot {path}: {error}")
    except ValueError as error:
        raise ReproError(f"snapshot {path} is not valid JSON: {error}")
    metrics = snapshot.get("metrics") if isinstance(snapshot, dict) else None
    if not isinstance(metrics, dict):
        raise ReproError(f"snapshot {path} has no 'metrics' block")
    return metrics


@dataclass(frozen=True)
class MetricVerdict:
    """The gate's decision on one guarded metric."""

    metric: str
    field: str
    measured: Optional[float]
    reference: Optional[float]
    floor: Optional[float]
    status: str  # "ok", "FAIL", or "SKIP"

    def render(self) -> str:
        name = f"{self.metric}.{self.field}"
        if self.status == "SKIP":
            return f"SKIP {name}: not in baseline"
        if self.measured is None:
            return f"FAIL {name}: missing from current snapshot"
        assert self.reference is not None and self.floor is not None
        return (
            f"{self.status:4} {name}: {self.measured:.2f}x vs baseline "
            f"{self.reference:.2f}x (floor {self.floor:.2f}x)"
        )


@dataclass(frozen=True)
class BenchComparison:
    """Every guarded metric's verdict plus the gate's overall outcome."""

    verdicts: Tuple[MetricVerdict, ...]
    failures: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [verdict.render() for verdict in self.verdicts]
        if self.failures:
            lines.append("")
            lines.append("bench regression gate FAILED:")
            lines.extend(f"  - {failure}" for failure in self.failures)
        else:
            lines.append("bench regression gate passed")
        return "\n".join(lines)


def compare_snapshots(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
) -> BenchComparison:
    """Apply the gate to two ``metrics`` blocks (see the module docstring)."""
    if not 0.0 <= tolerance < 1.0:
        raise ReproError(f"tolerance must be in [0, 1), got {tolerance}")
    verdicts: List[MetricVerdict] = []
    failures: List[str] = []
    for metric, field in GUARDED:
        name = f"{metric}.{field}"
        reference = baseline.get(metric, {}).get(field)
        if reference is None:
            verdicts.append(
                MetricVerdict(metric, field, None, None, None, "SKIP")
            )
            continue
        measured = current.get(metric, {}).get(field)
        if measured is None:
            verdicts.append(
                MetricVerdict(metric, field, None, float(reference), None, "FAIL")
            )
            failures.append(
                f"{name}: missing from the current snapshot "
                f"(baseline has {reference})"
            )
            continue
        floor = float(reference) * (1.0 - tolerance)
        failed = float(measured) < floor
        verdicts.append(
            MetricVerdict(
                metric,
                field,
                float(measured),
                float(reference),
                floor,
                "FAIL" if failed else "ok",
            )
        )
        if failed:
            failures.append(
                f"{name}: {measured:.2f}x is more than {tolerance:.0%} below "
                f"the baseline {reference:.2f}x"
            )
    return BenchComparison(tuple(verdicts), tuple(failures))
