"""Energy-model sensitivity analysis: is the conclusion calibration-proof?

The reproduction's energy constants are calibrated, not measured
(DESIGN.md §2), so the right question is not "are the constants right?" but
"does the paper's conclusion survive perturbing them?".  Because schemes
record raw *activity counters*, energy is a pure function of (counters,
parameters): this module re-prices already-simulated runs under scaled
parameters without touching the simulator — a full grid over the suite
costs milliseconds.

``sensitivity_grid`` scales the two ratios that drive everything (CAM tag
energy and data-read energy) and reports, per grid point, the suite-mean
normalised I-cache energy of way-placement and way-memoization.  The bench
asserts the ordering  way-placement < way-memoization < baseline  holds
across a wide region around the calibration point.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple

from repro.energy.cache_model import CacheEnergyModel
from repro.energy.params import EnergyParams
from repro.energy.processor import ProcessorReport
from repro.engine.grid import GridCell
from repro.errors import ExperimentError
from repro.experiments.runner import ExperimentRunner
from repro.layout.placement import LayoutPolicy
from repro.sim.machine import MachineConfig, XSCALE_BASELINE
from repro.sim.report import SimulationReport
from repro.utils.stats import arithmetic_mean
from repro.workloads.mibench import benchmark_names

__all__ = ["SensitivityPoint", "SensitivityResult", "reprice_report", "sensitivity_grid"]


def reprice_report(
    report: SimulationReport,
    params: EnergyParams,
    organisation: str = "cam",
) -> ProcessorReport:
    """Re-price one simulated run's counters under different parameters.

    Timing and the rest-of-core energy are untouched (the perturbed
    parameters here are cache-internal), so the result reuses the original
    run's cycles and core energy.
    """
    model = CacheEnergyModel(
        report.geometry,
        params,
        organisation=organisation,
        memo_links=(report.scheme == "way-memoization"),
        wayhint=(report.scheme == "way-placement"),
    )
    breakdown = model.energy(report.counters)
    return ProcessorReport(
        instructions=report.counters.fetches,
        cycles=report.cycles,
        breakdown=breakdown,
        core_pj=report.processor.core_pj,
    )


@dataclass(frozen=True)
class SensitivityPoint:
    """Suite means at one (tag-scale, data-scale) grid point."""

    cam_scale: float
    data_scale: float
    placement_energy: float
    memoization_energy: float

    @property
    def ordering_holds(self) -> bool:
        """The paper's conclusion at this point: WP < memo < baseline."""
        return self.placement_energy < self.memoization_energy < 1.0


@dataclass(frozen=True)
class SensitivityResult:
    """The full grid."""

    points: Tuple[SensitivityPoint, ...]

    def point(self, cam_scale: float, data_scale: float) -> SensitivityPoint:
        for point in self.points:
            if point.cam_scale == cam_scale and point.data_scale == data_scale:
                return point
        raise ExperimentError(
            f"no grid point ({cam_scale}, {data_scale}) in sensitivity result"
        )

    @property
    def conclusion_robust(self) -> bool:
        return all(point.ordering_holds for point in self.points)

    def placement_energy_range(self) -> Tuple[float, float]:
        values = [point.placement_energy for point in self.points]
        return min(values), max(values)


def sensitivity_grid(
    runner: ExperimentRunner,
    cam_scales: Sequence[float] = (0.7, 0.85, 1.0, 1.2, 1.4),
    data_scales: Sequence[float] = (0.7, 0.85, 1.0, 1.2, 1.4),
    benchmarks: Optional[Sequence[str]] = None,
    machine: MachineConfig = XSCALE_BASELINE,
    wpa_size: int = 32 * 1024,
    jobs: int = 1,
    layout_policy: Optional[LayoutPolicy] = None,
) -> SensitivityResult:
    """Suite-mean energies for every (cam, data) scale combination.

    ``layout_policy`` swaps the way-placement runs' code layout, so the
    calibration-robustness question can also be asked of the
    conflict-aware optimizer's layouts.
    """
    benchmarks = list(benchmarks if benchmarks is not None else benchmark_names())
    if not benchmarks:
        raise ExperimentError("sensitivity grid needs at least one benchmark")
    base_params = runner.energy_params

    # Simulate once per (benchmark, scheme); reprice per grid point.
    if jobs > 1:
        cells = []
        for bench in benchmarks:
            cells.append(GridCell(bench, "baseline", machine))
            cells.append(
                GridCell(
                    bench,
                    "way-placement",
                    machine,
                    wpa_size=wpa_size,
                    layout_policy=layout_policy,
                )
            )
            cells.append(GridCell(bench, "way-memoization", machine))
        runner.run_grid(cells, jobs=jobs)
    reports: Dict[Tuple[str, str], SimulationReport] = {}
    for bench in benchmarks:
        reports[(bench, "baseline")] = runner.report(bench, "baseline", machine)
        reports[(bench, "way-placement")] = runner.report(
            bench,
            "way-placement",
            machine,
            wpa_size=wpa_size,
            layout_policy=layout_policy,
        )
        reports[(bench, "way-memoization")] = runner.report(
            bench, "way-memoization", machine
        )

    points = []
    for cam_scale in cam_scales:
        for data_scale in data_scales:
            params = replace(
                base_params,
                cam_pj_per_way_bit=base_params.cam_pj_per_way_bit * cam_scale,
                data_read_pj=base_params.data_read_pj * data_scale,
            )
            placement = []
            memoization = []
            for bench in benchmarks:
                base = reprice_report(reports[(bench, "baseline")], params)
                placed = reprice_report(reports[(bench, "way-placement")], params)
                memo = reprice_report(reports[(bench, "way-memoization")], params)
                placement.append(placed.normalised_icache_energy(base))
                memoization.append(memo.normalised_icache_energy(base))
            points.append(
                SensitivityPoint(
                    cam_scale=cam_scale,
                    data_scale=data_scale,
                    placement_energy=arithmetic_mean(placement),
                    memoization_energy=arithmetic_mean(memoization),
                )
            )
    return SensitivityResult(points=tuple(points))
