"""ASCII rendering of experiment results (the benches print these)."""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["render_table", "format_pct", "format_ratio"]


def format_pct(value: float) -> str:
    """A normalised energy as the paper's percentage axis (e.g. '52.3')."""
    return f"{100.0 * value:5.1f}"


def format_ratio(value: float) -> str:
    """An ED product with the paper's two-decimal precision."""
    return f"{value:5.2f}"


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
) -> str:
    """Fixed-width table with a title rule, ready to print."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {columns}"
            )
    widths: List[int] = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(str(cell).rjust(widths[i]) for i, cell in enumerate(cells))

    rule = "-" * len(line(headers))
    body = "\n".join(line(row) for row in rows)
    return f"{title}\n{rule}\n{line(headers)}\n{rule}\n{body}\n{rule}"
