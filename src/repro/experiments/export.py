"""Exporting figure results as machine-readable records (CSV / JSON).

Every figure result converts to a flat list of record dicts — one per
plotted point — which serialise to CSV (for plotting tools) or JSON (for
downstream analysis).  The record schemas are stable and tested.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List

from repro.errors import ExperimentError
from repro.experiments.figures import Figure4Result, Figure5Result, Figure6Result

__all__ = [
    "figure4_records",
    "figure5_records",
    "figure6_records",
    "records_to_csv",
    "records_to_json",
]


def figure4_records(result: Figure4Result) -> List[Dict[str, object]]:
    """One record per (benchmark, scheme) bar of Figure 4."""
    records: List[Dict[str, object]] = []
    for bench in result.benchmarks:
        for scheme, data in (
            ("way-memoization", result.memoization[bench]),
            ("way-placement", result.placement[bench]),
        ):
            records.append(
                {
                    "figure": "4",
                    "benchmark": bench,
                    "scheme": scheme,
                    "wpa_kb": result.wpa_size // 1024 if scheme == "way-placement" else "",
                    "icache_energy": round(data.icache_energy, 6),
                    "ed_product": round(data.ed_product, 6),
                    "delay": round(data.delay, 6),
                }
            )
    return records


def figure5_records(result: Figure5Result) -> List[Dict[str, object]]:
    """One record per way-placement-area point plus the memo reference."""
    records: List[Dict[str, object]] = []
    for wpa in result.wpa_sizes:
        records.append(
            {
                "figure": "5",
                "scheme": "way-placement",
                "wpa_kb": wpa // 1024,
                "icache_energy": round(result.placement_energy[wpa], 6),
                "ed_product": round(result.placement_ed[wpa], 6),
            }
        )
    records.append(
        {
            "figure": "5",
            "scheme": "way-memoization",
            "wpa_kb": "",
            "icache_energy": round(result.memoization_energy, 6),
            "ed_product": round(result.memoization_ed, 6),
        }
    )
    return records


def figure6_records(result: Figure6Result) -> List[Dict[str, object]]:
    """One record per (cache, ways, scheme[, wpa]) cell of Figure 6."""
    records: List[Dict[str, object]] = []
    for (size, ways), cell in sorted(result.cells.items()):
        records.append(
            {
                "figure": "6",
                "cache_kb": size // 1024,
                "ways": ways,
                "scheme": "way-memoization",
                "wpa_kb": "",
                "icache_energy": round(cell.memoization_energy, 6),
                "ed_product": round(cell.memoization_ed, 6),
            }
        )
        for wpa in result.wpa_sizes:
            records.append(
                {
                    "figure": "6",
                    "cache_kb": size // 1024,
                    "ways": ways,
                    "scheme": "way-placement",
                    "wpa_kb": wpa // 1024,
                    "icache_energy": round(cell.placement_energy[wpa], 6),
                    "ed_product": round(cell.placement_ed[wpa], 6),
                }
            )
    return records


def records_to_csv(records: List[Dict[str, object]]) -> str:
    """Serialise records to CSV text (columns from the first record)."""
    if not records:
        raise ExperimentError("no records to serialise")
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(records[0].keys()))
    writer.writeheader()
    writer.writerows(records)
    return buffer.getvalue()


def records_to_json(records: List[Dict[str, object]]) -> str:
    """Serialise records to pretty-printed JSON text."""
    if not records:
        raise ExperimentError("no records to serialise")
    return json.dumps(records, indent=2, sort_keys=True)
