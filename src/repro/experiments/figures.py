"""Regeneration of the paper's figures (4, 5, 6) as structured results.

Each ``figureN`` function runs the exact experiment grid of the paper's
Section 6 through an :class:`~repro.experiments.runner.ExperimentRunner` and
returns a result object that knows how to render itself as the ASCII
equivalent of the figure (the series the paper plots, as table rows).

The paper plots arithmetic means over the benchmark suite ("averaged across
all benchmarks"); the result objects expose those plus per-benchmark detail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.grid import GridCell
from repro.errors import ExperimentError
from repro.experiments.formatting import format_pct, format_ratio, render_table
from repro.experiments.runner import ExperimentRunner
from repro.layout.placement import LayoutPolicy
from repro.sim.machine import MachineConfig, XSCALE_BASELINE
from repro.sim.report import NormalisedResult
from repro.utils.stats import arithmetic_mean
from repro.workloads.mibench import benchmark_names

__all__ = [
    "Figure4Result",
    "Figure5Result",
    "Figure6Result",
    "figure4",
    "figure5",
    "figure6",
    "FIGURE5_WPA_SIZES",
    "FIGURE6_CACHE_SIZES",
    "FIGURE6_WAYS",
    "FIGURE6_WPA_SIZES",
]

_KB = 1024

#: Section 6.2: the way-placement area sweep, 32KB down to 1KB.
FIGURE5_WPA_SIZES: Tuple[int, ...] = tuple(s * _KB for s in (32, 16, 8, 4, 2, 1))
#: Section 6.3: cache sizes and associativities.
FIGURE6_CACHE_SIZES: Tuple[int, ...] = tuple(s * _KB for s in (16, 32, 64))
FIGURE6_WAYS: Tuple[int, ...] = (8, 16, 32)
#: Section 6.3: the two way-placement area sizes shown in Figure 6.
FIGURE6_WPA_SIZES: Tuple[int, ...] = (16 * _KB, 8 * _KB)


def _wpa_label(wpa_size: int) -> str:
    return f"{wpa_size // _KB}KB"


# ---------------------------------------------------------------------------
# Figure 4 — per-benchmark energy and ED, 32KB/32-way, 32KB WPA
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Figure4Result:
    """Per-benchmark normalised energy/ED for way-memoization vs placement."""

    machine: MachineConfig
    wpa_size: int
    benchmarks: Tuple[str, ...]
    memoization: Dict[str, NormalisedResult]
    placement: Dict[str, NormalisedResult]

    # -- the averages the paper quotes --------------------------------------
    @property
    def mean_memoization_energy(self) -> float:
        return arithmetic_mean(
            self.memoization[b].icache_energy for b in self.benchmarks
        )

    @property
    def mean_placement_energy(self) -> float:
        return arithmetic_mean(
            self.placement[b].icache_energy for b in self.benchmarks
        )

    @property
    def mean_memoization_ed(self) -> float:
        return arithmetic_mean(self.memoization[b].ed_product for b in self.benchmarks)

    @property
    def mean_placement_ed(self) -> float:
        return arithmetic_mean(self.placement[b].ed_product for b in self.benchmarks)

    def render(self) -> str:
        energy_rows = [
            [
                bench,
                format_pct(self.memoization[bench].icache_energy),
                format_pct(self.placement[bench].icache_energy),
            ]
            for bench in self.benchmarks
        ]
        energy_rows.append(
            [
                "average",
                format_pct(self.mean_memoization_energy),
                format_pct(self.mean_placement_energy),
            ]
        )
        ed_rows = [
            [
                bench,
                format_ratio(self.memoization[bench].ed_product),
                format_ratio(self.placement[bench].ed_product),
            ]
            for bench in self.benchmarks
        ]
        ed_rows.append(
            [
                "average",
                format_ratio(self.mean_memoization_ed),
                format_ratio(self.mean_placement_ed),
            ]
        )
        headers = ["benchmark", "way-memoization", "way-placement"]
        cache = self.machine.icache.describe()
        return "\n\n".join(
            [
                render_table(
                    f"Figure 4(a): normalised I-cache energy (%) — {cache}, "
                    f"{_wpa_label(self.wpa_size)} WPA",
                    headers,
                    energy_rows,
                ),
                render_table(
                    f"Figure 4(b): ED product — {cache}, "
                    f"{_wpa_label(self.wpa_size)} WPA",
                    headers,
                    ed_rows,
                ),
            ]
        )


def figure4(
    runner: ExperimentRunner,
    benchmarks: Optional[Sequence[str]] = None,
    machine: MachineConfig = XSCALE_BASELINE,
    wpa_size: int = 32 * _KB,
    jobs: int = 1,
    layout_policy: Optional[LayoutPolicy] = None,
) -> Figure4Result:
    """Reproduce Figure 4: the paper's initial evaluation.

    ``jobs > 1`` fans the (benchmark, scheme) grid across worker processes
    before the (then memoised) per-benchmark lookups below.
    ``layout_policy`` swaps the way-placement runs' code layout (e.g.
    ``LayoutPolicy.CONFLICT_AWARE`` for the trace-free optimizer).
    """
    benchmarks = tuple(benchmarks if benchmarks is not None else benchmark_names())
    if not benchmarks:
        raise ExperimentError("figure 4 needs at least one benchmark")
    if jobs > 1:
        cells = []
        for bench in benchmarks:
            cells.append(GridCell(bench, "baseline", machine))
            cells.append(GridCell(bench, "way-memoization", machine))
            cells.append(
                GridCell(
                    bench,
                    "way-placement",
                    machine,
                    wpa_size=wpa_size,
                    layout_policy=layout_policy,
                )
            )
        runner.run_grid(cells, jobs=jobs)
    memoization = {
        bench: runner.normalised(bench, "way-memoization", machine)
        for bench in benchmarks
    }
    placement = {
        bench: runner.normalised(
            bench,
            "way-placement",
            machine,
            wpa_size=wpa_size,
            layout_policy=layout_policy,
        )
        for bench in benchmarks
    }
    return Figure4Result(
        machine=machine,
        wpa_size=wpa_size,
        benchmarks=benchmarks,
        memoization=memoization,
        placement=placement,
    )


# ---------------------------------------------------------------------------
# Figure 5 — way-placement area size sweep, means over the suite
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Figure5Result:
    """Suite means for each way-placement area size, plus way-memoization."""

    machine: MachineConfig
    wpa_sizes: Tuple[int, ...]
    benchmarks: Tuple[str, ...]
    placement_energy: Dict[int, float]  # wpa size -> mean normalised energy
    placement_ed: Dict[int, float]
    memoization_energy: float
    memoization_ed: float

    def render(self) -> str:
        cache = self.machine.icache.describe()
        energy_rows = [
            [_wpa_label(w), format_pct(self.placement_energy[w])]
            for w in self.wpa_sizes
        ]
        energy_rows.append(["way-memo", format_pct(self.memoization_energy)])
        ed_rows = [
            [_wpa_label(w), format_ratio(self.placement_ed[w])] for w in self.wpa_sizes
        ]
        ed_rows.append(["way-memo", format_ratio(self.memoization_ed)])
        return "\n\n".join(
            [
                render_table(
                    f"Figure 5(a): mean normalised I-cache energy (%) vs WPA size — {cache}",
                    ["WPA size", "energy %"],
                    energy_rows,
                ),
                render_table(
                    f"Figure 5(b): mean ED product vs WPA size — {cache}",
                    ["WPA size", "ED"],
                    ed_rows,
                ),
            ]
        )


def figure5(
    runner: ExperimentRunner,
    wpa_sizes: Sequence[int] = FIGURE5_WPA_SIZES,
    benchmarks: Optional[Sequence[str]] = None,
    machine: MachineConfig = XSCALE_BASELINE,
    jobs: int = 1,
    layout_policy: Optional[LayoutPolicy] = None,
) -> Figure5Result:
    """Reproduce Figure 5: the effect of shrinking the way-placement area."""
    benchmarks = tuple(benchmarks if benchmarks is not None else benchmark_names())
    wpa_sizes = tuple(wpa_sizes)
    if not wpa_sizes:
        raise ExperimentError("figure 5 needs at least one WPA size")
    if jobs > 1:
        cells = []
        for bench in benchmarks:
            cells.append(GridCell(bench, "baseline", machine))
            cells.append(GridCell(bench, "way-memoization", machine))
            for wpa in wpa_sizes:
                cells.append(
                    GridCell(
                        bench,
                        "way-placement",
                        machine,
                        wpa_size=wpa,
                        layout_policy=layout_policy,
                    )
                )
        runner.run_grid(cells, jobs=jobs)
    placement_energy: Dict[int, float] = {}
    placement_ed: Dict[int, float] = {}
    for wpa in wpa_sizes:
        results = [
            runner.normalised(
                bench,
                "way-placement",
                machine,
                wpa_size=wpa,
                layout_policy=layout_policy,
            )
            for bench in benchmarks
        ]
        placement_energy[wpa] = arithmetic_mean(r.icache_energy for r in results)
        placement_ed[wpa] = arithmetic_mean(r.ed_product for r in results)
    memo = [runner.normalised(bench, "way-memoization", machine) for bench in benchmarks]
    return Figure5Result(
        machine=machine,
        wpa_sizes=wpa_sizes,
        benchmarks=benchmarks,
        placement_energy=placement_energy,
        placement_ed=placement_ed,
        memoization_energy=arithmetic_mean(r.icache_energy for r in memo),
        memoization_ed=arithmetic_mean(r.ed_product for r in memo),
    )


# ---------------------------------------------------------------------------
# Figure 6 — cache size x associativity grid
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Figure6Cell:
    """Suite means for one cache configuration."""

    memoization_energy: float
    memoization_ed: float
    placement_energy: Dict[int, float]  # wpa size -> mean energy
    placement_ed: Dict[int, float]


@dataclass(frozen=True)
class Figure6Result:
    """The full size x ways grid of Figure 6."""

    cache_sizes: Tuple[int, ...]
    ways_list: Tuple[int, ...]
    wpa_sizes: Tuple[int, ...]
    benchmarks: Tuple[str, ...]
    cells: Dict[Tuple[int, int], Figure6Cell] = field(default_factory=dict)

    def cell(self, size_bytes: int, ways: int) -> Figure6Cell:
        try:
            return self.cells[(size_bytes, ways)]
        except KeyError:
            raise ExperimentError(
                f"figure 6 grid has no ({size_bytes}B, {ways}-way) cell"
            ) from None

    def best_ed(self) -> Tuple[Tuple[int, int], int, float]:
        """((size, ways), wpa, value) of the lowest ED in the whole grid."""
        best = None
        for key, cell in self.cells.items():
            for wpa, value in cell.placement_ed.items():
                if best is None or value < best[2]:
                    best = (key, wpa, value)
        return best

    def render(self) -> str:
        headers = ["cache", "ways", "way-memo"] + [
            f"WP {_wpa_label(w)}" for w in self.wpa_sizes
        ]
        energy_rows = []
        ed_rows = []
        for size in self.cache_sizes:
            for ways in self.ways_list:
                cell = self.cells[(size, ways)]
                base = [f"{size // _KB}KB", str(ways)]
                energy_rows.append(
                    base
                    + [format_pct(cell.memoization_energy)]
                    + [format_pct(cell.placement_energy[w]) for w in self.wpa_sizes]
                )
                ed_rows.append(
                    base
                    + [format_ratio(cell.memoization_ed)]
                    + [format_ratio(cell.placement_ed[w]) for w in self.wpa_sizes]
                )
        return "\n\n".join(
            [
                render_table(
                    "Figure 6(a): mean normalised I-cache energy (%) across "
                    "cache configurations",
                    headers,
                    energy_rows,
                ),
                render_table(
                    "Figure 6(b): mean ED product across cache configurations",
                    headers,
                    ed_rows,
                ),
            ]
        )


def figure6(
    runner: ExperimentRunner,
    cache_sizes: Sequence[int] = FIGURE6_CACHE_SIZES,
    ways_list: Sequence[int] = FIGURE6_WAYS,
    wpa_sizes: Sequence[int] = FIGURE6_WPA_SIZES,
    benchmarks: Optional[Sequence[str]] = None,
    jobs: int = 1,
    layout_policy: Optional[LayoutPolicy] = None,
) -> Figure6Result:
    """Reproduce Figure 6: varying cache size and associativity."""
    benchmarks = tuple(benchmarks if benchmarks is not None else benchmark_names())
    cache_sizes = tuple(cache_sizes)
    ways_list = tuple(ways_list)
    wpa_sizes = tuple(wpa_sizes)
    if jobs > 1:
        grid_cells = []
        for size in cache_sizes:
            for ways in ways_list:
                machine = XSCALE_BASELINE.with_icache(size, ways)
                for bench in benchmarks:
                    grid_cells.append(GridCell(bench, "baseline", machine))
                    grid_cells.append(GridCell(bench, "way-memoization", machine))
                    for wpa in wpa_sizes:
                        grid_cells.append(
                            GridCell(
                                bench,
                                "way-placement",
                                machine,
                                wpa_size=wpa,
                                layout_policy=layout_policy,
                            )
                        )
        runner.run_grid(grid_cells, jobs=jobs)
    cells: Dict[Tuple[int, int], Figure6Cell] = {}
    for size in cache_sizes:
        for ways in ways_list:
            machine = XSCALE_BASELINE.with_icache(size, ways)
            memo = [
                runner.normalised(bench, "way-memoization", machine)
                for bench in benchmarks
            ]
            placement_energy: Dict[int, float] = {}
            placement_ed: Dict[int, float] = {}
            for wpa in wpa_sizes:
                results = [
                    runner.normalised(
                        bench,
                        "way-placement",
                        machine,
                        wpa_size=wpa,
                        layout_policy=layout_policy,
                    )
                    for bench in benchmarks
                ]
                placement_energy[wpa] = arithmetic_mean(
                    r.icache_energy for r in results
                )
                placement_ed[wpa] = arithmetic_mean(r.ed_product for r in results)
            cells[(size, ways)] = Figure6Cell(
                memoization_energy=arithmetic_mean(r.icache_energy for r in memo),
                memoization_ed=arithmetic_mean(r.ed_product for r in memo),
                placement_energy=placement_energy,
                placement_ed=placement_ed,
            )
    return Figure6Result(
        cache_sizes=cache_sizes,
        ways_list=ways_list,
        wpa_sizes=wpa_sizes,
        benchmarks=benchmarks,
        cells=cells,
    )
