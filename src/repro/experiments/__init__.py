"""Experiment harness: run grids, normalise, regenerate tables and figures."""

from repro.experiments.runner import ExperimentRunner, GridCell
from repro.experiments.figures import (
    Figure4Result,
    Figure5Result,
    Figure6Result,
    figure4,
    figure5,
    figure6,
    FIGURE5_WPA_SIZES,
    FIGURE6_CACHE_SIZES,
    FIGURE6_WAYS,
    FIGURE6_WPA_SIZES,
)
from repro.experiments.formatting import render_table, format_pct, format_ratio
from repro.experiments.sensitivity import (
    SensitivityPoint,
    SensitivityResult,
    reprice_report,
    sensitivity_grid,
)

__all__ = [
    "ExperimentRunner",
    "GridCell",
    "Figure4Result",
    "Figure5Result",
    "Figure6Result",
    "figure4",
    "figure5",
    "figure6",
    "FIGURE5_WPA_SIZES",
    "FIGURE6_CACHE_SIZES",
    "FIGURE6_WAYS",
    "FIGURE6_WPA_SIZES",
    "render_table",
    "format_pct",
    "format_ratio",
    "SensitivityPoint",
    "SensitivityResult",
    "reprice_report",
    "sensitivity_grid",
]
